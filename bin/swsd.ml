(** swsd — the shrink wrap schema designer command line.

    A schema argument is either a path to an extended-ODL file or the name
    of a built-in example schema (university, lumber, emsl, acedb, aatdb,
    sacchdb). *)

let builtins =
  [
    ("university", Schemas.University.v);
    ("lumber", Schemas.Lumber.v);
    ("vlsi", Schemas.Vlsi.v);
    ("commerce", Schemas.Commerce.v);
    ("emsl", Schemas.Emsl.v);
    ("acedb", Schemas.Genome.acedb_v);
    ("aatdb", Schemas.Genome.aatdb_v);
    ("sacchdb", Schemas.Genome.sacchdb_v);
  ]

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema arg =
  match List.assoc_opt arg builtins with
  | Some f -> Ok (f ())
  | None -> (
      if not (Sys.file_exists arg) then
        Error (Printf.sprintf "%s: not a file and not a built-in schema" arg)
      else
        try Ok (Odl.Parser.parse_schema (read_file arg)) with
        | Odl.Parser.Parse_error (m, line, col) ->
            Error (Printf.sprintf "%s:%d:%d: %s" arg line col m)
        | Odl.Lexer.Lex_error (m, line, col) ->
            Error (Printf.sprintf "%s:%d:%d: %s" arg line col m))

let with_schema arg f =
  match load_schema arg with
  | Error m ->
      prerr_endline m;
      1
  | Ok schema -> f schema

(* In paranoid mode the session cross-checks every operation against the
   naive reference engine; a divergence is an index bug, reported loudly. *)
let guard_divergence f session =
  try f session with
  | Core.Session.Divergence m ->
      prerr_endline ("engine divergence (index bug): " ^ m);
      2

let with_session ?(paranoid = false) arg f =
  with_schema arg (fun schema ->
      match Core.Session.create ~paranoid schema with
      | Error ds ->
          prerr_endline "the shrink wrap schema is not valid:";
          List.iter
            (fun d ->
              prerr_endline ("  " ^ Fmt.str "%a" Odl.Validate.pp_diagnostic_line d))
            ds;
          1
      | Ok session -> guard_divergence f session)

let load_log path =
  try Ok (Repository.Store.log_of_string (read_file path)) with
  | Repository.Store.Bad_log m -> Error m
  | Sys_error m -> Error m

let with_replayed ?(paranoid = false) arg log_path f =
  with_schema arg (fun schema ->
      match load_log log_path with
      | Error m ->
          prerr_endline m;
          1
      | Ok steps -> (
          try
            match Core.Oplog.replay ~paranoid schema steps with
            | Error e ->
                prerr_endline (Core.Apply.error_to_string e);
                1
            | Ok session -> guard_divergence f session
          with Core.Session.Divergence m ->
            prerr_endline ("engine divergence (index bug): " ^ m);
            2))

(* --- commands ------------------------------------------------------------ *)

let cmd_decompose arg =
  with_session arg (fun session ->
      Core.Session.concepts session
      |> List.iter (fun (c : Core.Concept.t) ->
             Printf.printf "%-24s %-26s %s\n" c.c_id
               (Core.Concept.kind_name c.c_kind)
               (String.concat ", " c.c_members));
      0)

let cmd_show arg concept_id =
  with_session arg (fun session ->
      match Core.Decompose.find (Core.Session.concepts session) concept_id with
      | None ->
          prerr_endline ("no concept schema named " ^ concept_id);
          1
      | Some c ->
          print_string (Core.Render.concept (Core.Session.workspace session) c);
          0)

let cmd_check arg paranoid =
  with_schema arg (fun schema ->
      let ds = Odl.Validate.check schema in
      let diverged =
        paranoid
        &&
        let di = Core.Schema_index.diagnostics (Core.Schema_index.build schema) in
        if List.equal Odl.Validate.equal_diagnostic di ds then begin
          print_endline "paranoid: indexed and naive checkers agree";
          false
        end
        else begin
          prerr_endline
            "engine divergence (index bug): indexed and naive diagnostics differ";
          true
        end
      in
      if diverged then 2
      else if ds = [] then begin
        print_endline "no findings";
        0
      end
      else begin
        List.iter
          (fun d -> print_endline (Fmt.str "%a" Odl.Validate.pp_diagnostic_line d))
          ds;
        if Odl.Validate.errors schema = [] then 0 else 1
      end)

let cmd_custom arg log_path paranoid =
  with_replayed ~paranoid arg log_path (fun session ->
      print_string (Odl.Printer.schema_to_string (Core.Session.custom_schema session));
      0)

let cmd_report arg log_path paranoid =
  with_replayed ~paranoid arg log_path (fun session ->
      print_endline (Core.Session.deliverables session);
      0)

let cmd_repl arg save_dir paranoid readonly =
  (* A readonly repl never journals, so pairing it with --save would
     promise durability it cannot deliver. *)
  if readonly && save_dir <> None then begin
    prerr_endline "--readonly cannot be combined with --save";
    Stdlib.exit 2
  end;
  (* Fail fast if another process (a server, another repl) owns the save
     directory: a second writer would interleave journal appends. *)
  let flock =
    match save_dir with
    | None -> None
    | Some dir -> (
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        match
          Server.Locks.lock_file (Filename.concat dir Server.Locks.lock_file_name)
        with
        | Ok l -> Some l
        | Error m ->
            prerr_endline ("cannot save to locked repository: " ^ m);
            Stdlib.exit 2)
  in
  with_session ~paranoid arg (fun session ->
      (* With --save the session is persisted up front and then journalled
         incrementally: one durable record per accepted operation, so a
         crash loses at most the operation in flight. *)
      let repo =
        Option.map
          (fun dir ->
            let repo = Repository.Store.open_dir dir in
            Repository.Store.save_session repo session;
            repo)
          save_dir
      in
      let rec loop state =
        if state.Designer.Engine.finished then state
        else begin
          print_string "swsd> ";
          match In_channel.input_line stdin with
          | None -> state
          | Some line ->
              if String.trim line = "" then loop state
              else begin
                (* Mirror the server's [!readonly] refusal: parse first so
                   syntax errors read the same either way, then classify. *)
                let state, feedback =
                  match Designer.Command.parse line with
                  | cmd when readonly && Designer.Command.mutates cmd ->
                      ( state,
                        [
                          Designer.Feedback.error
                            "readonly session; restart without --readonly to \
                             modify";
                        ] )
                  | cmd -> Designer.Engine.exec state cmd
                  | exception Designer.Command.Bad_command m ->
                      (state, [ Designer.Feedback.error m ])
                in
                List.iter
                  (fun f -> print_endline (Designer.Feedback.to_string f))
                  feedback;
                loop state
              end
        end
      in
      let state = Designer.Engine.start ?repo session in
      print_endline
        ("shrink wrap schema designer; 'help' lists commands"
        ^ if readonly then " (readonly)" else "");
      let final = loop state in
      (* a full save on exit snapshots the final state (not the initial
         session) and regenerates the derived artifacts *)
      (match repo with
      | Some repo ->
          Repository.Store.save_session repo final.Designer.Engine.session
      | None -> ());
      Option.iter Server.Locks.unlock_file flock;
      0)

let cmd_diff arg_a arg_b =
  with_schema arg_a (fun a ->
      with_schema arg_b (fun b ->
          let steps, _reached, converged = Core.Diff.infer ~original:a ~target:b in
          print_endline (Repository.Store.log_to_string steps);
          if not converged then begin
            prerr_endline
              "// warning: the inferred log does not fully converge on the target";
            1
          end
          else 0))

let cmd_explain arg concept_id =
  with_session arg (fun session ->
      match Core.Decompose.find (Core.Session.concepts session) concept_id with
      | None ->
          prerr_endline ("no concept schema named " ^ concept_id);
          1
      | Some c ->
          print_endline
            (Core.Explain.concept_text (Core.Session.workspace session) c);
          0)

let cmd_affinity arg_a arg_b =
  with_schema arg_a (fun a ->
      with_schema arg_b (fun b ->
          Printf.printf "semantic affinity: %.3f\n"
            (Core.Affinity.semantic_affinity a b);
          Printf.printf "type overlap: %.3f (%d shared object types)\n"
            (Core.Affinity.type_overlap a b)
            (List.length (Core.Affinity.shared_types a b));
          print_endline "shared types by structural similarity:";
          List.iter
            (fun (n, sim) -> Printf.printf "  %-24s %.3f\n" n sim)
            (Core.Affinity.shared_type_detail a b);
          0))

let cmd_library dir sketch =
  let lib, failures = Repository.Library.load dir in
  List.iter
    (fun (path, reason) ->
      Printf.eprintf "warning: skipped %s (%s)\n" path reason)
    failures;
  (match sketch with
  | None -> print_endline (Repository.Library.catalog lib)
  | Some sketch_arg -> (
      match load_schema sketch_arg with
      | Error m ->
          prerr_endline m;
          exit 1
      | Ok sketch ->
          print_endline "best shrink wrap schemas for the sketch:";
          Repository.Library.search lib ~sketch
          |> List.iter (fun (e, a) ->
                 Printf.printf "  %-20s affinity %.3f (%s)\n"
                   e.Repository.Library.e_schema.Odl.Types.s_name a e.e_path)));
  0

let cmd_graph arg concept =
  match concept with
  | None -> with_schema arg (fun schema ->
      print_string (Core.Dot.schema_graph schema);
      0)
  | Some concept_id ->
      with_session arg (fun session ->
          match
            Core.Decompose.find (Core.Session.concepts session) concept_id
          with
          | None ->
              prerr_endline ("no concept schema named " ^ concept_id);
              1
          | Some c ->
              print_string
                (Core.Dot.concept_graph (Core.Session.workspace session) c);
              0)

let cmd_data_check arg data_path =
  with_schema arg (fun schema ->
      match Objects.Serial.of_string schema (read_file data_path) with
      | exception Objects.Serial.Bad_store m ->
          prerr_endline m;
          1
      | store -> (
          match Objects.Check.check store with
          | [] ->
              Printf.printf "%d object(s), consistent\n" (Objects.Store.count store);
              0
          | ps ->
              List.iter (fun p -> print_endline (Objects.Check.to_string p)) ps;
              1))

let cmd_migrate_data arg log_path data_path =
  with_replayed arg log_path (fun session ->
      let original = Core.Session.original session in
      let custom = Core.Session.custom_schema session in
      match Objects.Serial.of_string original (read_file data_path) with
      | exception Objects.Serial.Bad_store m ->
          prerr_endline m;
          1
      | store ->
          let migrated, report = Objects.Migrate.migrate store ~custom in
          List.iter
            (fun d -> Printf.eprintf "dropped: %s\n" (Objects.Migrate.to_string d))
            report;
          List.iter
            (fun p ->
              Printf.eprintf "needs completion: %s\n" (Objects.Check.to_string p))
            (Objects.Migrate.residual_problems migrated);
          print_endline (Objects.Serial.to_string migrated);
          0)

let cmd_oql arg data_path query_text =
  with_schema arg (fun schema ->
      match Objects.Serial.of_string schema (read_file data_path) with
      | exception Objects.Serial.Bad_store m ->
          prerr_endline m;
          1
      | store -> (
          match Objects.Query.query store query_text with
          | exception Objects.Query.Bad_query m ->
              prerr_endline m;
              1
          | [] ->
              print_endline "no matches";
              0
          | objs ->
              List.iter
                (fun (o : Objects.Store.obj) ->
                  Printf.printf "@%d : %s\n" o.o_id o.o_type)
                objs;
              0))

let cmd_quality arg =
  with_schema arg (fun schema ->
      print_string (Core.Quality.report schema);
      0)

let cmd_er arg =
  with_schema arg (fun schema ->
      print_string (Core.Er.to_string (Core.Er.of_schema schema));
      0)

let cmd_sql arg =
  with_schema arg (fun schema ->
      print_string (Core.Relational.ddl schema);
      0)

(* --- variants: the multi-variant repository ----------------------------- *)

let with_variant_repo dir f =
  match Repository.Repo.open_dir dir with
  | Ok repo -> f repo
  | Error m ->
      prerr_endline m;
      (* a present-but-unreadable repository is corruption (exit 2); a
         directory that simply is not a repository is an ordinary error *)
      if Sys.file_exists (Filename.concat dir "shrinkwrap.odl") then 2 else 1

(* Exit code for a variant that would not open: damage is 2, like any
   corrupt repository; an unknown name is an ordinary error. *)
let variant_error e =
  prerr_endline (Repository.Repo.open_error_to_string e);
  match e with Repository.Repo.No_variant _ -> 1 | Repository.Repo.Load _ -> 2

let cmd_variants_init dir schema_arg =
  with_schema schema_arg (fun schema ->
      match Repository.Repo.init dir schema with
      | Ok _ ->
          Printf.printf "initialized %s for schema %s\n" dir schema.s_name;
          0
      | Error m ->
          prerr_endline m;
          1)

let cmd_variants_list dir =
  with_variant_repo dir (fun repo ->
      print_endline (Repository.Repo.catalog repo);
      0)

let cmd_variants_new dir name =
  with_variant_repo dir (fun repo ->
      match Repository.Repo.create_variant repo name with
      | Ok _ ->
          Printf.printf "variant %s created\n" name;
          0
      | Error m ->
          prerr_endline m;
          1)

let cmd_variants_apply dir name log_path =
  with_variant_repo dir (fun repo ->
      match Repository.Repo.open_variant repo name with
      | Error e -> variant_error e
      | Ok session -> (
          match load_log log_path with
          | Error m ->
              prerr_endline m;
              1
          | Ok steps -> (
              let applied =
                List.fold_left
                  (fun acc (kind, op) ->
                    Result.bind acc (fun s ->
                        Result.map fst (Core.Session.apply s ~kind op)))
                  (Ok session) steps
              in
              match applied with
              | Error e ->
                  prerr_endline (Core.Apply.error_to_string e);
                  1
              | Ok session -> (
                  match Repository.Repo.save_variant repo name session with
                  | Ok () ->
                      Printf.printf "%d operation(s) applied to %s\n"
                        (List.length steps) name;
                      0
                  | Error m ->
                      prerr_endline m;
                      1))))

let cmd_variants_interop dir a b =
  with_variant_repo dir (fun repo ->
      match Repository.Repo.interop_report repo a b with
      | Ok text ->
          print_string text;
          0
      | Error e -> variant_error e)

let cmd_variants_affinity dir =
  with_variant_repo dir (fun repo ->
      print_string (Repository.Repo.affinity_matrix repo);
      0)

(* Check (and optionally salvage) a repository directory: a plain session
   store, or a multi-variant repository (every variant is checked).
   Exit codes: 0 clean, 1 damage found and salvaged (--salvage repaired
   everything it found), 2 corrupt (damage present and not repaired, or
   the directory is not a repository at all).  Multi-variant repositories
   aggregate by max, so one unsalvageable variant makes the whole run 2. *)
let cmd_fsck dir salvage =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    prerr_endline (dir ^ ": not a directory");
    2
  end
  else begin
    let fsck_store label sdir =
      let report =
        Repository.Store.fsck ~salvage (Repository.Store.open_dir sdir)
      in
      List.iter
        (fun m -> Printf.printf "%s: %s\n" label m)
        report.Repository.Store.fsck_issues;
      match report with
      | { fsck_issues = []; _ } -> 0
      | { fsck_session = None; _ } -> 2
      | { fsck_session = Some _; _ } ->
          if salvage then begin
            Printf.printf "%s: salvaged\n" label;
            1
          end
          else 2
    in
    let variants_dir = Filename.concat dir "variants" in
    let code =
      if Sys.file_exists variants_dir && Sys.is_directory variants_dir then begin
        (* multi-variant repository: the top-level schema plus each variant *)
        let top =
          match Repository.Repo.open_dir dir with
          | Ok _ -> 0
          | Error m ->
              print_endline ("shrinkwrap.odl: " ^ m);
              2
        in
        Sys.readdir variants_dir |> Array.to_list |> List.sort compare
        |> List.filter (fun n ->
               (* dot-prefixed entries are hidden staging directories (a
                  crashed @branch): not variants, never counted as damage *)
               n <> "" && n.[0] <> '.'
               &&
               try Sys.is_directory (Filename.concat variants_dir n)
               with Sys_error _ -> false)
        |> List.fold_left
             (fun acc n ->
               max acc
                 (fsck_store ("variants/" ^ n) (Filename.concat variants_dir n)))
             top
      end
      else fsck_store "." dir
    in
    if code = 0 then print_endline (dir ^ ": clean");
    code
  end

(* Serve a multi-variant repository to concurrent designer sessions over
   a Unix domain socket or TCP.  SIGTERM/SIGINT drain gracefully:
   in-flight requests finish, dirty sessions are snapshotted, locks
   released.  With --shards N (N >= 2) this process becomes a
   variant-hashing router over a supervised pool of worker processes
   (each a plain single-process `swsd serve` on its own Unix socket).

   Replication (DESIGN.md §14): --replicate accepts follower streams;
   --follow ADDR serves this directory as a read-only replica of the
   leader at ADDR; --replicas N supervises a leader plus N followers and
   promotes a follower if the leader dies; --promote-from DIR recovers a
   dead leader's directory into this one and fences the old era before
   serving (what the supervisor passes to the follower it promotes). *)
let cmd_serve dir socket listen shards shard_id shard_total no_obs
    no_group_commit flush_linger_ms flush_max_batch fsync_delay_ms replicate
    repl_ring follow replicas promote_from era =
  let listen_spec =
    match listen with
    | Some s -> Server.Protocol.parse_address s
    | None ->
        Result.Ok
          (Server.Protocol.Unix_path
             (match socket with
             | Some p -> p
             | None -> Filename.concat dir "swsd.sock"))
  in
  match listen_spec with
  | Error m ->
      prerr_endline m;
      1
  | Ok listen when
      shards >= 2
      && (replicate || follow <> None || replicas > 0 || promote_from <> None)
    ->
      ignore listen;
      prerr_endline
        "serve: --shards cannot be combined with \
         --replicate/--follow/--replicas/--promote-from (shard stores are \
         replicated individually)";
      1
  | Ok listen -> (
      let obs = if no_obs then Obs.noop else Obs.create () in
      let fsync_delay = Float.max 0.0 fsync_delay_ms /. 1000.0 in
      (* benchmarks model a slower disk by stretching fsync; everything
         else (writes, renames) keeps real speed *)
      let io =
        if fsync_delay <= 0.0 then None
        else
          let module Io = Repository.Io in
          Some
            {
              Io.unix with
              Io.fsync =
                (fun path ->
                  Io.unix.Io.fsync path;
                  Thread.delay fsync_delay);
            }
      in
      let serve_flags =
        (if no_obs then [ "--no-obs" ] else [])
        @ (if no_group_commit then [ "--no-group-commit" ] else [])
        @ [
            "--flush-linger-ms";
            string_of_float flush_linger_ms;
            "--flush-max-batch";
            string_of_int flush_max_batch;
          ]
        @ (if repl_ring <> 1024 then
             [ "--repl-ring"; string_of_int repl_ring ]
           else [])
        @
        if fsync_delay_ms > 0.0 then
          [ "--fsync-delay-ms"; string_of_float fsync_delay_ms ]
        else []
      in
      if shards >= 2 then begin
        (* router mode: fork+exec one worker per shard, then route.  Each
           worker learns the pool size so [@query all] fan-out partitions:
           a worker answers only for the variants the router's hash sends
           its way. *)
        let pool =
          Server.Shard_pool.create ~worker_args:serve_flags
            ~exe:Sys.executable_name ~dir ~shards ()
        in
        match Server.Shard_pool.start pool with
        | Error m ->
            Server.Shard_pool.stop pool;
            prerr_endline m;
            1
        | Ok () -> (
            match Server.Router.create ~obs ~listen pool with
            | Error m ->
                Server.Shard_pool.stop pool;
                prerr_endline m;
                1
            | Ok router ->
                Server.Router.install_signal_handlers router;
                Printf.printf "serving %s on %s (%d shards)\n%!" dir
                  (Server.Protocol.address_to_string
                     (Server.Router.listen_address router))
                  shards;
                Server.Router.run router;
                Server.Shard_pool.stop pool;
                print_endline "server stopped";
                0)
      end
      else if replicas > 0 then begin
        (* replication pool: one leader plus N follower processes under a
           supervisor that respawns dead followers and promotes a follower
           over the leader's socket when the leader dies *)
        let pool =
          Server.Replication.Pool.create ~worker_args:serve_flags
            ~exe:Sys.executable_name ~dir ~replicas ()
        in
        match Server.Replication.Pool.start pool with
        | Error m ->
            Server.Replication.Pool.stop pool;
            prerr_endline m;
            1
        | Ok () ->
            let stopping = Atomic.make false in
            let handle _ = Atomic.set stopping true in
            (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
             with Invalid_argument _ | Sys_error _ -> ());
            (try Sys.set_signal Sys.sigint (Sys.Signal_handle handle)
             with Invalid_argument _ | Sys_error _ -> ());
            Printf.printf "serving %s on %s (leader, %d replicas)\n" dir
              (Server.Replication.Pool.leader_socket pool)
              replicas;
            for k = 0 to replicas - 1 do
              Printf.printf "replica %d (readonly) on %s\n%!" k
                (Server.Replication.Pool.follower_socket pool k)
            done;
            while not (Atomic.get stopping) do
              Thread.delay 0.2
            done;
            Server.Replication.Pool.stop pool;
            print_endline "pool stopped";
            0
      end
      else begin
        let instance_notes =
          (match shard_id with
          | Some k -> [ ("instance.shard", string_of_int k) ]
          | None -> [])
          @ [ ("instance.listen", Server.Protocol.address_to_string listen) ]
        in
        let shard_span =
          match (shard_id, shard_total) with
          | Some k, Some n when n >= 2 -> Some (k, n)
          | _ -> None
        in
        let base_config extra_notes =
          {
            Server.Service.default_config with
            group_commit = not no_group_commit;
            flush_linger = Float.max 0.0 flush_linger_ms /. 1000.0;
            flush_max_batch = max 1 flush_max_batch;
            instance_notes = extra_notes @ instance_notes;
            shard_span;
          }
        in
        let serve_one ~banner make_server cleanup =
          match make_server () with
          | Result.Error m ->
              prerr_endline m;
              1
          | Result.Ok server ->
              Server.install_signal_handlers server;
              Printf.printf "%s on %s\n%!" banner
                (Server.Protocol.address_to_string
                   (Server.listen_address server));
              let failures = Server.run server in
              cleanup ();
              List.iter
                (fun (variant, reason) ->
                  Printf.eprintf
                    "warning: %s: snapshot failed (%s); journal remains \
                     authoritative\n"
                    variant reason)
                failures;
              print_endline "server stopped";
              0
        in
        match follow with
        | Some leader_spec -> (
            (* follower: replicate the leader's repository into [dir] and
               serve it read-only; reconnects and re-bootstraps on its own *)
            match Server.Protocol.parse_address leader_spec with
            | Error m ->
                prerr_endline m;
                1
            | Ok leader -> (
                let config =
                  base_config [ ("instance.role", "follower") ]
                in
                match
                  Server.Replication.Follower.create ~config ?io ~obs ~leader
                    dir
                with
                | Error m ->
                    prerr_endline m;
                    1
                | Ok follower ->
                    serve_one
                      ~banner:
                        (Printf.sprintf "following %s into %s" leader_spec dir)
                      (fun () ->
                        Server.of_service ~listen
                          (Server.Replication.Follower.service follower))
                      (fun () -> Server.Replication.Follower.stop follower)))
        | None -> (
            (* leader (or plain single server).  --promote-from recovers a
               dead leader's directory into this one first and fences the
               old era; the era the store carries afterwards is what this
               writer must present at session load. *)
            let promoted =
              match promote_from with
              | None -> Result.Ok 0
              | Some src -> (
                  match Server.Replication.promote ~src ~dst:dir () with
                  | Error m -> Result.Error m
                  | Ok (new_era, outcomes) ->
                      List.iter
                        (fun (v, r) ->
                          match r with
                          | Ok () ->
                              Printf.printf "promoted variant %s from %s\n" v
                                src
                          | Error m ->
                              Printf.eprintf
                                "warning: variant %s not recovered during \
                                 promotion: %s\n"
                                v m)
                        outcomes;
                      Printf.printf "promotion complete: era %d\n%!" new_era;
                      Result.Ok new_era)
            in
            match promoted with
            | Error m ->
                prerr_endline ("promotion failed: " ^ m);
                1
            | Ok promoted_era ->
                (* A fresh writer adopts the era its store already carries:
                   fencing exists to refuse a *still-running* stale writer
                   (whose config keeps the era it started with), not the
                   next clean restart of this directory — without adoption
                   a once-promoted repository would refuse `swsd serve`
                   until the operator guessed --era by hand. *)
                let stored_era =
                  match Repository.Repo.open_dir ?io dir with
                  | Error _ | (exception _) -> 0
                  | Ok repo ->
                      List.fold_left
                        (fun acc v ->
                          match
                            Repository.Store.stored_era
                              (Repository.Repo.variant_store repo v)
                          with
                          | e -> max acc e
                          | exception _ -> acc)
                        0
                        (Repository.Repo.variant_names repo)
                in
                if stored_era > max era promoted_era then
                  Printf.printf "adopting write era %d from the store\n%!"
                    stored_era;
                let era = max (max era promoted_era) stored_era in
                let replicate = replicate || promote_from <> None in
                let config =
                  base_config
                    ((if replicate then [ ("instance.role", "leader") ]
                      else [])
                    @ if era > 0 then [ ("instance.era", string_of_int era) ]
                      else [])
                in
                let config = { config with era } in
                serve_one
                  ~banner:(Printf.sprintf "serving %s" dir)
                  (fun () ->
                    Server.create ~config ~obs ?io ~replicate
                      ~repl_ring ~listen dir)
                  (fun () -> ()))
      end)

(* Ask a running server for its observability snapshot.  The transcript is
   plain line protocol: consume the greeting, send @stats, strip the body
   prefix from the reply.  Exit 1 when the server refuses (e.g. --no-obs)
   or cannot be reached. *)
let cmd_stats socket json =
  (* ride out a server that is still binding (startup race) *)
  match Server.Client.connect ~retry_for:2.0 socket with
  | Error m ->
      prerr_endline m;
      1
  | Ok c ->
      let finish code =
        Server.Client.close c;
        code
      in
      let strip line =
        let p = Server.Protocol.body_prefix in
        let pl = String.length p in
        if String.length line >= pl && String.sub line 0 pl = p then
          String.sub line pl (String.length line - pl)
        else line
      in
      (match Server.Client.read_response c with
      | None ->
          prerr_endline (socket ^ ": server hung up before greeting");
          finish 1
      | Some _greeting -> (
          match
            Server.Client.request c (if json then "@stats json" else "@stats")
          with
          | None ->
              prerr_endline (socket ^ ": server hung up");
              finish 1
          | Some lines ->
              let body, status =
                match List.rev lines with
                | status :: rev_body -> (List.rev rev_body, status)
                | [] -> ([], "!err empty response")
              in
              List.iter (fun l -> print_endline (strip l)) body;
              if String.length status >= 3 && String.sub status 0 3 = "!ok" then
                finish 0
              else begin
                prerr_endline status;
                finish 1
              end))

(* Ask a running server (leader, follower, or router front end) one
   [@query] and print the answer body.  [--variant V] attaches readonly
   first; [all]-scoped and [explain] queries need no attachment.  Exit 0
   on [!ok], 1 otherwise. *)
let cmd_query addr variant expr =
  match Server.Client.connect ~retry_for:2.0 addr with
  | Error m ->
      prerr_endline m;
      1
  | Ok c ->
      let finish code =
        Server.Client.close c;
        code
      in
      let strip line =
        let p = Server.Protocol.body_prefix in
        let pl = String.length p in
        if String.length line >= pl && String.sub line 0 pl = p then
          String.sub line pl (String.length line - pl)
        else line
      in
      let run line =
        match Server.Client.request c line with
        | None -> Result.Error (addr ^ ": server hung up")
        | Some lines -> (
            match List.rev lines with
            | status :: rev_body
              when String.length status >= 3 && String.sub status 0 3 = "!ok"
              ->
                Result.Ok (List.rev_map strip rev_body)
            | status :: rev_body ->
                Result.Error
                  (String.concat "\n"
                     (List.rev_map strip rev_body @ [ status ]))
            | [] -> Result.Error "empty response")
      in
      (match Server.Client.read_response c with
      | None ->
          prerr_endline (addr ^ ": server hung up before greeting");
          finish 1
      | Some _greeting -> (
          let opened =
            match variant with
            | None -> Result.Ok []
            | Some v -> run ("@open " ^ v ^ " readonly")
          in
          match Result.bind opened (fun _ -> run ("@query " ^ expr)) with
          | Error m ->
              prerr_endline m;
              finish 1
          | Ok body ->
              List.iter print_endline body;
              finish 0))

(* Send one request line to a running server and print the reply body;
   exit 0 on [!ok], 1 otherwise.  `swsd branch` and `swsd merge` are thin
   shells over this — the server does the work, through its lock manager
   and commit pipeline, so concurrent designers are undisturbed. *)
let cmd_request addr line =
  match Server.Client.connect ~retry_for:2.0 addr with
  | Error m ->
      prerr_endline m;
      1
  | Ok c ->
      let finish code =
        Server.Client.close c;
        code
      in
      let strip line =
        let p = Server.Protocol.body_prefix in
        let pl = String.length p in
        if String.length line >= pl && String.sub line 0 pl = p then
          String.sub line pl (String.length line - pl)
        else line
      in
      (match Server.Client.read_response c with
      | None ->
          prerr_endline (addr ^ ": server hung up before greeting");
          finish 1
      | Some _greeting -> (
          match Server.Client.request c line with
          | None ->
              prerr_endline (addr ^ ": server hung up");
              finish 1
          | Some lines -> (
              match List.rev lines with
              | status :: rev_body
                when String.length status >= 3 && String.sub status 0 3 = "!ok"
                ->
                  List.iter print_endline (List.rev_map strip rev_body);
                  finish 0
              | status :: rev_body ->
                  List.iter prerr_endline (List.rev_map strip rev_body);
                  prerr_endline status;
                  finish 1
              | [] ->
                  prerr_endline "empty response";
                  finish 1)))

let cmd_branch addr parent child at =
  cmd_request addr
    ("@branch " ^ parent ^ " " ^ child
    ^ match at with None -> "" | Some n -> " @at " ^ string_of_int n)

let cmd_merge addr source dest dry_run =
  cmd_request addr
    ("@merge " ^ source ^ " into " ^ dest
    ^ if dry_run then " --dry-run" else "")

let cmd_examples () =
  List.iter
    (fun (name, f) -> print_endline (name ^ ": " ^ Core.Render.summary (f ())))
    builtins;
  0

(* --- cmdliner wiring ----------------------------------------------------- *)

open Cmdliner

let schema_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SCHEMA" ~doc:"ODL file or built-in schema name.")

let concept_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CONCEPT" ~doc:"Concept schema id, e.g. ww:Course.")

let log_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"LOG" ~doc:"Operation log file (@ww/@gh/@ah/@ih lines).")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save" ] ~docv:"DIR" ~doc:"Repository directory to save on exit.")

let paranoid_arg =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Cross-check the indexed engine against the naive reference \
           checker (full-scan oracle); abort with exit code 2 on any \
           divergence.")

let term_of f = Term.(const (fun x -> Stdlib.exit (f x)) $ schema_arg)

let decompose_cmd =
  Cmd.v
    (Cmd.info "decompose" ~doc:"List the concept schemas of a shrink wrap schema")
    (term_of cmd_decompose)

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"Render one concept schema")
    Term.(const (fun s c -> Stdlib.exit (cmd_show s c)) $ schema_arg $ concept_arg)

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Run the consistency checks on a schema")
    Term.(
      const (fun s p -> Stdlib.exit (cmd_check s p)) $ schema_arg $ paranoid_arg)

let custom_cmd =
  Cmd.v
    (Cmd.info "custom" ~doc:"Replay an operation log and print the custom schema")
    Term.(
      const (fun s l p -> Stdlib.exit (cmd_custom s l p))
      $ schema_arg $ log_arg $ paranoid_arg)

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"Replay an operation log and print all deliverables")
    Term.(
      const (fun s l p -> Stdlib.exit (cmd_report s l p))
      $ schema_arg $ log_arg $ paranoid_arg)

let readonly_arg =
  Arg.(
    value & flag
    & info [ "readonly" ]
        ~doc:
          "Browse without write access: mutating commands (apply, undo, \
           redo, alias, data, source, save) are refused.  Cannot be \
           combined with $(b,--save).")

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive shrink wrap schema designer")
    Term.(
      const (fun s d p r -> Stdlib.exit (cmd_repl s d p r))
      $ schema_arg $ save_arg $ paranoid_arg $ readonly_arg)

let schema_b_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"TARGET" ~doc:"Target schema (ODL file or built-in name).")

let sketch_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sketch" ] ~docv:"SCHEMA"
        ~doc:"Application sketch to rank the library against.")

let library_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Directory of .odl schema files.")

let affinity_cmd =
  Cmd.v
    (Cmd.info "affinity" ~doc:"Measure the semantic affinity of two schemas")
    Term.(
      const (fun a b -> Stdlib.exit (cmd_affinity a b)) $ schema_arg $ schema_b_arg)

let library_cmd =
  Cmd.v
    (Cmd.info "library"
       ~doc:"Browse a schema library, or rank it against an application sketch")
    Term.(
      const (fun d s -> Stdlib.exit (cmd_library d s)) $ library_dir_arg $ sketch_arg)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Infer the operation log transforming one schema into another")
    Term.(const (fun a b -> Stdlib.exit (cmd_diff a b)) $ schema_arg $ schema_b_arg)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain" ~doc:"Explain a concept schema in prose")
    Term.(const (fun s c -> Stdlib.exit (cmd_explain s c)) $ schema_arg $ concept_arg)

let optional_concept_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"CONCEPT" ~doc:"Optional concept schema id.")

let graph_cmd =
  Cmd.v
    (Cmd.info "graph" ~doc:"Emit a schema or concept schema as Graphviz DOT")
    Term.(
      const (fun s c -> Stdlib.exit (cmd_graph s c))
      $ schema_arg $ optional_concept_arg)

let repo_dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Variant repository directory.")

let variants_cmd =
  let init =
    Cmd.v
      (Cmd.info "init" ~doc:"Initialize a variant repository for a schema")
      Term.(
        const (fun d s -> Stdlib.exit (cmd_variants_init d s))
        $ repo_dir_arg
        $ Arg.(
            required
            & pos 1 (some string) None
            & info [] ~docv:"SCHEMA" ~doc:"ODL file or built-in name."))
  in
  let list =
    Cmd.v
      (Cmd.info "list" ~doc:"Catalog the variants")
      Term.(const (fun d -> Stdlib.exit (cmd_variants_list d)) $ repo_dir_arg)
  in
  let new_ =
    Cmd.v
      (Cmd.info "new" ~doc:"Create a fresh variant")
      Term.(
        const (fun d n -> Stdlib.exit (cmd_variants_new d n))
        $ repo_dir_arg
        $ Arg.(
            required
            & pos 1 (some string) None
            & info [] ~docv:"NAME" ~doc:"Variant name."))
  in
  let apply =
    Cmd.v
      (Cmd.info "apply" ~doc:"Apply an operation log to a variant")
      Term.(
        const (fun d n l -> Stdlib.exit (cmd_variants_apply d n l))
        $ repo_dir_arg
        $ Arg.(
            required
            & pos 1 (some string) None
            & info [] ~docv:"NAME" ~doc:"Variant name.")
        $ Arg.(
            required
            & pos 2 (some string) None
            & info [] ~docv:"LOG" ~doc:"Operation log file."))
  in
  let interop =
    Cmd.v
      (Cmd.info "interop"
         ~doc:"Interoperation report between two variants (common objects)")
      Term.(
        const (fun d a b -> Stdlib.exit (cmd_variants_interop d a b))
        $ repo_dir_arg
        $ Arg.(
            required
            & pos 1 (some string) None
            & info [] ~docv:"A" ~doc:"First variant.")
        $ Arg.(
            required
            & pos 2 (some string) None
            & info [] ~docv:"B" ~doc:"Second variant."))
  in
  let affinity =
    Cmd.v
      (Cmd.info "affinity" ~doc:"Pairwise affinity matrix of the variants")
      Term.(const (fun d -> Stdlib.exit (cmd_variants_affinity d)) $ repo_dir_arg)
  in
  Cmd.group
    (Cmd.info "variants"
       ~doc:"Manage a multi-variant repository (one shrink wrap schema, many              derived designs)")
    [ init; list; new_; apply; interop; affinity ]

let sql_cmd =
  Cmd.v
    (Cmd.info "sql" ~doc:"Translate a schema to relational DDL")
    (term_of cmd_sql)

let er_cmd =
  Cmd.v
    (Cmd.info "er" ~doc:"Translate a schema to an entity-relationship model")
    (term_of cmd_er)

let data_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"DATA" ~doc:"Object store file.")

let data2_arg =
  Arg.(
    required
    & pos 2 (some string) None
    & info [] ~docv:"DATA" ~doc:"Object store file.")

let oql_cmd =
  Cmd.v
    (Cmd.info "oql" ~doc:"Run an OQL query over an object store")
    Term.(
      const (fun s d q -> Stdlib.exit (cmd_oql s d q))
      $ schema_arg $ data_arg
      $ Arg.(
          required
          & pos 2 (some string) None
          & info [] ~docv:"QUERY" ~doc:"e.g. 'select Person where name = \"A\"'"))

let query_cmd =
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Query a running server's repository: interface names, \
          attributes, ISA/part-of reachability, wagon-wheel \
          neighborhoods, version diffs — served lock-free from \
          incrementally maintained views (see LANGUAGE.md)")
    Term.(
      const (fun a v e -> Stdlib.exit (cmd_query a v e))
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"ADDR"
              ~doc:"The server's Unix socket path, or HOST:PORT for TCP.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "variant" ] ~docv:"V"
              ~doc:
                "Attach (readonly) to this variant first.  Required unless \
                 the query is $(b,all)-scoped or $(b,explain).")
      $ Arg.(
          required
          & pos 1 (some string) None
          & info [] ~docv:"QUERY"
              ~doc:
                "e.g. 'name \"Course*\"', 'all attr units', 'isa Person \
                 down', 'wheel Course', 'diff 4'"))

let data_check_cmd =
  Cmd.v
    (Cmd.info "data-check" ~doc:"Validate an object store against a schema")
    Term.(
      const (fun s d -> Stdlib.exit (cmd_data_check s d)) $ schema_arg $ data_arg)

let migrate_data_cmd =
  Cmd.v
    (Cmd.info "migrate-data"
       ~doc:"Migrate an object store through a customization log")
    Term.(
      const (fun s l d -> Stdlib.exit (cmd_migrate_data s l d))
      $ schema_arg $ log_arg $ data2_arg)

let quality_cmd =
  Cmd.v
    (Cmd.info "quality" ~doc:"Assess how well-crafted a schema is")
    (term_of cmd_quality)

let salvage_arg =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "Rewrite a damaged repository from its best recoverable state \
           (longest replayable journal prefix) and sweep stale temporary \
           files.")

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check the integrity of a repository directory (a session store or \
          a variants repository) and optionally salvage it.  Exit status: 0 \
          the repository is clean; 1 damage was found and --salvage repaired \
          it; 2 the repository is corrupt (damage present and not repaired, \
          or the path is not a repository).  Multi-variant repositories \
          report the worst variant's status.")
    Term.(
      const (fun d s -> Stdlib.exit (cmd_fsck d s)) $ repo_dir_arg $ salvage_arg)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a variant repository to concurrent designer sessions over a \
          Unix domain socket or TCP (line protocol; graceful drain on \
          SIGTERM).  With --shards N, route variants across a supervised \
          pool of worker processes by consistent hashing.  With --replicate \
          / --follow / --replicas, ship acked journal records to read-only \
          follower processes and promote one if the leader dies.")
    Term.(
      const (fun d s l sh sid st n ngc lm mb fd rep rr fo nrep pf er ->
          Stdlib.exit
            (cmd_serve d s l sh sid st n ngc lm mb fd rep rr fo nrep pf er))
      $ repo_dir_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "socket" ] ~docv:"PATH"
              ~doc:"Unix socket path (default: DIR/swsd.sock).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "listen" ] ~docv:"ADDR"
              ~doc:
                "Listen address: a Unix socket path, or HOST:PORT for TCP \
                 (port 0 picks a free port).  Overrides $(b,--socket).")
      $ Arg.(
          value & opt int 1
          & info [ "shards" ] ~docv:"N"
              ~doc:
                "Run N worker processes and route variants onto them by \
                 consistent hashing (rendezvous over the variant name); \
                 this process becomes the accept/router front end and \
                 restarts workers that crash.  Default 1: serve in-process.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "shard-id" ] ~docv:"K"
              ~doc:
                "Identity note reported in @stats (set by the router when \
                 it spawns workers; rarely useful by hand).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "shard-total" ] ~docv:"N"
              ~doc:
                "Total shard count of the pool this worker belongs to (set \
                 by the router alongside --shard-id): restricts @query all \
                 to the variants this shard owns under the router's \
                 consistent hash, so fan-out answers merge without \
                 duplicates.")
      $ Arg.(
          value & flag
          & info [ "no-obs" ]
              ~doc:
                "Disable observability: every metric, histogram, and trace \
                 hook becomes a no-op, and @stats reports an error.")
      $ Arg.(
          value & flag
          & info [ "no-group-commit" ]
              ~doc:
                "Fsync each journal record individually instead of batching \
                 concurrent writers' records into one fsync (the group-commit \
                 default).")
      $ Arg.(
          value & opt float 2.0
          & info [ "flush-linger-ms" ] ~docv:"MS"
              ~doc:
                "Group commit: maximum time a journal record waits for \
                 company before its batch is flushed anyway (default 2ms; \
                 idle lanes flush immediately).")
      $ Arg.(
          value & opt int 64
          & info [ "flush-max-batch" ] ~docv:"N"
              ~doc:
                "Group commit: flush a batch as soon as it holds this many \
                 records (default 64).")
      $ Arg.(
          value & opt float 0.0
          & info [ "fsync-delay-ms" ] ~docv:"MS"
              ~doc:
                "Stretch every fsync by this many milliseconds (benchmarks: \
                 model a slower disk; default 0).")
      $ Arg.(
          value & flag
          & info [ "replicate" ]
              ~doc:
                "Accept replication followers: a connection that sends \
                 $(b,@follow) receives the acked journal stream (bootstrap \
                 snapshots, then every durable record in stamp order) \
                 instead of the line protocol.")
      $ Arg.(
          value & opt int 1024
          & info [ "repl-ring" ] ~docv:"N"
              ~doc:
                "Replication hub event-ring size (default 1024, clamped to \
                 [2, 1048576]): a follower that falls more than N events \
                 behind is re-seeded from a fresh snapshot instead of \
                 stalling the leader.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "follow" ] ~docv:"ADDR"
              ~doc:
                "Serve this directory as a read-only replica of the leader \
                 at ADDR (a Unix socket path or HOST:PORT).  The repository \
                 is bootstrapped from the leader's snapshot stream, then \
                 kept current by replaying its acked journal records; \
                 clients attach with $(b,@open <variant> readonly) and see \
                 bounded staleness (a follower's #version stamp never \
                 exceeds the leader's).  Reconnects with jittered backoff \
                 and re-bootstraps after any gap.")
      $ Arg.(
          value & opt int 0
          & info [ "replicas" ] ~docv:"N"
              ~doc:
                "Supervise a leader plus N follower processes: the leader \
                 serves DIR on $(i,DIR)/leader.sock with --replicate, each \
                 follower serves $(i,DIR)/replica-$(i,k) on \
                 $(i,DIR)/replica-$(i,k).sock.  Dead followers respawn in \
                 place; a dead leader is replaced by promoting the first \
                 live follower onto the leader's socket (--promote-from), \
                 fencing the old generation.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "promote-from" ] ~docv:"DIR"
              ~doc:
                "Before serving, recover the (dead) leader repository at \
                 DIR into this directory — every acked write is in its \
                 journal; a torn tail is unacknowledged — and fence both \
                 stores at a fresh era so the old leader, if it ever \
                 restarts without promotion, is refused at session load.  \
                 Implies --replicate.")
      $ Arg.(
          value & opt int 0
          & info [ "era" ] ~docv:"N"
              ~doc:
                "This writer's replication era (default 0; raised \
                 automatically by --promote-from).  A variant whose store \
                 manifest carries a higher era was taken over by a newer \
                 writer and is refused at session load."))

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Fetch the observability snapshot (request counters, latency \
          histogram quantiles, lock contention, breaker state, recent \
          traces) from a running server")
    Term.(
      const (fun s j -> Stdlib.exit (cmd_stats s j))
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"ADDR"
              ~doc:"The server's Unix socket path, or HOST:PORT for TCP.")
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit the snapshot as one JSON object."))

let addr_pos0_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ADDR"
        ~doc:"The server's Unix socket path, or HOST:PORT for TCP.")

let branch_cmd =
  Cmd.v
    (Cmd.info "branch"
       ~doc:
         "Fork a variant on a running server: $(b,swsd branch ADDR V W) \
          copies variant V to a new variant W with a lineage record \
          (parent, fork stamp), crash-safely, without locking V — \
          designers attached to V are undisturbed")
    Term.(
      const (fun a p c at -> Stdlib.exit (cmd_branch a p c at))
      $ addr_pos0_arg
      $ Arg.(
          required
          & pos 1 (some string) None
          & info [] ~docv:"PARENT" ~doc:"The variant to branch from.")
      $ Arg.(
          required
          & pos 2 (some string) None
          & info [] ~docv:"CHILD" ~doc:"The new variant's name.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "at" ] ~docv:"N"
              ~doc:
                "Branch after the parent's first N committed operations \
                 instead of its tip."))

let merge_cmd =
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Merge one variant's work into another on a running server: \
          $(b,swsd merge ADDR W V) rebases the operations W made since \
          its fork onto V's current state.  Each operation replays \
          through the permission matrix and the consistency checker; \
          conflicts are reported in the impact report, never silently \
          applied.  $(b,--dry-run) classifies without changing anything")
    Term.(
      const (fun a s d n -> Stdlib.exit (cmd_merge a s d n))
      $ addr_pos0_arg
      $ Arg.(
          required
          & pos 1 (some string) None
          & info [] ~docv:"SOURCE" ~doc:"The branch to merge from.")
      $ Arg.(
          required
          & pos 2 (some string) None
          & info [] ~docv:"DEST" ~doc:"The variant to merge into.")
      $ Arg.(
          value & flag
          & info [ "dry-run" ]
              ~doc:"Classify and report only; mutate nothing."))

let examples_cmd =
  Cmd.v
    (Cmd.info "examples" ~doc:"List the built-in example schemas")
    Term.(const (fun () -> Stdlib.exit (cmd_examples ())) $ const ())

let () =
  let info =
    Cmd.info "swsd" ~version:"1.0.0"
      ~doc:"Shrink wrap schema-based database design with concept schemas"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            decompose_cmd; show_cmd; check_cmd; custom_cmd; report_cmd; repl_cmd;
            diff_cmd; explain_cmd; affinity_cmd; library_cmd; graph_cmd;
            sql_cmd; er_cmd; quality_cmd; data_check_cmd; migrate_data_cmd;
            oql_cmd;
            variants_cmd; serve_cmd; query_cmd; stats_cmd; fsck_cmd;
            branch_cmd; merge_cmd; examples_cmd;
          ]))
