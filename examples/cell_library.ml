(* Two fabs customize one VLSI cell-library shrink wrap schema, then
   interoperate through their common objects (paper section 5).

   Fab A builds digital-only gate arrays: the analog devices go, and macro
   blocks are added.  Fab B keeps analog but tracks devices flat (no
   transistor geometry subclassing).  The interchange schema — the
   constructs both kept — is what the two fabs can exchange designs over.

   Run with:  dune exec examples/cell_library.exe
*)

let apply session kind text =
  match Core.Session.apply session ~kind (Core.Op_parser.parse text) with
  | Ok (session, _) ->
      Printf.printf "  %s\n" text;
      session
  | Error e -> failwith (text ^ ": " ^ Core.Apply.error_to_string e)

let ww = Core.Concept.Wagon_wheel
let gh = Core.Concept.Generalization
let ah = Core.Concept.Aggregation

let () =
  let shrink_wrap = Schemas.Vlsi.v () in
  Printf.printf "shrink wrap schema: %s\n" (Core.Render.summary shrink_wrap);

  print_endline "\n--- the chip parts explosion";
  let chip_ah =
    Option.get
      (Core.Decompose.find (Core.Decompose.decompose shrink_wrap) "ah:Chip")
  in
  print_string (Core.Render.aggregation shrink_wrap chip_ah);

  print_endline "\n--- fab A: digital-only gate arrays";
  let a = Result.get_ok (Core.Session.create shrink_wrap) in
  let a = apply a ww "delete_type_definition(Capacitor)" in
  let a = apply a ww "delete_type_definition(Resistor)" in
  let a = apply a ww "add_type_definition(Macro_Block)" in
  let a = apply a ww "add_attribute(Macro_Block, string, 32, macro_name)" in
  let a = apply a gh "add_supertype(Macro_Block, Design_Object)" in
  let a =
    apply a ah
      "add_part_of_relationship(Functional_Block, set<Macro_Block>, macros, macro_of)"
  in

  print_endline "\n--- fab B: flat device tracking, analog kept";
  let b = Result.get_ok (Core.Session.create shrink_wrap) in
  (* geometry lives on the device itself, not on a transistor subclass *)
  let b = apply b gh "modify_attribute(Transistor, width_um, Device)" in
  let b = apply b gh "modify_attribute(Transistor, length_um, Device)" in
  let b = apply b ww "delete_type_definition(Transistor)" in
  let b = apply b ww "delete_attribute(Chip, pin_count)" in

  print_endline "\n--- interoperation through common objects";
  let report =
    Core.Interop.analyse ~original:shrink_wrap
      ~custom_a:(Core.Session.custom_schema ~name:"FabA" a)
      ~custom_b:(Core.Session.custom_schema ~name:"FabB" b)
  in
  print_string (Core.Interop.report_text ~name_a:"FabA" ~name_b:"FabB" report);

  print_endline "\n--- the interchange schema's cell view";
  let interchange = report.r_interchange in
  print_endline
    (Odl.Printer.interface_to_string
       (Odl.Schema.get_interface interchange "Cell_Version"));
  Printf.printf "\ninterchange inventory: %s\n" (Core.Render.summary interchange)
