(* University redesign: the paper's two worked customizations in one
   session, driven through the interactive designer engine so the feedback
   (info, cautions, impact) is visible.

   1. Figure 8: students also work in departments, so the works_in_a
      relationship end moves from Employee up to Person — an operation that
      belongs to the generalization hierarchy concept schema.
   2. Correspondence-only university: offerings have no room and no time
      slot, so the course offering wagon wheel is simplified.

   Run with:  dune exec examples/university_redesign.exe
*)

let run state line =
  Printf.printf "\nswsd> %s\n" line;
  let state, feedback = Designer.Engine.exec_line state line in
  List.iter (fun f -> print_endline (Designer.Feedback.to_string f)) feedback;
  state

let () =
  let session =
    match Core.Session.create (Schemas.University.v ()) with
    | Ok s -> s
    | Error _ -> failwith "unreachable: bundled schema is valid"
  in
  let state = Designer.Engine.start session in

  print_endline "--- part 1: move works_in_a from Employee to Person (Figure 8)";
  let state = run state "odl Department" in
  (* wrong concept schema type: the designer refuses and points at the right
     one *)
  let state = run state "focus ww:Department" in
  let state =
    run state "apply modify_relationship_target_type(Department, has, Employee, Person)"
  in
  (* the generalization hierarchy is where ISA-related changes live *)
  let state = run state "focus gh:Person" in
  let state =
    run state "apply modify_relationship_target_type(Department, has, Employee, Person)"
  in
  let state = run state "odl Department" in
  let state = run state "odl Person" in

  print_endline "\n--- part 2: correspondence-only university";
  let state = run state "focus ww:Course_Offering" in
  let state = run state "preview delete_type_definition(Time_Slot)" in
  let state = run state "apply delete_type_definition(Time_Slot)" in
  let state = run state "apply delete_attribute(Course_Offering, room)" in
  let state = run state "show ww:Course_Offering" in

  print_endline "\n--- part 3: a mistake, undone";
  let state = run state "apply delete_type_definition(Syllabus)" in
  let state = run state "undo" in
  let state = run state "odl Syllabus" in

  print_endline "\n--- deliverables";
  let state = run state "summary" in
  let state = run state "check" in
  let state = run state "impact" in
  let state = run state "mapping" in
  let _state = run state "log" in
  ()
