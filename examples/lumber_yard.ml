(* Customizing an aggregation hierarchy (paper Figure 5).

   The lumber yard's house parts explosion is tailored for a builder of
   prefabricated homes: skylights become roof parts, plumbing is dropped
   (subcontracted), the studs of a framing are re-ordered as a list, and
   the whole decking moves up to be a structure-level part.

   Run with:  dune exec examples/lumber_yard.exe
*)

let apply session kind text =
  match Core.Session.apply session ~kind (Core.Op_parser.parse text) with
  | Ok (session, events) ->
      Printf.printf "applied: %s\n" text;
      List.iter (fun e -> print_endline ("  " ^ Core.Change.event_to_string e)) events;
      session
  | Error e -> failwith (text ^ ": " ^ Core.Apply.error_to_string e)

let show_house session =
  let c =
    Option.get
      (Core.Decompose.find (Core.Session.current_concepts session) "ah:House")
  in
  print_string (Core.Render.aggregation (Core.Session.workspace session) c)

let () =
  let session =
    match Core.Session.create (Schemas.Lumber.v ()) with
    | Ok s -> s
    | Error _ -> failwith "unreachable: bundled schema is valid"
  in

  print_endline "--- the shrink wrap parts explosion (Figure 5)";
  show_house session;

  print_endline "\n--- customization in the aggregation hierarchy";
  let ah = Core.Concept.Aggregation in
  let ww = Core.Concept.Wagon_wheel in

  (* skylights: a new supply item under the roof *)
  let session = apply session ah "add_type_definition(Skylight)" in
  let session = apply session ww "add_attribute(Skylight, string, 16, sku)" in
  let session = apply session ww "add_attribute(Skylight, float, none, unit_cost)" in
  let session =
    apply session ah
      "add_part_of_relationship(Roof, set<Skylight>, skylights, skylight_of)"
  in

  (* plumbing is subcontracted: drop the fixtures entirely *)
  let session = apply session ww "delete_type_definition(Plumbing_Fixture)" in

  (* studs are cut to order: their sequence matters, so list not set *)
  let session =
    apply session ah "modify_part_of_cardinality(Framing, studs, set, list)"
  in

  (* any supply item can top a roof, not just shingle bundles: the part end
     moves up the Supply_Item generalization hierarchy (semantic stability
     keeps it on that ISA line) *)
  let session =
    apply session ah
      "modify_part_of_target_type(Roof, shingles, Shingle_Bundle, Supply_Item)"
  in

  print_endline "\n--- the customized parts explosion";
  show_house session;

  print_endline "\n--- consistency and mapping";
  print_endline (Core.Session.consistency_report_text session);
  let p, md, mv, d, a = Core.Mapping.summary (Core.Session.mapping session) in
  Printf.printf "mapping: preserved=%d modified=%d moved=%d deleted=%d added=%d\n"
    p md mv d a
