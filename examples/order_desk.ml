(* The business-objects schema with live data: populate an order desk,
   query it with the OQL subset, then watch a customization act on the
   data.

   Run with:  dune exec examples/order_desk.exe
*)

open Objects

let ok = function Ok v -> v | Error m -> failwith m

let show_matches store label query =
  Printf.printf "\n%s\n  %s\n" label query;
  match Query.query store query with
  | [] -> print_endline "  (no matches)"
  | objs ->
      List.iter
        (fun (o : Store.obj) ->
          let tag =
            match Store.get_attr store o.o_id "legal_name" with
            | Some v -> " " ^ Value.to_string v
            | None -> (
                match Store.get_attr store o.o_id "order_number" with
                | Some v -> " " ^ Value.to_string v
                | None -> "")
          in
          Printf.printf "  @%d : %s%s\n" o.o_id o.o_type tag)
        objs

let () =
  let schema = Schemas.Commerce.v () in
  let s = Store.create schema in

  (* parties *)
  let s, acme = ok (Store.new_object s "Customer") in
  let s = ok (Store.set_attr s acme "party_code" (Value.V_string "ACME")) in
  let s = ok (Store.set_attr s acme "legal_name" (Value.V_string "Acme Corp")) in
  let s = ok (Store.set_attr s acme "credit_limit" (Value.V_float 50_000.)) in
  let s, globex = ok (Store.new_object s "Customer") in
  let s = ok (Store.set_attr s globex "party_code" (Value.V_string "GLBX")) in
  let s = ok (Store.set_attr s globex "legal_name" (Value.V_string "Globex")) in
  let s = ok (Store.set_attr s globex "credit_limit" (Value.V_float 1_000.)) in
  let s, supl = ok (Store.new_object s "Supplier") in
  let s = ok (Store.set_attr s supl "party_code" (Value.V_string "SUPL")) in
  let s = ok (Store.set_attr s supl "legal_name" (Value.V_string "Supplies R Us")) in

  (* catalog: a product and its seasonal catalog items (instance-of) *)
  let s, widget = ok (Store.new_object s "Product") in
  let s = ok (Store.set_attr s widget "product_code" (Value.V_string "WID-1")) in
  let s = ok (Store.link s widget "supplied_by" supl) in
  let s, item_s = ok (Store.new_object s "Catalog_Item") in
  let s = ok (Store.set_attr s item_s "catalog_season" (Value.V_string "summer")) in
  let s = ok (Store.set_attr s item_s "list_price" (Value.V_float 9.5)) in
  let s = ok (Store.link s item_s "item_of" widget) in

  (* an order with two lines and a shipment (part-of) *)
  let s, order = ok (Store.new_object s "Sales_Order") in
  let s = ok (Store.set_attr s order "order_number" (Value.V_string "SO-100")) in
  let s = ok (Store.link s order "placed_by" acme) in
  let s, line1 = ok (Store.new_object s "Order_Line") in
  let s = ok (Store.set_attr s line1 "line_number" (Value.V_int 1)) in
  let s = ok (Store.set_attr s line1 "quantity" (Value.V_int 12)) in
  let s = ok (Store.link s line1 "line_of" order) in
  let s = ok (Store.link s line1 "for_item" item_s) in
  let s, line2 = ok (Store.new_object s "Order_Line") in
  let s = ok (Store.set_attr s line2 "line_number" (Value.V_int 2)) in
  let s = ok (Store.set_attr s line2 "quantity" (Value.V_int 3)) in
  let s = ok (Store.link s line2 "line_of" order) in
  let s = ok (Store.link s line2 "for_item" item_s) in
  let s, shipment = ok (Store.new_object s "Shipment") in
  let s = ok (Store.set_attr s shipment "tracking_number" (Value.V_string "TRK7")) in
  let s = ok (Store.link s shipment "shipment_of" order) in
  let s, carrier = ok (Store.new_object s "Carrier") in
  let s = ok (Store.set_attr s carrier "scac_code" (Value.V_string "FDXG")) in
  let s = ok (Store.link s shipment "carried_by" carrier) in

  Printf.printf "populated: %d objects; consistent: %b\n" (Store.count s)
    (Check.is_consistent s);

  (* queries *)
  show_matches s "all parties (the Party extent spans the hierarchy):"
    "select Party";
  show_matches s "creditworthy customers:"
    "select Customer where credit_limit >= 10000";
  show_matches s "orders with more than one line:"
    "select Sales_Order where lines.count > 1";
  show_matches s "orders by customers named like \"Acme\":"
    "select Sales_Order where placed_by.legal_name like \"Acme\"";
  show_matches s "order lines for summer catalog items of WID-1:"
    "select Order_Line where for_item.item_of.product_code = \"WID-1\" and \
     for_item.catalog_season = \"summer\"";

  (* customization: this desk does not track carriers *)
  print_endline "\n--- customizing: carriers are out of scope";
  let session = Result.get_ok (Core.Session.create schema) in
  let session =
    match
      Core.Session.apply session ~kind:Core.Concept.Wagon_wheel
        (Core.Op_parser.parse "delete_type_definition(Carrier)")
    with
    | Ok (x, _) -> x
    | Error e -> failwith (Core.Apply.error_to_string e)
  in
  let custom = Core.Session.custom_schema session in
  let migrated, report = Migrate.migrate s ~custom in
  List.iter (fun d -> print_endline ("  " ^ Migrate.to_string d)) report;
  Printf.printf "after migration: %d objects; consistent: %b\n"
    (Store.count migrated)
    (Check.is_consistent migrated);
  show_matches migrated "shipments still queryable:"
    "select Shipment where tracking_number = \"TRK7\""
