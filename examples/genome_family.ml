(* The ACEDB schema family (paper section 4).

   ACEDB, built for the nematode genome project, was manually reused for the
   Arabidopsis database (AAtDB) and the Saccharomyces database (SacchDB).
   This example performs that reuse with the machinery of the paper: ACEDB
   is the shrink wrap schema, and an AAtDB-like custom schema is derived by
   applying modification operations — then compared against the bundled
   AAtDB to show that the same object types come out.

   Run with:  dune exec examples/genome_family.exe
*)

module Session = Core.Session

let apply session kind text =
  match Session.apply session ~kind (Core.Op_parser.parse text) with
  | Ok (session, _) ->
      Printf.printf "  %s\n" text;
      session
  | Error e ->
      failwith (text ^ ": " ^ Core.Apply.error_to_string e)

let names s =
  List.map (fun i -> i.Odl.Types.i_name) s.Odl.Types.s_interfaces
  |> List.sort compare

let () =
  let acedb = Schemas.Genome.acedb_v () in
  let aatdb = Schemas.Genome.aatdb_v () in
  let sacchdb = Schemas.Genome.sacchdb_v () in

  print_endline "--- the three physical-mapping databases";
  List.iter
    (fun s -> print_endline ("  " ^ Core.Render.summary s))
    [ acedb; aatdb; sacchdb ];

  print_endline "\n--- object types shared by all three (paper Figures 9-11)";
  print_endline ("  " ^ String.concat ", " (Schemas.Genome.common_object_types ()));

  (* Derive AAtDB from the ACEDB shrink wrap schema. *)
  print_endline "\n--- deriving AAtDB from the ACEDB shrink wrap schema";
  let session =
    match Session.create acedb with
    | Ok s -> s
    | Error _ -> failwith "unreachable: ACEDB is valid"
  in
  (* the worm-specific genetic crosses are not meaningful for a plant *)
  let session =
    apply session Core.Concept.Wagon_wheel "delete_type_definition(Genetic_Cross)"
  in
  (* strain is the animal term; the plant community speaks of phenotypes.
     Name equivalence forbids renaming, so the strain machinery is deleted
     and the phenotype machinery added — the extreme point the paper's
     completeness argument (section 3.5) allows. *)
  let session =
    apply session Core.Concept.Wagon_wheel "delete_type_definition(Strain)"
  in
  let session =
    apply session Core.Concept.Wagon_wheel "add_type_definition(Phenotype)"
  in
  let session =
    List.fold_left
      (fun s text -> apply s Core.Concept.Wagon_wheel text)
      session
      [
        "add_extent_name(Phenotype, carriers)";
        "add_attribute(Phenotype, string, 30, carrier_name)";
        "add_attribute(Phenotype, string, none, description)";
        "add_key_list(Phenotype, (carrier_name))";
        "add_relationship(Phenotype, set<Allele>, carries, found_in)";
        "add_relationship(Phenotype, Laboratory, maintained_by, stock)";
      ]
  in
  (* the plant database records ecotypes *)
  let session =
    List.fold_left
      (fun s text -> apply s Core.Concept.Wagon_wheel text)
      session
      [
        "add_type_definition(Ecotype)";
        "add_extent_name(Ecotype, ecotypes)";
        "add_attribute(Ecotype, string, 30, ecotype_name)";
        "add_attribute(Ecotype, string, none, collection_site)";
        "add_key_list(Ecotype, (ecotype_name))";
        "add_relationship(Ecotype, set<Phenotype>, typical_phenotypes, ecotypes)";
      ]
  in

  let custom = Session.custom_schema ~name:"AAtDB_derived" session in
  print_endline "\n--- derived custom schema vs the reference AAtDB";
  Printf.printf "  derived : %s\n" (String.concat ", " (names custom));
  Printf.printf "  bundled : %s\n" (String.concat ", " (names aatdb));
  Printf.printf "  object types match: %b\n" (names custom = names aatdb);

  print_endline "\n--- mapping (how much of ACEDB survived)";
  let p, md, mv, d, a = Core.Mapping.summary (Session.mapping session) in
  Printf.printf
    "  preserved=%d modified=%d moved=%d deleted=%d added-by-designer=%d\n" p md
    mv d a;

  (* systems built from the same shrink wrap schema interoperate through
     their common objects *)
  print_endline "\n--- interoperation: constructs shared with the shrink wrap schema";
  let m = Session.mapping session in
  let preserved =
    List.filter
      (fun e -> e.Core.Mapping.m_status = Core.Mapping.Preserved)
      m.Core.Mapping.entries
  in
  Printf.printf "  %d constructs are semantically identical in ACEDB and the \
                 derived AAtDB\n"
    (List.length preserved)
