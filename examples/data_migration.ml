(* Customization meets data: migrating an object store through a schema
   customization.

   The registrar's database already holds objects when the correspondence-
   only customization (the tutorial's scenario) is decided.  The migration
   carries the data onto the custom schema, drops exactly what no longer
   fits — and reports every drop.

   Run with:  dune exec examples/data_migration.exe
*)

open Objects

let ok = function Ok v -> v | Error m -> failwith m

let () =
  let university = Schemas.University.v () in

  (* 1. populate a store under the shrink wrap schema *)
  let s = Store.create university in
  let s, dept = ok (Store.new_object s "Department") in
  let s = ok (Store.set_attr s dept "dept_name" (Value.V_string "Mathematics")) in
  let s, prof = ok (Store.new_object s "Faculty") in
  let s = ok (Store.set_attr s prof "name" (Value.V_string "G. Peano")) in
  let s = ok (Store.set_attr s prof "ssn" (Value.V_string "111-00-1111")) in
  let s = ok (Store.link s prof "works_in_a" dept) in
  let s, course = ok (Store.new_object s "Course") in
  let s = ok (Store.set_attr s course "subject" (Value.V_string "MATH")) in
  let s = ok (Store.set_attr s course "number" (Value.V_int 201)) in
  let s, offering = ok (Store.new_object s "Course_Offering") in
  let s = ok (Store.set_attr s offering "room" (Value.V_string "H-12")) in
  let s = ok (Store.set_attr s offering "term" (Value.V_string "F1996")) in
  let s = ok (Store.link s offering "offering_of" course) in
  let s = ok (Store.link s offering "taught_by" prof) in
  let s, slot = ok (Store.new_object s "Time_Slot") in
  let s = ok (Store.set_attr s slot "day" (Value.V_string "Tuesday")) in
  let s = ok (Store.link s offering "offered_during" slot) in
  let s, student = ok (Store.new_object s "Doctoral") in
  let s = ok (Store.set_attr s student "name" (Value.V_string "A. Church")) in
  let s = ok (Store.set_attr s student "ssn" (Value.V_string "222-00-2222")) in
  let s = ok (Store.set_attr s student "gpa" (Value.V_float 4.0)) in
  let s = ok (Store.link s student "takes" offering) in

  print_endline "--- the store under the shrink wrap schema";
  print_endline (Store.dump s);
  Printf.printf "consistent: %b\n" (Check.is_consistent s);

  (* 2. the correspondence-only customization *)
  print_endline "\n--- customizing the schema";
  let session = Result.get_ok (Core.Session.create university) in
  let session =
    List.fold_left
      (fun sess (kind, text) ->
        Printf.printf "  %s\n" text;
        match Core.Session.apply sess ~kind (Core.Op_parser.parse text) with
        | Ok (sess, _) -> sess
        | Error e -> failwith (Core.Apply.error_to_string e))
      session
      [
        (Core.Concept.Wagon_wheel, "delete_type_definition(Time_Slot)");
        (Core.Concept.Wagon_wheel, "delete_attribute(Course_Offering, room)");
        (Core.Concept.Generalization, "modify_attribute(Student, gpa, Person)");
      ]
  in
  let custom = Core.Session.custom_schema ~name:"Correspondence_University" session in

  (* 3. migrate the data *)
  print_endline "\n--- migrating the data";
  let migrated, report = Migrate.migrate s ~custom in
  List.iter (fun d -> print_endline ("  dropped: " ^ Migrate.to_string d)) report;
  Printf.printf "residual completion work: %d item(s)\n"
    (List.length (Migrate.residual_problems migrated));

  print_endline "\n--- the store under the custom schema";
  print_endline (Store.dump migrated);
  Printf.printf "consistent: %b\n" (Check.is_consistent migrated);

  (* the moved gpa is still on the student, now inherited from Person *)
  (match Store.get_attr migrated student "gpa" with
  | Some v ->
      Printf.printf "A. Church's gpa survived the move: %s\n" (Value.to_string v)
  | None -> failwith "gpa should have survived")
