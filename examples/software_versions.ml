(* Customizing an instance-of hierarchy (paper Figure 6).

   The EMSL software-version chain — application, version, compiled
   version, installed version — is extended for a site that also tracks
   patch levels below installations, and that audits installations in
   order (list rather than set).

   Run with:  dune exec examples/software_versions.exe
*)

let apply session kind text =
  match Core.Session.apply session ~kind (Core.Op_parser.parse text) with
  | Ok (session, events) ->
      Printf.printf "applied: %s\n" text;
      List.iter (fun e -> print_endline ("  " ^ Core.Change.event_to_string e)) events;
      session
  | Error e -> failwith (text ^ ": " ^ Core.Apply.error_to_string e)

let show_chain session =
  let c =
    Option.get
      (Core.Decompose.find
         (Core.Session.current_concepts session)
         "ih:Application")
  in
  print_string (Core.Render.instance_chain (Core.Session.workspace session) c)

let () =
  let session =
    match Core.Session.create (Schemas.Emsl.v ()) with
    | Ok s -> s
    | Error _ -> failwith "unreachable: bundled schema is valid"
  in

  print_endline "--- the shrink wrap instance-of chain (Figure 6)";
  show_chain session;

  let ih = Core.Concept.Instance_chain in
  let ww = Core.Concept.Wagon_wheel in

  print_endline "\n--- extend the chain with patch levels";
  let session = apply session ih "add_type_definition(Patch_Level)" in
  let session =
    apply session ww "add_attribute(Patch_Level, string, 16, patch_id)"
  in
  let session =
    apply session ww "add_attribute(Patch_Level, string, none, applied_date)"
  in
  let session =
    apply session ih
      "add_instance_of_relationship(Installed_Version, set<Patch_Level>, patches, patch_of)"
  in

  print_endline "\n--- audit installations in order";
  let session =
    apply session ih
      "modify_instance_of_cardinality(Compiled_Version, installations, set, list)"
  in
  let session =
    apply session ih
      "modify_instance_of_order_by(Compiled_Version, installations, (), (install_date))"
  in

  print_endline "\n--- the customized chain";
  show_chain session;

  print_endline "\n--- resulting ODL for the installed version";
  let custom = Core.Session.custom_schema session in
  print_endline
    (Odl.Printer.interface_to_string
       (Odl.Schema.get_interface custom "Installed_Version"));
  print_endline
    (Odl.Printer.interface_to_string
       (Odl.Schema.get_interface custom "Patch_Level"));

  print_endline "--- impact report";
  print_endline (Core.Session.impact_report session)
