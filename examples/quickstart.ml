(* Quickstart: shrink wrap schema-based design in a dozen API calls.

   We load the university shrink wrap schema, look at its concept schemas,
   then perform the paper's Figure 7 elaboration: a course schedule object
   type that aggregates course offerings.  Run with

     dune exec examples/quickstart.exe
*)

let section title =
  Printf.printf "\n=== %s ===\n" title

let apply session kind text =
  let op = Core.Op_parser.parse text in
  match Core.Session.apply session ~kind op with
  | Ok (session, events) ->
      Printf.printf "applied: %s\n" text;
      List.iter (fun e -> print_endline ("  " ^ Core.Change.event_to_string e)) events;
      session
  | Error e ->
      Printf.printf "rejected: %s\n  %s\n" text (Core.Apply.error_to_string e);
      session

let () =
  (* 1. load the shrink wrap schema and open a design session *)
  let shrink_wrap = Schemas.University.v () in
  let session =
    match Core.Session.create shrink_wrap with
    | Ok s -> s
    | Error _ -> failwith "the bundled schema is valid; unreachable"
  in

  section "the shrink wrap schema";
  print_endline (Core.Render.summary shrink_wrap);

  (* 2. the decomposition: one wagon wheel per object type, plus the
        generalization / aggregation / instance-of hierarchies *)
  section "concept schemas";
  Core.Session.concepts session
  |> List.iter (fun (c : Core.Concept.t) ->
         Printf.printf "%-26s %s\n" c.c_id (Core.Concept.kind_name c.c_kind));

  (* 3. the course offering point of view (paper Figure 3) *)
  section "course offering wagon wheel (Figure 3)";
  let ww =
    Option.get (Core.Decompose.find (Core.Session.concepts session) "ww:Course_Offering")
  in
  print_string (Core.Render.wagon_wheel (Core.Session.workspace session) ww);

  (* 4. elaborate: a schedule consists of course offerings (Figure 7) *)
  section "elaboration (Figure 7)";
  let session = apply session Core.Concept.Wagon_wheel "add_type_definition(Schedule)" in
  let session =
    apply session Core.Concept.Wagon_wheel
      "add_attribute(Schedule, string, 10, term_label)"
  in
  let session =
    apply session Core.Concept.Aggregation
      "add_part_of_relationship(Schedule, set<Course_Offering>, slots, scheduled_in)"
  in

  section "elaborated course offering wagon wheel";
  let concepts = Core.Session.current_concepts session in
  let ww = Option.get (Core.Decompose.find concepts "ww:Course_Offering") in
  print_string (Core.Render.wagon_wheel (Core.Session.workspace session) ww);

  (* 5. deliverables: custom schema, impact, consistency, mapping *)
  section "custom schema (excerpt)";
  let custom = Core.Session.custom_schema session in
  print_endline
    (Odl.Printer.interface_to_string (Odl.Schema.get_interface custom "Schedule"));

  section "deliverables";
  print_endline (Core.Session.deliverables session)
