(* The full design-by-reuse loop, with the extension features:

   1. a schema library is built on disk and catalogued by structural
      descriptors;
   2. a designer sketches their application (a handful of object types) and
      asks the library which shrink wrap schema to start from (affinity
      search);
   3. the chosen shrink wrap schema is customized; local names bridge the
      terminology gap instead of delete+add (the paper's name-equivalence
      relaxation);
   4. a colleague's hand-edited schema is retrofitted: Diff.infer recovers
      the operation log that turns the shrink wrap schema into it.

   Run with:  dune exec examples/schema_library.exe
*)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  (* 1. build the library *)
  let dir = Filename.temp_file "swsd_library" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let lib, _ = Repository.Library.load dir in
  let lib = Repository.Library.store lib (Schemas.University.v ()) in
  let lib = Repository.Library.store lib (Schemas.Lumber.v ()) in
  let lib = Repository.Library.store lib (Schemas.Emsl.v ()) in
  let lib = Repository.Library.store lib (Schemas.Genome.acedb_v ()) in

  section "the schema library catalog";
  print_endline (Repository.Library.catalog lib);

  (* 2. sketch the application: a researcher mapping plant genomes *)
  section "application sketch and library search";
  let sketch =
    Odl.Parser.parse_schema
      {|schema Plant_Mapping_Sketch {
          interface Locus {
            attribute string<20> locus_name;
            attribute float position;
          };
          interface Clone { attribute string<20> clone_name; };
          interface Paper { attribute string title; attribute int year; };
        };|}
  in
  Repository.Library.search lib ~sketch
  |> List.iter (fun (e, a) ->
         Printf.printf "  %-12s affinity %.3f\n"
           e.Repository.Library.e_schema.Odl.Types.s_name a);

  let shrink_wrap = Schemas.Genome.acedb_v () in
  Printf.printf "starting from: %s\n" shrink_wrap.s_name;

  (* 3. customize with a local name for the terminology gap *)
  section "customization with local names";
  let session = Result.get_ok (Core.Session.create shrink_wrap) in
  let session =
    match
      Core.Session.add_alias session
        (Core.Aliases.For_interface "Strain") "Phenotype"
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  let session =
    match
      Core.Session.apply session ~kind:Core.Concept.Wagon_wheel
        (Core.Op_parser.parse "delete_type_definition(Genetic_Cross)")
    with
    | Ok (s, _) -> s
    | Error e -> failwith (Core.Apply.error_to_string e)
  in
  print_endline (Core.Session.aliases_report session);
  let p, md, mv, d, a = Core.Mapping.summary (Core.Session.mapping session) in
  Printf.printf
    "mapping: preserved=%d modified=%d moved=%d deleted=%d added=%d\n" p md mv d a;

  (* 4. retrofit a manual customization *)
  section "retrofitting a hand-edited schema (Diff.infer)";
  let handmade = Schemas.Genome.sacchdb_v () in
  let steps, _, converged = Core.Diff.infer ~original:shrink_wrap ~target:handmade in
  Printf.printf "inferred %d operations, converged: %b\n" (List.length steps)
    converged;
  print_endline (Repository.Store.log_to_string steps);

  (* clean up the temporary library *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir
