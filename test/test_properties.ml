(* Property-based tests of the system invariants (DESIGN.md section 4). *)

let count = 200

let prop name ?(count = count) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* 0. the synthetic generator only emits valid schemas *)
let synth_always_valid =
  prop "synthetic schemas are valid"
    QCheck2.Gen.(oneof [ Gen.synth_params; Gen.synth_params_hierarchical ])
    (fun p -> Odl.Validate.errors (Schemas.Synth.generate p) = [])

(* 1. union of all wagon wheels = the original schema *)
let union_reconstructs =
  prop "union of wagon wheels reconstructs" Gen.any_synth_schema (fun s ->
      Core.Recompose.equal_content s (Core.Recompose.reconstruct s))

(* 1b. the union invariant survives customization: after every accepted
   operation the workspace still reconstructs from its wagon wheels *)
let union_reconstructs_under_ops =
  prop "union of wagon wheels reconstructs after ops" Gen.schema_and_ops
    (fun (schema, steps) ->
      let rec go ws = function
        | [] -> true
        | (kind, op) :: rest -> (
            match Core.Apply.apply ~original:schema ~kind ws op with
            | Error _ -> go ws rest
            | Ok (ws', _) ->
                Core.Recompose.equal_content ws' (Core.Recompose.reconstruct ws')
                && go ws' rest)
      in
      go schema steps)

(* 1c. the same invariant on the named seed schemas, before and after an
   accepted operation *)
let union_reconstructs_seeds =
  Alcotest.test_case "union reconstructs on seed schemas" `Quick (fun () ->
      List.iter
        (fun (name, s) ->
          let reconstructs s =
            Core.Recompose.equal_content s (Core.Recompose.reconstruct s)
          in
          Alcotest.(check bool) (name ^ " reconstructs") true (reconstructs s);
          let focus = (List.hd s.Odl.Types.s_interfaces).Odl.Types.i_name in
          let op =
            Core.Modop.Add_attribute (focus, Odl.Types.D_int, None, "union_probe")
          in
          match Core.Apply.apply ~original:s ~kind:Core.Concept.Wagon_wheel s op with
          | Error e -> Alcotest.fail (name ^ ": " ^ Core.Apply.error_to_string e)
          | Ok (s', _) ->
              Alcotest.(check bool)
                (name ^ " reconstructs after op")
                true (reconstructs s'))
        [
          ("university", Schemas.University.v ());
          ("emsl", Schemas.Emsl.v ());
          ("synth-10", Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:10));
          ("synth-25", Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:25));
          ("synth-50", Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:50));
        ])

(* 2. parser . printer = identity *)
let print_parse_roundtrip =
  prop "print/parse round trip" Gen.synth_schema (fun s ->
      Core.Recompose.equal_content s
        (Odl.Parser.parse_schema (Odl.Printer.schema_to_string s)))

(* 3. op parser . op printer = identity, over arbitrary operations *)
let op_roundtrip =
  prop "operation print/parse round trip" ~count:500 Gen.modop (fun op ->
      Core.Modop.equal op (Core.Op_parser.parse (Core.Op_printer.to_string op)))

(* 4 + 6. accepted operations preserve validity, and acceptance implies
   permission *)
let apply_preserves_validity =
  let gen =
    QCheck2.Gen.(
      let* schema = Gen.synth_schema in
      let* ops = list_size (int_range 1 8) (Gen.plausible_op schema) in
      let* kinds =
        list_size (return (List.length ops))
          (oneofl
             Core.Concept.
               [ Wagon_wheel; Generalization; Aggregation; Instance_chain ])
      in
      return (schema, List.combine kinds ops))
  in
  prop "accepted operations preserve validity" ~count:300 gen
    (fun (schema, steps) ->
      let rec go workspace = function
        | [] -> true
        | (kind, op) :: rest -> (
            match Core.Apply.apply ~original:schema ~kind workspace op with
            | Error _ -> go workspace rest
            | Ok (workspace', _) ->
                Result.is_ok (Core.Permission.allowed kind op)
                && Odl.Validate.errors workspace' = []
                && go workspace' rest)
      in
      go schema steps)

(* 5. accepted moves respect semantic stability in the original schema *)
let moves_respect_stability =
  let u = Schemas.University.v () in
  let gen =
    QCheck2.Gen.(
      let* a = oneofl (Odl.Schema.interface_names u) in
      let* b = oneofl (Odl.Schema.interface_names u) in
      let* attr =
        oneofl
          (List.concat_map
             (fun i ->
               List.map
                 (fun x -> (i.Odl.Types.i_name, x.Odl.Types.attr_name))
                 i.Odl.Types.i_attrs)
             u.s_interfaces)
      in
      return (a, b, attr))
  in
  prop "accepted moves stay on the ISA line" gen (fun (_, b, (owner, attr)) ->
      let op = Core.Modop.Modify_attribute (owner, attr, b) in
      match
        Core.Apply.apply ~original:u ~kind:Core.Concept.Generalization u op
      with
      | Error _ -> true
      | Ok _ -> Odl.Schema.same_isa_line u owner b)

(* 7a. the mapping classifies every shrink-wrap construct exactly once *)
let mapping_total =
  let gen =
    QCheck2.Gen.(
      let* schema = Gen.synth_schema in
      let* ops = list_size (int_range 0 6) (Gen.plausible_op schema) in
      return (schema, ops))
  in
  prop "mapping is total over the shrink wrap schema" gen (fun (schema, ops) ->
      match Core.Session.create schema with
      | Error _ -> false
      | Ok session ->
          let session =
            List.fold_left
              (fun s op ->
                List.fold_left
                  (fun s kind ->
                    match Core.Session.apply s ~kind op with
                    | Ok (s', _) -> s'
                    | Error _ -> s)
                  s
                  Core.Concept.
                    [ Wagon_wheel; Generalization; Aggregation; Instance_chain ])
              session ops
          in
          let m = Core.Session.mapping session in
          let a, r, o = Odl.Schema.count_constructs schema in
          List.length m.entries
          = List.length schema.s_interfaces + a + r + o)

(* 7b. replaying a session's log reproduces its workspace *)
let replay_reproduces =
  let gen =
    QCheck2.Gen.(
      let* schema = Gen.synth_schema in
      let* ops = list_size (int_range 0 8) (Gen.plausible_op schema) in
      return (schema, ops))
  in
  prop "replaying the log reproduces the workspace" ~count:100 gen
    (fun (schema, ops) ->
      match Core.Session.create schema with
      | Error _ -> false
      | Ok session ->
          let session =
            List.fold_left
              (fun s op ->
                match Core.Session.apply s ~kind:Core.Concept.Wagon_wheel op with
                | Ok (s', _) -> s'
                | Error _ -> s)
              session ops
          in
          let steps =
            List.map
              (fun (st : Core.Session.step) -> (st.st_kind, st.st_op))
              (Core.Session.log session)
          in
          (match Core.Oplog.replay schema steps with
          | Ok replayed ->
              Core.Recompose.equal_content
                (Core.Session.workspace session)
                (Core.Session.workspace replayed)
          | Error _ -> false))

(* 8. undo restores the previous workspace exactly *)
let undo_exact =
  let gen =
    QCheck2.Gen.(
      let* schema = Gen.synth_schema in
      let* op = Gen.plausible_op schema in
      return (schema, op))
  in
  prop "undo restores the workspace" ~count:300 gen (fun (schema, op) ->
      match Core.Session.create schema with
      | Error _ -> false
      | Ok session -> (
          match Core.Session.apply session ~kind:Core.Concept.Wagon_wheel op with
          | Error _ -> true
          | Ok (session', _) -> (
              match Core.Session.undo session' with
              | None -> false
              | Some restored ->
                  Core.Recompose.equal_content
                    (Core.Session.workspace restored)
                    (Core.Session.workspace session))))

(* the operation-log persistence format round trips *)
let log_format_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 10)
        (pair
           (oneofl
              Core.Concept.
                [ Wagon_wheel; Generalization; Aggregation; Instance_chain ])
           Gen.modop))
  in
  prop "log format round trips" gen (fun steps ->
      let text = Repository.Store.log_to_string steps in
      let back = Repository.Store.log_of_string text in
      List.length back = List.length steps
      && List.for_all2
           (fun (k1, o1) (k2, o2) -> k1 = k2 && Core.Modop.equal o1 o2)
           steps back)

(* decomposition projections never stray outside their member set *)
let projections_stay_inside =
  prop "projections stay within members" ~count:100 Gen.synth_schema (fun s ->
      Core.Decompose.decompose s
      |> List.for_all (fun c ->
             (Core.Concept.project s c).s_interfaces
             |> List.for_all (fun i -> Core.Concept.mem_type c i.Odl.Types.i_name)))

(* diff of a schema against any reachable customization converges, and its
   log replays to the target *)
let diff_converges =
  let gen =
    QCheck2.Gen.(
      let* schema = Gen.synth_schema in
      let* ops = list_size (int_range 0 6) (Gen.plausible_op schema) in
      return (schema, ops))
  in
  prop "diff converges on reachable targets" ~count:100 gen (fun (schema, ops) ->
      let target =
        List.fold_left
          (fun w op ->
            match
              Core.Apply.apply ~original:schema ~kind:Core.Concept.Wagon_wheel w op
            with
            | Ok (w', _) -> w'
            | Error _ -> w)
          schema ops
      in
      let steps, _, converged = Core.Diff.infer ~original:schema ~target in
      converged
      &&
      match Core.Oplog.replay schema steps with
      | Ok session ->
          Core.Recompose.equal_content (Core.Session.workspace session) target
      | Error _ -> false)

(* diff between two independently generated schemas also converges *)
let diff_cross_schemas =
  let gen = QCheck2.Gen.pair Gen.synth_schema Gen.synth_schema in
  prop "diff converges across unrelated schemas" ~count:50 gen (fun (a, b) ->
      let _, _, converged = Core.Diff.infer ~original:a ~target:b in
      converged)

(* affinity is symmetric, bounded, and 1 on identical schemas *)
let affinity_properties =
  let gen = QCheck2.Gen.pair Gen.synth_schema Gen.synth_schema in
  prop "affinity symmetric and bounded" ~count:100 gen (fun (a, b) ->
      let ab = Core.Affinity.semantic_affinity a b in
      let ba = Core.Affinity.semantic_affinity b a in
      Float.abs (ab -. ba) < 1e-9
      && ab >= 0.0 && ab <= 1.0
      && Float.abs (Core.Affinity.semantic_affinity a a -. 1.0) < 1e-9)

(* cautions never raise, whatever the op *)
let cautions_total =
  let gen =
    QCheck2.Gen.(
      let* schema = Gen.synth_schema in
      let* op = Gen.plausible_op schema in
      return (schema, op))
  in
  prop "cautions are total" gen (fun (schema, op) ->
      ignore (Repository.Knowledge.cautions schema op);
      true)

(* the interchange schema of two random customizations is always valid *)
let interchange_valid =
  let gen =
    QCheck2.Gen.(
      let* schema = Gen.synth_schema in
      let* ops_a = list_size (int_range 0 5) (Gen.plausible_op schema) in
      let* ops_b = list_size (int_range 0 5) (Gen.plausible_op schema) in
      return (schema, ops_a, ops_b))
  in
  prop "interchange schemas are valid" ~count:100 gen
    (fun (schema, ops_a, ops_b) ->
      let customize ops =
        List.fold_left
          (fun w op ->
            match
              Core.Apply.apply ~original:schema ~kind:Core.Concept.Wagon_wheel w op
            with
            | Ok (w', _) -> w'
            | Error _ -> w)
          schema ops
      in
      let custom_a = customize ops_a and custom_b = customize ops_b in
      let interchange =
        Core.Interop.interchange_schema ~original:schema ~custom_a ~custom_b
      in
      Odl.Validate.errors interchange = [])

(* instance migration keeps stores consistent under any accepted
   customization *)
let migration_preserves_consistency =
  let university = Schemas.University.v () in
  (* a deterministic populated store; the randomness is in the ops *)
  let base_store =
    let ok = Result.get_ok in
    let s = Objects.Store.create university in
    let s, dept = ok (Objects.Store.new_object s "Department") in
    let s = ok (Objects.Store.set_attr s dept "dept_name" (Objects.Value.V_string "CSE")) in
    let s, fac = ok (Objects.Store.new_object s "Faculty") in
    let s = ok (Objects.Store.set_attr s fac "ssn" (Objects.Value.V_string "1")) in
    let s = ok (Objects.Store.link s fac "works_in_a" dept) in
    let s, course = ok (Objects.Store.new_object s "Course") in
    let s, offering = ok (Objects.Store.new_object s "Course_Offering") in
    let s = ok (Objects.Store.link s offering "offering_of" course) in
    let s = ok (Objects.Store.link s offering "taught_by" fac) in
    let s, stud = ok (Objects.Store.new_object s "Doctoral") in
    let s = ok (Objects.Store.set_attr s stud "ssn" (Objects.Value.V_string "2")) in
    let s = ok (Objects.Store.link s stud "takes" offering) in
    let s = ok (Objects.Store.link s stud "advised_by" fac) in
    let s, book = ok (Objects.Store.new_object s "Book") in
    let s = ok (Objects.Store.set_attr s book "isbn" (Objects.Value.V_string "b")) in
    ok (Objects.Store.link s offering "books" book)
  in
  let gen =
    QCheck2.Gen.(list_size (int_range 0 6) (Gen.plausible_op university))
  in
  prop "migration preserves store consistency" ~count:150 gen (fun ops ->
      let custom =
        List.fold_left
          (fun w op ->
            List.fold_left
              (fun w kind ->
                match Core.Apply.apply ~original:university ~kind w op with
                | Ok (w', _) -> w'
                | Error _ -> w)
              w
              Core.Concept.
                [ Wagon_wheel; Generalization; Aggregation; Instance_chain ])
          university ops
      in
      let migrated, _ = Objects.Migrate.migrate base_store ~custom in
      (* residual problems are only ever incompleteness on newly-mandatory
         ends — never dangling refs, broken symmetry, cardinality or key
         violations *)
      List.for_all
        (fun p ->
          Str_contains.contains p.Objects.Check.p_message "exactly one")
        (Objects.Check.check migrated))

(* translations are total and structurally sane over random schemas *)
let translations_total =
  prop "translations are total" ~count:100 Gen.synth_schema (fun s ->
      let ddl = Core.Relational.ddl s in
      let er = Core.Er.of_schema s in
      let dot = Core.Dot.schema_graph s in
      let opens =
        String.fold_left (fun n c -> if c = '(' then n + 1 else n) 0 ddl
      in
      let closes =
        String.fold_left (fun n c -> if c = ')' then n + 1 else n) 0 ddl
      in
      opens = closes
      && List.length er.Core.Er.m_entities = List.length s.s_interfaces
      && String.length dot > 0
      && Core.Quality.score s >= 0
      && Core.Quality.score s <= 100)

(* the store mutation API maintains referential integrity, link symmetry
   and to-one cardinality under arbitrary action sequences; only data-entry
   problems (unattached parts, duplicate keys) can remain *)
let store_mutations_sound =
  let university = Schemas.University.v () in
  let type_names = Odl.Schema.interface_names university in
  let action =
    QCheck2.Gen.(
      oneof
        [
          map (fun t -> `New t) (oneofl type_names);
          (let* o = int_range 1 12 in
           let* a = oneofl [ "name"; "ssn"; "gpa"; "room"; "dept_name" ] in
           let* v =
             oneof
               [
                 map (fun n -> Objects.Value.V_int n) (int_range 0 5);
                 map (fun s -> Objects.Value.V_string s) (oneofl [ "x"; "y" ]);
                 map (fun f -> Objects.Value.V_float f) (float_bound_inclusive 4.0);
               ]
           in
           return (`Set (o, a, v)));
          (let* o = int_range 1 12 in
           let* p =
             oneofl
               [ "works_in_a"; "takes"; "taught_by"; "advised_by"; "has";
                 "offering_of"; "books" ]
           in
           let* d = int_range 1 12 in
           return (`Link (o, p, d)));
          (let* o = int_range 1 12 in
           let* p = oneofl [ "works_in_a"; "takes"; "has" ] in
           let* d = int_range 1 12 in
           return (`Unlink (o, p, d)));
          map (fun o -> `Delete o) (int_range 1 12);
        ])
  in
  prop "store mutations are sound" ~count:150
    QCheck2.Gen.(list_size (int_range 0 40) action)
    (fun actions ->
      let store =
        List.fold_left
          (fun st act ->
            let keep = function Ok st -> st | Error _ -> st in
            match act with
            | `New t -> (
                match Objects.Store.new_object st t with
                | Ok (st, _) -> st
                | Error _ -> st)
            | `Set (o, a, v) -> keep (Objects.Store.set_attr st o a v)
            | `Link (o, p, d) -> keep (Objects.Store.link st o p d)
            | `Unlink (o, p, d) -> keep (Objects.Store.unlink st o p d)
            | `Delete o -> keep (Objects.Store.delete st o))
          (Objects.Store.create university)
          actions
      in
      Objects.Check.check store
      |> List.for_all (fun p ->
             Str_contains.contains p.Objects.Check.p_message "exactly one"
             || Str_contains.contains p.Objects.Check.p_message "duplicate key"))

let tests =
  [
    synth_always_valid;
    union_reconstructs;
    union_reconstructs_under_ops;
    union_reconstructs_seeds;
    print_parse_roundtrip;
    op_roundtrip;
    apply_preserves_validity;
    moves_respect_stability;
    mapping_total;
    replay_reproduces;
    undo_exact;
    log_format_roundtrip;
    projections_stay_inside;
    cautions_total;
    diff_converges;
    diff_cross_schemas;
    affinity_properties;
    interchange_valid;
    migration_preserves_consistency;
    translations_total;
    store_mutations_sound;
  ]
