(* Journal-shipping replication: the frame wire format, the stamp
   ratchet, the follower apply state machine and follower-mode service,
   promotion with era fencing, retry determinism, and a chaos property
   over randomized leader-death schedules — every acked write must be on
   the new writer after promotion, follower stamps must never exceed the
   leader's, and both directories must come back fsck-clean.

   Everything runs in-process over the fault-injectable in-memory
   filesystem: the leader's stream is captured as a frame list, the
   "kill -9" is a cut at an arbitrary frame boundary (plus an optional
   torn journal tail on the leader's disk), and the follower replays the
   delivered prefix through {!Server.Replication.Apply} — the same state
   machine the socket pump drives. *)

module Io = Repository.Io
module Store = Repository.Store
module Repo = Repository.Repo
module Journal = Repository.Journal
module Frame = Repository.Journal.Frame
module Service = Server.Service
module Protocol = Server.Protocol
module Replication = Server.Replication
module Retry = Server.Retry
module Session = Core.Session

let test = Util.test
let quick_config = Test_server.quick_config
let mem_repo = Test_server.mem_repo
let service = Test_server.service
let req_ok = Test_server.req_ok
let req_err = Test_server.req_err
let apply_line = Test_server.apply_line

(* --- the frame wire format ------------------------------------------------- *)

let sample_frames =
  [
    Frame.Hello { era = 3 };
    Frame.Root { data = "interface A { attribute int x; };\n" };
    Frame.File
      { variant = "site one"; name = "log.ops"; data = "line1\nline2\n" };
    Frame.File { variant = "v"; name = "manifest"; data = "" };
    Frame.Start { variant = "site one"; stamp = 42 };
    Frame.Records
      { variant = "v"; stamp = 7; data = "@ww add_type_definition(Z);\n" };
    Frame.Records { variant = "v"; stamp = 8; data = "" };
    Frame.Reset { variant = "v" };
    Frame.Live;
    Frame.Ack { variant = "v"; stamp = 9 };
  ]

let frame_roundtrip () =
  List.iter
    (fun f ->
      match Frame.of_string (Frame.to_string f) with
      | Result.Ok (Some g) when g = f -> ()
      | Result.Ok (Some g) ->
          Alcotest.failf "%s round-tripped to %s" (Frame.describe f)
            (Frame.describe g)
      | Result.Ok None -> Alcotest.failf "%s read back empty" (Frame.describe f)
      | Result.Error m -> Alcotest.failf "%s: %s" (Frame.describe f) m)
    sample_frames

(* A concatenated stream reads back frame by frame through the transport
   callbacks, and clean EOF lands exactly on a frame boundary. *)
let frame_stream () =
  let blob = String.concat "" (List.map Frame.to_string sample_frames) in
  let pos = ref 0 in
  let read_line () =
    if !pos >= String.length blob then None
    else
      match String.index_from_opt blob !pos '\n' with
      | None ->
          let s = String.sub blob !pos (String.length blob - !pos) in
          pos := String.length blob;
          Some s
      | Some nl ->
          let s = String.sub blob !pos (nl - !pos) in
          pos := nl + 1;
          Some s
  in
  let read_exact n =
    if !pos + n > String.length blob then None
    else begin
      let s = String.sub blob !pos n in
      pos := !pos + n;
      Some s
    end
  in
  let rec all acc =
    match Frame.read ~read_line ~read_exact with
    | Result.Ok (Some f) -> all (f :: acc)
    | Result.Ok None -> List.rev acc
    | Result.Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "every frame read back" (List.length sample_frames)
    (List.length (all []))

let frame_truncation_is_an_error () =
  let wire =
    Frame.to_string
      (Frame.File { variant = "v"; name = "log.ops"; data = "abcdef\n" })
  in
  match Frame.of_string (String.sub wire 0 (String.length wire - 3)) with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "a stream cut mid-payload must be an error"

(* --- the stamp ratchet ----------------------------------------------------- *)

let publish_at_ratchet () =
  let p = Server.Publish.create () in
  Server.Publish.publish_at p "v" "a" 5;
  Alcotest.(check int) "seq pinned to the leader stamp" 5
    (Server.Publish.seq p "v");
  (* a late-arriving lower stamp never rewinds the sequence *)
  Server.Publish.publish_at p "v" "b" 3;
  Alcotest.(check int) "seq never rewinds" 5 (Server.Publish.seq p "v");
  Server.Publish.publish_at p "v" "c" 9;
  Alcotest.(check int) "seq advances" 9 (Server.Publish.seq p "v");
  match Server.Publish.read p "v" with
  | Some ("c", 9) -> ()
  | _ -> Alcotest.fail "read must see the latest published pair"

(* --- retry determinism (satellite: pinned jitter streams) ------------------ *)

let connect_retry_determinism () =
  (* nothing ever listens at this path, so every attempt is a transient
     ENOENT/ECONNREFUSED; with a pinned jitter stream and a stubbed sleep
     the recorded delay sequence must reproduce exactly *)
  let path = Filename.temp_file "swsd_retry" ".sock" in
  Sys.remove path;
  let policy =
    { Retry.max_attempts = 5; base_delay = 0.01; max_delay = 0.05; jitter = 0.5 }
  in
  let delays seed =
    let recorded = ref [] in
    (match
       Server.Transport.connect ~retry_for:30.0 ~policy
         ~rand:(Random.State.make [| seed |])
         ~sleep:(fun _ -> ())
         ~on_retry:(fun ~attempt:_ ~delay -> recorded := delay :: !recorded)
         (Protocol.Unix_path path)
     with
    | Result.Error _ -> ()
    | Result.Ok fd ->
        Unix.close fd;
        Alcotest.fail "nothing listens here; connect cannot succeed");
    List.rev !recorded
  in
  let a = delays 7 and b = delays 7 and c = delays 1009 in
  Alcotest.(check bool) "retries actually happened" true (List.length a >= 2);
  Alcotest.(check (list (float 0.0))) "same seed, same delay sequence" a b;
  Alcotest.(check bool) "distinct seeds decorrelate" true (a <> c);
  List.iter
    (fun d ->
      if d < 0.0 || d > policy.Retry.max_delay then
        Alcotest.failf "delay %f outside [0, max_delay]" d)
    a

(* --- in-process stream plumbing -------------------------------------------- *)

(* Requests whose version stamp the test needs. *)
let req_v t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> r.Protocol.version
  | _ -> Alcotest.failf "%s should succeed, got: %s" line (Protocol.to_string r)

(* Capture the bootstrap leg of a stream synchronously: with the hub
   already stopping, [serve_stream] sends hello + root + every variant
   snapshot + live, then exits instead of tailing. *)
let bootstrap_frames hub =
  Replication.stop_hub hub;
  let frames = ref [] in
  Replication.serve_stream hub
    ~send:(fun f -> frames := f :: !frames)
    ~alive:(fun () -> true);
  List.rev !frames

(* A follower service over a fresh in-memory fs, seeded with the root
   from the delivered stream prefix.  Returns [None] when the prefix was
   cut before [Root] — the follower never bootstrapped at all. *)
let open_follower frames =
  match
    List.find_map
      (function Frame.Root { data } -> Some data | _ -> None)
      frames
  with
  | None -> None
  | Some root ->
      let m = Io.mem_create () in
      let io = Io.locked (Io.mem_io m) in
      Io.mkdir_p io "/replica";
      Io.atomic_write io "/replica/shrinkwrap.odl" root;
      let config = { (quick_config ()) with Service.follower = true } in
      let svc =
        match Service.open_service ~config ~io "/replica" with
        | Result.Ok t -> t
        | Result.Error m -> Alcotest.fail m
      in
      Some (svc, io)

(* --- the follower-mode service --------------------------------------------- *)

let follower_serves_readonly () =
  let _, lio = mem_repo () in
  let lsvc = service ~config:(quick_config ()) lio in
  let hub = Replication.hub lsvc in
  let c = Service.connect lsvc in
  ignore (req_ok lsvc c "@open v");
  ignore (req_ok lsvc c "focus ww:Person");
  ignore (req_v lsvc c (apply_line "repl_a"));
  let leader_stamp =
    match req_v lsvc c (apply_line "repl_b") with
    | Some v -> v
    | None -> Alcotest.fail "an acked write must carry a version stamp"
  in
  let frames = bootstrap_frames hub in
  match open_follower frames with
  | None -> Alcotest.fail "bootstrap stream must carry the root"
  | Some (fsvc, _fio) ->
      let apply = Replication.Apply.create fsvc in
      let acked = ref [] in
      List.iter
        (Replication.Apply.frame apply ~ack:(fun ~variant:_ ~stamp ->
             acked := stamp :: !acked))
        frames;
      Alcotest.(check bool) "stream went live" true
        (Replication.Apply.live apply);
      Alcotest.(check int) "follower stamp equals the leader's" leader_stamp
        (Replication.Apply.stamp apply "v");
      (* readonly attach serves the replicated snapshot at that stamp *)
      let fc = Service.connect fsvc in
      let r = Service.request fsvc fc "@open v readonly" in
      (match (r.Protocol.status, r.Protocol.version) with
      | Protocol.Ok, Some v when v = leader_stamp -> ()
      | Protocol.Ok, v ->
          Alcotest.failf "attached at stamp %s, leader is at %d"
            (match v with Some v -> string_of_int v | None -> "none")
            leader_stamp
      | _ -> Alcotest.failf "readonly attach refused: %s" (Protocol.to_string r));
      let concepts = req_ok fsvc fc "concepts" in
      Alcotest.(check bool) "replicated state is readable" true
        (List.exists (fun l -> Str_contains.contains l "Person") concepts);
      (* every write-shaped request is refused in follower mode; a fresh
         connection (not yet attached) gets pointed at the leader *)
      (match (Service.request fsvc fc (apply_line "nope")).Protocol.status with
      | Protocol.Readonly _ -> ()
      | _ -> Alcotest.fail "a follower connection must be readonly");
      let fresh = Service.connect fsvc in
      Alcotest.(check bool) "non-readonly open points at the leader" true
        (Str_contains.contains (req_err fsvc fresh "@open v") "leader");
      Alcotest.(check bool) "variant creation points at the leader" true
        (Str_contains.contains (req_err fsvc fresh "@new w") "leader");
      Alcotest.(check bool) "unknown variant is a plain error" true
        (Str_contains.contains (req_err fsvc fresh "@open ghost readonly") "ghost")

(* A branched child crosses the bootstrap stream with its manifest, so a
   follower serves its lineage — parent, fork stamp, branches-of — at
   bounded staleness, and the fork stamp still floors [#version] on the
   replica.  Merging stays a leader-side affair: the follower refuses
   and points at the leader. *)
let follower_serves_lineage () =
  let _, lio = mem_repo () in
  let lsvc = service ~config:(quick_config ()) lio in
  let hub = Replication.hub lsvc in
  let c = Service.connect lsvc in
  ignore (req_ok lsvc c "@open v");
  ignore (req_ok lsvc c "focus ww:Person");
  ignore (req_ok lsvc c (apply_line "pre_fork"));
  ignore (req_ok lsvc c "@close");
  let fork =
    let body = req_ok lsvc c "@branch v w" in
    match
      List.find_map
        (fun l ->
          match String.rindex_opt l '@' with
          | Some i when Str_contains.contains l "branched" ->
              int_of_string_opt (String.sub l (i + 1) (String.length l - i - 1))
          | _ -> None)
        body
    with
    | Some n -> n
    | None ->
        Alcotest.failf "branch response carries no fork stamp: %s"
          (String.concat " | " body)
  in
  let leader_stamp =
    match (Service.request lsvc c "@open w readonly").Protocol.version with
    | Some v -> v
    | None -> Alcotest.fail "leader attach must carry a stamp"
  in
  let frames = bootstrap_frames hub in
  match open_follower frames with
  | None -> Alcotest.fail "bootstrap stream must carry the root"
  | Some (fsvc, _fio) ->
      let apply = Replication.Apply.create fsvc in
      List.iter
        (Replication.Apply.frame apply ~ack:(fun ~variant:_ ~stamp:_ -> ()))
        frames;
      let fc = Service.connect fsvc in
      let r = Service.request fsvc fc "@open w readonly" in
      (match (r.Protocol.status, r.Protocol.version) with
      | Protocol.Ok, Some v when v >= fork && v <= leader_stamp ->
          () (* the fork floors the stamp; staleness is bounded above *)
      | Protocol.Ok, v ->
          Alcotest.failf "follower serves w at %s (fork %d, leader %d)"
            (match v with Some v -> string_of_int v | None -> "none")
            fork leader_stamp
      | _ -> Alcotest.failf "readonly attach refused: %s" (Protocol.to_string r));
      let lineage = req_ok fsvc fc "@query lineage" in
      Alcotest.(check bool) "the replica knows w's parent and fork" true
        (List.exists
           (fun l -> Str_contains.contains l (Printf.sprintf "parent v@%d" fork))
           lineage);
      Alcotest.(check (list string)) "branches-of answers on the replica"
        [ Printf.sprintf "w fork %d" fork ]
        (req_ok fsvc fc "@query branches of v");
      (* the listing carries lineage on the follower too *)
      Alcotest.(check (list string)) "replicated lineage listing"
        [ "v root era 0"; Printf.sprintf "w v@%d era 0" fork ]
        (req_ok fsvc fc "@list");
      (* writes of every kind go to the leader *)
      Alcotest.(check bool) "@branch points at the leader" true
        (Str_contains.contains (req_err fsvc fc "@branch v x") "leader");
      Alcotest.(check bool) "@merge points at the leader" true
        (Str_contains.contains (req_err fsvc fc "@merge w into v") "leader")

(* A stale leader — an era below what the follower has already seen —
   must not feed the apply state machine. *)
let stale_leader_refused () =
  let _, lio = mem_repo () in
  let lsvc = service ~config:(quick_config ()) lio in
  let hub = Replication.hub lsvc in
  let c = Service.connect lsvc in
  ignore (req_ok lsvc c "@open v");
  let frames = bootstrap_frames hub in
  match open_follower frames with
  | None -> Alcotest.fail "bootstrap stream must carry the root"
  | Some (fsvc, _) -> (
      let apply = Replication.Apply.create fsvc in
      let nop ~variant:_ ~stamp:_ = () in
      List.iter (Replication.Apply.frame apply ~ack:nop) frames;
      (* a new leader at era 2 is fine; a later hello at era 1 is not *)
      Replication.Apply.frame apply ~ack:nop (Frame.Hello { era = 2 });
      match Replication.Apply.frame apply ~ack:nop (Frame.Hello { era = 1 }) with
      | () -> Alcotest.fail "a stale leader's hello must be refused"
      | exception Replication.Stream_error m ->
          Alcotest.(check bool) "names the stale era" true
            (Str_contains.contains m "era"))

(* --- era fencing at session load ------------------------------------------- *)

let fence_refuses_old_writer () =
  let _, io = mem_repo () in
  (match Repo.open_dir ~io "/repo" with
  | Result.Ok repo -> Store.fence (Repo.variant_store repo "v") ~era:2
  | Result.Error m -> Alcotest.fail m);
  (* the old writer (era 0) is refused before it can touch the journal *)
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  Alcotest.(check bool) "refusal names the fence" true
    (Str_contains.contains (req_err t c "@open v") "fenced");
  (* the promoted writer (at or past the fence) is let in *)
  let t2 = service ~config:{ (quick_config ()) with Service.era = 2 } io in
  let c2 = Service.connect t2 in
  ignore (req_ok t2 c2 "@open v");
  ignore (req_ok t2 c2 "focus ww:Person");
  ignore (req_ok t2 c2 (apply_line "after_fence"))

(* --- the bounded event ring ------------------------------------------------
   A stream that falls a full ring behind is not a reason for the leader
   to retain history: the hub re-seeds it ([Reset] + snapshot + [Live])
   instead.  A ring of two and a stream held at its bootstrap [Live]
   while four writes land forces exactly that path. *)

let ring_of_two_forces_reset () =
  let _, lio = mem_repo () in
  let obs = Obs.create () in
  (* per-record commits so every acked write has already been pushed into
     the ring by the time [req_ok] returns *)
  let lsvc = service ~config:(quick_config ~group_commit:false ()) ~obs lio in
  let hub = Replication.hub ~ring:2 lsvc in
  let c = Service.connect lsvc in
  ignore (req_ok lsvc c "@open v");
  ignore (req_ok lsvc c "focus ww:Person");
  let mu = Mutex.create () and cond = Condition.create () in
  let frames = ref [] and gate_open = ref false in
  let live_count () =
    List.length (List.filter (fun f -> f = Frame.Live) !frames)
  in
  (* the stream's [send]: record every frame, and hold the stream at its
     bootstrap [Live] until the main thread has overflowed the ring *)
  let send f =
    Mutex.lock mu;
    frames := !frames @ [ f ];
    if f = Frame.Live && live_count () = 1 then begin
      Condition.broadcast cond;
      while not !gate_open do
        Condition.wait cond mu
      done
    end
    else Condition.broadcast cond;
    Mutex.unlock mu
  in
  let streamer =
    Thread.create
      (fun () -> Replication.serve_stream hub ~send ~alive:(fun () -> true))
      ()
  in
  Mutex.lock mu;
  while live_count () < 1 do
    Condition.wait cond mu
  done;
  Mutex.unlock mu;
  (* four pushes into a ring of two: the held stream's cursor is now more
     than a full ring behind *)
  for k = 1 to 4 do
    ignore (req_ok lsvc c (apply_line (Printf.sprintf "lag_%d" k)))
  done;
  Mutex.lock mu;
  gate_open := true;
  Condition.broadcast cond;
  while live_count () < 2 do
    Condition.wait cond mu
  done;
  Mutex.unlock mu;
  Replication.stop_hub hub;
  Thread.join streamer;
  (* the catch-up leg must be a re-seed, not replayed records: Reset,
     then a fresh snapshot ending in [Start], then [Live] *)
  let after_bootstrap =
    let rec drop = function
      | Frame.Live :: rest -> rest
      | _ :: rest -> drop rest
      | [] -> Alcotest.fail "stream never went live"
    in
    drop !frames
  in
  (match after_bootstrap with
  | Frame.Reset { variant = "v" } :: _ -> ()
  | f :: _ ->
      Alcotest.failf "expected Reset after the gap, got %s" (Frame.describe f)
  | [] -> Alcotest.fail "nothing followed the held Live");
  Alcotest.(check bool) "no stale record is replayed after the gap" true
    (not
       (List.exists
          (function Frame.Records _ -> true | _ -> false)
          after_bootstrap));
  Alcotest.(check bool) "the re-seed ships a complete snapshot" true
    (List.exists
       (function Frame.Start { variant = "v"; _ } -> true | _ -> false)
       after_bootstrap);
  (match after_bootstrap with
  | _ :: _ when List.nth after_bootstrap (List.length after_bootstrap - 1)
                = Frame.Live -> ()
  | _ -> Alcotest.fail "re-seed must end with Live");
  (match Obs.counter_value obs "swsd.repl.resets_total" with
  | Some n when n >= 1 -> ()
  | v ->
      Alcotest.failf "resets_total should count the re-seed, got %s"
        (match v with Some n -> string_of_int n | None -> "nothing"));
  (* a replayed re-seed really is the leader's state: apply it to a fresh
     follower and compare stamps *)
  match open_follower !frames with
  | None -> Alcotest.fail "re-seeded stream must still carry the root"
  | Some (fsvc, _) ->
      let apply = Replication.Apply.create fsvc in
      List.iter
        (Replication.Apply.frame apply ~ack:(fun ~variant:_ ~stamp:_ -> ()))
        !frames;
      let leader_stamp =
        match (Service.request lsvc c "log").Protocol.version with
        | Some v -> v
        | None -> Alcotest.fail "leader read must carry a stamp"
      in
      Alcotest.(check int) "re-seeded follower lands on the leader's stamp"
        leader_stamp
        (Replication.Apply.stamp apply "v")

(* the clamp: a ring below two slots (or an absurd ask) still serves *)
let ring_size_is_clamped () =
  List.iter
    (fun ring ->
      let _, lio = mem_repo () in
      let lsvc = service ~config:(quick_config ()) lio in
      let hub = Replication.hub ~ring lsvc in
      let frames = Test_server.with_watchdog ~secs:30.0 ~name:"clamped ring"
          (fun () -> bootstrap_frames hub)
      in
      Alcotest.(check bool)
        (Printf.sprintf "ring=%d still bootstraps" ring)
        true
        (List.mem Frame.Live frames))
    [ 0; -3; 1 lsl 24 ]

(* --- the chaos property ----------------------------------------------------
   For >= 200 randomized schedules: a leader applies ops while a follower
   consumes its stream; the leader "dies" at an arbitrary frame boundary
   (optionally leaving a torn, unacknowledged tail on its own disk); the
   follower is promoted.  Afterwards every acked write must be in the new
   writer's journal, no follower stamp may ever have exceeded the
   leader's, both directories must fsck clean, and the fenced old era
   must be refused while the promoted era is accepted. *)

(* Tier-1 runs 200; the nightly [@repl-chaos] alias raises it via
   SWSD_REPL_CHAOS_SCHEDULES for a deeper sweep of the same property. *)
let chaos_schedules =
  match
    Option.bind
      (Sys.getenv_opt "SWSD_REPL_CHAOS_SCHEDULES")
      int_of_string_opt
  with
  | Some n when n > 0 -> n
  | _ -> 200

let chaos_one rng =
  let _, lio = mem_repo () in
  let lsvc = service ~config:(quick_config ()) lio in
  let hub = Replication.hub lsvc in
  let c = Service.connect lsvc in
  ignore (req_ok lsvc c "@open v");
  ignore (req_ok lsvc c "focus ww:Person");
  let acked = ref [] in
  let last_stamp = ref 0 in
  let apply_one name =
    match req_v lsvc c (apply_line name) with
    | Some v ->
        acked := name :: !acked;
        last_stamp := max !last_stamp v
    | None -> Alcotest.fail "an acked write must carry a version stamp"
  in
  (* phase 1: ops that will reach the follower inside the bootstrap
     snapshot *)
  for k = 1 to 1 + Random.State.int rng 3 do
    apply_one (Printf.sprintf "p%d" k)
  done;
  (* phase 2: ops shipped through the live tail while a stream thread is
     consuming the ring *)
  let q = Queue.create () in
  let qmu = Mutex.create () in
  let tail =
    Thread.create
      (fun () ->
        try
          Replication.serve_stream hub
            ~send:(fun f ->
              Mutex.lock qmu;
              Queue.add f q;
              Mutex.unlock qmu)
            ~alive:(fun () -> true)
        with Replication.Stream_error _ -> ())
      ()
  in
  let phase2 = Random.State.int rng 4 in
  for k = 1 to phase2 do
    apply_one (Printf.sprintf "t%d" k)
  done;
  (* wait until the stream has caught up to the last acked stamp (the
     bootstrap snapshot alone covers it when phase 2 was empty) *)
  let caught_up () =
    Mutex.lock qmu;
    let hit =
      Queue.fold
        (fun acc f ->
          acc
          ||
          match f with
          | Frame.Start { variant = "v"; stamp } -> stamp >= !last_stamp
          | Frame.Records { variant = "v"; stamp; _ } -> stamp >= !last_stamp
          | _ -> false)
        false q
    in
    Mutex.unlock qmu;
    hit
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (caught_up ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.001
  done;
  if not (caught_up ()) then Alcotest.fail "stream never caught up";
  Replication.stop_hub hub;
  Thread.join tail;
  let frames = List.of_seq (Queue.to_seq q) in
  (* the leader dies: the stream is cut at an arbitrary frame boundary *)
  let cut = Random.State.int rng (List.length frames + 1) in
  let delivered = List.filteri (fun i _ -> i < cut) frames in
  let follower = open_follower delivered in
  (match follower with
  | None -> () (* cut before [Root]: the follower never bootstrapped *)
  | Some (fsvc, _) ->
      let apply = Replication.Apply.create fsvc in
      List.iter
        (Replication.Apply.frame apply ~ack:(fun ~variant:_ ~stamp ->
             if stamp > !last_stamp then
               Alcotest.failf "follower acked stamp %d beyond the leader's %d"
                 stamp !last_stamp))
        delivered;
      if Replication.Apply.stamp apply "v" > !last_stamp then
        Alcotest.fail "follower stamp exceeds the leader's");
  (* optionally the crash also tore the leader's journal tail: a partial
     record that was never acknowledged *)
  let torn = Random.State.bool rng in
  if torn then
    lio.Io.append "/repo/variants/v/log.ops" "@ww add_attribute(Per";
  (* promotion: the replica directory (possibly empty) takes over *)
  let fio =
    match follower with
    | Some (_, fio) -> fio
    | None -> Io.locked (Io.mem_io (Io.mem_create ()))
  in
  match Replication.promote ~src_io:lio ~dst_io:fio ~src:"/repo" ~dst:"/replica" () with
  | Result.Error m -> Alcotest.fail m
  | Result.Ok (era, outcomes) ->
      List.iter
        (fun (v, r) ->
          match r with
          | Result.Ok () -> ()
          | Result.Error m -> Alcotest.failf "%s unrecoverable: %s" v m)
        outcomes;
      if era < 1 then Alcotest.failf "promotion must fence a fresh era, got %d" era;
      (* every acked write is on the new writer *)
      let dst_repo =
        match Repo.open_dir ~io:fio "/replica" with
        | Result.Ok r -> r
        | Result.Error m -> Alcotest.fail m
      in
      let log_ops =
        match Store.load_session (Repo.variant_store dst_repo "v") with
        | Result.Ok s ->
            List.map
              (fun (st : Session.step) ->
                Core.Op_printer.to_string st.Session.st_op)
              (Session.log s)
        | Result.Error e -> Alcotest.fail (Store.load_error_to_string e)
      in
      List.iter
        (fun name ->
          if
            not
              (List.exists (fun op -> Str_contains.contains op name) log_ops)
          then
            Alcotest.failf "acked write %s lost across promotion (cut %d/%d)"
              name cut (List.length frames))
        !acked;
      (* both directories fsck clean: the promoted store as-is; the old
         leader's after its own crash recovery pass salvages the
         unacknowledged torn tail *)
      let dst_report = Store.fsck (Repo.variant_store dst_repo "v") in
      Alcotest.(check (list string)) "promoted store is clean" []
        dst_report.Store.fsck_issues;
      ignore (Store.fsck ~salvage:true (Store.open_dir ~io:lio "/repo/variants/v"));
      let src_report = Store.fsck (Store.open_dir ~io:lio "/repo/variants/v") in
      Alcotest.(check (list string)) "old leader store salvages clean" []
        src_report.Store.fsck_issues;
      (* exactly one writer: the old era is fenced out of both homes, the
         promoted era gets in *)
      let old = service ~config:(quick_config ()) lio in
      let oc = Service.connect old in
      Alcotest.(check bool) "old-era writer is fenced" true
        (Str_contains.contains (req_err old oc "@open v") "fenced");
      let nw =
        match
          Service.open_service
            ~config:{ (quick_config ()) with Service.era = era }
            ~io:fio "/replica"
        with
        | Result.Ok t -> t
        | Result.Error m -> Alcotest.fail m
      in
      let nc = Service.connect nw in
      ignore (req_ok nw nc "@open v");
      ignore (req_ok nw nc "focus ww:Person");
      ignore (req_ok nw nc (apply_line "post_promotion"))

let chaos_property () =
  (* budget scales with the sweep size so the nightly run can't trip it *)
  let secs = 120.0 +. (0.3 *. float_of_int chaos_schedules) in
  Test_server.with_watchdog ~secs ~name:"replication chaos" (fun () ->
      let rng = Random.State.make [| 0xD5C0; chaos_schedules |] in
      for _ = 1 to chaos_schedules do
        chaos_one rng
      done)

(* --- QCheck: any acked journal prefix reproduces the state ----------------- *)

(* The replication contract in one property: the journal bytes as they
   stood after any acknowledged request, replayed through the recovery
   path on a fresh store (exactly what a follower does with shipped
   bytes), reproduce the session state the leader had at that moment. *)
let prefix_replay_prop =
  let gen = QCheck2.Gen.(list_size (1 -- 10) (0 -- 5)) in
  QCheck2.Test.make ~name:"replaying any acked journal prefix reproduces state"
    ~count:25 ~print:QCheck2.Print.(list int) gen (fun picks ->
      let _, lio = mem_repo () in
      (* the variant's files before any service touched them *)
      let base =
        List.filter_map
          (fun name ->
            let p = "/repo/variants/v/" ^ name in
            if lio.Io.file_exists p then Some (name, lio.Io.read_file p)
            else None)
          [ "shrinkwrap.odl"; "log.ops"; "aliases.map"; "custom.odl"; "manifest" ]
      in
      let t = service ~config:(quick_config ()) lio in
      let c = Service.connect t in
      ignore (req_ok t c "@open v");
      ignore (req_ok t c "focus ww:Person");
      let expected = ref [] in
      (* (journal bytes, expected op strings newest-first) after each ack *)
      let recorded = ref [] in
      List.iter
        (fun pick ->
          let line, on_ok =
            if pick = 5 then ("undo", fun () -> expected := List.tl !expected)
            else
              ( apply_line (Printf.sprintf "q%d" pick),
                fun () ->
                  expected :=
                    Printf.sprintf "add_attribute(Person, string, 8, q%d)" pick
                    :: !expected )
          in
          match (Service.request t c line).Protocol.status with
          | Protocol.Ok ->
              on_ok ();
              recorded :=
                (lio.Io.read_file "/repo/variants/v/log.ops", !expected)
                :: !recorded
          | _ -> () (* rejected (duplicate attribute, empty undo): not acked *))
        picks;
      List.for_all
        (fun (journal, expect) ->
          let m = Io.mem_create () in
          let io = Io.locked (Io.mem_io m) in
          io.Io.mkdir "/s";
          List.iter
            (fun (name, data) -> io.Io.write ("/s/" ^ name) data)
            base;
          io.Io.write "/s/log.ops" journal;
          match Store.load_session (Store.open_dir ~io "/s") with
          | Result.Error e -> Alcotest.fail (Store.load_error_to_string e)
          | Result.Ok s ->
              let got =
                List.rev_map
                  (fun (st : Session.step) ->
                    Core.Op_printer.to_string st.Session.st_op)
                  (Session.log s)
              in
              got = expect)
        !recorded)

(* --- the read-only protocol over real sockets (regression) ----------------- *)

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else Sys.remove p

(* [@open <missing> readonly] must come back as a terminated [!err] over
   a Unix socket and over TCP alike — not a hang, not a dropped
   connection. *)
let open_missing_readonly_err () =
  Test_server.with_watchdog ~secs:60.0 ~name:"readonly missing variant" (fun () ->
      let dir = Filename.temp_file "swsd_repl_ro" "" in
      Sys.remove dir;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
        (fun () ->
          (match Repo.init dir (Util.parse Test_server.tiny_text) with
          | Result.Ok repo -> (
              match Repo.create_variant repo "v" with
              | Result.Ok _ -> ()
              | Result.Error e -> Alcotest.fail e)
          | Result.Error e -> Alcotest.fail e);
          List.iter
            (fun listen ->
              match Server.create ~listen dir with
              | Result.Error m -> Alcotest.fail m
              | Result.Ok server ->
                  let th =
                    Thread.create (fun () -> ignore (Server.run server)) ()
                  in
                  Fun.protect
                    ~finally:(fun () ->
                      Server.stop server;
                      Thread.join th)
                    (fun () ->
                      let addr =
                        Protocol.address_to_string
                          (Server.listen_address server)
                      in
                      match Server.Client.connect ~retry_for:10.0 addr with
                      | Result.Error m -> Alcotest.fail m
                      | Result.Ok c ->
                          ignore (Server.Client.read_response c);
                          (match
                             Server.Client.request c "@open ghost readonly"
                           with
                          | None ->
                              Alcotest.failf "%s: server hung up" addr
                          | Some lines ->
                              Alcotest.(check bool)
                                (addr ^ ": !err names the variant") true
                                (List.exists
                                   (fun l ->
                                     String.length l >= 4
                                     && String.sub l 0 4 = "!err"
                                     && Str_contains.contains l "ghost")
                                   lines));
                          (* the connection survives for a correct retry *)
                          (match Server.Client.request c "@open v readonly" with
                          | Some lines ->
                              Alcotest.(check bool)
                                (addr ^ ": correct open still works") true
                                (List.exists
                                   (fun l ->
                                     Str_contains.contains l "!ok")
                                   lines)
                          | None -> Alcotest.failf "%s: server hung up" addr);
                          Server.Client.close c))
            [
              Protocol.Unix_path (Filename.concat dir "ro.sock");
              Protocol.Tcp ("127.0.0.1", 0);
            ]))

(* The applier thread must outlive its leader: when the leader goes away
   and a successor binds the same address, the follower redials,
   re-bootstraps, and keeps applying.  Regression for the applier thread
   dying on an exception escaping the reconnect handshake (ECONNRESET
   out of the greeting read during promotion churn), which left the
   follower serving ever-staler state while claiming health. *)
let follower_survives_leader_restart () =
  Test_server.with_watchdog ~secs:90.0 ~name:"follower reconnect" (fun () ->
      let dir = Filename.temp_file "swsd_repl_rc" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
        (fun () ->
          let ldir = Filename.concat dir "leader" in
          let fdir = Filename.concat dir "replica" in
          let sock = Filename.concat dir "leader.sock" in
          (match Repo.init ldir (Util.parse Test_server.tiny_text) with
          | Result.Ok repo -> (
              match Repo.create_variant repo "v" with
              | Result.Ok _ -> ()
              | Result.Error e -> Alcotest.fail e)
          | Result.Error e -> Alcotest.fail e);
          let start_leader () =
            match
              Server.create ~replicate:true
                ~listen:(Protocol.Unix_path sock) ldir
            with
            | Result.Error m -> Alcotest.fail m
            | Result.Ok server ->
                let th =
                  Thread.create (fun () -> ignore (Server.run server)) ()
                in
                (server, th)
          in
          let apply_on_leader name =
            match Server.Client.connect ~retry_for:10.0 sock with
            | Result.Error m -> Alcotest.fail m
            | Result.Ok c ->
                ignore (Server.Client.read_response c);
                List.iter
                  (fun line ->
                    match Server.Client.request c line with
                    | Some lines when List.mem "!ok" lines -> ()
                    | Some lines ->
                        Alcotest.failf "%s: %s" line (String.concat "|" lines)
                    | None -> Alcotest.failf "%s: leader hung up" line)
                  [ "@open v"; "focus ww:Person"; apply_line name ];
                Server.Client.close c
          in
          let follower_journal_has name =
            let path =
              Filename.concat fdir (Filename.concat "variants/v" "log.ops")
            in
            Sys.file_exists path
            && Str_contains.contains
                 (In_channel.with_open_bin path In_channel.input_all)
                 name
          in
          let await what pred =
            let deadline = Unix.gettimeofday () +. 30.0 in
            while (not (pred ())) && Unix.gettimeofday () < deadline do
              Thread.delay 0.05
            done;
            Alcotest.(check bool) what true (pred ())
          in
          let server1, th1 = start_leader () in
          let follower =
            match
              Replication.Follower.create
                ~config:(quick_config ())
                ~leader:(Protocol.Unix_path sock) fdir
            with
            | Result.Error m -> Alcotest.fail m
            | Result.Ok f -> f
          in
          Fun.protect
            ~finally:(fun () -> Replication.Follower.stop follower)
            (fun () ->
              apply_on_leader "before_restart";
              await "first leader's write replicated" (fun () ->
                  follower_journal_has "before_restart");
              Server.stop server1;
              Thread.join th1;
              let server2, th2 = start_leader () in
              Fun.protect
                ~finally:(fun () ->
                  Server.stop server2;
                  Thread.join th2)
                (fun () ->
                  apply_on_leader "after_restart";
                  await "follower reconnected and applied the new leader's \
                         write" (fun () ->
                      follower_journal_has "after_restart");
                  Alcotest.(check bool) "follower is live again" true
                    (Replication.Follower.live follower)))))

let tests =
  [
    test "frame: every constructor round-trips exactly" frame_roundtrip;
    test "frame: a concatenated stream reads back frame by frame" frame_stream;
    test "frame: truncation mid-payload is an error" frame_truncation_is_an_error;
    test "publish: publish_at ratchets and never rewinds" publish_at_ratchet;
    test "retry: pinned jitter streams reproduce the delay sequence"
      connect_retry_determinism;
    test "follower: replicated state served readonly at the leader's stamp"
      follower_serves_readonly;
    test "follower: lineage served at bounded staleness, merges to the leader"
      follower_serves_lineage;
    test "follower: a stale leader's era is refused" stale_leader_refused;
    test "hub: a stream a full ring behind is re-seeded, not replayed"
      ring_of_two_forces_reset;
    test "hub: the ring size is clamped, never refused" ring_size_is_clamped;
    test "fence: an old-era writer is refused, the promoted era admitted"
      fence_refuses_old_writer;
    Alcotest.test_case
      (Printf.sprintf
         "chaos: %d leader-death schedules lose nothing across promotion"
         chaos_schedules)
      `Slow chaos_property;
    QCheck_alcotest.to_alcotest prefix_replay_prop;
    test "server: @open missing readonly is !err over unix and tcp"
      open_missing_readonly_err;
    test "follower: survives leader restart and reconnects"
      follower_survives_leader_restart;
  ]
