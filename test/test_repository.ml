module Store = Repository.Store

let test = Util.test

let tmp_dir () =
  let f = Filename.temp_file "swsd_test" "" in
  Sys.remove f;
  f

let with_repo f =
  let dir = tmp_dir () in
  let repo = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () ->
      (* best-effort cleanup *)
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      if Sys.file_exists dir then rm dir)
    (fun () -> f repo)

let schema_roundtrip () =
  with_repo (fun repo ->
      Store.save_shrinkwrap repo (Util.university ());
      Alcotest.check Util.schema_testable "round trip" (Util.university ())
        (Store.load_shrinkwrap repo))

let log_roundtrip () =
  let steps =
    [
      (Core.Concept.Wagon_wheel, Util.parse_op "add_type_definition(Lab)");
      (Core.Concept.Generalization, Util.parse_op "add_supertype(Lab, Person)");
      (Core.Concept.Aggregation,
       Util.parse_op "add_part_of_relationship(A, set<B>, parts, whole)");
      (Core.Concept.Instance_chain,
       Util.parse_op "delete_instance_of_relationship(A, insts)");
    ]
  in
  let text = Store.log_to_string steps in
  let back = Store.log_of_string text in
  Alcotest.(check int) "same length" (List.length steps) (List.length back);
  List.iter2
    (fun (k1, o1) (k2, o2) ->
      Alcotest.(check bool) "kind" true (k1 = k2);
      Alcotest.check Util.op_testable "op" o1 o2)
    steps back

let log_comments_and_blanks () =
  let parsed =
    Store.log_of_string
      "// a comment\n\n@ww add_type_definition(A);\n   \n// more\n@gh add_supertype(A, B);"
  in
  Alcotest.(check int) "two ops" 2 (List.length parsed)

let bad_logs () =
  let expect_bad text =
    match Store.log_of_string text with
    | exception Store.Bad_log _ -> ()
    | _ -> Alcotest.failf "should be rejected: %s" text
  in
  expect_bad "@zz add_type_definition(A);";
  expect_bad "@ww";
  expect_bad "@ww frobnicate(A);"

let session_roundtrip () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.university ()) in
      let s =
        Util.apply_many s
          [ "add_type_definition(Lab)"; "delete_type_definition(Book)" ]
      in
      Store.save_session repo s;
      match Store.load_session repo with
      | Ok loaded ->
          Alcotest.check Util.schema_testable "workspace restored"
            (Core.Session.workspace s) (Core.Session.workspace loaded);
          Alcotest.(check int) "log restored" 2
            (List.length (Core.Session.log loaded))
      | Error e -> Alcotest.failf "load failed: %s" (Core.Apply.error_to_string e))

let reports_written () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.university ()) in
      Store.save_session repo s;
      List.iter
        (fun name ->
          let path = Filename.concat (Store.reports_dir repo) (name ^ ".txt") in
          Alcotest.(check bool) (name ^ " written") true (Sys.file_exists path))
        [ "impact"; "consistency"; "mapping" ])

let custom_written_and_parsable () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.emsl ()) in
      let s, _ = Util.apply_ok s "add_type_definition(Extra)" in
      Store.save_session repo s;
      let custom = Store.load_custom repo in
      Alcotest.(check bool) "custom has the addition" true
        (Odl.Schema.mem_interface custom "Extra"))

let empty_log_on_fresh_repo () =
  with_repo (fun repo -> Alcotest.(check int) "no log" 0 (List.length (Store.load_log repo)))

let tests =
  [
    test "schema round trip" schema_roundtrip;
    test "log round trip" log_roundtrip;
    test "log comments and blanks" log_comments_and_blanks;
    test "bad logs rejected" bad_logs;
    test "session round trip" session_roundtrip;
    test "reports written" reports_written;
    test "custom schema written and parsable" custom_written_and_parsable;
    test "empty log on fresh repo" empty_log_on_fresh_repo;
  ]
