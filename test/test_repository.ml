(* The durable repository: artifact round trips, the append-only journal,
   and crash recovery.  The fault-injection sweeps crash the writer at every
   effectful syscall of generated save/append schedules (in-memory filesystem
   with write-back-cache semantics, plus a smaller sweep on the real
   filesystem) and demand that recovery always lands on a durable state with
   no exception escaping.

   Run with QCHECK_LONG=1 (the [fuzz-long] alias) for the full sweep. *)

module Store = Repository.Store
module Io = Repository.Io
module Journal = Repository.Journal

let test = Util.test

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~long_factor:10 gen f)

let tmp_dir () =
  let f = Filename.temp_file "swsd_test" "" in
  Sys.remove f;
  f

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else Sys.remove p

let with_repo f =
  let dir = tmp_dir () in
  let repo = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f repo)

let steps s =
  List.map
    (fun (st : Core.Session.step) -> (st.st_kind, st.st_op))
    (Core.Session.log s)

let steps_equal =
  List.equal (fun (k1, o1) (k2, o2) -> k1 = k2 && Core.Modop.equal o1 o2)

let entry_equal a b =
  match (a, b) with
  | Journal.Op (k1, o1), Journal.Op (k2, o2) -> k1 = k2 && Core.Modop.equal o1 o2
  | Journal.Undo, Journal.Undo -> true
  | _ -> false

let rec take n l =
  if n <= 0 then []
  else match l with [] -> [] | x :: r -> x :: take (n - 1) r

(* --- artifact round trips (whole files) ---------------------------------- *)

let schema_roundtrip () =
  with_repo (fun repo ->
      Store.save_shrinkwrap repo (Util.university ());
      Alcotest.check Util.schema_testable "round trip" (Util.university ())
        (Store.load_shrinkwrap repo))

let log_roundtrip () =
  let steps =
    [
      (Core.Concept.Wagon_wheel, Util.parse_op "add_type_definition(Lab)");
      (Core.Concept.Generalization, Util.parse_op "add_supertype(Lab, Person)");
      (Core.Concept.Aggregation,
       Util.parse_op "add_part_of_relationship(A, set<B>, parts, whole)");
      (Core.Concept.Instance_chain,
       Util.parse_op "delete_instance_of_relationship(A, insts)");
    ]
  in
  let text = Store.log_to_string steps in
  let back = Store.log_of_string text in
  Alcotest.(check int) "same length" (List.length steps) (List.length back);
  List.iter2
    (fun (k1, o1) (k2, o2) ->
      Alcotest.(check bool) "kind" true (k1 = k2);
      Alcotest.check Util.op_testable "op" o1 o2)
    steps back

let log_comments_and_blanks () =
  let parsed =
    Store.log_of_string
      "// a comment\n\n@ww add_type_definition(A);\n   \n// more\n@gh add_supertype(A, B);"
  in
  Alcotest.(check int) "two ops" 2 (List.length parsed)

let bad_logs () =
  let expect_bad text =
    match Store.log_of_string text with
    | exception Store.Bad_log _ -> ()
    | _ -> Alcotest.failf "should be rejected: %s" text
  in
  expect_bad "@zz add_type_definition(A);";
  expect_bad "@ww";
  expect_bad "@ww frobnicate(A);";
  (* an undo with nothing to undo is corruption, not a crash artifact *)
  expect_bad "@undo;"

let session_roundtrip () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.university ()) in
      let s =
        Util.apply_many s
          [ "add_type_definition(Lab)"; "delete_type_definition(Book)" ]
      in
      Store.save_session repo s;
      match Store.load_session repo with
      | Ok loaded ->
          Alcotest.check Util.schema_testable "workspace restored"
            (Core.Session.workspace s) (Core.Session.workspace loaded);
          Alcotest.(check int) "log restored" 2
            (List.length (Core.Session.log loaded))
      | Error e -> Alcotest.failf "load failed: %s" (Store.load_error_to_string e))

let reports_written () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.university ()) in
      Store.save_session repo s;
      List.iter
        (fun name ->
          let path = Filename.concat (Store.reports_dir repo) (name ^ ".txt") in
          Alcotest.(check bool) (name ^ " written") true (Sys.file_exists path))
        [ "impact"; "consistency"; "mapping" ])

let custom_written_and_parsable () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.emsl ()) in
      let s, _ = Util.apply_ok s "add_type_definition(Extra)" in
      Store.save_session repo s;
      let custom = Store.load_custom repo in
      Alcotest.(check bool) "custom has the addition" true
        (Odl.Schema.mem_interface custom "Extra"))

let empty_log_on_fresh_repo () =
  with_repo (fun repo -> Alcotest.(check int) "no log" 0 (List.length (Store.load_log repo)))

(* --- the journal ---------------------------------------------------------- *)

let kind_tags () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "tag round trips" true
        (Journal.kind_of_tag (Journal.kind_tag k) = Some k))
    [
      Core.Concept.Wagon_wheel; Core.Concept.Generalization;
      Core.Concept.Aggregation; Core.Concept.Instance_chain;
    ];
  Alcotest.(check bool) "unknown tag" true (Journal.kind_of_tag "@zz" = None)

let incremental_appends () =
  with_repo (fun repo ->
      Store.save_session repo (Util.session_of (Util.university ()));
      Store.append_step repo
        (Core.Concept.Wagon_wheel, Util.parse_op "add_type_definition(Lab)");
      Store.append_step repo
        (Core.Concept.Generalization, Util.parse_op "add_supertype(Lab, Person)");
      Store.append_undo repo;
      let text = (Store.io repo).Io.read_file (Store.log_file repo) in
      Alcotest.(check bool) "undo journalled, not rewritten" true
        (Str_contains.contains text "@undo;");
      match Store.load_session repo with
      | Ok loaded ->
          Alcotest.(check int) "undo resolved on load" 1
            (Core.Session.step_count loaded)
      | Error e -> Alcotest.fail (Store.load_error_to_string e))

let torn_tail_selfheal () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.university ()) in
      let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
      Store.save_session repo s;
      (* a crash mid-append leaves an unterminated fragment *)
      (Store.io repo).Io.append (Store.log_file repo) "@gh add_supertype(La";
      (match Store.load_session repo with
      | Ok loaded ->
          Alcotest.(check int) "torn record dropped" 1
            (Core.Session.step_count loaded)
      | Error e -> Alcotest.fail (Store.load_error_to_string e));
      (* ... and loading repaired the file for the next appender *)
      match Journal.read (Store.io repo) (Store.log_file repo) with
      | { Journal.damage = None; entries } ->
          Alcotest.(check int) "journal repaired in place" 1 (List.length entries)
      | { damage = Some d; _ } ->
          Alcotest.failf "journal not repaired: %s" (Journal.damage_to_string d))

let interior_corruption_and_fsck () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.university ()) in
      let s =
        Util.apply_many s
          [ "add_type_definition(Lab)"; "add_type_definition(Annex)" ]
      in
      Store.save_session repo s;
      let io = Store.io repo in
      let log = io.Io.read_file (Store.log_file repo) in
      (match String.index_opt log '\n' with
      | None -> Alcotest.fail "expected two records"
      | Some i ->
          io.Io.write (Store.log_file repo)
            (String.sub log 0 (i + 1)
            ^ "frobnicate the journal\n"
            ^ String.sub log (i + 1) (String.length log - i - 1)));
      (match Store.load_session repo with
      | Ok _ -> Alcotest.fail "interior corruption must not load"
      | Error (Store.Damaged { file; _ }) ->
          Alcotest.(check string) "names the journal" "log.ops" file
      | Error e ->
          Alcotest.failf "unexpected error: %s" (Store.load_error_to_string e));
      let report = Store.fsck repo in
      Alcotest.(check bool) "fsck reports the journal" true
        (List.exists
           (fun m -> Str_contains.contains m "log.ops")
           report.Store.fsck_issues);
      let report = Store.fsck ~salvage:true repo in
      (match report.Store.fsck_session with
      | Some s ->
          Alcotest.(check int) "valid prefix kept" 1 (Core.Session.step_count s)
      | None -> Alcotest.fail "salvage should recover a session");
      match Store.load_session repo with
      | Ok loaded ->
          Alcotest.(check int) "clean after salvage" 1
            (Core.Session.step_count loaded)
      | Error e ->
          Alcotest.failf "still damaged after salvage: %s"
            (Store.load_error_to_string e))

let fsck_clean () =
  with_repo (fun repo ->
      Store.save_session repo (Util.session_of (Util.university ()));
      let report = Store.fsck repo in
      Alcotest.(check (list string)) "no issues" [] report.Store.fsck_issues)

let missing_shrinkwrap () =
  with_repo (fun repo ->
      Store.append_step repo
        (Core.Concept.Wagon_wheel, Util.parse_op "add_type_definition(Lab)");
      (match Store.load_session repo with
      | Error (Store.Damaged { file; _ }) ->
          Alcotest.(check string) "names the schema" "shrinkwrap.odl" file
      | Ok _ -> Alcotest.fail "no shrink wrap schema, must not load"
      | Error e ->
          Alcotest.failf "unexpected: %s" (Store.load_error_to_string e));
      let report = Store.fsck repo in
      Alcotest.(check bool) "unrecoverable" true
        (Option.is_none report.Store.fsck_session))

let manifest_generations () =
  with_repo (fun repo ->
      let s = Util.session_of (Util.university ()) in
      Store.save_session repo s;
      (match Store.load_manifest repo with
      | Some m -> Alcotest.(check int) "first generation" 1 m.Store.m_generation
      | None -> Alcotest.fail "manifest missing");
      let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
      Store.save_session repo s;
      match Store.load_manifest repo with
      | Some m ->
          Alcotest.(check int) "generation bumped" 2 m.Store.m_generation;
          Alcotest.(check int) "ops watermark" 1 m.Store.m_ops
      | None -> Alcotest.fail "manifest missing")

let stale_tmp_swept () =
  with_repo (fun repo ->
      Store.save_session repo (Util.session_of (Util.university ()));
      let stale = Store.custom_file repo ^ Io.tmp_suffix in
      (Store.io repo).Io.write stale "half a write";
      let report = Store.fsck repo in
      Alcotest.(check bool) "tmp reported" true
        (List.exists
           (fun m -> Str_contains.contains m Io.tmp_suffix)
           report.Store.fsck_issues);
      ignore (Store.fsck ~salvage:true repo);
      Alcotest.(check bool) "tmp swept" false (Sys.file_exists stale))

let mkdir_p_nested () =
  let base = tmp_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists base then rm_rf base)
    (fun () ->
      let deep =
        Filename.concat (Filename.concat (Filename.concat base "a") "b") "c"
      in
      Io.mkdir_p Io.unix deep;
      Alcotest.(check bool) "created" true (Sys.is_directory deep);
      (* idempotent: EEXIST is success *)
      Io.mkdir_p Io.unix deep;
      Alcotest.(check bool) "still there" true (Sys.is_directory deep))

let engine_persists_incrementally () =
  with_repo (fun repo ->
      let session = Util.session_of (Util.university ()) in
      Store.save_session repo session;
      let run st line = fst (Designer.Engine.exec_line st line) in
      let st = Designer.Engine.start ~repo session in
      let st = run st "focus ww:Person" in
      let st = run st "apply add_attribute(Person, string, 12, phone)" in
      let st = run st "undo" in
      let st = run st "redo" in
      match Store.load_session repo with
      | Ok loaded ->
          Alcotest.(check int) "journal tracks the designer"
            (Core.Session.step_count st.Designer.Engine.session)
            (Core.Session.step_count loaded);
          Alcotest.check Util.schema_testable "workspace restored"
            (Core.Session.workspace st.Designer.Engine.session)
            (Core.Session.workspace loaded)
      | Error e -> Alcotest.fail (Store.load_error_to_string e))

(* --- round-trip properties (pathological names included) ------------------ *)

let log_roundtrip_prop =
  prop "op log round trips (pathological names included)"
    QCheck2.Gen.(list_size (int_range 0 8) (pair Gen.concept_kind Gen.roundtrip_op))
    (fun steps -> steps_equal steps (Store.log_of_string (Store.log_to_string steps)))

let entry_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun (k, o) -> Journal.Op (k, o)) (pair Gen.concept_kind Gen.roundtrip_op));
        (1, return Journal.Undo);
      ])

let journal_entry_roundtrip =
  prop "journal entries round trip (undo records included)"
    QCheck2.Gen.(list_size (int_range 0 8) entry_gen)
    (fun entries ->
      let p = Journal.parse (Journal.to_string entries) in
      p.Journal.damage = None && List.equal entry_equal entries p.Journal.entries)

(* Cutting the journal anywhere — the on-disk state after a torn write —
   recovers a clean prefix of the entries: a cut at a record boundary loses
   nothing, a cut inside the last record is reported as a torn tail and
   yields at most that record beyond the terminated prefix. *)
let journal_torn_prefix =
  prop "any journal prefix recovers a clean prefix of entries"
    QCheck2.Gen.(pair (list_size (int_range 1 6) entry_gen) nat)
    (fun (entries, n) ->
      let full = Journal.to_string entries in
      let cut = n mod (String.length full + 1) in
      let text = String.sub full 0 cut in
      let terminated =
        String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 text
      in
      let p = Journal.parse text in
      let m = List.length p.Journal.entries in
      let boundary = cut = 0 || text.[cut - 1] = '\n' in
      (m = terminated || ((not boundary) && m = terminated + 1))
      && List.for_all2 entry_equal (take m entries) p.Journal.entries
      &&
      if boundary then p.Journal.damage = None
      else
        match p.Journal.damage with
        | Some (Journal.Torn_tail _) -> true
        | _ -> false)

(* --- fault injection: crash at every syscall ------------------------------ *)

type action =
  | A_op of Core.Concept.kind * Core.Modop.t  (** apply + journal if accepted *)
  | A_undo  (** undo + journal if possible *)
  | A_snapshot  (** full [save_session] *)

let action_to_string = function
  | A_op (k, o) -> Journal.entry_to_line (Journal.Op (k, o))
  | A_undo -> "@undo;"
  | A_snapshot -> "(snapshot)"

let schedule_print actions =
  String.concat "  " (List.map action_to_string actions)

(* Run a schedule the way the designer does: accepted operations are
   journalled one record at a time, snapshots are whole saves.  Returns the
   resolved step list after each durable record, newest first. *)
let run_actions store session actions =
  List.fold_left
    (fun (session, states) action ->
      match action with
      | A_op (kind, op) -> (
          match Core.Session.apply session ~kind op with
          | Ok (s, _) ->
              Store.append_step store (kind, op);
              (s, steps s :: states)
          | Error _ -> (session, states))
      | A_undo -> (
          match Core.Session.undo session with
          | Some s ->
              Store.append_undo store;
              (s, steps s :: states)
          | None -> (session, states))
      | A_snapshot ->
          Store.save_session store session;
          (session, states))
    (session, []) actions

(* Crash the writer at effectful syscall [k] of [actions] (the setup save is
   not faulted), let the write-back cache lose or tear whatever was not yet
   fsync'd, and demand that the repository reloads onto a durable state of
   the schedule with a clean journal. *)
let mem_sweep actions =
  let fresh () =
    let mem = Io.mem_create () in
    let io = Io.mem_io mem in
    let store = Store.open_dir ~io "/repo" in
    Store.save_session store (Util.session_of (Util.university ()));
    (mem, io)
  in
  let _, io = fresh () in
  let counted, total = Io.counting io in
  let _, states =
    run_actions
      (Store.open_dir ~io:counted "/repo")
      (Util.session_of (Util.university ()))
      actions
  in
  let timeline = [] :: List.rev states in
  for k = 0 to total () - 1 do
    let mem, io = fresh () in
    let faulty_io, _ = Io.faulty ~crash_at:k io in
    (try
       ignore
         (run_actions
            (Store.open_dir ~io:faulty_io "/repo")
            (Util.session_of (Util.university ()))
            actions)
     with Io.Crash -> ());
    (* power loss: un-fsync'd data survives in full, torn, or not at all *)
    Io.mem_crash ~flush:k mem;
    let store = Store.open_dir ~io "/repo" in
    (match Store.load_session store with
    | Error e ->
        QCheck2.Test.fail_reportf "crash at syscall %d: repository unreadable: %s"
          k
          (Store.load_error_to_string e)
    | Ok s ->
        if not (List.exists (steps_equal (steps s)) timeline) then
          QCheck2.Test.fail_reportf
            "crash at syscall %d: recovered %d step(s), not a durable state" k
            (List.length (steps s)));
    match Journal.read io (Store.log_file store) with
    | { Journal.damage = None; _ } -> ()
    | { damage = Some d; _ } ->
        QCheck2.Test.fail_reportf "crash at syscall %d: journal still damaged: %s"
          k
          (Journal.damage_to_string d)
  done;
  true

let schedule_gen =
  let open QCheck2.Gen in
  let u = Util.university () in
  list_size (int_range 1 6)
    (frequency
       [
         (6, map (fun (k, o) -> A_op (k, o)) (pair Gen.concept_kind (Gen.plausible_op u)));
         (2, return A_undo);
         (1, return A_snapshot);
       ])

let crash_sweep =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"crash at every syscall recovers a durable state (mem fs)"
       ~count:10 ~long_factor:50 ~print:schedule_print schedule_gen mem_sweep)

(* The same harness over the real filesystem: a fixed schedule, a fresh
   directory per crash point. *)
let disk_crash_sweep () =
  let actions =
    [
      A_op (Core.Concept.Wagon_wheel, Util.parse_op "add_type_definition(Lab)");
      A_op
        (Core.Concept.Wagon_wheel,
         Util.parse_op "add_attribute(Lab, string, 40, title)");
      A_undo;
      A_snapshot;
      A_op
        (Core.Concept.Generalization, Util.parse_op "add_supertype(Lab, Person)");
    ]
  in
  let with_dir f =
    let dir = tmp_dir () in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
      (fun () -> f dir)
  in
  let setup dir =
    let store = Store.open_dir dir in
    Store.save_session store (Util.session_of (Util.university ()));
    store
  in
  let total, timeline =
    with_dir (fun dir ->
        ignore (setup dir);
        let counted, total = Io.counting Io.unix in
        let _, states =
          run_actions
            (Store.open_dir ~io:counted dir)
            (Util.session_of (Util.university ()))
            actions
        in
        (total (), [] :: List.rev states))
  in
  Alcotest.(check int) "every action lands a durable record" 5
    (List.length timeline);
  for k = 0 to total - 1 do
    with_dir (fun dir ->
        ignore (setup dir);
        let faulty_io, _ = Io.faulty ~crash_at:k Io.unix in
        (try
           ignore
             (run_actions
                (Store.open_dir ~io:faulty_io dir)
                (Util.session_of (Util.university ()))
                actions)
         with Io.Crash -> ());
        match Store.load_session (Store.open_dir dir) with
        | Error e ->
            Alcotest.failf "crash at syscall %d: %s" k
              (Store.load_error_to_string e)
        | Ok s ->
            Alcotest.(check bool)
              (Printf.sprintf "crash at syscall %d lands on the timeline" k)
              true
              (List.exists (steps_equal (steps s)) timeline))
  done

let tests =
  [
    test "schema round trip" schema_roundtrip;
    test "log round trip" log_roundtrip;
    test "log comments and blanks" log_comments_and_blanks;
    test "bad logs rejected" bad_logs;
    test "session round trip" session_roundtrip;
    test "reports written" reports_written;
    test "custom schema written and parsable" custom_written_and_parsable;
    test "empty log on fresh repo" empty_log_on_fresh_repo;
    test "concept tags round trip" kind_tags;
    test "incremental appends and journalled undo" incremental_appends;
    test "torn journal tail self-heals" torn_tail_selfheal;
    test "interior corruption detected and salvaged" interior_corruption_and_fsck;
    test "fsck on a clean repository" fsck_clean;
    test "missing shrink wrap schema" missing_shrinkwrap;
    test "manifest generations" manifest_generations;
    test "stale temporary files swept" stale_tmp_swept;
    test "mkdir_p nests and tolerates EEXIST" mkdir_p_nested;
    test "designer persists incrementally" engine_persists_incrementally;
    log_roundtrip_prop;
    journal_entry_roundtrip;
    journal_torn_prefix;
    crash_sweep;
    test "crash at every syscall recovers (real fs)" disk_crash_sweep;
  ]
