module Schema = Odl.Schema

let test = Util.test

let u = Util.university

let lookups () =
  let s = u () in
  Alcotest.(check bool) "find present" true
    (Option.is_some (Schema.find_interface s "Person"));
  Alcotest.(check bool) "find absent" true
    (Option.is_none (Schema.find_interface s "Nope"));
  Alcotest.check_raises "get absent" (Schema.Unknown_interface "Nope") (fun () ->
      ignore (Schema.get_interface s "Nope"))

let member_lookups () =
  let s = u () in
  let student = Schema.get_interface s "Student" in
  Alcotest.(check bool) "attr" true (Schema.has_attr student "gpa");
  Alcotest.(check bool) "no attr" false (Schema.has_attr student "name");
  Alcotest.(check bool) "rel" true (Schema.has_rel student "takes");
  Alcotest.(check bool) "op" true (Schema.has_op student "in_good_standing")

let updates () =
  let s = u () in
  let s' =
    Schema.update_interface s "Person" (fun i ->
        { i with i_extent = Some "persons" })
  in
  Alcotest.(check (option string)) "updated" (Some "persons")
    (Schema.get_interface s' "Person").i_extent;
  Alcotest.(check (option string)) "original untouched" (Some "people")
    (Schema.get_interface s "Person").i_extent;
  Alcotest.check_raises "update absent" (Schema.Unknown_interface "Nope")
    (fun () -> ignore (Schema.update_interface s "Nope" Fun.id))

let add_remove () =
  let s = u () in
  let s' = Schema.add_interface s (Odl.Types.empty_interface "Fresh") in
  Alcotest.(check bool) "added" true (Schema.mem_interface s' "Fresh");
  let s'' = Schema.remove_interface s' "Fresh" in
  Alcotest.(check bool) "removed" false (Schema.mem_interface s'' "Fresh")

let hierarchy () =
  let s = u () in
  Alcotest.(check (list string)) "direct supers" [ "Student" ]
    (Schema.direct_supertypes s "Graduate");
  Alcotest.(check (list string)) "direct subs"
    [ "Nonthesis_Masters"; "Thesis_Masters"; "Doctoral" ]
    (Schema.direct_subtypes s "Graduate");
  Alcotest.(check (list string)) "ancestors" [ "Student"; "Person" ]
    (Schema.ancestors s "Graduate");
  Alcotest.(check bool) "descendants include leaf" true
    (List.mem "Doctoral" (Schema.descendants s "Person"));
  Alcotest.(check bool) "roots" true (List.mem "Person" (Schema.isa_roots s));
  Alcotest.(check bool) "subtype not root" false
    (List.mem "Student" (Schema.isa_roots s))

let isa_line () =
  let s = u () in
  let check a b expected =
    Alcotest.(check bool)
      (a ^ "/" ^ b) expected (Schema.same_isa_line s a b)
  in
  check "Person" "Doctoral" true;
  check "Doctoral" "Person" true;
  check "Person" "Person" true;
  check "Undergraduate" "Graduate" false;
  check "Employee" "Student" false;
  check "Faculty" "Person" true

let visibility () =
  let s = u () in
  let names l = List.map (fun a -> a.Odl.Types.attr_name) l in
  let visible = names (Schema.visible_attrs s "Doctoral") in
  Alcotest.(check bool) "inherits name" true (List.mem "name" visible);
  Alcotest.(check bool) "inherits gpa" true (List.mem "gpa" visible);
  Alcotest.(check bool) "own attr" true (List.mem "dissertation_title" visible);
  Alcotest.(check bool) "not sibling's" false
    (List.mem "class_year" visible);
  let rels = Schema.visible_rels s "Faculty" in
  Alcotest.(check bool) "inherited rel" true
    (List.exists (fun r -> r.Odl.Types.rel_name = "works_in_a") rels)

let shadowing () =
  let s =
    Util.parse
      "interface A { attribute int x; }; interface B : A { attribute float x; \
       };"
  in
  let visible = Schema.visible_attrs s "B" in
  Alcotest.(check int) "one x" 1
    (List.length (List.filter (fun a -> a.Odl.Types.attr_name = "x") visible));
  let x = List.find (fun a -> a.Odl.Types.attr_name = "x") visible in
  Alcotest.(check bool) "subtype wins" true (x.attr_type = Odl.Types.D_float)

let targeting_and_inverse () =
  let s = u () in
  let incoming = Schema.relationships_targeting s "Course_Offering" in
  Alcotest.(check bool) "takes targets offerings" true
    (List.exists (fun (_, r) -> r.Odl.Types.rel_name = "takes") incoming);
  let co = Schema.get_interface s "Course_Offering" in
  let books = Option.get (Schema.find_rel co "books") in
  match Schema.inverse_of s books with
  | Some (owner, inv) ->
      Alcotest.(check string) "inverse owner" "Book" owner.i_name;
      Alcotest.(check string) "inverse path" "book_for" inv.rel_name
  | None -> Alcotest.fail "inverse should resolve"

let counting () =
  let s = u () in
  let a, r, o = Schema.count_constructs s in
  Alcotest.(check bool) "attrs" true (a > 20);
  Alcotest.(check bool) "rels" true (r > 15);
  Alcotest.(check bool) "ops" true (o > 3);
  Alcotest.(check int) "size is the sum" (List.length s.s_interfaces + a + r + o)
    (Schema.size s)

let cycle_safety () =
  (* deliberately cyclic ISA graph: the traversals must terminate *)
  let s = Util.parse "interface A : B { }; interface B : A { };" in
  Alcotest.(check bool) "ancestors terminate" true
    (List.length (Schema.ancestors s "A") <= 2);
  Alcotest.(check bool) "descendants terminate" true
    (List.length (Schema.descendants s "A") <= 2)

let tests =
  [
    test "interface lookups" lookups;
    test "member lookups" member_lookups;
    test "functional updates" updates;
    test "add and remove" add_remove;
    test "hierarchy queries" hierarchy;
    test "same ISA line" isa_line;
    test "visibility with inheritance" visibility;
    test "attribute shadowing" shadowing;
    test "targeting and inverse" targeting_and_inverse;
    test "construct counting" counting;
    test "cycle safety" cycle_safety;
  ]
