(* Schema differencing: inferred logs must replay to the target. *)

let test = Util.test

let infer a b = Core.Diff.infer ~original:a ~target:b

let check_converges name a b =
  let steps, reached, converged = infer a b in
  if not converged then
    Alcotest.failf "%s: inferred log does not converge;\nreached:\n%s\nwanted:\n%s"
      name
      (Odl.Printer.schema_to_string reached)
      (Odl.Printer.schema_to_string b);
  (* the log must also replay through a fresh session *)
  match Core.Oplog.replay a steps with
  | Ok session ->
      Alcotest.check Util.schema_testable (name ^ " replay")
        b
        (Core.Session.workspace session);
      steps
  | Error e -> Alcotest.failf "%s: replay failed: %s" name (Core.Apply.error_to_string e)

let identity () =
  let u = Util.university () in
  let steps = check_converges "identity" u u in
  Alcotest.(check int) "empty log" 0 (List.length steps)

let single_deletion () =
  let u = Util.university () in
  let b = fst (Core.Propagate.repair (Odl.Schema.remove_interface u "Book")) in
  let steps = check_converges "deletion" u b in
  Alcotest.(check bool) "one delete op" true
    (List.exists
       (fun (_, op) -> op = Core.Modop.Delete_type_definition "Book")
       steps)

let attribute_changes () =
  let a =
    Util.parse
      "interface P { attribute int x; attribute string<10> y; };\n\
       interface Q : P { attribute float z; };"
  in
  let b =
    Util.parse
      "interface P { attribute float x; attribute string<20> y; attribute \
       float z; };\n\
       interface Q : P { attribute boolean w; };"
  in
  let steps = check_converges "attributes" a b in
  (* z moved up the hierarchy, so a move op (not delete+add) is inferred *)
  Alcotest.(check bool) "move inferred" true
    (List.exists
       (fun (_, op) -> op = Core.Modop.Modify_attribute ("Q", "z", "P"))
       steps)

let relationship_changes () =
  let a =
    Util.parse
      {|interface Person { };
        interface Employee : Person { relationship Dept works_in inverse Dept::has; };
        interface Dept { relationship set<Employee> has inverse Employee::works_in; };|}
  in
  let b =
    Util.parse
      {|interface Person { relationship Dept works_in inverse Dept::has; };
        interface Employee : Person { };
        interface Dept { relationship set<Person> has inverse Person::works_in; };|}
  in
  let steps = check_converges "figure 8 inverse" a b in
  Alcotest.(check bool) "target move inferred" true
    (List.exists
       (fun (_, op) ->
         op
         = Core.Modop.Modify_relationship_target_type
             ("Dept", "has", "Employee", "Person"))
       steps)

let relationship_addition_and_cardinality () =
  let a = Util.parse "interface A { }; interface B { };" in
  let b =
    Util.parse
      {|interface A { relationship set<B> bs inverse B::a_of order_by (x); };
        interface B { attribute int x; relationship set<A> a_of inverse A::bs; };|}
  in
  ignore (check_converges "rel addition" a b)

let part_of_changes () =
  let a = Util.lumber () in
  let s = Util.session_of a in
  let s =
    Util.apply_many ~kind:Core.Concept.Aggregation s
      [
        "modify_part_of_cardinality(Framing, studs, set, list)";
        "delete_part_of_relationship(Roof, tar_paper)";
      ]
  in
  let b = Core.Session.workspace s in
  ignore (check_converges "part-of changes" a b)

let extent_and_keys () =
  let a = Util.parse "interface A { extent as_; attribute int x; key x; };" in
  let b =
    Util.parse
      "interface A { extent all_as; attribute int x; attribute int y; key (x, y); };"
  in
  let steps = check_converges "extent and keys" a b in
  Alcotest.(check bool) "extent modify" true
    (List.exists
       (fun (_, op) -> op = Core.Modop.Modify_extent_name ("A", "as_", "all_as"))
       steps)

let supertype_rewiring () =
  let a =
    Util.parse "interface A { }; interface B { }; interface C : A { };"
  in
  let b =
    Util.parse "interface A { }; interface B { }; interface C : B { };"
  in
  ignore (check_converges "supertype rewiring" a b)

let acedb_to_aatdb () =
  let steps =
    check_converges "ACEDB to AAtDB" (Schemas.Genome.acedb_v ())
      (Schemas.Genome.aatdb_v ())
  in
  Alcotest.(check bool) "strain deleted" true
    (List.exists
       (fun (_, op) -> op = Core.Modop.Delete_type_definition "Strain")
       steps);
  Alcotest.(check bool) "phenotype added" true
    (List.exists
       (fun (_, op) -> op = Core.Modop.Add_type_definition "Phenotype")
       steps)

let acedb_to_sacchdb () =
  ignore
    (check_converges "ACEDB to SacchDB" (Schemas.Genome.acedb_v ())
       (Schemas.Genome.sacchdb_v ()))

let cross_example_diffs () =
  (* even unrelated schemas must diff: everything deleted, everything added *)
  ignore (check_converges "university to emsl" (Util.university ()) (Util.emsl ()));
  ignore (check_converges "emsl to lumber" (Util.emsl ()) (Util.lumber ()))

let kinds_respect_permissions () =
  let steps, _, _ = infer (Schemas.Genome.acedb_v ()) (Schemas.Genome.aatdb_v ()) in
  List.iter
    (fun (kind, op) ->
      Alcotest.(check bool)
        (Core.Modop.name op ^ " permitted in its kind")
        true
        (Result.is_ok (Core.Permission.allowed kind op)))
    steps

let tests =
  [
    test "identity diff is empty" identity;
    test "single deletion" single_deletion;
    test "attribute changes and moves" attribute_changes;
    test "relationship target move" relationship_changes;
    test "relationship addition with order_by" relationship_addition_and_cardinality;
    test "part-of changes" part_of_changes;
    test "extent and key changes" extent_and_keys;
    test "supertype rewiring" supertype_rewiring;
    test "ACEDB to AAtDB" acedb_to_aatdb;
    test "ACEDB to SacchDB" acedb_to_sacchdb;
    test "cross-example diffs" cross_example_diffs;
    test "inferred kinds respect permissions" kinds_respect_permissions;
  ]
