(* Figure renderings: deterministic text the paper's figures map onto. *)

let test = Util.test

let contains = Str_contains.contains

let concept_of schema id =
  Option.get (Core.Decompose.find (Core.Decompose.decompose schema) id)

let figure3_wagon_wheel () =
  let u = Util.university () in
  let text = Core.Render.concept u (concept_of u "ww:Course_Offering") in
  List.iter
    (fun frag -> Alcotest.(check bool) ("has " ^ frag) true (contains text frag))
    [
      "wagon wheel: Course_Offering";
      "attr  room : string<20>";
      "described_by --> Syllabus";
      "books --> Book [set]";
      "(instance-of) offering_of --> Course";
      "average_grade(string term) : float";
    ]

let figure4_generalization () =
  let u = Util.university () in
  let text = Core.Render.concept u (concept_of u "gh:Person") in
  Alcotest.(check bool) "header" true
    (contains text "generalization hierarchy: Person");
  (* indentation encodes depth *)
  Alcotest.(check bool) "depth one" true (contains text "\n  Student\n");
  Alcotest.(check bool) "depth two" true (contains text "\n    Graduate\n");
  Alcotest.(check bool) "depth three" true (contains text "\n      Doctoral\n")

let figure5_aggregation () =
  let l = Util.lumber () in
  let text = Core.Render.concept l (concept_of l "ah:House") in
  Alcotest.(check bool) "root" true (contains text "aggregation hierarchy: House");
  Alcotest.(check bool) "nested part" true (contains text "\n      Tar_Paper\n")

let figure6_instance_chain () =
  let e = Util.emsl () in
  let text = Core.Render.concept e (concept_of e "ih:Application") in
  Alcotest.(check bool) "arrow" true (contains text "| instance-of (versions)");
  Alcotest.(check bool) "chain tail" true (contains text "Installed_Version")

let object_type_graph () =
  let text = Core.Render.object_type_graph (Schemas.Genome.acedb_v ()) in
  Alcotest.(check bool) "schema name" true (contains text "object types of ACEDB");
  Alcotest.(check bool) "links listed" true (contains text "loci --> Locus [set]")

let summary_line () =
  let text = Core.Render.summary (Util.university ()) in
  Alcotest.(check bool) "counts present" true
    (contains text "15 object types")

let incoming_spokes () =
  let u = Util.university () in
  let text = Core.Render.concept u (concept_of u "ww:Syllabus") in
  Alcotest.(check bool) "incoming spoke shown" true
    (contains text "<-- Course_Offering.described_by")

let rendering_is_deterministic () =
  let u = Util.university () in
  let c = concept_of u "ww:Course_Offering" in
  Alcotest.(check string) "stable" (Core.Render.concept u c)
    (Core.Render.concept u c)

let tests =
  [
    test "figure 3: wagon wheel" figure3_wagon_wheel;
    test "figure 4: generalization" figure4_generalization;
    test "figure 5: aggregation" figure5_aggregation;
    test "figure 6: instance chain" figure6_instance_chain;
    test "figures 9-11: object type graph" object_type_graph;
    test "summary line" summary_line;
    test "incoming spokes" incoming_spokes;
    test "rendering is deterministic" rendering_is_deterministic;
  ]
