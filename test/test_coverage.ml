(* Completeness of the operation set over the ODL candidates (the paper's
   section 3.5 argument, checked mechanically). *)

open Core.Coverage

let test = Util.test

let ops_named_exist () =
  (* every operation the tables name is an operation of the language *)
  List.iter
    (fun op ->
      Alcotest.(check bool) (op ^ " exists") true
        (List.mem op Core.Permission.all_op_names))
    named_ops

let language_fully_used () =
  (* every operation of the language appears in the candidate tables *)
  List.iter
    (fun op ->
      Alcotest.(check bool) (op ^ " used by some candidate") true
        (List.mem op named_ops))
    Core.Permission.all_op_names

let every_candidate_addable_and_deletable () =
  List.iter
    (fun row ->
      Alcotest.(check bool) (row.field ^ " has add") true
        (String.length row.add_op > 0);
      Alcotest.(check bool) (row.field ^ " has delete") true
        (String.length row.delete_op > 0);
      (* delete is the symmetric form of add *)
      Alcotest.(check bool)
        (row.field ^ " delete mirrors add")
        true
        ("delete" ^ String.sub row.add_op 3 (String.length row.add_op - 3)
        = row.delete_op))
    candidates

let name_rows_have_no_modify () =
  (* name equivalence: names of constructs are never modified *)
  List.iter
    (fun row ->
      if row.field = "Name" || row.field = "Type name"
         || row.field = "Traversal path name" || row.field = "Inverse path name"
      then
        Alcotest.(check bool) (row.group ^ "/" ^ row.field ^ " unmodifiable") true
          (row.modify_op = None)
      else
        Alcotest.(check bool) (row.group ^ "/" ^ row.field ^ " modifiable") true
          (row.modify_op <> None))
    candidates

let table_shapes () =
  let n = List.length candidates in
  Alcotest.(check int) "addition rows" n (List.length addition_table);
  Alcotest.(check int) "deletion rows" n (List.length deletion_table);
  Alcotest.(check int) "modification rows" n (List.length modification_table);
  Alcotest.(check bool) "candidate set is substantial" true (n >= 25)

let groups_cover_odl () =
  let groups = List.sort_uniq compare (List.map (fun r -> r.group) candidates) in
  List.iter
    (fun g ->
      Alcotest.(check bool) (g ^ " present") true (List.mem g groups))
    [
      "Interface Definition"; "Type Properties"; "Attribute"; "Relationship";
      "Operation"; "Part-of Relationship"; "Instance-of Relationship";
    ]

let modification_table_marks_name_rows () =
  let marked =
    List.filter (fun (_, _, op) -> Str_contains.contains op "name equivalence")
      modification_table
  in
  Alcotest.(check int) "name rows marked" 9 (List.length marked)

let tests =
  [
    test "named operations exist in the language" ops_named_exist;
    test "the whole language is used" language_fully_used;
    test "every candidate has add and delete" every_candidate_addable_and_deletable;
    test "name rows have no modify (name equivalence)" name_rows_have_no_modify;
    test "table shapes" table_shapes;
    test "groups cover ODL" groups_cover_odl;
    test "modification table marks name rows" modification_table_marks_name_rows;
  ]
