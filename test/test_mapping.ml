open Core.Mapping

let test = Util.test

let status_of m construct =
  match
    List.find_opt (fun e -> Core.Change.equal_construct e.m_construct construct) m.entries
  with
  | Some e -> e.m_status
  | None -> Alcotest.failf "no mapping entry for %s" (Core.Change.construct_to_string construct)

let identity_mapping () =
  let u = Util.university () in
  let m = compute ~original:u ~custom:u in
  Alcotest.(check bool) "all preserved" true
    (List.for_all (fun e -> e.m_status = Preserved) m.entries);
  Alcotest.(check int) "nothing added" 0 (List.length m.added)

let entry_totality () =
  (* exactly one entry per shrink-wrap construct *)
  let u = Util.university () in
  let m = compute ~original:u ~custom:u in
  let a, r, o = Odl.Schema.count_constructs u in
  Alcotest.(check int) "entries = interfaces + members"
    (List.length u.s_interfaces + a + r + o)
    (List.length m.entries)

let deleted_constructs () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "delete_attribute(Person, birthdate)" in
  let m = Core.Session.mapping s in
  Alcotest.(check bool) "deleted" true
    (status_of m (Core.Change.C_attribute ("Person", "birthdate")) = Deleted)

let modified_interface () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "modify_extent_name(Person, people, persons)" in
  let m = Core.Session.mapping s in
  match status_of m (Core.Change.C_interface "Person") with
  | Modified aspects ->
      Alcotest.(check (list string)) "extent changed" [ "extent" ] aspects
  | other -> Alcotest.failf "expected Modified, got %s" (status_to_string other)

let modified_attribute () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "modify_attribute_type(Student, gpa, float, int)" in
  let m = Core.Session.mapping s in
  match status_of m (Core.Change.C_attribute ("Student", "gpa")) with
  | Modified aspects -> Alcotest.(check (list string)) "type" [ "type" ] aspects
  | other -> Alcotest.failf "expected Modified, got %s" (status_to_string other)

let moved_attribute () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok ~kind:Core.Concept.Generalization s
      "modify_attribute(Student, gpa, Person)"
  in
  let m = Core.Session.mapping s in
  Alcotest.(check bool) "moved to Person" true
    (status_of m (Core.Change.C_attribute ("Student", "gpa")) = Moved "Person")

let moved_and_modified () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok ~kind:Core.Concept.Generalization s
      "modify_attribute(Student, gpa, Person)"
  in
  let s, _ = Util.apply_ok s "modify_attribute_type(Person, gpa, float, int)" in
  let m = Core.Session.mapping s in
  match status_of m (Core.Change.C_attribute ("Student", "gpa")) with
  | Moved_and_modified ("Person", [ "type" ]) -> ()
  | other -> Alcotest.failf "expected moved+modified, got %s" (status_to_string other)

let moved_relationship_end () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok ~kind:Core.Concept.Generalization s
      "modify_relationship_target_type(Department, has, Employee, Person)"
  in
  let m = Core.Session.mapping s in
  (match status_of m (Core.Change.C_relationship ("Department", "has")) with
  | Modified aspects ->
      Alcotest.(check bool) "target changed" true (List.mem "target type" aspects)
  | other -> Alcotest.failf "expected Modified, got %s" (status_to_string other));
  Alcotest.(check bool) "inverse moved" true
    (status_of m (Core.Change.C_relationship ("Employee", "works_in_a")) = Moved "Person")

let added_constructs () =
  let s = Util.session_of (Util.university ()) in
  let s =
    Util.apply_many s
      [ "add_type_definition(Lab)"; "add_attribute(Lab, int, none, room_count)";
        "add_attribute(Person, string, 12, phone)" ]
  in
  let m = Core.Session.mapping s in
  let added c = List.exists (Core.Change.equal_construct c) m.added in
  Alcotest.(check bool) "interface" true (added (Core.Change.C_interface "Lab"));
  Alcotest.(check bool) "attr on new type" true
    (added (Core.Change.C_attribute ("Lab", "room_count")));
  Alcotest.(check bool) "attr on old type" true
    (added (Core.Change.C_attribute ("Person", "phone")));
  Alcotest.(check bool) "old attrs not added" false
    (added (Core.Change.C_attribute ("Person", "name")))

let summary_totals () =
  let s = Util.session_of (Util.university ()) in
  let s =
    Util.apply_many s
      [ "delete_type_definition(Book)"; "add_type_definition(Lab)" ]
  in
  let m = Core.Session.mapping s in
  let p, md, mv, d, a = summary m in
  Alcotest.(check int) "partition totals" (List.length m.entries) (p + md + mv + d);
  Alcotest.(check int) "added" (List.length m.added) a;
  Alcotest.(check bool) "book attrs deleted" true (d >= 4)

let deleted_interface_members_deleted () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "delete_type_definition(Book)" in
  let m = Core.Session.mapping s in
  Alcotest.(check bool) "interface deleted" true
    (status_of m (Core.Change.C_interface "Book") = Deleted);
  Alcotest.(check bool) "member attr deleted" true
    (status_of m (Core.Change.C_attribute ("Book", "isbn")) = Deleted)

let report_renders () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "delete_attribute(Person, birthdate)" in
  let text = Core.Session.mapping_report s in
  Alcotest.(check bool) "mentions deletion" true
    (Str_contains.contains text "attribute Person.birthdate: deleted")

let tests =
  [
    test "identity mapping" identity_mapping;
    test "entry totality" entry_totality;
    test "deleted constructs" deleted_constructs;
    test "modified interface" modified_interface;
    test "modified attribute" modified_attribute;
    test "moved attribute" moved_attribute;
    test "moved and modified" moved_and_modified;
    test "moved relationship end" moved_relationship_end;
    test "added constructs" added_constructs;
    test "summary totals" summary_totals;
    test "deleted interface members" deleted_interface_members_deleted;
    test "report renders" report_renders;
  ]
