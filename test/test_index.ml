(* Differential tests of the indexed schema core against the naive
   reference: Schema_index's incremental checking vs Odl.Validate.check,
   and Apply.Indexed vs the naive Apply engine.  Equality is demanded on
   everything observable — acceptance, error messages, resulting workspace,
   impact events, the full diagnostics list, and decompositions.

   Run with QCHECK_LONG=1 (the [fuzz-long] alias) for a 10x deeper pass. *)

open Odl.Types
module Apply = Core.Apply
module Index = Core.Schema_index
module Validate = Odl.Validate

let prop name ?(count = 500) gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~long_factor:10 gen f)

let diags_equal = List.equal Validate.equal_diagnostic

(* 1. a freshly built index reports exactly the naive checker's
   diagnostics, in the same order, with the same messages *)
let fresh_diagnostics_agree =
  prop "fresh index diagnostics = naive check" Gen.any_synth_schema (fun s ->
      diags_equal (Index.diagnostics (Index.build s)) (Validate.check s))

(* 2. same on deliberately broken schemas: dropping a random interface
   without repair leaves dangling supertypes, relationship targets and
   unpaired inverses — the checkers must agree on invalid input too *)
let broken_diagnostics_agree =
  let gen =
    QCheck2.Gen.(
      let* s = Gen.any_synth_schema in
      let* k = int_bound (max 0 (List.length s.s_interfaces - 1)) in
      return
        { s with s_interfaces = List.filteri (fun i _ -> i <> k) s.s_interfaces })
  in
  prop "broken-schema diagnostics agree" gen (fun s ->
      diags_equal (Index.diagnostics (Index.build s)) (Validate.check s))

(* 3. incremental re-check: after warming the diagnostics cache, mutate the
   index directly (bypassing the engine's validity gate) and compare the
   dirty-set re-check against a full naive check of the updated schema *)
let incremental_diagnostics_agree =
  let gen = QCheck2.Gen.(pair Gen.any_synth_schema (int_range 0 9999)) in
  prop "incremental re-check after raw index updates" gen (fun (s, r) ->
      let idx = Index.build s in
      ignore (Index.diagnostics idx);
      let names = Odl.Schema.interface_names s in
      let victim = List.nth names (r mod List.length names) in
      (* duplicate every attribute of the victim: naming errors appear *)
      let dup =
        Index.update_interface idx victim (fun i ->
            { i with i_attrs = i.i_attrs @ i.i_attrs })
      in
      (* remove the victim outright: dangling references appear *)
      let removed = Index.remove_interface idx victim in
      diags_equal (Index.diagnostics dup) (Validate.check (Index.schema dup))
      && diags_equal (Index.diagnostics removed)
           (Validate.check (Index.schema removed)))

(* 4. the engines agree on every step of an operation workload: both accept
   with identical workspace, events and diagnostics, or both reject with
   identical error messages.  Applies each accepted step and continues, so
   later steps run against customized workspaces. *)
let engines_agree =
  prop "indexed engine = naive engine over op sequences" Gen.schema_and_ops
    (fun (schema, steps) ->
      let orig_idx = Index.build schema in
      let rec go ws idx = function
        | [] -> true
        | (kind, op) :: rest -> (
            let naive = Apply.apply ~original:schema ~kind ws op in
            let indexed = Apply.Indexed.apply ~original:orig_idx ~kind idx op in
            match (naive, indexed) with
            | Error e, Error e' ->
                Apply.error_to_string e = Apply.error_to_string e'
                && go ws idx rest
            | Ok (ws', evs), Ok (idx', evs') ->
                equal_schema ws' (Index.schema idx')
                && List.equal Core.Change.equal_event evs evs'
                && diags_equal (Validate.check ws') (Index.diagnostics idx')
                && go ws' idx' rest
            | Ok _, Error _ | Error _, Ok _ -> false)
      in
      go schema orig_idx steps)

(* 5. a paranoid session survives whole workloads (its per-op cross-check
   raises Divergence on any disagreement), including undo/redo, and its
   incremental consistency report equals a fresh naive check *)
let paranoid_session_agrees =
  prop "paranoid session never diverges" Gen.schema_and_ops
    (fun (schema, steps) ->
      match Core.Session.create ~paranoid:true schema with
      | Error _ -> false (* synthetic schemas are valid *)
      | Ok session ->
          let s =
            List.fold_left
              (fun s (kind, op) ->
                match Core.Session.apply s ~kind op with
                | Ok (s', _) -> s'
                | Error _ -> s)
              session steps
          in
          let s = match Core.Session.undo s with Some s' -> s' | None -> s in
          let s =
            match Core.Session.redo s with Some (s', _) -> s' | None -> s
          in
          diags_equal
            (Core.Session.consistency_report s)
            (Validate.check (Core.Session.workspace s)))

(* 6. both backends produce the identical concept-schema list, initially
   and after every accepted operation *)
let decompositions_agree =
  prop "indexed decompose = naive decompose" Gen.schema_and_ops
    (fun (schema, steps) ->
      let agree idx =
        List.equal Core.Concept.equal
          (Core.Decompose.decompose (Index.schema idx))
          (Core.Decompose.Indexed.decompose idx)
      in
      let orig_idx = Index.build schema in
      let rec go idx = function
        | [] -> true
        | (kind, op) :: rest -> (
            match Apply.Indexed.apply ~original:orig_idx ~kind idx op with
            | Error _ -> go idx rest
            | Ok (idx', _) -> agree idx' && go idx' rest)
      in
      agree orig_idx && go orig_idx steps)

(* 7. seed schemas: the named examples and fixed-size synthetic schemas,
   checked deterministically *)
let seed_case name schema =
  Alcotest.test_case name `Quick (fun () ->
      let idx = Index.build schema in
      Alcotest.(check bool)
        "diagnostics agree" true
        (diags_equal (Index.diagnostics idx) (Validate.check schema));
      Alcotest.(check bool)
        "decompositions agree" true
        (List.equal Core.Concept.equal
           (Core.Decompose.decompose schema)
           (Core.Decompose.Indexed.decompose idx)))

let seed_units =
  seed_case "university seed" (Schemas.University.v ())
  :: seed_case "emsl seed" (Schemas.Emsl.v ())
  :: List.map
       (fun n ->
         seed_case
           (Printf.sprintf "synthetic seed n=%d" n)
           (Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:n)))
       [ 10; 25; 50 ]

let tests =
  [
    fresh_diagnostics_agree;
    broken_diagnostics_agree;
    incremental_diagnostics_agree;
    engines_agree;
    paranoid_session_agrees;
    decompositions_agree;
  ]
  @ seed_units
