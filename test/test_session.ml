module Session = Core.Session

let test = Util.test

let create_rejects_invalid () =
  match Session.create (Util.parse "interface A : Ghost { };") with
  | Ok _ -> Alcotest.fail "invalid shrink wrap schema must be rejected"
  | Error ds -> Alcotest.(check bool) "diagnostics returned" true (ds <> [])

let create_keeps_original () =
  let u = Util.university () in
  let s = Util.session_of u in
  let s, _ = Util.apply_ok s "delete_type_definition(Book)" in
  Alcotest.check Util.schema_testable "original untouched" u (Session.original s);
  Alcotest.(check bool) "workspace differs" false
    (Core.Recompose.equal_content u (Session.workspace s))

let undo_restores () =
  let s0 = Util.session_of (Util.university ()) in
  let s1, _ = Util.apply_ok s0 "delete_type_definition(Book)" in
  match Session.undo s1 with
  | None -> Alcotest.fail "undo should be available"
  | Some s2 ->
      Alcotest.check Util.schema_testable "workspace restored"
        (Session.workspace s0) (Session.workspace s2);
      Alcotest.(check int) "log popped" 0 (List.length (Session.log s2))

let undo_empty () =
  let s = Util.session_of (Util.university ()) in
  Alcotest.(check bool) "nothing to undo" true (Option.is_none (Session.undo s))

let undo_is_lifo () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(A1)" in
  let s, _ = Util.apply_ok s "add_type_definition(A2)" in
  let s = Option.get (Session.undo s) in
  Alcotest.(check bool) "A1 kept" true
    (Odl.Schema.mem_interface (Session.workspace s) "A1");
  Alcotest.(check bool) "A2 undone" false
    (Odl.Schema.mem_interface (Session.workspace s) "A2")

let redo_reapplies () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  Alcotest.(check int) "nothing redoable yet" 0 (Session.redoable s);
  let s = Option.get (Session.undo s) in
  Alcotest.(check int) "one redoable" 1 (Session.redoable s);
  match Session.redo s with
  | Some (s, events) ->
      Alcotest.(check bool) "back" true
        (Odl.Schema.mem_interface (Session.workspace s) "Lab");
      Alcotest.(check int) "events replayed" 1 (List.length events);
      Alcotest.(check int) "log restored" 1 (List.length (Session.log s));
      Alcotest.(check bool) "redo exhausted" true (Session.redo s = None)
  | None -> Alcotest.fail "redo available"

let fresh_apply_clears_redo () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  let s = Option.get (Session.undo s) in
  let s, _ = Util.apply_ok s "add_type_definition(Other)" in
  Alcotest.(check int) "cleared" 0 (Session.redoable s);
  Alcotest.(check bool) "gone" true (Session.redo s = None)

let undo_undo_redo_redo () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(A1)" in
  let s, _ = Util.apply_ok s "add_type_definition(A2)" in
  let s = Option.get (Session.undo s) in
  let s = Option.get (Session.undo s) in
  Alcotest.(check int) "two redoable" 2 (Session.redoable s);
  let s, _ = Option.get (Session.redo s) in
  let s, _ = Option.get (Session.redo s) in
  Alcotest.(check bool) "both back" true
    (Odl.Schema.mem_interface (Session.workspace s) "A1"
    && Odl.Schema.mem_interface (Session.workspace s) "A2")

let log_records_steps () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  let s, _ =
    Util.apply_ok ~kind:Core.Concept.Generalization s "add_supertype(Lab, Person)"
  in
  let log = Session.log s in
  Alcotest.(check int) "two steps" 2 (List.length log);
  let step = List.nth log 1 in
  Alcotest.(check bool) "kind recorded" true
    (step.st_kind = Core.Concept.Generalization)

let rejected_ops_not_logged () =
  let s = Util.session_of (Util.university ()) in
  let _ = Util.apply_err s "delete_type_definition(Ghost)" in
  Alcotest.(check int) "log empty" 0 (List.length (Session.log s))

let custom_schema_name () =
  let s = Util.session_of (Util.university ()) in
  Alcotest.(check string) "default name" "University_custom"
    (Session.custom_schema s).s_name;
  Alcotest.(check string) "explicit name" "Mine"
    (Session.custom_schema ~name:"Mine" s).s_name

let preview_does_not_commit () =
  let s = Util.session_of (Util.university ()) in
  (match Session.preview s ~kind:Core.Concept.Wagon_wheel
           (Util.parse_op "delete_type_definition(Book)")
   with
  | Ok events -> Alcotest.(check bool) "events reported" true (events <> [])
  | Error e -> Alcotest.failf "preview failed: %s" (Core.Apply.error_to_string e));
  Alcotest.(check bool) "Book still present" true
    (Odl.Schema.mem_interface (Session.workspace s) "Book")

let apply_in_checks_membership () =
  let s = Util.session_of (Util.university ()) in
  (* Book is not in the Department wagon wheel *)
  (match Session.apply_in s ~concept_id:"ww:Department"
           (Util.parse_op "delete_attribute(Book, price)")
   with
  | Error (Core.Apply.Not_allowed m) ->
      Alcotest.(check bool) "names the concept" true
        (Str_contains.contains m "ww:Department")
  | Error e -> Alcotest.failf "wrong error: %s" (Core.Apply.error_to_string e)
  | Ok _ -> Alcotest.fail "should be rejected");
  (* but it is in its own wagon wheel *)
  match Session.apply_in s ~concept_id:"ww:Book"
          (Util.parse_op "delete_attribute(Book, price)")
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "should be accepted: %s" (Core.Apply.error_to_string e)

let apply_in_unknown_concept () =
  let s = Util.session_of (Util.university ()) in
  match Session.apply_in s ~concept_id:"ww:Ghost"
          (Util.parse_op "add_type_definition(X)")
  with
  | Error (Core.Apply.Unknown _) -> ()
  | _ -> Alcotest.fail "unknown concept should be an Unknown error"

let replay_matches_session () =
  let s = Util.session_of (Util.university ()) in
  let s =
    Util.apply_many s
      [ "add_type_definition(Lab)"; "delete_type_definition(Book)" ]
  in
  let steps =
    List.map (fun (st : Session.step) -> (st.st_kind, st.st_op)) (Session.log s)
  in
  match Core.Oplog.replay (Util.university ()) steps with
  | Ok replayed ->
      Alcotest.check Util.schema_testable "same workspace"
        (Session.workspace s) (Session.workspace replayed)
  | Error e -> Alcotest.failf "replay failed: %s" (Core.Apply.error_to_string e)

let replay_stops_on_failure () =
  match
    Core.Oplog.replay (Util.university ())
      [ (Core.Concept.Wagon_wheel, Util.parse_op "delete_type_definition(Ghost)") ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay of a bad log must fail"

let consistency_report_warnings_only () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok ~kind:Core.Concept.Generalization s
      "delete_supertype(Employee, Person)"
  in
  (* Employee and Person are now two roots of nothing shared; report must
     carry no errors (accepted ops preserve validity) *)
  let ds = Session.consistency_report s in
  Alcotest.(check bool) "no errors" true
    (List.for_all (fun d -> d.Odl.Validate.severity = Odl.Validate.Warning) ds)

let log_text_replayable () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  let text = Core.Oplog.(render (of_session s)) in
  Alcotest.(check bool) "contains the op" true
    (Str_contains.contains text "add_type_definition(Lab)")

let deliverables_contains_all_sections () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "delete_type_definition(Book)" in
  let d = Session.deliverables s in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true
        (Str_contains.contains d fragment))
    [ "shrink wrap schema"; "custom schema"; "impact report";
      "consistency report"; "mapping report" ]

let current_concepts_follow_workspace () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  Alcotest.(check bool) "new wagon wheel" true
    (Option.is_some (Core.Decompose.find (Session.current_concepts s) "ww:Lab"));
  Alcotest.(check bool) "original decomposition fixed" true
    (Option.is_none (Core.Decompose.find (Session.concepts s) "ww:Lab"))

let tests =
  [
    test "create rejects invalid shrink wrap" create_rejects_invalid;
    test "original is never modified" create_keeps_original;
    test "undo restores" undo_restores;
    test "undo on empty log" undo_empty;
    test "undo is LIFO" undo_is_lifo;
    test "redo re-applies" redo_reapplies;
    test "fresh apply clears redo" fresh_apply_clears_redo;
    test "undo undo redo redo" undo_undo_redo_redo;
    test "log records steps" log_records_steps;
    test "rejected operations are not logged" rejected_ops_not_logged;
    test "custom schema naming" custom_schema_name;
    test "preview does not commit" preview_does_not_commit;
    test "apply_in checks membership" apply_in_checks_membership;
    test "apply_in unknown concept" apply_in_unknown_concept;
    test "replay reproduces the workspace" replay_matches_session;
    test "replay stops on failure" replay_stops_on_failure;
    test "consistency report carries warnings only"
      consistency_report_warnings_only;
    test "log text is replayable" log_text_replayable;
    test "deliverables contain all sections" deliverables_contains_all_sections;
    test "current concepts follow the workspace" current_concepts_follow_workspace;
  ]
