(* Local names (the name-equivalence relaxation). *)

open Core.Aliases

let test = Util.test

let u = Util.university

let add_ok aliases schema target local =
  match add schema aliases target local with
  | Ok a -> a
  | Error m -> Alcotest.failf "alias should be accepted: %s" m

let add_err aliases schema target local =
  match add schema aliases target local with
  | Ok _ -> Alcotest.failf "alias %s should be rejected" local
  | Error m -> m

let interface_alias () =
  let a = add_ok empty (u ()) (For_interface "Student") "Learner" in
  Alcotest.(check (option string)) "bound" (Some "Learner")
    (local_of a (For_interface "Student"));
  Alcotest.(check (option string)) "others unbound" None
    (local_of a (For_interface "Person"))

let member_alias () =
  let a = add_ok empty (u ()) (For_member ("Person", "name")) "full_name" in
  Alcotest.(check (option string)) "bound" (Some "full_name")
    (local_of a (For_member ("Person", "name")))

let rebinding_replaces () =
  let a = add_ok empty (u ()) (For_interface "Student") "Learner" in
  let a = add_ok a (u ()) (For_interface "Student") "Pupil" in
  Alcotest.(check (option string)) "latest wins" (Some "Pupil")
    (local_of a (For_interface "Student"));
  Alcotest.(check int) "single binding" 1 (List.length (bindings a))

let missing_target () =
  let m = add_err empty (u ()) (For_interface "Ghost") "G" in
  Alcotest.(check bool) "mentions target" true (Str_contains.contains m "Ghost");
  ignore (add_err empty (u ()) (For_member ("Person", "ghost")) "g")

let invalid_locals () =
  ignore (add_err empty (u ()) (For_interface "Student") "9bad");
  ignore (add_err empty (u ()) (For_interface "Student") "interface")

let uniqueness () =
  let a = add_ok empty (u ()) (For_interface "Student") "Learner" in
  (* another interface cannot take the same local name *)
  ignore (add_err a (u ()) (For_interface "Person") "Learner");
  (* nor may a local name collide with a real interface name *)
  ignore (add_err a (u ()) (For_interface "Student") "Person");
  (* members collide only within one interface *)
  let a = add_ok a (u ()) (For_member ("Person", "name")) "label" in
  let a = add_ok a (u ()) (For_member ("Book", "title")) "label" in
  ignore (add_err a (u ()) (For_member ("Person", "ssn")) "label")

let remove_binding () =
  let a = add_ok empty (u ()) (For_interface "Student") "Learner" in
  let a = remove a (For_interface "Student") in
  Alcotest.(check (option string)) "gone" None
    (local_of a (For_interface "Student"))

let pruning () =
  let a = add_ok empty (u ()) (For_interface "Book") "Tome" in
  let a = add_ok a (u ()) (For_interface "Student") "Learner" in
  let without_book = Odl.Schema.remove_interface (u ()) "Book" in
  let live, dropped = prune without_book a in
  Alcotest.(check int) "one live" 1 (List.length (bindings live));
  Alcotest.(check int) "one dropped" 1 (List.length dropped)

let persistence_roundtrip () =
  let a = add_ok empty (u ()) (For_interface "Student") "Learner" in
  let a = add_ok a (u ()) (For_member ("Person", "name")) "full_name" in
  let text = to_string a in
  let back = of_string text in
  Alcotest.(check (option string)) "interface survives" (Some "Learner")
    (local_of back (For_interface "Student"));
  Alcotest.(check (option string)) "member survives" (Some "full_name")
    (local_of back (For_member ("Person", "name")))

let bad_persistence () =
  (match of_string "no equals sign" with
  | exception Bad_aliases _ -> ()
  | _ -> Alcotest.fail "should reject");
  match of_string " = x" with
  | exception Bad_aliases _ -> ()
  | _ -> Alcotest.fail "should reject empty canonical"

let target_strings () =
  Alcotest.(check bool) "interface" true
    (equal_target (target_of_string "Person") (For_interface "Person"));
  Alcotest.(check bool) "member" true
    (equal_target (target_of_string "Person.name") (For_member ("Person", "name")));
  Alcotest.(check string) "round trip" "Person.name"
    (target_to_string (target_of_string "Person.name"))

let session_integration () =
  let s = Util.session_of (u ()) in
  let s =
    match Core.Session.add_alias s (For_interface "Student") "Learner" with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check bool) "report shows binding" true
    (Str_contains.contains (Core.Session.aliases_report s) "Student -> Learner");
  (* deleting the aliased construct makes the binding disappear from view *)
  let s, _ = Util.apply_ok s "delete_type_definition(Student)" in
  Alcotest.(check bool) "binding pruned" false
    (Str_contains.contains (Core.Session.aliases_report s) "Learner")

let genome_scenario () =
  (* the paper's Strain/Phenotype terminology mismatch, solved with a local
     name instead of delete+add *)
  let s = Util.session_of (Schemas.Genome.acedb_v ()) in
  match Core.Session.add_alias s (For_interface "Strain") "Phenotype" with
  | Ok s ->
      Alcotest.(check bool) "mapped" true
        (Str_contains.contains (Core.Session.aliases_report s)
           "Strain -> Phenotype")
  | Error m -> Alcotest.fail m

let tests =
  [
    test "interface alias" interface_alias;
    test "member alias" member_alias;
    test "rebinding replaces" rebinding_replaces;
    test "missing targets rejected" missing_target;
    test "invalid local names rejected" invalid_locals;
    test "uniqueness constraints" uniqueness;
    test "remove binding" remove_binding;
    test "pruning after deletion" pruning;
    test "persistence round trip" persistence_roundtrip;
    test "bad persistence rejected" bad_persistence;
    test "target string forms" target_strings;
    test "session integration" session_integration;
    test "genome terminology scenario" genome_scenario;
  ]
