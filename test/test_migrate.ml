(* Instance migration through schema customization. *)

open Objects

let test = Util.test

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "should succeed: %s" m

let consistent name store =
  match Check.check store with
  | [] -> ()
  | ps ->
      Alcotest.failf "%s should be consistent:\n%s" name
        (String.concat "\n" (List.map Check.to_string ps))

(* a store over the university schema with one of everything we migrate *)
let populated () =
  let s = Store.create (Util.university ()) in
  let s, course = ok (Store.new_object s "Course") in
  let s = ok (Store.set_attr s course "subject" (Value.V_string "CS")) in
  let s, offering = ok (Store.new_object s "Course_Offering") in
  let s = ok (Store.set_attr s offering "room" (Value.V_string "B7")) in
  let s = ok (Store.set_attr s offering "term" (Value.V_string "F26")) in
  let s = ok (Store.link s offering "offering_of" course) in
  let s, book = ok (Store.new_object s "Book") in
  let s = ok (Store.set_attr s book "isbn" (Value.V_string "12345")) in
  let s = ok (Store.link s offering "books" book) in
  let s, slot = ok (Store.new_object s "Time_Slot") in
  let s = ok (Store.set_attr s slot "day" (Value.V_string "Mon")) in
  let s = ok (Store.link s offering "offered_during" slot) in
  let s, student = ok (Store.new_object s "Student") in
  let s = ok (Store.set_attr s student "ssn" (Value.V_string "9")) in
  let s = ok (Store.set_attr s student "gpa" (Value.V_float 3.5)) in
  let s = ok (Store.link s student "takes" offering) in
  (s, course, offering, book, slot, student)

let customize texts =
  let session = Util.session_of (Util.university ()) in
  let session =
    List.fold_left
      (fun sess (kind, text) -> fst (Util.apply_ok ~kind sess text))
      session texts
  in
  Core.Session.workspace session

let identity_migration_drops_nothing () =
  let s, _, _, _, _, _ = populated () in
  let migrated, report = Migrate.migrate s ~custom:(Util.university ()) in
  Alcotest.(check int) "no drops" 0 (List.length report);
  Alcotest.(check int) "same objects" (Store.count s) (Store.count migrated);
  consistent "identity migration" migrated

let deleted_type_drops_objects_and_links () =
  let s, _, offering, _, slot, _ = populated () in
  let custom =
    customize [ (Core.Concept.Wagon_wheel, "delete_type_definition(Time_Slot)") ]
  in
  let migrated, report = Migrate.migrate s ~custom in
  Alcotest.(check bool) "slot dropped" true (Store.find migrated slot = None);
  Alcotest.(check bool) "object drop reported" true
    (List.exists
       (fun d -> d.Migrate.d_oid = slot && d.d_what = "object")
       report);
  Alcotest.(check (list int)) "offering's slot link gone" []
    (Store.linked migrated offering "offered_during");
  consistent "after type deletion" migrated

let deleted_attribute_drops_values () =
  let s, _, offering, _, _, _ = populated () in
  let custom =
    customize
      [ (Core.Concept.Wagon_wheel, "delete_attribute(Course_Offering, room)") ]
  in
  let migrated, report = Migrate.migrate s ~custom in
  Alcotest.(check bool) "room value gone" true
    (Store.get_attr migrated offering "room" = None);
  Alcotest.(check bool) "term kept" true
    (Store.get_attr migrated offering "term" <> None);
  Alcotest.(check bool) "reported" true
    (List.exists (fun d -> d.Migrate.d_what = "attribute room") report);
  consistent "after attribute deletion" migrated

let moved_attribute_keeps_values () =
  let s, _, _, _, _, student = populated () in
  let custom =
    customize
      [ (Core.Concept.Generalization, "modify_attribute(Student, gpa, Person)") ]
  in
  let migrated, report = Migrate.migrate s ~custom in
  Alcotest.(check bool) "gpa survives the move" true
    (Store.get_attr migrated student "gpa" = Some (Value.V_float 3.5));
  Alcotest.(check bool) "nothing dropped for it" true
    (not (List.exists (fun d -> d.Migrate.d_what = "attribute gpa") report));
  consistent "after move" migrated

let deleted_relationship_drops_links () =
  let s, _, offering, book, _, _ = populated () in
  let custom =
    customize
      [ (Core.Concept.Wagon_wheel, "delete_relationship(Course_Offering, books)") ]
  in
  let migrated, report = Migrate.migrate s ~custom in
  Alcotest.(check (list int)) "links gone" [] (Store.linked migrated offering "books");
  Alcotest.(check (list int)) "inverse gone" []
    (Store.linked migrated book "book_for");
  Alcotest.(check bool) "book object survives" true
    (Store.find migrated book <> None);
  Alcotest.(check bool) "reported" true
    (List.exists (fun d -> Str_contains.contains d.Migrate.d_what "link") report);
  consistent "after relationship deletion" migrated

let widened_target_keeps_links () =
  (* Figure 8: works_in_a widens from Employee to Person — employee data
     still conforms *)
  let s = Store.create (Util.university ()) in
  let s, dept = ok (Store.new_object s "Department") in
  let s = ok (Store.set_attr s dept "dept_name" (Value.V_string "CSE")) in
  let s, emp = ok (Store.new_object s "Employee") in
  let s = ok (Store.set_attr s emp "ssn" (Value.V_string "1")) in
  let s = ok (Store.link s emp "works_in_a" dept) in
  let custom =
    customize
      [
        (Core.Concept.Generalization,
         "modify_relationship_target_type(Department, has, Employee, Person)");
      ]
  in
  let migrated, report = Migrate.migrate s ~custom in
  Alcotest.(check (list int)) "link survives" [ dept ]
    (Store.linked migrated emp "works_in_a");
  Alcotest.(check int) "nothing dropped" 0 (List.length report);
  consistent "after widening" migrated

let narrowed_target_drops_nonconforming () =
  (* narrow taken_by from Student to Graduate: an Undergraduate's enrolment
     no longer conforms *)
  let s = Store.create (Util.university ()) in
  let s, course = ok (Store.new_object s "Course") in
  let s, offering = ok (Store.new_object s "Course_Offering") in
  let s = ok (Store.link s offering "offering_of" course) in
  let s, under = ok (Store.new_object s "Undergraduate") in
  let s = ok (Store.set_attr s under "ssn" (Value.V_string "u")) in
  let s, grad = ok (Store.new_object s "Doctoral") in
  let s = ok (Store.set_attr s grad "ssn" (Value.V_string "g")) in
  let s = ok (Store.link s under "takes" offering) in
  let s = ok (Store.link s grad "takes" offering) in
  let custom =
    customize
      [
        (Core.Concept.Generalization,
         "modify_relationship_target_type(Course_Offering, taken_by, Student, Graduate)");
      ]
  in
  let migrated, report = Migrate.migrate s ~custom in
  Alcotest.(check bool) "undergraduate enrolment dropped" true
    (not (List.mem under (Store.linked migrated offering "taken_by")));
  Alcotest.(check bool) "graduate enrolment kept" true
    (List.mem grad (Store.linked migrated offering "taken_by"));
  Alcotest.(check bool) "reported" true (report <> []);
  consistent "after narrowing" migrated

let full_session_migration () =
  (* the tutorial's correspondence-university customization, applied to data *)
  let s, _, offering, _, slot, student = populated () in
  let custom =
    customize
      [
        (Core.Concept.Wagon_wheel, "delete_type_definition(Time_Slot)");
        (Core.Concept.Wagon_wheel, "delete_attribute(Course_Offering, room)");
        (Core.Concept.Generalization, "modify_attribute(Student, gpa, Person)");
      ]
  in
  let migrated, report = Migrate.migrate s ~custom in
  Alcotest.(check bool) "slot gone" true (Store.find migrated slot = None);
  Alcotest.(check bool) "room gone" true
    (Store.get_attr migrated offering "room" = None);
  Alcotest.(check bool) "gpa kept" true
    (Store.get_attr migrated student "gpa" <> None);
  Alcotest.(check bool) "drops reported" true (List.length report >= 2);
  consistent "after the full session" migrated

let tests =
  [
    test "identity migration drops nothing" identity_migration_drops_nothing;
    test "deleted type drops objects and links" deleted_type_drops_objects_and_links;
    test "deleted attribute drops values" deleted_attribute_drops_values;
    test "moved attribute keeps values" moved_attribute_keeps_values;
    test "deleted relationship drops links" deleted_relationship_drops_links;
    test "widened target keeps links" widened_target_keeps_links;
    test "narrowed target drops nonconforming" narrowed_target_drops_nonconforming;
    test "full session migration" full_session_migration;
  ]
