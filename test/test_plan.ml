(* Repair planning: verified plans for rejected operations. *)

let test = Util.test
let ww = Core.Concept.Wagon_wheel
let gh = Core.Concept.Generalization

let plan_for ?(kind = ww) schema text =
  Core.Advisor.repair_plan ~original:schema schema kind (Util.parse_op text)

let verify schema plan =
  match Core.Oplog.replay schema plan with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "plan must replay cleanly: %s" (Core.Apply.error_to_string e)

let missing_target_prepends_add () =
  let u = Util.university () in
  match plan_for u "add_relationship(Person, set<Committee>, serves_on, members)" with
  | Some plan ->
      Alcotest.(check int) "two steps" 2 (List.length plan);
      Alcotest.(check bool) "prerequisite first" true
        (snd (List.hd plan) = Core.Modop.Add_type_definition "Committee");
      verify u plan
  | None -> Alcotest.fail "a plan exists"

let missing_domain_type () =
  let u = Util.university () in
  match plan_for u "add_attribute(Person, set<Committee>, none, committees)" with
  | Some plan ->
      Alcotest.(check bool) "adds the domain type" true
        (List.exists
           (fun (_, op) -> op = Core.Modop.Add_type_definition "Committee")
           plan);
      verify u plan
  | None -> Alcotest.fail "a plan exists"

let wrong_kind_replaced () =
  (* an ISA operation issued from a wagon wheel: the plan re-homes it to the
     generalization hierarchy, where it applies as a single step *)
  let u = Util.university () in
  match plan_for ~kind:ww u "add_supertype(Book, Person)" with
  | Some plan ->
      Alcotest.(check int) "one step" 1 (List.length plan);
      Alcotest.(check bool) "re-homed to GH" true (fst (List.hd plan) = gh);
      verify u plan
  | None -> Alcotest.fail "re-homing plan exists"

let stale_value_corrected () =
  let u = Util.university () in
  match plan_for u "modify_extent_name(Person, wrong_extent, persons)" with
  | Some [ (_, Core.Modop.Modify_extent_name ("Person", "people", "persons")) ] as p
    -> verify u (Option.get p)
  | Some plan ->
      Alcotest.failf "unexpected plan: %s"
        (String.concat "; "
           (List.map (fun (_, o) -> Core.Op_printer.to_string o) plan))
  | None -> Alcotest.fail "a corrected plan exists"

let stale_cardinality_corrected () =
  let u = Util.university () in
  match
    plan_for u "modify_relationship_cardinality(Course_Offering, taught_by, set, list)"
  with
  | Some plan ->
      Alcotest.(check bool) "old value corrected to one" true
        (List.exists
           (fun (_, op) ->
             op
             = Core.Modop.Modify_relationship_cardinality
                 ("Course_Offering", "taught_by", None, Some Odl.Types.List))
           plan);
      verify u plan
  | None -> Alcotest.fail "a corrected plan exists"

let stale_and_rehomed () =
  (* both fixes at once: wrong concept schema type AND stale old value *)
  let u = Util.university () in
  match plan_for ~kind:ww u "modify_supertype(Doctoral, (Person), (Student))" with
  | Some plan ->
      Alcotest.(check bool) "landed in GH" true (List.for_all (fun (k, _) -> k = gh) plan);
      Alcotest.(check bool) "old supertypes corrected" true
        (List.exists
           (fun (_, op) ->
             op = Core.Modop.Modify_supertype ("Doctoral", [ "Graduate" ], [ "Student" ]))
           plan);
      verify u plan
  | None -> Alcotest.fail "a combined plan exists"

let applicable_op_needs_no_plan () =
  let u = Util.university () in
  match plan_for u "add_type_definition(Lab)" with
  | Some [ (k, Core.Modop.Add_type_definition "Lab") ] ->
      Alcotest.(check bool) "same kind" true (k = ww)
  | _ -> Alcotest.fail "plan is the op itself"

let hopeless_cases () =
  let u = Util.university () in
  (* a genuine conflict has no mechanical fix *)
  Alcotest.(check bool) "conflict unplannable" true
    (plan_for u "add_type_definition(Person)" = None);
  (* an ISA cycle has no mechanical fix *)
  Alcotest.(check bool) "cycle unplannable" true
    (plan_for ~kind:gh u "add_supertype(Person, Doctoral)" = None)

let correct_stale_units () =
  let u = Util.university () in
  let check text expected =
    match Core.Advisor.correct_stale u (Util.parse_op text) with
    | Some op -> Alcotest.(check string) text expected (Core.Op_printer.to_string op)
    | None -> Alcotest.failf "%s should be correctable" text
  in
  check "modify_attribute_size(Person, name, 10, 80)"
    "modify_attribute_size(Person, name, 60, 80)";
  check "modify_operation_return_type(Student, in_good_standing, int, float)"
    "modify_operation_return_type(Student, in_good_standing, boolean, float)";
  check "modify_relationship_order_by(Faculty, advises, (), (gpa))"
    "modify_relationship_order_by(Faculty, advises, (name), (gpa))";
  Alcotest.(check bool) "adds have no stale form" true
    (Core.Advisor.correct_stale u (Util.parse_op "add_type_definition(X)") = None)

let engine_plan_command () =
  let state =
    Designer.Engine.start (Util.session_of (Util.university ()))
  in
  let state, _ = Designer.Engine.exec_line state "focus ww:Person" in
  let _, fb =
    Designer.Engine.exec_line state
      "plan add_relationship(Person, set<Committee>, serves_on, members)"
  in
  let text = String.concat "\n" (List.map Designer.Feedback.to_string fb) in
  Alcotest.(check bool) "prints the plan" true
    (Str_contains.contains text "add_type_definition(Committee)");
  Alcotest.(check bool) "then the op" true
    (Str_contains.contains text "serves_on")

let tests =
  [
    test "missing target: prerequisite add" missing_target_prepends_add;
    test "missing domain type" missing_domain_type;
    test "wrong concept schema: re-homed" wrong_kind_replaced;
    test "stale extent corrected" stale_value_corrected;
    test "stale cardinality corrected" stale_cardinality_corrected;
    test "stale and re-homed together" stale_and_rehomed;
    test "applicable op needs no plan" applicable_op_needs_no_plan;
    test "hopeless cases return None" hopeless_cases;
    test "correct_stale units" correct_stale_units;
    test "engine plan command" engine_plan_command;
  ]
