(* [@query] at the service boundary: structured errors over real sockets
   (Unix-domain and TCP), lock-free serving asserted through the obs
   counters, the all-scope block shape, shard-merged router answers
   byte-identical with a single process over the same repository, and
   follower answers at bounded staleness. *)

module Io = Repository.Io
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol
module Replication = Server.Replication
module Frame = Repository.Journal.Frame

let test = Util.test
let quick_config = Test_server.quick_config
let mem_repo = Test_server.mem_repo
let service = Test_server.service
let req_ok = Test_server.req_ok
let req_err = Test_server.req_err
let apply_line = Test_server.apply_line
let with_watchdog = Test_server.with_watchdog
let tmp_dir = Test_server.tmp_dir
let rm_rf = Test_server.rm_rf

let attr_line name = Printf.sprintf "apply add_attribute(Person, string, 8, %s)" name

(* wire-level helpers: the body lines of a framed response, unprefixed *)
let strip_body lines =
  List.filter_map
    (fun l ->
      if String.length l >= 2 && String.sub l 0 2 = ". " then
        Some (String.sub l 2 (String.length l - 2))
      else None)
    lines

let err_line lines =
  List.find_opt
    (fun l -> String.length l >= 4 && String.sub l 0 4 = "!err")
    lines

(* --- structured errors over both transports -------------------------------- *)

(* A malformed [@query] must come back as a structured [!err] with the
   usage line as body — and must not poison the connection — whether the
   server listens on a Unix socket or on TCP. *)
let malformed_query_over_sockets () =
  with_watchdog ~secs:60.0 ~name:"query over sockets" (fun () ->
      List.iter
        (fun transport ->
          let dir = tmp_dir () in
          Fun.protect
            ~finally:(fun () -> rm_rf dir)
            (fun () ->
              (match Repo.init dir (Test_server.tiny ()) with
              | Result.Ok _ -> ()
              | Result.Error e -> Alcotest.fail e);
              let listen =
                match transport with
                | `Unix -> Protocol.Unix_path (Filename.concat dir "q.sock")
                | `Tcp -> Protocol.Tcp ("127.0.0.1", 0)
              in
              let server =
                match Server.create ~listen dir with
                | Result.Ok s -> s
                | Result.Error m -> Alcotest.fail m
              in
              let runner =
                Thread.create (fun () -> ignore (Server.run server)) ()
              in
              let client =
                match
                  Server.Client.connect_to ~retry_for:10.0
                    (Server.listen_address server)
                with
                | Result.Ok c -> c
                | Result.Error m -> Alcotest.fail m
              in
              (match Server.Client.read_response client with
              | Some greeting ->
                  if not (List.mem "!ok" greeting) then
                    Alcotest.failf "bad greeting: %s"
                      (String.concat " | " greeting)
              | None -> Alcotest.fail "no greeting");
              let roundtrip line =
                match Server.Client.request client line with
                | Some lines -> lines
                | None -> Alcotest.failf "%s: server hung up" line
              in
              (* the usage line rides along — in the body for a parser
                 refusal, in the error itself for a bare [@query] the
                 protocol layer rejects *)
              let expect_structured_err line =
                let lines = roundtrip line in
                (match err_line lines with
                | Some _ -> ()
                | None ->
                    Alcotest.failf "%s should be !err, got: %s" line
                      (String.concat " | " lines));
                Alcotest.(check bool)
                  (Printf.sprintf "%s: usage rides along" line)
                  true
                  (List.exists
                     (fun l -> Str_contains.contains l "usage: @query")
                     lines)
              in
              expect_structured_err "@query frobnicate everything";
              expect_structured_err "@query";
              expect_structured_err "@query name";
              (* a lexer-level wound — an unterminated quote — is still a
                 structured refusal, not a hangup *)
              expect_structured_err "@query name \"unterminated";
              (* the connection survives and serves real queries *)
              let expect_ok line =
                let lines = roundtrip line in
                if not (List.mem "!ok" lines) then
                  Alcotest.failf "%s: %s" line (String.concat " | " lines);
                lines
              in
              ignore (expect_ok "@new night");
              ignore (expect_ok "focus ww:Person");
              ignore (expect_ok (attr_line "over_the_wire"));
              let body =
                strip_body (expect_ok "@query attr \"over*\"")
              in
              Alcotest.(check (list string))
                "the query answers over the same connection"
                [ "Person.over_the_wire" ] body;
              (* explain needs no session and no variant *)
              Alcotest.(check bool) "explain prints a plan" true
                (List.exists
                   (fun l -> Str_contains.contains l "plan:")
                   (strip_body (expect_ok "@query explain isa Person")));
              ignore (roundtrip "@quit");
              Server.Client.close client;
              Server.stop server;
              Thread.join runner))
        [ `Unix; `Tcp ])

(* --- lock-free serving, observed ------------------------------------------- *)

let query_counters () =
  let _, io = mem_repo () in
  let obs = Obs.create () in
  let t = service ~config:(quick_config ()) ~obs io in
  let counter name =
    match Obs.counter_value obs name with
    | Some n -> n
    | None -> Alcotest.failf "counter %s never registered" name
  in
  let c = Service.connect t in
  (* a cold variant: nothing is published yet, so the very first query
     falls back through the writer path once to load it — and the retry
     already serves lock-free *)
  let cold = req_ok t c "@query all name \"*\"" in
  Alcotest.(check bool) "cold all-scope names the variant" true
    (List.mem "= v" cold);
  Alcotest.(check int) "exactly one fallback for the cold load" 1
    (counter "swsd.query.fallback_total");
  let lockfree_after_cold = counter "swsd.query.lockfree_total" in
  Alcotest.(check bool) "the cold query still finished lock-free" true
    (lockfree_after_cold >= 1);
  (* warm queries never fall back again *)
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (attr_line "warmed"));
  for _ = 1 to 5 do
    ignore (req_ok t c "@query attr \"warmed\"")
  done;
  Alcotest.(check int) "no further fallback once published" 1
    (counter "swsd.query.fallback_total");
  Alcotest.(check bool) "every warm query is lock-free" true
    (counter "swsd.query.lockfree_total" >= lockfree_after_cold + 5);
  (* the write refreshed the view incrementally; nothing rebuilt it *)
  Alcotest.(check bool) "the committed op refreshed the view" true
    (counter "swsd.query.view.refresh_total" >= 1);
  Alcotest.(check int) "one rebuild, at first sight of the variant" 1
    (counter "swsd.query.view.rebuild_total");
  (match Obs.gauge_value obs "swsd.query.view.lag" with
  | Some 0 -> ()
  | Some n -> Alcotest.failf "view lags publication by %d stamps" n
  | None -> Alcotest.fail "lag gauge never registered");
  Alcotest.(check bool) "requests are counted" true
    (counter "swsd.query.requests_total" >= 6)

(* --- the all-scope block shape --------------------------------------------- *)

let all_scope_blocks () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  let seed variant attr =
    ignore (req_ok t c ("@new " ^ variant));
    ignore (req_ok t c "focus ww:Person");
    ignore (req_ok t c (attr_line attr));
    ignore (req_ok t c "@close")
  in
  (* created out of order: blocks must come back sorted by variant *)
  seed "beta" "badge_beta";
  seed "alpha" "badge_alpha";
  let body = req_ok t c "@query all attr \"badge*\"" in
  let headers =
    List.filter
      (fun l -> String.length l >= 2 && String.sub l 0 2 = "= ")
      body
  in
  Alcotest.(check (list string)) "blocks sorted by variant header"
    [ "= alpha"; "= beta"; "= v" ] headers;
  List.iter
    (fun l ->
      if not (List.mem l headers) && String.length l > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "body line indented: %S" l)
          true
          (String.length l >= 2 && String.sub l 0 2 = "  "))
    body;
  (* each attribute sits inside its own variant's block: alpha's line
     before the beta header, beta's line after it *)
  let idx what =
    let rec go i = function
      | [] -> Alcotest.failf "missing line %S" what
      | l :: _ when l = what -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 body
  in
  Alcotest.(check bool) "alpha's attribute is in alpha's block" true
    (idx "  Person.badge_alpha" < idx "= beta");
  Alcotest.(check bool) "beta's attribute is in beta's block" true
    (idx "= beta" < idx "  Person.badge_beta"
    && idx "  Person.badge_beta" < idx "= v");
  (* deterministic: ask again, same bytes *)
  Alcotest.(check (list string)) "the answer is reproducible" body
    (req_ok t c "@query all attr \"badge*\"");
  (* a per-variant evaluation error is a commented line inside the block,
     not a poisoned response *)
  let diff = req_ok t c "@query all diff 0 9999" in
  Alcotest.(check bool) "per-variant errors stay inside their block" true
    (List.exists
       (fun l -> Str_contains.contains l "# " && Str_contains.contains l "ahead")
       diff)

(* --- shard-merged answers match one process -------------------------------- *)

(* Two real worker processes behind a real router, variants pinned to
   different shards; then the same repository directory served by ONE
   in-process service.  The [@query all] answers must be byte-identical:
   the router's merge-by-header must reproduce exactly what a single
   process emits. *)
let shard_merge_matches_single_process () =
  with_watchdog ~secs:120.0 ~name:"query shard merge" (fun () ->
      let cl = Test_router.start_cluster `Unix in
      Fun.protect
        ~finally:(fun () -> Test_router.rm_rf cl.Test_router.dir)
        (fun () ->
          let merged =
            Fun.protect
              ~finally:(fun () -> Test_router.stop_cluster cl)
              (fun () ->
            let va = Test_router.pick_variant ~shards:2 0
            and vb = Test_router.pick_variant ~shards:2 1 in
            let ca = Test_router.connect cl and cb = Test_router.connect cl in
            ignore (Test_router.expect_ok ca ("@new " ^ va));
            ignore (Test_router.expect_ok cb ("@new " ^ vb));
            ignore (Test_router.expect_ok ca "focus ww:Person");
            ignore (Test_router.expect_ok cb "focus ww:Person");
            ignore (Test_router.expect_ok ca (attr_line ("only_" ^ va)));
            ignore (Test_router.expect_ok cb (attr_line ("only_" ^ vb)));
            (* a malformed query through the router is the same structured
               refusal a worker gives *)
            let bad = Test_router.roundtrip ca "@query what" in
            (match err_line bad with
            | Some _ -> ()
            | None ->
                Alcotest.failf "router should relay !err, got: %s"
                  (String.concat " | " bad));
            Alcotest.(check bool) "usage relayed through the router" true
              (List.exists
                 (fun l -> Str_contains.contains l "usage: @query")
                 (strip_body bad));
            (* a variant-scoped query follows the attached session to its
               owning shard *)
            let scoped =
              strip_body (Test_router.expect_ok ca "@query attr \"only_*\"")
            in
            Alcotest.(check (list string)) "scoped query reaches va's shard"
              [ Printf.sprintf "Person.only_%s" va ]
              scoped;
            (* an unattached connection is told how to proceed *)
            let cc = Test_router.connect cl in
            let refusal = Test_router.roundtrip cc "@query attr \"only_*\"" in
            Alcotest.(check bool) "unattached scoped query names @open" true
              (match err_line refusal with
              | Some l -> Str_contains.contains l "@open"
              | None -> false);
            (* the merged fan-out, collected while both shards serve *)
            strip_body (Test_router.expect_ok ca "@query all attr \"only_*\""))
          in
          (* the workers are gone; one process over the same directory *)
          let t =
            match
              Service.open_service ~config:(quick_config ())
                cl.Test_router.dir
            with
            | Result.Ok t -> t
            | Result.Error m -> Alcotest.fail m
          in
          let c = Service.connect t in
          let single = req_ok t c "@query all attr \"only_*\"" in
          Alcotest.(check (list string))
            "shard-merged and single-process answers are byte-identical"
            single merged;
          Alcotest.(check (list (pair string string))) "clean shutdown" []
            (Service.shutdown t)))

(* --- follower answers at bounded staleness --------------------------------- *)

let follower_query_bounded_staleness () =
  let _, lio = mem_repo () in
  let lsvc = service ~config:(quick_config ()) lio in
  let hub = Replication.hub lsvc in
  let c = Service.connect lsvc in
  ignore (req_ok lsvc c "@open v");
  ignore (req_ok lsvc c "focus ww:Person");
  let snap_stamp =
    match Test_replication.req_v lsvc c (attr_line "replicated_attr") with
    | Some v -> v
    | None -> Alcotest.fail "an acked write must carry a stamp"
  in
  (* bootstrap a follower at this stamp, then let the leader move on —
     those later writes never reach the follower *)
  let frames = Test_replication.bootstrap_frames hub in
  let leader_stamp =
    match Test_replication.req_v lsvc c (attr_line "leader_only") with
    | Some v -> v
    | None -> Alcotest.fail "an acked write must carry a stamp"
  in
  Alcotest.(check bool) "the leader really moved past the snapshot" true
    (leader_stamp > snap_stamp);
  match Test_replication.open_follower frames with
  | None -> Alcotest.fail "bootstrap stream must carry the root"
  | Some (fsvc, _) -> (
      let apply = Replication.Apply.create fsvc in
      List.iter
        (Replication.Apply.frame apply ~ack:(fun ~variant:_ ~stamp:_ -> ()))
        frames;
      (* variant-scoped: attach readonly, query, check the stamp *)
      let fc = Service.connect fsvc in
      (match (Service.request fsvc fc "@open v readonly").Protocol.status with
      | Protocol.Ok -> ()
      | _ -> Alcotest.fail "readonly attach must succeed on a follower");
      let r = Service.request fsvc fc "@query attr \"replicated*\"" in
      (match r.Protocol.status with
      | Protocol.Ok ->
          Alcotest.(check (list string)) "the replicated attribute is visible"
            [ "Person.replicated_attr" ] r.Protocol.body
      | _ ->
          Alcotest.failf "follower query refused: %s" (Protocol.to_string r));
      (match r.Protocol.version with
      | Some v ->
          Alcotest.(check int) "the answer is stamped where the stream left it"
            snap_stamp v;
          Alcotest.(check bool)
            "a follower never answers past the leader's #version" true
            (v <= leader_stamp)
      | None -> Alcotest.fail "a follower query answer must carry its stamp");
      (* the leader-only attribute is invisible at that stamp *)
      Alcotest.(check (list string)) "bounded staleness, not time travel" []
        (req_ok fsvc fc "@query attr \"leader_only\"");
      (* all-scope needs no session, even on a follower *)
      let all = req_ok fsvc fc "@query all attr \"replicated*\"" in
      Alcotest.(check (list string)) "all-scope serves replicated blocks"
        [ "= v"; "  Person.replicated_attr" ] all;
      (* malformed queries are the same structured refusal as on the
         leader — req_err fails the test unless the status is !err *)
      ignore (req_err fsvc fc "@query sideways");
      (* and name queries keep serving on the attached session *)
      Alcotest.(check bool) "follower name scan serves the schema" true
        (List.mem "Person" (req_ok fsvc fc "@query name \"*\"")))

let tests =
  [
    test "sockets: malformed @query is a structured !err on Unix and TCP"
      malformed_query_over_sockets;
    test "counters: queries serve lock-free; one fallback per cold variant"
      query_counters;
    test "all-scope: sorted self-delimiting blocks, reproducible bytes"
      all_scope_blocks;
    test "router: shard-merged answers are byte-identical with one process"
      shard_merge_matches_single_process;
    test "follower: @query answers at a stamp bounded by the leader's"
      follower_query_bounded_staleness;
  ]
