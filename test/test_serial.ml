(* Object store persistence. *)

open Objects

let test = Util.test

let ok = function Ok v -> v | Error m -> Alcotest.failf "should succeed: %s" m

let sample () =
  let s = Store.create (Util.university ()) in
  let s, dept = ok (Store.new_object s "Department") in
  let s = ok (Store.set_attr s dept "dept_name" (Value.V_string "CSE")) in
  let s = ok (Store.set_attr s dept "budget" (Value.V_float 1.5e6)) in
  let s, fac = ok (Store.new_object s "Faculty") in
  (* name is string<60>: room for escapes worth testing *)
  let s = ok (Store.set_attr s fac "name" (Value.V_string "with \"quotes\"\nand newline")) in
  let s = ok (Store.set_attr s fac "ssn" (Value.V_string "111-22-3333")) in
  let s = ok (Store.link s fac "works_in_a" dept) in
  s

let store_equal a b =
  let norm (o : Store.obj) =
    {
      o with
      o_attrs = List.sort compare o.o_attrs;
      o_links =
        List.sort compare (List.filter (fun (_, ts) -> ts <> []) o.o_links);
    }
  in
  List.map norm (Store.objects a) = List.map norm (Store.objects b)

let roundtrip () =
  let s = sample () in
  let text = Serial.to_string s in
  let back = Serial.of_string (Util.university ()) text in
  Alcotest.(check bool) "round trips" true (store_equal s back);
  Alcotest.(check bool) "reparse is consistent" true (Check.is_consistent back)

let value_forms_roundtrip () =
  let schema =
    Util.parse
      {|interface A {
          attribute int i; attribute float f; attribute boolean b;
          attribute char c; attribute string s;
          attribute set<int> si; attribute list<string> ls;
        };|}
  in
  let s = Store.create schema in
  let s, a = ok (Store.new_object s "A") in
  let s = ok (Store.set_attr s a "i" (Value.V_int (-42))) in
  let s = ok (Store.set_attr s a "f" (Value.V_float 3.25)) in
  let s = ok (Store.set_attr s a "b" (Value.V_bool true)) in
  let s = ok (Store.set_attr s a "c" (Value.V_char 'x')) in
  let s = ok (Store.set_attr s a "s" (Value.V_string "hey")) in
  let s =
    ok (Store.set_attr s a "si" (Value.V_coll (Odl.Types.Set, [ Value.V_int 1; Value.V_int 2 ])))
  in
  let s =
    ok
      (Store.set_attr s a "ls"
         (Value.V_coll (Odl.Types.List, [ Value.V_string "a"; Value.V_string "b" ])))
  in
  let back = Serial.of_string schema (Serial.to_string s) in
  Alcotest.(check bool) "all value forms survive" true (store_equal s back)

let float_stays_float () =
  (* a whole-number float must not come back as an int *)
  let schema = Util.parse "interface A { attribute float f; };" in
  let s = Store.create schema in
  let s, a = ok (Store.new_object s "A") in
  let s = ok (Store.set_attr s a "f" (Value.V_float 4.0)) in
  let back = Serial.of_string schema (Serial.to_string s) in
  match Store.get_attr back a "f" with
  | Some (Value.V_float 4.0) -> ()
  | other ->
      Alcotest.failf "expected V_float 4.0, got %s"
        (match other with Some v -> Value.to_string v | None -> "nothing")

let comments_and_blank_lines () =
  let schema = Util.parse "interface A { attribute int x; };" in
  let text = "# a comment\n\nobject @3 : A {\n  x = 7;\n}\n" in
  let s = Serial.of_string schema text in
  Alcotest.(check int) "one object" 1 (Store.count s);
  Alcotest.(check bool) "value read" true
    (Store.get_attr s 3 "x" = Some (Value.V_int 7))

let oids_preserved () =
  let schema = Util.parse "interface A { attribute int x; };" in
  let s = Serial.of_string schema "object @42 : A { x = 1; }" in
  Alcotest.(check bool) "oid kept" true (Store.find s 42 <> None);
  (* fresh allocations continue above the highest restored oid *)
  let s, fresh = ok (Store.new_object s "A") in
  ignore s;
  Alcotest.(check bool) "fresh above" true (fresh > 42)

let malformed_rejected () =
  let schema = Util.parse "interface A { attribute int x; };" in
  let expect_bad text =
    match Serial.of_string schema text with
    | exception Serial.Bad_store _ -> ()
    | _ -> Alcotest.failf "should reject: %s" text
  in
  expect_bad "object A { }";
  expect_bad "object @1 : A { x = ; }";
  expect_bad "object @1 : A { x -> nope; }";
  expect_bad "object @1 : A { x = \"unterminated }";
  expect_bad "object @1 : A { x = 'toolong'; }";
  expect_bad "garbage"

let inconsistency_detectable_after_load () =
  (* the parser restores faithfully, even dangling links; Check finds them *)
  let schema =
    Util.parse
      {|interface A { relationship B b inverse B::a; };
        interface B { relationship set<A> a inverse A::b; };|}
  in
  let s = Serial.of_string schema "object @1 : A { b -> @9; }" in
  Alcotest.(check bool) "dangling detected" false (Check.is_consistent s)

let tests =
  [
    test "round trip" roundtrip;
    test "all value forms round trip" value_forms_roundtrip;
    test "floats stay floats" float_stays_float;
    test "comments and blank lines" comments_and_blank_lines;
    test "object ids preserved" oids_preserved;
    test "malformed input rejected" malformed_rejected;
    test "inconsistency detectable after load" inconsistency_detectable_after_load;
  ]
