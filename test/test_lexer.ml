open Odl.Lexer

let toks src = List.map (fun l -> l.tok) (tokenize src)

let tok_testable =
  Alcotest.testable (fun ppf t -> Fmt.string ppf (token_to_string t)) ( = )

let check_toks name src expected =
  Alcotest.check (Alcotest.list tok_testable) name expected (toks src)

let test = Util.test

let idents () =
  check_toks "plain" "interface Foo"
    [ Ident "interface"; Ident "Foo"; Eof ];
  check_toks "underscores" "_a b_2 C_d"
    [ Ident "_a"; Ident "b_2"; Ident "C_d"; Eof ]

let punctuation () =
  check_toks "all" "{ } ( ) < > : :: ; ,"
    [
      Lbrace; Rbrace; Lparen; Rparen; Langle; Rangle; Colon; Coloncolon; Semi;
      Comma; Eof;
    ];
  check_toks "coloncolon greedy" ":::" [ Coloncolon; Colon; Eof ]

let integers () =
  check_toks "int" "30" [ Int 30; Eof ];
  check_toks "int in size" "string<30>" [ Ident "string"; Langle; Int 30; Rangle; Eof ]

let comments () =
  check_toks "line" "a // comment\nb" [ Ident "a"; Ident "b"; Eof ];
  check_toks "block" "a /* x\ny */ b" [ Ident "a"; Ident "b"; Eof ];
  check_toks "block with stars" "a /* * ** */ b" [ Ident "a"; Ident "b"; Eof ]

let positions () =
  let located = tokenize "ab\n  cd" in
  match located with
  | [ a; c; _eof ] ->
      Alcotest.(check (pair int int)) "first" (1, 1) (a.line, a.col);
      Alcotest.(check (pair int int)) "second" (2, 3) (c.line, c.col)
  | _ -> Alcotest.fail "expected three tokens"

let position_after_block_comment () =
  let located = tokenize "/* a\nb */ x" in
  match located with
  | [ x; _eof ] -> Alcotest.(check int) "line" 2 x.line
  | _ -> Alcotest.fail "expected two tokens"

let errors () =
  Alcotest.check_raises "bad char" (Lex_error ("unexpected character '#'", 1, 1))
    (fun () -> ignore (tokenize "#"));
  (match tokenize "/* never closed" with
  | exception Lex_error _ -> ()
  | _ -> Alcotest.fail "unterminated comment should raise")

let whitespace_only () = check_toks "empty" "  \t \n " [ Eof ]

let tests =
  [
    test "identifiers" idents;
    test "punctuation" punctuation;
    test "integers" integers;
    test "comments" comments;
    test "positions" positions;
    test "position after block comment" position_after_block_comment;
    test "errors" errors;
    test "whitespace only" whitespace_only;
  ]
