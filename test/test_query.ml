(* The OQL subset. *)

open Objects

let test = Util.test

let ok = function Ok v -> v | Error m -> Alcotest.failf "should succeed: %s" m

(* a university store with enough shape for interesting queries *)
let sample =
  lazy
    (let s = Store.create (Util.university ()) in
     let s, dept = ok (Store.new_object s "Department") in
     let s = ok (Store.set_attr s dept "dept_name" (Value.V_string "CSE")) in
     let s, alice = ok (Store.new_object s "Faculty") in
     let s = ok (Store.set_attr s alice "name" (Value.V_string "Alice")) in
     let s = ok (Store.set_attr s alice "ssn" (Value.V_string "1")) in
     let s = ok (Store.link s alice "works_in_a" dept) in
     let s, bob = ok (Store.new_object s "Doctoral") in
     let s = ok (Store.set_attr s bob "name" (Value.V_string "Bob")) in
     let s = ok (Store.set_attr s bob "ssn" (Value.V_string "2")) in
     let s = ok (Store.set_attr s bob "gpa" (Value.V_float 3.9)) in
     let s = ok (Store.link s bob "advised_by" alice) in
     let s, carol = ok (Store.new_object s "Undergraduate") in
     let s = ok (Store.set_attr s carol "name" (Value.V_string "Carol")) in
     let s = ok (Store.set_attr s carol "ssn" (Value.V_string "3")) in
     let s = ok (Store.set_attr s carol "gpa" (Value.V_float 2.5)) in
     let s, course = ok (Store.new_object s "Course") in
     let s, offering = ok (Store.new_object s "Course_Offering") in
     let s = ok (Store.link s offering "offering_of" course) in
     let s = ok (Store.link s bob "takes" offering) in
     let s = ok (Store.link s carol "takes" offering) in
     (s, alice, bob, carol, offering))

let names objs =
  List.map (fun (o : Store.obj) -> o.o_id) objs

let q src =
  let s, _, _, _, _ = Lazy.force sample in
  names (Query.query s src)

let extent_includes_subtypes () =
  let _, alice, bob, carol, _ = Lazy.force sample in
  Alcotest.(check (list int)) "all persons" [ alice; bob; carol ]
    (q "select Person");
  Alcotest.(check (list int)) "students only" [ bob; carol ] (q "select Student")

let attribute_predicates () =
  let _, alice, bob, carol, _ = Lazy.force sample in
  Alcotest.(check (list int)) "equality" [ alice ]
    (q "select Person where name = \"Alice\"");
  Alcotest.(check (list int)) "inequality" [ bob; carol ]
    (q "select Person where name != \"Alice\"");
  Alcotest.(check (list int)) "numeric" [ bob ]
    (q "select Student where gpa >= 3.0");
  Alcotest.(check (list int)) "like" [ carol ]
    (q "select Person where name like \"aro\"")

let path_traversal () =
  let _, _, bob, _, _ = Lazy.force sample in
  Alcotest.(check (list int)) "via to-one link" [ bob ]
    (q "select Student where advised_by.name = \"Alice\"");
  Alcotest.(check (list int)) "two hops" [ bob ]
    (q "select Student where advised_by.works_in_a.dept_name = \"CSE\"")

let existential_on_to_many () =
  let _, _, _, _, offering = Lazy.force sample in
  (* some enrolled student has a high gpa *)
  Alcotest.(check (list int)) "exists" [ offering ]
    (q "select Course_Offering where taken_by.gpa > 3.0");
  Alcotest.(check (list int)) "none matches" []
    (q "select Course_Offering where taken_by.gpa > 4.5")

let count_pseudo_member () =
  let _, _, _, _, offering = Lazy.force sample in
  Alcotest.(check (list int)) "two takers" [ offering ]
    (q "select Course_Offering where taken_by.count = 2");
  Alcotest.(check (list int)) "strictly more" []
    (q "select Course_Offering where taken_by.count > 2");
  let _, alice, _, _, _ = Lazy.force sample in
  Alcotest.(check (list int)) "count through a path" [ alice ]
    (q "select Faculty where advises.count >= 1")

let boolean_connectives () =
  let _, _, bob, carol, _ = Lazy.force sample in
  Alcotest.(check (list int)) "and" [ bob ]
    (q "select Student where gpa > 3.0 and name = \"Bob\"");
  Alcotest.(check (list int)) "or" [ bob; carol ]
    (q "select Student where name = \"Bob\" or name = \"Carol\"");
  Alcotest.(check (list int)) "not" [ carol ]
    (q "select Student where not gpa > 3.0")

let unset_attributes_do_not_match () =
  (* alice has no gpa (Faculty): numeric predicates on it are vacuously
     false, never an error *)
  Alcotest.(check (list int)) "unset is no match" []
    (q "select Faculty where gpa > 0")

let parse_errors () =
  List.iter
    (fun src ->
      match Query.parse src with
      | exception Query.Bad_query _ -> ()
      | _ -> Alcotest.failf "should not parse: %s" src)
    [
      "Person"; "select"; "select Person where"; "select Person where name";
      "select Person where name = "; "select Person where name ~ \"x\"";
      "select Person trailing"; "select Person where taken_by.count = \"x\"";
    ]

let tests =
  [
    test "extent includes subtypes" extent_includes_subtypes;
    test "attribute predicates" attribute_predicates;
    test "path traversal" path_traversal;
    test "existential on to-many" existential_on_to_many;
    test "count pseudo-member" count_pseudo_member;
    test "boolean connectives" boolean_connectives;
    test "unset attributes do not match" unset_attributes_do_not_match;
    test "parse errors" parse_errors;
  ]
