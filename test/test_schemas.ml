(* The bundled shrink wrap schemas and the synthetic generator. *)

let test = Util.test

let all_bundled () =
  [
    ("university", Util.university ());
    ("lumber", Util.lumber ());
    ("emsl", Util.emsl ());
    ("acedb", Schemas.Genome.acedb_v ());
    ("aatdb", Schemas.Genome.aatdb_v ());
    ("sacchdb", Schemas.Genome.sacchdb_v ());
    ("vlsi", Schemas.Vlsi.v ());
    ("commerce", Schemas.Commerce.v ());
  ]

let bundled_valid () =
  List.iter (fun (name, s) -> Util.check_valid name s) (all_bundled ())

let bundled_warning_free () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check int) (name ^ " warnings") 0
        (List.length (Odl.Validate.warnings s)))
    (all_bundled ())

let university_shape () =
  let u = Util.university () in
  Alcotest.(check int) "types" 15 (List.length u.s_interfaces);
  Alcotest.(check bool) "has instance-of" true
    (Core.Decompose.instance_heads u = [ "Course" ])

let genome_commonality () =
  let common = Schemas.Genome.common_object_types () in
  Alcotest.(check int) "ten shared types" 10 (List.length common);
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " shared") true (List.mem n common))
    [ "Map"; "Locus"; "Clone"; "Paper" ];
  (* the carrier differs between disciplines *)
  Alcotest.(check bool) "Strain not common" false (List.mem "Strain" common);
  Alcotest.(check bool) "Phenotype not common" false (List.mem "Phenotype" common)

let genome_carriers () =
  Alcotest.(check bool) "ACEDB has Strain" true
    (Odl.Schema.mem_interface (Schemas.Genome.acedb_v ()) "Strain");
  Alcotest.(check bool) "AAtDB has Phenotype" true
    (Odl.Schema.mem_interface (Schemas.Genome.aatdb_v ()) "Phenotype");
  Alcotest.(check bool) "SacchDB has Gene_Product" true
    (Odl.Schema.mem_interface (Schemas.Genome.sacchdb_v ()) "Gene_Product")

let vlsi_shape () =
  let s = Schemas.Vlsi.v () in
  let kinds k =
    Core.Decompose.decompose s
    |> List.filter (fun c -> c.Core.Concept.c_kind = k)
    |> List.map (fun c -> c.Core.Concept.c_focus)
  in
  Alcotest.(check (list string)) "one gen hierarchy" [ "Design_Object" ]
    (kinds Core.Concept.Generalization);
  Alcotest.(check (list string)) "parts explosion from Chip" [ "Chip" ]
    (kinds Core.Concept.Aggregation);
  Alcotest.(check (list string)) "instance chain from Cell" [ "Cell" ]
    (kinds Core.Concept.Instance_chain);
  (* the chain runs three levels deep: Cell -> Cell_Version -> Cell_Placement *)
  let ih =
    Option.get (Core.Decompose.find (Core.Decompose.decompose s) "ih:Cell")
  in
  Alcotest.(check bool) "placements are on the chain" true
    (Core.Concept.mem_type ih "Cell_Placement")

let commerce_shape () =
  let s = Schemas.Commerce.v () in
  Alcotest.(check (list string)) "order parts explosion" [ "Sales_Order" ]
    (Core.Decompose.aggregation_roots s);
  Alcotest.(check (list string)) "catalog instance chain" [ "Product" ]
    (Core.Decompose.instance_heads s);
  Alcotest.(check bool) "party hierarchy present" true
    (List.mem "Customer" (Odl.Schema.descendants s "Party"))

let synth_valid_sizes () =
  List.iter
    (fun n ->
      let s = Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:n) in
      Util.check_valid (Printf.sprintf "synth %d" n) s;
      Alcotest.(check int)
        (Printf.sprintf "synth %d size" n)
        n
        (List.length s.s_interfaces))
    [ 1; 2; 10; 64; 200 ]

let synth_deterministic () =
  let p = Schemas.Synth.default_params ~n_types:30 in
  Alcotest.check Util.schema_testable "same seed, same schema"
    (Schemas.Synth.generate p) (Schemas.Synth.generate p)

let synth_seed_sensitivity () =
  let p = Schemas.Synth.default_params ~n_types:30 in
  let a = Schemas.Synth.generate p in
  let b = Schemas.Synth.generate { p with seed = 7 } in
  Alcotest.(check bool) "different seed, different schema" false
    (Core.Recompose.equal_content a b)

let synth_valid_across_seeds () =
  List.iter
    (fun seed ->
      let p = { (Schemas.Synth.default_params ~n_types:40) with seed } in
      Util.check_valid (Printf.sprintf "seed %d" seed) (Schemas.Synth.generate p))
    [ 0; 1; 2; 3; 99; 1234 ]

let synth_has_all_hierarchies () =
  let p = Schemas.Synth.default_params ~n_types:40 in
  let s = Schemas.Synth.generate p in
  let kinds =
    Core.Decompose.decompose s
    |> List.map (fun c -> c.Core.Concept.c_kind)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "all four concept kinds" 4 (List.length kinds)

let tests =
  [
    test "bundled schemas are valid" bundled_valid;
    test "bundled schemas are warning-free" bundled_warning_free;
    test "university shape" university_shape;
    test "genome family commonality" genome_commonality;
    test "genome family carriers" genome_carriers;
    test "vlsi schema shape" vlsi_shape;
    test "commerce schema shape" commerce_shape;
    test "synthetic schemas valid at all sizes" synth_valid_sizes;
    test "synthetic generation is deterministic" synth_deterministic;
    test "synthetic generation varies by seed" synth_seed_sensitivity;
    test "synthetic valid across seeds" synth_valid_across_seeds;
    test "synthetic exercises all concept kinds" synth_has_all_hierarchies;
  ]
