open Core.Concept

let test = Util.test

let find concepts id =
  match Core.Decompose.find concepts id with
  | Some c -> c
  | None -> Alcotest.failf "missing concept schema %s" id

let decomposition_inventory () =
  let u = Util.university () in
  let cs = Core.Decompose.decompose u in
  let of_kind k = List.filter (fun c -> c.c_kind = k) cs in
  Alcotest.(check int) "one wagon wheel per type"
    (List.length u.s_interfaces)
    (List.length (of_kind Wagon_wheel));
  Alcotest.(check int) "one generalization hierarchy" 1
    (List.length (of_kind Generalization));
  Alcotest.(check int) "no aggregation hierarchy in the base schema" 0
    (List.length (of_kind Aggregation));
  Alcotest.(check int) "one instance chain" 1
    (List.length (of_kind Instance_chain))

let ids_unique () =
  let cs = Core.Decompose.decompose (Util.university ()) in
  let ids = List.map (fun c -> c.c_id) cs in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let wagon_wheel_members () =
  let u = Util.university () in
  let ww = find (Core.Decompose.decompose u) "ww:Course_Offering" in
  Alcotest.(check string) "focus" "Course_Offering" ww.c_focus;
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " is a member") true (mem_type ww n))
    [ "Course_Offering"; "Syllabus"; "Book"; "Time_Slot"; "Student"; "Faculty";
      "Course" ];
  Alcotest.(check bool) "Department is not one link away" false
    (mem_type ww "Department")

let wagon_wheel_includes_subtypes () =
  let u = Util.university () in
  let ww = find (Core.Decompose.decompose u) "ww:Student" in
  Alcotest.(check bool) "supertype" true (mem_type ww "Person");
  Alcotest.(check bool) "subtype" true (mem_type ww "Undergraduate")

let generalization_members () =
  let u = Util.university () in
  let gh = find (Core.Decompose.decompose u) "gh:Person" in
  Alcotest.(check int) "nine types in the Person hierarchy" 9
    (List.length gh.c_members);
  Alcotest.(check bool) "no Course" false (mem_type gh "Course")

let aggregation_members () =
  let l = Util.lumber () in
  let ah = find (Core.Decompose.decompose l) "ah:House" in
  Alcotest.(check string) "rooted at House" "House" ah.c_focus;
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " reachable") true (mem_type ah n))
    [ "Structure"; "Roof"; "Shingle_Bundle"; "Door" ];
  Alcotest.(check bool) "Supplier is not a part" false (mem_type ah "Supplier")

let aggregation_root_detection () =
  let l = Util.lumber () in
  Alcotest.(check (list string)) "only House" [ "House" ]
    (Core.Decompose.aggregation_roots l)

let instance_chain_members () =
  let e = Util.emsl () in
  let ih = find (Core.Decompose.decompose e) "ih:Application" in
  Alcotest.(check (list string)) "the chain"
    [ "Application"; "Application_Version"; "Compiled_Version";
      "Installed_Version" ]
    ih.c_members;
  Alcotest.(check bool) "Machine is off-chain" false (mem_type ih "Machine")

let instance_heads () =
  Alcotest.(check (list string)) "only Application" [ "Application" ]
    (Core.Decompose.instance_heads (Util.emsl ()))

let projection_wagon_wheel () =
  let u = Util.university () in
  let ww = find (Core.Decompose.decompose u) "ww:Course_Offering" in
  let p = project u ww in
  let co = Odl.Schema.get_interface p "Course_Offering" in
  (* the focal point keeps its complete definition *)
  Alcotest.check Util.interface_testable "focus complete"
    (Odl.Schema.get_interface u "Course_Offering")
    co;
  (* neighbours are stripped to the connecting relationships *)
  let student = Odl.Schema.get_interface p "Student" in
  Alcotest.(check int) "no attrs on neighbour" 0 (List.length student.i_attrs);
  Alcotest.(check bool) "keeps the connecting rel" true
    (Odl.Schema.has_rel student "takes");
  Alcotest.(check int) "only the connecting rel" 1 (List.length student.i_rels)

let projection_generalization () =
  let u = Util.university () in
  let gh = find (Core.Decompose.decompose u) "gh:Person" in
  let p = project u gh in
  let grad = Odl.Schema.get_interface p "Graduate" in
  Alcotest.(check (list string)) "keeps ISA" [ "Student" ] grad.i_supertypes;
  Alcotest.(check int) "no attributes" 0 (List.length grad.i_attrs);
  Alcotest.(check int) "no relationships" 0 (List.length grad.i_rels)

let projection_is_valid_subset () =
  (* projections must not contain interfaces outside their members *)
  let u = Util.university () in
  List.iter
    (fun c ->
      let p = project u c in
      List.iter
        (fun i ->
          Alcotest.(check bool)
            (c.c_id ^ " contains only members")
            true (mem_type c i.Odl.Types.i_name))
        p.s_interfaces)
    (Core.Decompose.decompose u)

let union_reconstructs_examples () =
  List.iter
    (fun (name, s) ->
      Alcotest.check Util.schema_testable name s (Core.Recompose.reconstruct s))
    [
      ("university", Util.university ());
      ("lumber", Util.lumber ());
      ("emsl", Util.emsl ());
      ("acedb", Schemas.Genome.acedb_v ());
    ]

let union_merges_by_name () =
  let a = Util.parse "interface A { attribute int x; };" in
  let b = Util.parse "interface A { attribute int y; };" in
  let u = Core.Recompose.union ~name:"u" [ a; b ] in
  let i = Odl.Schema.get_interface u "A" in
  Alcotest.(check int) "both attrs" 2 (List.length i.i_attrs)

let normalize_orders () =
  let a = Util.parse "interface B { }; interface A { };" in
  let b = Util.parse "interface A { }; interface B { };" in
  Alcotest.(check bool) "content equal" true (Core.Recompose.equal_content a b)

let kind_names () =
  Alcotest.(check string) "ww" "wagon wheel" (kind_name Wagon_wheel);
  Alcotest.(check string) "prefix" "ww" (id_prefix Wagon_wheel)

let tests =
  [
    test "decomposition inventory" decomposition_inventory;
    test "concept ids unique" ids_unique;
    test "wagon wheel members" wagon_wheel_members;
    test "wagon wheel includes ISA neighbours" wagon_wheel_includes_subtypes;
    test "generalization members" generalization_members;
    test "aggregation members" aggregation_members;
    test "aggregation root detection" aggregation_root_detection;
    test "instance chain members" instance_chain_members;
    test "instance chain heads" instance_heads;
    test "wagon wheel projection" projection_wagon_wheel;
    test "generalization projection" projection_generalization;
    test "projections stay within members" projection_is_valid_subset;
    test "union of wheels reconstructs" union_reconstructs_examples;
    test "union merges by name" union_merges_by_name;
    test "normalize ignores order" normalize_orders;
    test "kind names" kind_names;
  ]
