(* Undo/redo across a session snapshot-restore boundary.

   A snapshot (save_session) collapses the journal to the *resolved* log:
   undone operations and their [@undo;] records disappear, and with them
   the redo stack — redo history is session-local by design, while the
   undo chain survives because it is recomputed from the resolved log.
   These tests pin that contract, including a torn [@undo;] crash artifact
   at the journal tail. *)

module Io = Repository.Io
module Store = Repository.Store
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol

let test = Util.test

let tiny () =
  Util.parse
    "interface Person { attribute string name; attribute int age; };\n\
     interface Course { attribute string title; attribute string code; };"

let mem_repo () =
  let m = Io.mem_create () in
  let io = Io.locked (Io.mem_io m) in
  (match Repo.init ~io "/repo" (tiny ()) with
  | Result.Ok repo -> (
      match Repo.create_variant repo "v" with
      | Result.Ok _ -> ()
      | Result.Error e -> Alcotest.fail e)
  | Result.Error e -> Alcotest.fail e);
  io

let config =
  {
    Service.default_config with
    Service.use_file_locks = false;
    retry = { Server.Retry.default with Server.Retry.base_delay = 0.0002 };
  }

let service io =
  match Service.open_service ~config ~io "/repo" with
  | Result.Ok t -> t
  | Result.Error m -> Alcotest.fail m

let req_ok t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> r.Protocol.body
  | _ -> Alcotest.failf "%s should succeed, got: %s" line (Protocol.to_string r)

let req_rejected t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Err _ -> String.concat "\n" r.Protocol.body
  | _ -> Alcotest.failf "%s should be rejected, got: %s" line (Protocol.to_string r)

let apply name = Printf.sprintf "apply add_attribute(Person, string, 8, %s)" name

let ops_of_log io =
  match Store.load_session (Store.open_dir ~io "/repo/variants/v") with
  | Result.Ok s ->
      List.map
        (fun (st : Core.Session.step) ->
          Core.Op_printer.to_string st.Core.Session.st_op)
        (Core.Session.log s)
  | Result.Error e -> Alcotest.fail (Store.load_error_to_string e)

(* undo, snapshot (via @close), restore (via @open): the undone operation
   stays undone, and the redo stack does not survive the boundary *)
let redo_lost_across_snapshot () =
  let io = mem_repo () in
  let t = service io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply "first"));
  ignore (req_ok t c (apply "second"));
  ignore (req_ok t c "undo");
  (* before the boundary, redo would work; cross it instead *)
  ignore (req_ok t c "@close");
  ignore (req_ok t c "@open v");
  let msg = req_rejected t c "redo" in
  Alcotest.(check bool) "redo does not survive a snapshot" true
    (Str_contains.contains msg "nothing to redo");
  (* the undo chain does survive: it is recomputed from the resolved log *)
  ignore (req_ok t c "undo");
  ignore (req_ok t c "@close");
  Alcotest.(check (list string)) "both operations undone" [] (ops_of_log io)

(* the same boundary, but the service is shut down (drain + snapshot)
   rather than politely closed *)
let redo_lost_across_shutdown () =
  let io = mem_repo () in
  let t = service io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply "first"));
  ignore (req_ok t c "undo");
  Alcotest.(check (list (pair string string))) "shutdown snapshots" []
    (Service.shutdown t);
  Alcotest.(check (list string)) "resolved log is empty" [] (ops_of_log io);
  let t = service io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  let msg = req_rejected t c "redo" in
  Alcotest.(check bool) "nothing to redo after restore" true
    (Str_contains.contains msg "nothing to redo");
  ignore (Service.shutdown t)

(* A torn [@undo;] at the journal tail is the crash artifact of an
   unacknowledged undo: replay must silently drop the torn record and keep
   every complete one. *)
let torn_undo_tail () =
  let io = mem_repo () in
  let store = Store.open_dir ~io "/repo/variants/v" in
  let step name =
    (Core.Concept.Wagon_wheel,
     Util.parse_op (Printf.sprintf "add_attribute(Person, string, 8, %s)" name))
  in
  Store.append_step store (step "first");
  Store.append_step store (step "second");
  Store.append_undo store;
  (* a complete undo resolves: first only *)
  Alcotest.(check int) "complete @undo; resolves" 1
    (List.length (ops_of_log io));
  (* now tear a second undo: the crash interrupted the append mid-line *)
  io.Io.append (Store.log_file store) "@un";
  (match Store.load_session store with
  | Result.Ok s ->
      Alcotest.(check int) "torn @undo; is dropped, not applied" 1
        (List.length (Core.Session.log s))
  | Result.Error e -> Alcotest.fail (Store.load_error_to_string e));
  (* tear again (the check above repaired the file in place) and let the
     service open the variant through the same recovery *)
  io.Io.append (Store.log_file store) "@un";
  let t = service io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  let log = req_ok t c "log" in
  Alcotest.(check bool) "recovered session still holds the first op" true
    (List.exists (fun l -> Str_contains.contains l "first") log);
  (* the next mutation journals cleanly after the torn tail *)
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply "after_repair"));
  ignore (req_ok t c "@close");
  ignore (Service.shutdown t);
  let ops = String.concat "\n" (ops_of_log io) in
  Alcotest.(check bool) "first survives" true (Str_contains.contains ops "first");
  Alcotest.(check bool) "post-repair op survives" true
    (Str_contains.contains ops "after_repair");
  Alcotest.(check bool) "second stays undone" true
    (not (Str_contains.contains ops "second"))

let tests =
  [
    test "redo is lost across @close/@open (undo chain survives)"
      redo_lost_across_snapshot;
    test "redo is lost across shutdown/restart" redo_lost_across_shutdown;
    test "a torn @undo; tail is dropped on replay, then journalling resumes"
      torn_undo_tail;
  ]
