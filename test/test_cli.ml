(* End-to-end tests of the swsd command line binary. *)

let test = Util.test

let swsd = "../bin/swsd.exe"

(** Run the binary with [args]; return (exit code, stdout+stderr). *)
let run args =
  let out = Filename.temp_file "swsd_cli" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote swsd)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text =
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        Sys.remove out)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (code, text)

let check_run args expect_code fragments =
  let code, text = run args in
  Alcotest.(check int) (String.concat " " args ^ " exit code") expect_code code;
  List.iter
    (fun f ->
      if not (Str_contains.contains text f) then
        Alcotest.failf "%s: output lacks %S:\n%s" (String.concat " " args) f text)
    fragments

let rec rm_rf p =
  if (try Sys.is_directory p with Sys_error _ -> false) then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else Sys.remove p

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_temp suffix contents =
  let path = Filename.temp_file "swsd_cli" suffix in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let examples_cmd () =
  check_run [ "examples" ] 0 [ "university:"; "vlsi:"; "acedb:" ]

let decompose_cmd () =
  check_run [ "decompose"; "university" ] 0
    [ "ww:Course_Offering"; "gh:Person"; "ih:Course" ]

let show_cmd () =
  check_run [ "show"; "lumber"; "ah:House" ] 0 [ "aggregation hierarchy: House" ];
  check_run [ "show"; "lumber"; "ah:Ghost" ] 1 [ "no concept schema" ]

let explain_cmd () =
  check_run [ "explain"; "emsl"; "ih:Application" ] 0
    [ "instantiation sequence" ]

let check_cmd () =
  check_run [ "check"; "university" ] 0 [ "no findings" ];
  let bad = write_temp ".odl" "interface A : Ghost { };" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () -> check_run [ "check"; bad ] 1 [ "unknown supertype" ])

let file_schema () =
  let path =
    write_temp ".odl" "schema Mini { interface Thing { attribute int n; }; };"
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () -> check_run [ "decompose"; path ] 0 [ "ww:Thing" ])

let parse_error_reported () =
  let path = write_temp ".odl" "interface {{{" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let code, text = run [ "decompose"; path ] in
      Alcotest.(check int) "fails" 1 code;
      Alcotest.(check bool) "has position" true (Str_contains.contains text ":1:"))

let custom_and_report_cmds () =
  let log =
    write_temp ".ops"
      "@ww add_type_definition(Lab);\n@gh add_supertype(Lab, Person);\n"
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove log)
    (fun () ->
      check_run [ "custom"; "university"; log ] 0 [ "interface Lab : Person" ];
      check_run [ "report"; "university"; log ] 0
        [ "impact report"; "mapping report"; "added interface Lab" ])

let bad_log_rejected () =
  let log = write_temp ".ops" "@ww frobnicate(X);\n" in
  Fun.protect
    ~finally:(fun () -> Sys.remove log)
    (fun () ->
      let code, _ = run [ "custom"; "university"; log ] in
      Alcotest.(check int) "fails" 1 code)

let diff_cmd () =
  check_run [ "diff"; "acedb"; "aatdb" ] 0
    [ "delete_type_definition(Strain)"; "add_type_definition(Phenotype)" ];
  check_run [ "diff"; "university"; "university" ] 0 []

let affinity_cmd () =
  check_run [ "affinity"; "acedb"; "sacchdb" ] 0
    [ "semantic affinity: 0.831"; "shared types" ]

let unknown_schema () =
  let code, text = run [ "decompose"; "not_a_schema" ] in
  Alcotest.(check int) "fails" 1 code;
  Alcotest.(check bool) "explains" true
    (Str_contains.contains text "not a built-in schema")

let repl_scripted () =
  (* drive the REPL through stdin *)
  let script =
    write_temp ".txt"
      "concepts\nfocus ww:Person\napply add_attribute(Person, string, 12, \
       phone)\nodl Person\nquit\n"
  in
  let out = Filename.temp_file "swsd_cli" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove script;
      Sys.remove out)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s repl university < %s > %s 2>&1"
             (Filename.quote swsd) (Filename.quote script) (Filename.quote out))
      in
      Alcotest.(check int) "exit" 0 code;
      let ic = open_in out in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check bool) "applied and visible" true
        (Str_contains.contains text "attribute string<12> phone"))

let library_cmd () =
  let dir = Filename.temp_file "swsd_cli_lib" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let schema_path = Filename.concat dir "mini.odl" in
  let oc = open_out schema_path in
  output_string oc "schema Mini { interface Gene { attribute string<20> gene_name; }; };";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove schema_path;
      Sys.rmdir dir)
    (fun () ->
      check_run [ "library"; dir ] 0 [ "Mini: 1 types" ])

let sql_cmd () =
  check_run [ "sql"; "university" ] 0
    [ "CREATE TABLE person ("; "ssn VARCHAR(11) PRIMARY KEY" ]

let graph_cmd () =
  check_run [ "graph"; "university" ] 0 [ "digraph \"University\" {" ];
  check_run [ "graph"; "university"; "gh:Person" ] 0
    [ "fillcolor=lightgoldenrod"; "arrowhead=empty" ]

let variants_workflow () =
  let dir = Filename.temp_file "swsd_cli_variants" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () ->
      check_run [ "variants"; "init"; dir; "emsl" ] 0 [ "initialized" ];
      check_run [ "variants"; "new"; dir; "site1" ] 0 [ "variant site1 created" ];
      let log = write_temp ".ops" "@ww delete_type_definition(Machine);\n" in
      Fun.protect
        ~finally:(fun () -> Sys.remove log)
        (fun () ->
          check_run [ "variants"; "apply"; dir; "site1"; log ] 0
            [ "1 operation(s) applied" ]);
      check_run [ "variants"; "new"; dir; "site2" ] 0 [];
      check_run [ "variants"; "list"; dir ] 0 [ "site1"; "site2" ];
      check_run [ "variants"; "interop"; dir; "site1"; "site2" ] 0
        [ "site1 <-> site2" ];
      check_run [ "variants"; "affinity"; dir ] 0 [ "1.000" ];
      (* error paths *)
      check_run [ "variants"; "new"; dir; "site1" ] 1 [ "already exists" ];
      check_run [ "variants"; "interop"; dir; "site1"; "ghost" ] 1 [ "variant" ])

let repl_save_and_fsck () =
  (* with --save every accepted operation is journalled; the final state
     survives quitting the repl (not the initial session) *)
  let dir = Filename.temp_file "swsd_cli_save" "" in
  Sys.remove dir;
  let script =
    write_temp ".txt"
      "focus ww:Person\napply add_attribute(Person, string, 12, phone)\nquit\n"
  in
  let out = Filename.temp_file "swsd_cli" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove script;
      Sys.remove out;
      if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s repl university --save %s < %s > %s 2>&1"
             (Filename.quote swsd) (Filename.quote dir) (Filename.quote script)
             (Filename.quote out))
      in
      Alcotest.(check int) "repl exit" 0 code;
      let log = read_file (Filename.concat dir "log.ops") in
      Alcotest.(check bool) "accepted op persisted" true
        (Str_contains.contains log "add_attribute(Person, string, 12, phone)");
      check_run [ "fsck"; dir ] 0 [ "clean" ])

let fsck_corrupt_and_salvage () =
  let dir = Filename.temp_file "swsd_cli_fsck" "" in
  Sys.remove dir;
  let append_file path text =
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc text;
    close_out oc
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      check_run [ "variants"; "init"; dir; "emsl" ] 0 [ "initialized" ];
      check_run [ "variants"; "new"; dir; "site1" ] 0 [];
      let log = write_temp ".ops" "@ww delete_type_definition(Machine);\n" in
      Fun.protect
        ~finally:(fun () -> Sys.remove log)
        (fun () -> check_run [ "variants"; "apply"; dir; "site1"; log ] 0 []);
      (* interior corruption in the variant's journal: commands refuse with
         a one-line diagnostic naming the file and exit 2 *)
      let site_log =
        Filename.concat (Filename.concat (Filename.concat dir "variants") "site1")
          "log.ops"
      in
      append_file site_log "not a journal record\n";
      let more = write_temp ".ops" "@ww add_type_definition(Zed);\n" in
      Fun.protect
        ~finally:(fun () -> Sys.remove more)
        (fun () ->
          check_run [ "variants"; "apply"; dir; "site1"; more ] 2 [ "log.ops" ]);
      check_run [ "fsck"; dir ] 2 [ "variants/site1: log.ops" ];
      (* salvage keeps the valid journal prefix and leaves the repository
         usable again; exit 1 distinguishes "found damage and repaired it"
         from a clean 0 *)
      check_run [ "fsck"; "--salvage"; dir ] 1 [ "variants/site1: salvaged" ];
      check_run [ "fsck"; dir ] 0 [ "clean" ];
      check_run [ "variants"; "list"; dir ] 0 [ "site1" ];
      (* a corrupt top-level schema is corruption too *)
      let oc = open_out (Filename.concat dir "shrinkwrap.odl") in
      output_string oc "interface {{{";
      close_out oc;
      check_run [ "variants"; "list"; dir ] 2 [ "shrinkwrap.odl" ];
      check_run [ "fsck"; dir ] 2 [ "shrinkwrap.odl" ])

let fsck_not_a_directory () =
  (* not a repository at all is corruption-grade: exit 2, like damage that
     cannot be repaired *)
  check_run [ "fsck"; "/nonexistent/definitely/not" ] 2 [ "not a directory" ]

let data_commands () =
  let data =
    write_temp ".objs"
      "object @1 : Department {\n  dept_name = \"CSE\";\n}\n\nobject @2 : \
       Faculty {\n  ssn = \"1\";\n  works_in_a -> @1;\n}\n"
  in
  let log = write_temp ".ops" "@ww delete_type_definition(Department);\n" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove data;
      Sys.remove log)
    (fun () ->
      (* the data as written is asymmetric: @1 lacks the inverse link *)
      check_run [ "data-check"; "university"; data ] 1 [ "does not link back" ];
      (* migrating drops the department and the dangling link *)
      check_run [ "migrate-data"; "university"; log; data ] 0
        [ "object @2 : Faculty"; "dropped: @1 object" ])

let oql_command () =
  let data =
    write_temp ".objs"
      "object @1 : Person { name = \"Alice\"; ssn = \"1\"; }\nobject @2 : \
       Person { name = \"Bob\"; ssn = \"2\"; }\n"
  in
  Fun.protect
    ~finally:(fun () -> Sys.remove data)
    (fun () ->
      check_run
        [ "oql"; "university"; data; "select Person where name = \"Bob\"" ]
        0
        [ "@2 : Person" ];
      check_run [ "oql"; "university"; data; "select Person where" ] 1 [])

let tests =
  [
    test "examples" examples_cmd;
    test "decompose" decompose_cmd;
    test "show" show_cmd;
    test "explain" explain_cmd;
    test "check" check_cmd;
    test "schema from file" file_schema;
    test "parse errors are positioned" parse_error_reported;
    test "custom and report" custom_and_report_cmds;
    test "bad log rejected" bad_log_rejected;
    test "diff" diff_cmd;
    test "affinity" affinity_cmd;
    test "unknown schema argument" unknown_schema;
    test "scripted repl" repl_scripted;
    test "library" library_cmd;
    test "sql" sql_cmd;
    test "graph" graph_cmd;
    test "variants workflow" variants_workflow;
    test "repl --save persists and fsck is clean" repl_save_and_fsck;
    test "fsck reports, refuses, and salvages corruption" fsck_corrupt_and_salvage;
    test "fsck on a non-directory" fsck_not_a_directory;
    test "data commands" data_commands;
    test "oql command" oql_command;
  ]
