(* The HTML deliverables page. *)

let test = Util.test
let contains = Str_contains.contains

let session_with_work () =
  let s = Util.session_of (Util.university ()) in
  let s = Util.apply_many s [ "delete_type_definition(Book)" ] in
  let s =
    match
      Core.Session.add_alias s (Core.Aliases.For_interface "Student") "Learner"
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  s

let well_formed_shell () =
  let html = Repository.Html_report.render (session_with_work ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) ("has " ^ frag) true (contains html frag))
    [
      "<!DOCTYPE html>"; "</html>"; "<title>"; "Design deliverables: University";
      "<h2>Schemas</h2>"; "<h2>Operation log and impact</h2>";
      "<h2>Consistency report</h2>"; "<h2>Mapping</h2>"; "<h2>Local names</h2>";
    ]

let content_present () =
  let html = Repository.Html_report.render (session_with_work ()) in
  Alcotest.(check bool) "log shows the op" true
    (contains html "delete_type_definition(Book)");
  Alcotest.(check bool) "propagated change marked" true
    (contains html "(propagated)");
  Alcotest.(check bool) "mapping flags the deletion" true
    (contains html "interface Book");
  Alcotest.(check bool) "alias listed" true (contains html "Learner");
  Alcotest.(check bool) "custom schema odl embedded" true
    (contains html "interface Person {")

let escaping () =
  Alcotest.(check string) "entities" "a&lt;b&gt;c&amp;d&quot;e"
    (Repository.Html_report.escape "a<b>c&d\"e");
  (* generated pages must not contain raw unescaped ODL angle brackets in
     text nodes: spot-check that set<...> appears escaped *)
  let html = Repository.Html_report.render (session_with_work ()) in
  Alcotest.(check bool) "odl collections escaped" true
    (contains html "set&lt;");
  Alcotest.(check bool) "no raw set< outside tags" false (contains html "set<Course")

let empty_session_renders () =
  let html = Repository.Html_report.render (Util.session_of (Util.emsl ())) in
  Alcotest.(check bool) "no operations note" true
    (contains html "No operations applied.");
  Alcotest.(check bool) "no findings note" true (contains html "No findings.");
  Alcotest.(check bool) "no aliases note" true
    (contains html "No local names defined.")

let saved_by_store () =
  let dir = Filename.temp_file "swsd_html" "" in
  Sys.remove dir;
  let repo = Repository.Store.open_dir dir in
  Repository.Store.save_session repo (session_with_work ());
  let path = Filename.concat (Repository.Store.reports_dir repo) "deliverables.html" in
  Alcotest.(check bool) "written" true (Sys.file_exists path);
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  rm dir

let deterministic () =
  let s = session_with_work () in
  Alcotest.(check string) "stable" (Repository.Html_report.render s)
    (Repository.Html_report.render s)

let tests =
  [
    test "well-formed shell" well_formed_shell;
    test "content present" content_present;
    test "escaping" escaping;
    test "empty session renders" empty_session_renders;
    test "saved by the store" saved_by_store;
    test "deterministic" deterministic;
  ]
