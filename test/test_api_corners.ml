(* Smaller API corners not covered by the dedicated suites. *)

let test = Util.test
let contains = Str_contains.contains

let apply_log_batches () =
  let u = Util.university () in
  let steps =
    [
      (Core.Concept.Wagon_wheel, Util.parse_op "add_type_definition(Lab)");
      (Core.Concept.Generalization, Util.parse_op "add_supertype(Lab, Person)");
    ]
  in
  (match Core.Apply.apply_log ~original:u u steps with
  | Ok (schema, events) ->
      Alcotest.(check bool) "applied" true (Odl.Schema.mem_interface schema "Lab");
      Alcotest.(check bool) "events accumulate" true (List.length events >= 2)
  | Error e -> Alcotest.fail (Core.Apply.error_to_string e));
  (* stops at the first failure *)
  match
    Core.Apply.apply_log ~original:u u
      [ (Core.Concept.Wagon_wheel, Util.parse_op "delete_type_definition(Nope)") ]
  with
  | Error (Core.Apply.Unknown _) -> ()
  | _ -> Alcotest.fail "should stop on failure"

let op_log_printer () =
  let ops =
    [ Util.parse_op "add_type_definition(A)"; Util.parse_op "delete_attribute(B, x)" ]
  in
  let text = Fmt.str "%a" Core.Op_printer.pp_log ops in
  Alcotest.(check bool) "one per line" true
    (contains text "add_type_definition(A)\ndelete_attribute(B, x)")

let alias_display_helpers () =
  let u = Util.university () in
  let a =
    Result.get_ok
      (Core.Aliases.add u Core.Aliases.empty
         (Core.Aliases.For_interface "Student") "Learner")
  in
  Alcotest.(check string) "display with alias" "Student (locally: Learner)"
    (Core.Aliases.display_interface a "Student");
  Alcotest.(check string) "display without" "Person"
    (Core.Aliases.display_interface a "Person");
  Alcotest.(check bool) "reverse lookup" true
    (Core.Aliases.targets_of_local a "Learner"
    = [ Core.Aliases.For_interface "Student" ]);
  Alcotest.(check string) "empty report" "no local names defined"
    (Core.Aliases.report Core.Aliases.empty)

let validate_error_printer () =
  let e = Core.Apply.Violation "boom" in
  Alcotest.(check string) "pp_error" "violation: boom"
    (Fmt.str "%a" Core.Apply.pp_error e)

let shared_type_detail_ordering () =
  let detail =
    Core.Affinity.shared_type_detail (Schemas.Genome.acedb_v ())
      (Schemas.Genome.aatdb_v ())
  in
  let sims = List.map snd detail in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> compare b a) sims = sims)

let interface_to_string_standalone () =
  let i = Odl.Schema.get_interface (Util.university ()) "Book" in
  let text = Odl.Printer.interface_to_string i in
  Alcotest.(check bool) "parses back" true
    (Odl.Types.equal_interface i (Odl.Parser.parse_interface_string text))

let concept_membership_helpers () =
  let u = Util.university () in
  let ww = Core.Decompose.wagon_wheel u "Book" in
  Alcotest.(check bool) "mem_edge" true
    (Core.Concept.mem_edge ww "Book" "book_for");
  Alcotest.(check bool) "not an edge" false
    (Core.Concept.mem_edge ww "Book" "nope")

let session_aliases_via_store () =
  (* aliases survive the full save/load cycle *)
  let s = Util.session_of (Util.university ()) in
  let s =
    Result.get_ok
      (Core.Session.add_alias s (Core.Aliases.For_interface "Book") "Tome")
  in
  let dir = Filename.temp_file "swsd_corner" "" in
  Sys.remove dir;
  let repo = Repository.Store.open_dir dir in
  Repository.Store.save_session repo s;
  (match Repository.Store.load_session repo with
  | Ok loaded ->
      Alcotest.(check bool) "alias restored" true
        (contains (Core.Session.aliases_report loaded) "Book -> Tome")
  | Error e -> Alcotest.fail (Repository.Store.load_error_to_string e));
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  rm dir

let value_printer_forms () =
  let open Objects.Value in
  Alcotest.(check string) "nested" "set{1, \"a\", @3}"
    (to_string (V_coll (Odl.Types.Set, [ V_int 1; V_string "a"; V_ref 3 ])));
  Alcotest.(check string) "char" "'x'" (to_string (V_char 'x'))

let tests =
  [
    test "apply_log batches" apply_log_batches;
    test "operation log printer" op_log_printer;
    test "alias display helpers" alias_display_helpers;
    test "apply error printer" validate_error_printer;
    test "shared type detail ordering" shared_type_detail_ordering;
    test "interface printing round trips standalone" interface_to_string_standalone;
    test "concept membership helpers" concept_membership_helpers;
    test "aliases survive save/load" session_aliases_via_store;
    test "value printer forms" value_printer_forms;
  ]
