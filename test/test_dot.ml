(* Graphviz rendering. *)

let test = Util.test
let contains = Str_contains.contains

let concept_of schema id =
  Option.get (Core.Decompose.find (Core.Decompose.decompose schema) id)

let schema_graph_structure () =
  let g = Core.Dot.schema_graph (Util.university ()) in
  Alcotest.(check bool) "digraph header" true (contains g "digraph \"University\"");
  Alcotest.(check bool) "record node" true
    (contains g "\"Person\" [shape=record");
  Alcotest.(check bool) "attrs in label" true (contains g "ssn : string\\<11\\>");
  Alcotest.(check bool) "isa edge" true
    (contains g "\"Student\" -> \"Person\" [arrowhead=empty]");
  Alcotest.(check bool) "closing brace" true (contains g "}\n")

let association_edges_once () =
  let g = Core.Dot.schema_graph (Util.university ()) in
  (* the takes/taken_by pair appears exactly once, from the canonical end *)
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length g then acc
      else if String.sub g i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one edge for takes/taken_by" 1
    (count "taken_by / takes" + count "takes / taken_by")

let part_of_and_instance_edges () =
  let g = Core.Dot.schema_graph (Util.lumber ()) in
  Alcotest.(check bool) "diamond on the whole" true
    (contains g "\"House\" -> \"Structure\" [arrowtail=diamond");
  let g = Core.Dot.schema_graph (Util.emsl ()) in
  Alcotest.(check bool) "dashed instance-of from the generic" true
    (contains g
       "\"Application\" -> \"Application_Version\" [style=dashed")

let concept_graph_scoped () =
  let u = Util.university () in
  let g = Core.Dot.concept_graph u (concept_of u "ww:Book") in
  Alcotest.(check bool) "focus highlighted" true
    (contains g "\"Book\" [shape=record"
    && contains g "fillcolor=lightgoldenrod");
  Alcotest.(check bool) "neighbour present" true (contains g "\"Course_Offering\"");
  Alcotest.(check bool) "non-member absent" false (contains g "\"Department\"")

let generalization_graph_has_no_spokes () =
  let u = Util.university () in
  let g = Core.Dot.concept_graph u (concept_of u "gh:Person") in
  Alcotest.(check bool) "no association edges" false (contains g "dir=none");
  Alcotest.(check bool) "isa edges present" true (contains g "arrowhead=empty")

let escaping () =
  let s =
    Util.parse "interface A { attribute set<int> xs; };"
  in
  let g = Core.Dot.schema_graph s in
  Alcotest.(check bool) "angle brackets escaped" true
    (contains g "set\\<int\\>")

let deterministic () =
  let u = Util.university () in
  Alcotest.(check string) "stable" (Core.Dot.schema_graph u)
    (Core.Dot.schema_graph u)

let tests =
  [
    test "schema graph structure" schema_graph_structure;
    test "association edges emitted once" association_edges_once;
    test "part-of and instance-of styling" part_of_and_instance_edges;
    test "concept graph is scoped" concept_graph_scoped;
    test "generalization graph has only ISA edges" generalization_graph_has_no_spokes;
    test "label escaping" escaping;
    test "deterministic output" deterministic;
  ]
