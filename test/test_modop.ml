(* The modification language: parser, printer, classification. *)

open Core.Modop

let test = Util.test

let roundtrip text =
  let op = Util.parse_op text in
  let printed = Core.Op_printer.to_string op in
  let reparsed = Util.parse_op printed in
  Alcotest.check Util.op_testable text op reparsed

(* one concrete instance of every operation in the language *)
let specimens =
  [
    "add_type_definition(Foo)";
    "delete_type_definition(Foo)";
    "add_supertype(Foo, Bar)";
    "delete_supertype(Foo, Bar)";
    "modify_supertype(Foo, (Bar), (Baz, Quux))";
    "add_extent_name(Foo, foos)";
    "delete_extent_name(Foo, foos)";
    "modify_extent_name(Foo, foos, all_foos)";
    "add_key_list(Foo, (a, b))";
    "delete_key_list(Foo, (a))";
    "modify_key_list(Foo, (a), (a, b))";
    "add_attribute(Foo, string, 30, name)";
    "add_attribute(Foo, set<Bar>, none, bars)";
    "delete_attribute(Foo, name)";
    "modify_attribute(Foo, name, Bar)";
    "modify_attribute_type(Foo, name, int, float)";
    "modify_attribute_size(Foo, name, none, 40)";
    "add_relationship(Foo, set<Bar>, bars, foo_of)";
    "add_relationship(Foo, Bar, bar, foo_of, (x, y))";
    "delete_relationship(Foo, bars)";
    "modify_relationship_target_type(Foo, bars, Bar, Baz)";
    "modify_relationship_cardinality(Foo, bars, set, one)";
    "modify_relationship_cardinality(Foo, bars, one, list)";
    "modify_relationship_order_by(Foo, bars, (), (x))";
    "add_operation(Foo, void, reset, (), ())";
    "add_operation(Foo, int, add, (int x, set<Bar> ys), (Overflow, Underflow))";
    "delete_operation(Foo, reset)";
    "modify_operation(Foo, reset, Bar)";
    "modify_operation_return_type(Foo, reset, void, int)";
    "modify_operation_arg_list(Foo, add, (int x), (int x, int y))";
    "modify_operation_exceptions_raised(Foo, add, (), (Overflow))";
    "add_part_of_relationship(Whole, set<Part>, parts, whole_of)";
    "add_part_of_relationship(Part, Whole, whole_of, parts)";
    "delete_part_of_relationship(Whole, parts)";
    "modify_part_of_target_type(Whole, parts, Part, SubPart)";
    "modify_part_of_cardinality(Whole, parts, set, list)";
    "modify_part_of_order_by(Whole, parts, (), (sku))";
    "add_instance_of_relationship(Generic, set<Inst>, insts, generic_of)";
    "delete_instance_of_relationship(Generic, insts)";
    "modify_instance_of_target_type(Generic, insts, Inst, SubInst)";
    "modify_instance_of_cardinality(Generic, insts, set, bag)";
    "modify_instance_of_order_by(Generic, insts, (x), ())";
  ]

let all_roundtrip () = List.iter roundtrip specimens

let specimen_coverage () =
  (* the specimens exercise every operation keyword of the language *)
  let keywords =
    specimens |> List.map (fun t -> name (Util.parse_op t))
    |> List.sort_uniq Stdlib.compare
  in
  Alcotest.(check (list string))
    "all operations covered"
    (List.sort Stdlib.compare Core.Permission.all_op_names)
    keywords

let add_attribute_fields () =
  match Util.parse_op "add_attribute(Foo, string, 30, name)" with
  | Add_attribute ("Foo", Odl.Types.D_string, Some 30, "name") -> ()
  | op -> Alcotest.failf "unexpected parse: %s" (Core.Op_printer.to_string op)

let add_attribute_no_size () =
  match Util.parse_op "add_attribute(Foo, int, none, count)" with
  | Add_attribute ("Foo", Odl.Types.D_int, None, "count") -> ()
  | op -> Alcotest.failf "unexpected parse: %s" (Core.Op_printer.to_string op)

let add_relationship_fields () =
  match Util.parse_op "add_relationship(Foo, set<Bar>, bars, foo_of, (x))" with
  | Add_relationship
      {
        ar_owner = "Foo";
        ar_target = "Bar";
        ar_card = Some Odl.Types.Set;
        ar_name = "bars";
        ar_inverse = "foo_of";
        ar_order_by = [ "x" ];
      } -> ()
  | op -> Alcotest.failf "unexpected parse: %s" (Core.Op_printer.to_string op)

let to_one_relationship () =
  match Util.parse_op "add_relationship(Foo, Bar, bar, foo_of)" with
  | Add_relationship { ar_card = None; _ } -> ()
  | op -> Alcotest.failf "unexpected parse: %s" (Core.Op_printer.to_string op)

let cardinality_forms () =
  match Util.parse_op "modify_relationship_cardinality(F, r, one, set)" with
  | Modify_relationship_cardinality ("F", "r", None, Some Odl.Types.Set) -> ()
  | op -> Alcotest.failf "unexpected parse: %s" (Core.Op_printer.to_string op)

let operation_args () =
  match Util.parse_op "add_operation(F, int, add, (int x, string y), (E))" with
  | Add_operation ("F", Odl.Types.D_int, "add", [ a; b ], [ "E" ]) ->
      Alcotest.(check string) "arg1" "x" a.arg_name;
      Alcotest.(check bool) "arg2 type" true (b.arg_type = Odl.Types.D_string)
  | op -> Alcotest.failf "unexpected parse: %s" (Core.Op_printer.to_string op)

let parse_many () =
  let ops =
    Core.Op_parser.parse_many
      "add_type_definition(A); add_type_definition(B)\n\
       delete_type_definition(A);"
  in
  Alcotest.(check int) "three ops" 3 (List.length ops)

let expect_parse_error text =
  match Util.parse_op text with
  | exception Core.Op_parser.Parse_error _ -> ()
  | op -> Alcotest.failf "should not parse: got %s" (Core.Op_printer.to_string op)

let parse_errors () =
  expect_parse_error "frobnicate(A)";
  expect_parse_error "add_type_definition()";
  expect_parse_error "add_type_definition(A, B)";
  expect_parse_error "add_attribute(A, string, 30)";
  expect_parse_error "modify_part_of_cardinality(A, p, one, set)"
    (* part-of cardinalities are collections, never 'one' *);
  expect_parse_error "add_relationship(A)";
  expect_parse_error "add_type_definition(A) trailing"

let classification () =
  let check text cand action =
    let c, a = classify (Util.parse_op text) in
    Alcotest.(check bool) (text ^ " candidate") true (c = cand);
    Alcotest.(check bool) (text ^ " action") true (a = action)
  in
  check "add_type_definition(A)" Cand_type_definition Add;
  check "modify_attribute(A, x, B)" Cand_attribute Modify;
  check "delete_part_of_relationship(A, p)" Cand_part_of Delete;
  check "modify_instance_of_order_by(A, p, (), ())" Cand_instance_of Modify

let subjects () =
  Alcotest.(check string) "subject of add_relationship" "Foo"
    (subject (Util.parse_op "add_relationship(Foo, Bar, b, f)"));
  Alcotest.(check string) "subject of move" "A"
    (subject (Util.parse_op "modify_attribute(A, x, B)"))

let tests =
  [
    test "every operation round trips" all_roundtrip;
    test "specimens cover the whole language" specimen_coverage;
    test "add_attribute fields" add_attribute_fields;
    test "add_attribute without size" add_attribute_no_size;
    test "add_relationship fields" add_relationship_fields;
    test "to-one relationship" to_one_relationship;
    test "cardinality forms" cardinality_forms;
    test "operation arguments" operation_args;
    test "parse a log" parse_many;
    test "parse errors" parse_errors;
    test "classification" classification;
    test "subjects" subjects;
  ]
