(** Shared helpers for the test suite. *)

open Odl.Types

let schema_testable =
  Alcotest.testable
    (fun ppf s -> Fmt.string ppf (Odl.Printer.schema_to_string s))
    Core.Recompose.equal_content

let interface_testable =
  Alcotest.testable
    (fun ppf i -> Fmt.string ppf (Odl.Printer.interface_to_string i))
    equal_interface

let op_testable = Alcotest.testable Core.Modop.pp Core.Modop.equal

let parse s = Odl.Parser.parse_schema s
let parse_op s = Core.Op_parser.parse s

let university () = Schemas.University.v ()
let lumber () = Schemas.Lumber.v ()
let emsl () = Schemas.Emsl.v ()

let session_of schema =
  match Core.Session.create schema with
  | Ok s -> s
  | Error ds ->
      Alcotest.failf "schema should be valid: %a"
        Fmt.(list ~sep:(any "; ") Odl.Validate.pp_diagnostic_line)
        ds

(** Apply an operation text in [kind]; fail the test on rejection. *)
let apply_ok ?(kind = Core.Concept.Wagon_wheel) session text =
  match Core.Session.apply session ~kind (parse_op text) with
  | Ok (s, events) -> (s, events)
  | Error e -> Alcotest.failf "%s should be accepted: %s" text (Core.Apply.error_to_string e)

(** Expect rejection; return the error. *)
let apply_err ?(kind = Core.Concept.Wagon_wheel) session text =
  match Core.Session.apply session ~kind (parse_op text) with
  | Ok _ -> Alcotest.failf "%s should be rejected" text
  | Error e -> e

let apply_many ?(kind = Core.Concept.Wagon_wheel) session texts =
  List.fold_left (fun s text -> fst (apply_ok ~kind s text)) session texts

let workspace = Core.Session.workspace
let iface session name = Odl.Schema.get_interface (workspace session) name

(** Direct apply (no session) on a schema acting as its own original. *)
let raw_apply ?(kind = Core.Concept.Wagon_wheel) schema text =
  Core.Apply.apply ~original:schema ~kind schema (parse_op text)

let check_valid name schema =
  match Odl.Validate.errors schema with
  | [] -> ()
  | ds ->
      Alcotest.failf "%s should have no errors: %a" name
        Fmt.(list ~sep:(any "; ") Odl.Validate.pp_diagnostic_line)
        ds

let has_error_containing schema fragment =
  List.exists
    (fun (d : Odl.Validate.diagnostic) ->
      d.severity = Odl.Validate.Error
      &&
      let text = d.subject ^ " " ^ d.message in
      let re = Str_contains.contains text fragment in
      re)
    (Odl.Validate.check schema)

let has_warning_containing schema fragment =
  List.exists
    (fun (d : Odl.Validate.diagnostic) ->
      d.severity = Odl.Validate.Warning
      && Str_contains.contains (d.subject ^ " " ^ d.message) fragment)
    (Odl.Validate.check schema)

let test name f = Alcotest.test_case name `Quick f
