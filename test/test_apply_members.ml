(* Application engine: instance properties — attributes, relationships,
   operations, part-of, instance-of. *)

open Core.Apply
open Odl.Types

let test = Util.test
let gh = Core.Concept.Generalization
let ah = Core.Concept.Aggregation
let ih = Core.Concept.Instance_chain

let err_kind = function
  | Not_allowed _ -> "not_allowed"
  | Unknown _ -> "unknown"
  | Conflict _ -> "conflict"
  | Violation _ -> "violation"

let check_err expected e =
  Alcotest.(check string) "error kind" expected (err_kind e)

(* --- attributes ---------------------------------------------------------- *)

let attribute_add () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_attribute(Person, string, 20, nickname)" in
  let a = Option.get (Odl.Schema.find_attr (Util.iface s "Person") "nickname") in
  Alcotest.(check bool) "type" true (a.attr_type = D_string);
  Alcotest.(check (option int)) "size" (Some 20) a.attr_size

let attribute_add_named_domain () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_attribute(Person, set<Book>, none, favorites)" in
  Util.check_valid "valid" (Util.workspace s);
  check_err "unknown"
    (Util.apply_err s "add_attribute(Person, Ghost, none, haunt)")

let attribute_add_conflicts () =
  let s = Util.session_of (Util.university ()) in
  check_err "conflict" (Util.apply_err s "add_attribute(Person, int, none, name)");
  (* attributes and relationships share the property namespace *)
  check_err "conflict"
    (Util.apply_err s "add_attribute(Student, int, none, takes)")

let attribute_delete () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "delete_attribute(Person, birthdate)" in
  Alcotest.(check bool) "gone" false
    (Odl.Schema.has_attr (Util.iface s "Person") "birthdate");
  check_err "unknown" (Util.apply_err s "delete_attribute(Person, birthdate)")

let attribute_delete_prunes_keys () =
  let s = Util.session_of (Util.university ()) in
  let s, events = Util.apply_ok s "delete_attribute(Person, ssn)" in
  Alcotest.(check int) "key dropped" 0 (List.length (Util.iface s "Person").i_keys);
  Alcotest.(check bool) "propagated key removal" true
    (List.exists
       (fun e ->
         (not e.Core.Change.ev_direct)
         && match e.ev_change with
            | Core.Change.Removed (Core.Change.C_key _) -> true
            | _ -> false)
       events);
  Util.check_valid "valid" (Util.workspace s)

let attribute_delete_prunes_order_by () =
  let s = Util.session_of (Util.university ()) in
  (* Faculty.advises is ordered by name (declared on Person) *)
  let s, _ = Util.apply_ok s "delete_attribute(Person, name)" in
  let advises = Option.get (Odl.Schema.find_rel (Util.iface s "Faculty") "advises") in
  Alcotest.(check (list string)) "order_by pruned" [] advises.rel_order_by;
  Util.check_valid "valid" (Util.workspace s)

let attribute_move_up () =
  let s = Util.session_of (Util.university ()) in
  let s, events = Util.apply_ok ~kind:gh s "modify_attribute(Student, gpa, Person)" in
  Alcotest.(check bool) "moved" true
    (Odl.Schema.has_attr (Util.iface s "Person") "gpa");
  Alcotest.(check bool) "removed from source" false
    (Odl.Schema.has_attr (Util.iface s "Student") "gpa");
  Alcotest.(check bool) "move event" true
    (List.exists
       (fun e ->
         match e.Core.Change.ev_change with
         | Core.Change.Moved (Core.Change.C_attribute ("Student", "gpa"), "Person")
           -> true
         | _ -> false)
       events)

let attribute_move_down () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok ~kind:gh s "modify_attribute(Student, gpa, Graduate)" in
  Alcotest.(check bool) "moved down" true
    (Odl.Schema.has_attr (Util.iface s "Graduate") "gpa")

let attribute_move_violations () =
  let s = Util.session_of (Util.university ()) in
  (* Employee is not on Student's ISA line: semantic stability *)
  check_err "violation"
    (Util.apply_err ~kind:gh s "modify_attribute(Student, gpa, Employee)");
  (* moving to itself is pointless *)
  check_err "violation"
    (Util.apply_err ~kind:gh s "modify_attribute(Student, gpa, Student)");
  (* unknown attribute *)
  check_err "unknown"
    (Util.apply_err ~kind:gh s "modify_attribute(Student, ghost, Person)");
  (* the destination already declares that name *)
  let s2, _ = Util.apply_ok s "add_attribute(Person, int, none, gpa)" in
  check_err "conflict"
    (Util.apply_err ~kind:gh s2 "modify_attribute(Student, gpa, Person)")

let attribute_move_stability_uses_original () =
  (* once Graduate is cut loose from Student in the workspace, moves between
     them are still legal because the *shrink wrap* hierarchy relates them *)
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok ~kind:gh s "delete_supertype(Graduate, Student)" in
  let s, _ = Util.apply_ok ~kind:gh s "modify_attribute(Student, gpa, Graduate)" in
  Alcotest.(check bool) "move allowed via original hierarchy" true
    (Odl.Schema.has_attr (Util.iface s "Graduate") "gpa")

let attribute_modify_type () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "modify_attribute_type(Student, gpa, float, int)" in
  let a = Option.get (Odl.Schema.find_attr (Util.iface s "Student") "gpa") in
  Alcotest.(check bool) "changed" true (a.attr_type = D_int);
  check_err "violation"
    (Util.apply_err s "modify_attribute_type(Student, gpa, float, int)")

let attribute_modify_size () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "modify_attribute_size(Person, name, 60, 100)" in
  let a = Option.get (Odl.Schema.find_attr (Util.iface s "Person") "name") in
  Alcotest.(check (option int)) "changed" (Some 100) a.attr_size;
  check_err "violation"
    (Util.apply_err s "modify_attribute_size(Person, name, 60, 80)")

(* --- association relationships ------------------------------------------ *)

let relationship_add_creates_both_ends () =
  let s = Util.session_of (Util.university ()) in
  let s, events =
    Util.apply_ok s "add_relationship(Department, set<Book>, library, owned_by)"
  in
  let dept = Util.iface s "Department" and book = Util.iface s "Book" in
  let fwd = Option.get (Odl.Schema.find_rel dept "library") in
  let bwd = Option.get (Odl.Schema.find_rel book "owned_by") in
  Alcotest.(check bool) "forward to-many" true (fwd.rel_card = Some Set);
  Alcotest.(check bool) "backward to-one" true (bwd.rel_card = None);
  Alcotest.(check string) "inverse wiring" "library" bwd.rel_inverse;
  Alcotest.(check int) "two events" 2 (List.length events);
  Util.check_valid "valid" (Util.workspace s)

let relationship_add_to_one () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok s "add_relationship(Syllabus, Faculty, authored_by, authored)"
  in
  let fac = Util.iface s "Faculty" in
  let bwd = Option.get (Odl.Schema.find_rel fac "authored") in
  Alcotest.(check bool) "backward is to-many" true (bwd.rel_card = Some Set)

let relationship_add_self () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok s "add_relationship(Faculty, Faculty, mentor, mentee_of)"
  in
  Util.check_valid "valid" (Util.workspace s);
  check_err "conflict"
    (Util.apply_err s "add_relationship(Faculty, Faculty, buddy, buddy)")

let relationship_add_conflicts () =
  let s = Util.session_of (Util.university ()) in
  check_err "conflict"
    (Util.apply_err s "add_relationship(Student, set<Book>, takes, t_inv)");
  check_err "unknown"
    (Util.apply_err s "add_relationship(Student, set<Ghost>, g, g_inv)");
  check_err "violation"
    (Util.apply_err s "add_relationship(Student, set<Book>, fav, fav_of, (ghost))")

let relationship_delete_removes_both_ends () =
  let s = Util.session_of (Util.university ()) in
  let s, events = Util.apply_ok s "delete_relationship(Student, takes)" in
  Alcotest.(check bool) "forward gone" false
    (Odl.Schema.has_rel (Util.iface s "Student") "takes");
  Alcotest.(check bool) "inverse gone" false
    (Odl.Schema.has_rel (Util.iface s "Course_Offering") "taken_by");
  Alcotest.(check int) "two events" 2 (List.length events);
  Util.check_valid "valid" (Util.workspace s)

let relationship_delete_kind_checked () =
  let s = Util.session_of (Util.lumber ()) in
  (* House.structures is a part-of relationship, not an association *)
  check_err "violation" (Util.apply_err s "delete_relationship(House, structures)")

let relationship_target_move () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok ~kind:gh s
      "modify_relationship_target_type(Department, has, Employee, Person)"
  in
  let dept = Util.iface s "Department" in
  let has = Option.get (Odl.Schema.find_rel dept "has") in
  Alcotest.(check string) "retargeted" "Person" has.rel_target;
  Alcotest.(check bool) "inverse moved" true
    (Odl.Schema.has_rel (Util.iface s "Person") "works_in_a");
  Alcotest.(check bool) "inverse removed from old target" false
    (Odl.Schema.has_rel (Util.iface s "Employee") "works_in_a");
  Util.check_valid "valid" (Util.workspace s)

let relationship_target_move_violations () =
  let s = Util.session_of (Util.university ()) in
  (* stale old target *)
  check_err "violation"
    (Util.apply_err ~kind:gh s
       "modify_relationship_target_type(Department, has, Person, Student)");
  (* off the ISA line *)
  check_err "violation"
    (Util.apply_err ~kind:gh s
       "modify_relationship_target_type(Department, has, Employee, Book)");
  (* same target *)
  check_err "violation"
    (Util.apply_err ~kind:gh s
       "modify_relationship_target_type(Department, has, Employee, Employee)");
  (* unknown relationship *)
  check_err "unknown"
    (Util.apply_err ~kind:gh s
       "modify_relationship_target_type(Department, ghost, Employee, Person)")

let relationship_cardinality () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok s
      "modify_relationship_cardinality(Course_Offering, taught_by, one, set)"
  in
  let r =
    Option.get (Odl.Schema.find_rel (Util.iface s "Course_Offering") "taught_by")
  in
  Alcotest.(check bool) "now many" true (r.rel_card = Some Set);
  check_err "violation"
    (Util.apply_err s
       "modify_relationship_cardinality(Course_Offering, taught_by, one, set)")

let relationship_order_by () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok s
      "modify_relationship_order_by(Faculty, advises, (name), (name, gpa))"
  in
  let r = Option.get (Odl.Schema.find_rel (Util.iface s "Faculty") "advises") in
  Alcotest.(check (list string)) "changed" [ "name"; "gpa" ] r.rel_order_by;
  check_err "violation"
    (Util.apply_err s
       "modify_relationship_order_by(Faculty, advises, (name), (ghost))")

(* --- operations ----------------------------------------------------------- *)

let operation_add_delete () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok s "add_operation(Student, float, predicted_gpa, (int term), ())"
  in
  Alcotest.(check bool) "added" true
    (Odl.Schema.has_op (Util.iface s "Student") "predicted_gpa");
  check_err "conflict"
    (Util.apply_err s "add_operation(Student, void, predicted_gpa, (), ())");
  check_err "unknown"
    (Util.apply_err s "add_operation(Student, Ghost, mystery, (), ())");
  let s, _ = Util.apply_ok s "delete_operation(Student, predicted_gpa)" in
  Alcotest.(check bool) "deleted" false
    (Odl.Schema.has_op (Util.iface s "Student") "predicted_gpa")

let operation_move () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok ~kind:gh s "modify_operation(Student, in_good_standing, Person)"
  in
  Alcotest.(check bool) "moved" true
    (Odl.Schema.has_op (Util.iface s "Person") "in_good_standing");
  check_err "violation"
    (Util.apply_err ~kind:gh s "modify_operation(Employee, give_raise, Book)")

let operation_move_conflict () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_operation(Person, int, advisee_count, (), ())" in
  check_err "conflict"
    (Util.apply_err ~kind:gh s "modify_operation(Faculty, advisee_count, Person)")

let operation_modifications () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok s
      "modify_operation_return_type(Student, in_good_standing, boolean, int)"
  in
  let o = Option.get (Odl.Schema.find_op (Util.iface s "Student") "in_good_standing") in
  Alcotest.(check bool) "return changed" true (o.op_return = D_int);
  let s, _ =
    Util.apply_ok s
      "modify_operation_arg_list(Student, in_good_standing, (), (int term))"
  in
  let o = Option.get (Odl.Schema.find_op (Util.iface s "Student") "in_good_standing") in
  Alcotest.(check int) "arg added" 1 (List.length o.op_args);
  let s, _ =
    Util.apply_ok s
      "modify_operation_exceptions_raised(Student, in_good_standing, (), (No_Record))"
  in
  let o = Option.get (Odl.Schema.find_op (Util.iface s "Student") "in_good_standing") in
  Alcotest.(check (list string)) "raises" [ "No_Record" ] o.op_raises;
  check_err "violation"
    (Util.apply_err s
       "modify_operation_return_type(Student, in_good_standing, boolean, float)")

(* --- part-of -------------------------------------------------------------- *)

let part_of_add () =
  let s = Util.session_of (Util.lumber ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Gutter)" in
  let s, _ =
    Util.apply_ok ~kind:ah s
      "add_part_of_relationship(Roof, set<Gutter>, gutters, gutter_of)"
  in
  let r = Option.get (Odl.Schema.find_rel (Util.iface s "Roof") "gutters") in
  Alcotest.(check bool) "kind" true (r.rel_kind = Part_of);
  Alcotest.(check bool) "whole end" true (role_of_relationship r = Whole_end);
  let inv = Option.get (Odl.Schema.find_rel (Util.iface s "Gutter") "gutter_of") in
  Alcotest.(check bool) "part end" true (role_of_relationship inv = Part_end);
  Util.check_valid "valid" (Util.workspace s)

let part_of_add_from_part_side () =
  let s = Util.session_of (Util.lumber ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Chimney)" in
  let s, _ =
    Util.apply_ok ~kind:ah s
      "add_part_of_relationship(Chimney, Roof, chimney_of, chimneys)"
  in
  let inv = Option.get (Odl.Schema.find_rel (Util.iface s "Roof") "chimneys") in
  Alcotest.(check bool) "whole end created" true
    (role_of_relationship inv = Whole_end);
  Util.check_valid "valid" (Util.workspace s)

let part_of_cycle_rejected () =
  let s = Util.session_of (Util.lumber ()) in
  (* House is (transitively) the whole of Roof; Roof cannot aggregate House *)
  check_err "violation"
    (Util.apply_err ~kind:ah s
       "add_part_of_relationship(Roof, set<House>, houses, housed)")

let part_of_cardinality () =
  let s = Util.session_of (Util.lumber ()) in
  let s, _ =
    Util.apply_ok ~kind:ah s "modify_part_of_cardinality(Framing, studs, set, list)"
  in
  let r = Option.get (Odl.Schema.find_rel (Util.iface s "Framing") "studs") in
  Alcotest.(check bool) "now a list" true (r.rel_card = Some List);
  (* only the collection end may change *)
  check_err "violation"
    (Util.apply_err ~kind:ah s
       "modify_part_of_cardinality(Stud, stud_of, set, list)");
  check_err "violation"
    (Util.apply_err ~kind:ah s
       "modify_part_of_cardinality(Framing, studs, set, bag)")

let part_of_target_move () =
  let s = Util.session_of (Util.lumber ()) in
  let s, _ =
    Util.apply_ok ~kind:ah s
      "modify_part_of_target_type(Roof, shingles, Shingle_Bundle, Supply_Item)"
  in
  Alcotest.(check bool) "inverse relocated" true
    (Odl.Schema.has_rel (Util.iface s "Supply_Item") "shingles_of");
  Util.check_valid "valid" (Util.workspace s)

let part_of_order_by () =
  let s = Util.session_of (Util.lumber ()) in
  let s, _ =
    Util.apply_ok ~kind:ah s "modify_part_of_order_by(Framing, studs, (), (sku))"
  in
  let r = Option.get (Odl.Schema.find_rel (Util.iface s "Framing") "studs") in
  Alcotest.(check (list string)) "ordered" [ "sku" ] r.rel_order_by

let part_of_delete () =
  let s = Util.session_of (Util.lumber ()) in
  let s, _ = Util.apply_ok ~kind:ah s "delete_part_of_relationship(Framing, studs)" in
  Alcotest.(check bool) "gone" false
    (Odl.Schema.has_rel (Util.iface s "Framing") "studs");
  Alcotest.(check bool) "inverse gone" false
    (Odl.Schema.has_rel (Util.iface s "Stud") "stud_of");
  Util.check_valid "valid" (Util.workspace s)

(* --- instance-of ---------------------------------------------------------- *)

let instance_of_add () =
  let s = Util.session_of (Util.emsl ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Patch_Level)" in
  let s, _ =
    Util.apply_ok ~kind:ih s
      "add_instance_of_relationship(Installed_Version, set<Patch_Level>, patches, patch_of)"
  in
  let r =
    Option.get (Odl.Schema.find_rel (Util.iface s "Installed_Version") "patches")
  in
  Alcotest.(check bool) "generic end" true (role_of_relationship r = Generic_end);
  Util.check_valid "valid" (Util.workspace s)

let instance_of_cycle_rejected () =
  let s = Util.session_of (Util.emsl ()) in
  check_err "violation"
    (Util.apply_err ~kind:ih s
       "add_instance_of_relationship(Installed_Version, set<Application>, apps, app_of)")

let instance_of_cardinality_and_order () =
  let s = Util.session_of (Util.emsl ()) in
  let s, _ =
    Util.apply_ok ~kind:ih s
      "modify_instance_of_cardinality(Compiled_Version, installations, set, list)"
  in
  let s, _ =
    Util.apply_ok ~kind:ih s
      "modify_instance_of_order_by(Compiled_Version, installations, (), (install_date))"
  in
  let r =
    Option.get
      (Odl.Schema.find_rel (Util.iface s "Compiled_Version") "installations")
  in
  Alcotest.(check bool) "list" true (r.rel_card = Some List);
  Alcotest.(check (list string)) "ordered" [ "install_date" ] r.rel_order_by;
  check_err "violation"
    (Util.apply_err ~kind:ih s
       "modify_instance_of_cardinality(Installed_Version, installed_from, set, list)")

let instance_of_delete () =
  let s = Util.session_of (Util.emsl ()) in
  let s, _ =
    Util.apply_ok ~kind:ih s
      "delete_instance_of_relationship(Compiled_Version, installations)"
  in
  Alcotest.(check bool) "inverse gone" false
    (Odl.Schema.has_rel (Util.iface s "Installed_Version") "installed_from");
  Util.check_valid "valid" (Util.workspace s)

let instance_of_target_move () =
  (* build a tiny schema where the instance end can move along an ISA line *)
  let src =
    {|interface G { instance_of relationship set<I> insts inverse I::gen; };
      interface I : IBase { instance_of relationship G gen inverse G::insts; };
      interface IBase { };|}
  in
  let s = Util.session_of (Util.parse src) in
  let s, _ =
    Util.apply_ok ~kind:ih s "modify_instance_of_target_type(G, insts, I, IBase)"
  in
  Alcotest.(check bool) "moved" true
    (Odl.Schema.has_rel (Util.iface s "IBase") "gen");
  Util.check_valid "valid" (Util.workspace s)

let tests =
  [
    test "add attribute" attribute_add;
    test "add attribute with named domain" attribute_add_named_domain;
    test "add attribute conflicts" attribute_add_conflicts;
    test "delete attribute" attribute_delete;
    test "delete attribute prunes keys" attribute_delete_prunes_keys;
    test "delete attribute prunes order_by" attribute_delete_prunes_order_by;
    test "move attribute up" attribute_move_up;
    test "move attribute down" attribute_move_down;
    test "attribute move violations" attribute_move_violations;
    test "stability judged on the shrink wrap hierarchy"
      attribute_move_stability_uses_original;
    test "modify attribute type" attribute_modify_type;
    test "modify attribute size" attribute_modify_size;
    test "add relationship creates both ends" relationship_add_creates_both_ends;
    test "add to-one relationship" relationship_add_to_one;
    test "self relationship" relationship_add_self;
    test "add relationship conflicts" relationship_add_conflicts;
    test "delete relationship removes both ends"
      relationship_delete_removes_both_ends;
    test "delete relationship checks kind" relationship_delete_kind_checked;
    test "move relationship target (Figure 8)" relationship_target_move;
    test "relationship target move violations" relationship_target_move_violations;
    test "modify relationship cardinality" relationship_cardinality;
    test "modify relationship order_by" relationship_order_by;
    test "add and delete operation" operation_add_delete;
    test "move operation" operation_move;
    test "operation move conflict" operation_move_conflict;
    test "operation modifications" operation_modifications;
    test "add part-of from whole side" part_of_add;
    test "add part-of from part side" part_of_add_from_part_side;
    test "part-of cycle rejected" part_of_cycle_rejected;
    test "part-of cardinality" part_of_cardinality;
    test "part-of target move" part_of_target_move;
    test "part-of order_by" part_of_order_by;
    test "delete part-of" part_of_delete;
    test "add instance-of" instance_of_add;
    test "instance-of cycle rejected" instance_of_cycle_rejected;
    test "instance-of cardinality and order" instance_of_cardinality_and_order;
    test "delete instance-of" instance_of_delete;
    test "instance-of target move" instance_of_target_move;
  ]
