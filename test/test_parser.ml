open Odl.Types

let test = Util.test

let parse_iface src = Odl.Parser.parse_interface_string src

let minimal () =
  let i = parse_iface "interface Foo { };" in
  Alcotest.(check string) "name" "Foo" i.i_name;
  Alcotest.(check (list string)) "no supers" [] i.i_supertypes

let supertypes () =
  let i = parse_iface "interface A : B, C { };" in
  Alcotest.(check (list string)) "supers" [ "B"; "C" ] i.i_supertypes

let extent_and_keys () =
  let i =
    parse_iface
      "interface A { extent as_; key x; key (y, z); attribute int x; attribute \
       int y; attribute int z; };"
  in
  Alcotest.(check (option string)) "extent" (Some "as_") i.i_extent;
  Alcotest.(check (list (list string))) "keys" [ [ "x" ]; [ "y"; "z" ] ] i.i_keys

let attribute_domains () =
  let i =
    parse_iface
      "interface A { attribute int a; attribute float b; attribute string<30> \
       c; attribute boolean d; attribute char e; attribute set<int> f; \
       attribute list<Other> g; attribute Other h; };"
  in
  let ty name =
    (Option.get (Odl.Schema.find_attr i name)).attr_type
  in
  let size name = (Option.get (Odl.Schema.find_attr i name)).attr_size in
  Alcotest.(check bool) "int" true (ty "a" = D_int);
  Alcotest.(check bool) "float" true (ty "b" = D_float);
  Alcotest.(check bool) "sized string" true
    (ty "c" = D_string && size "c" = Some 30);
  Alcotest.(check bool) "boolean" true (ty "d" = D_boolean);
  Alcotest.(check bool) "char" true (ty "e" = D_char);
  Alcotest.(check bool) "set of int" true (ty "f" = D_collection (Set, D_int));
  Alcotest.(check bool) "list of named" true
    (ty "g" = D_collection (List, D_named "Other"));
  Alcotest.(check bool) "named" true (ty "h" = D_named "Other")

let relationships () =
  let i =
    parse_iface
      "interface A { relationship B to_b inverse B::to_a; relationship set<B> \
       many_b inverse B::one_a order_by (x, y); part_of relationship set<P> \
       parts inverse P::whole; instance_of relationship G generic inverse \
       G::instances; };"
  in
  let r name = Option.get (Odl.Schema.find_rel i name) in
  Alcotest.(check bool) "to-one assoc" true
    ((r "to_b").rel_card = None && (r "to_b").rel_kind = Association);
  Alcotest.(check bool) "to-many assoc" true ((r "many_b").rel_card = Some Set);
  Alcotest.(check (list string)) "order_by" [ "x"; "y" ] (r "many_b").rel_order_by;
  Alcotest.(check bool) "part_of" true ((r "parts").rel_kind = Part_of);
  Alcotest.(check bool) "whole end role" true
    (role_of_relationship (r "parts") = Whole_end);
  Alcotest.(check bool) "instance_of" true ((r "generic").rel_kind = Instance_of);
  Alcotest.(check bool) "instance end role" true
    (role_of_relationship (r "generic") = Instance_end)

let operations () =
  let i =
    parse_iface
      "interface A { void f(); int g(string x, set<B> ys) raises (E1, E2); B \
       h(); };"
  in
  let o name = Option.get (Odl.Schema.find_op i name) in
  Alcotest.(check bool) "void return" true ((o "f").op_return = D_void);
  Alcotest.(check int) "two args" 2 (List.length (o "g").op_args);
  Alcotest.(check (list string)) "raises" [ "E1"; "E2" ] (o "g").op_raises;
  Alcotest.(check bool) "named return" true ((o "h").op_return = D_named "B")

let named_schema () =
  let s = Util.parse "schema S { interface A { }; interface B { }; };" in
  Alcotest.(check string) "name" "S" s.s_name;
  Alcotest.(check (list string)) "order" [ "A"; "B" ]
    (List.map (fun i -> i.i_name) s.s_interfaces)

let anonymous_schema () =
  let s = Util.parse "interface A { }; interface B { };" in
  Alcotest.(check int) "two interfaces" 2 (List.length s.s_interfaces)

let empty_schema () =
  let s = Util.parse "schema Empty { };" in
  Alcotest.(check int) "none" 0 (List.length s.s_interfaces)

let expect_parse_error src =
  match Util.parse src with
  | exception Odl.Parser.Parse_error _ -> ()
  | _ -> Alcotest.failf "should not parse: %s" src

let syntax_errors () =
  expect_parse_error "interface { };";
  expect_parse_error "interface A { attribute int; };";
  expect_parse_error "interface A { relationship B x inverse C::y; };"
    (* inverse must be qualified by the target type *);
  expect_parse_error "interface A { extent e }";
  expect_parse_error "schema S { interface A { }; } trailing";
  expect_parse_error "interface A : { };"

let mismatched_inverse_qualifier () =
  match
    Util.parse "interface A { relationship B r inverse Wrong::s; };"
  with
  | exception Odl.Parser.Parse_error (m, _, _) ->
      Alcotest.(check bool) "mentions target" true
        (Str_contains.contains m "target")
  | _ -> Alcotest.fail "should reject mismatched inverse qualifier"

let error_position () =
  match Util.parse "interface A {\n  attribute ;\n};" with
  | exception Odl.Parser.Parse_error (_, line, _) ->
      Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "should not parse"

let semicolon_after_interface_optional () =
  let s = Util.parse "schema S { interface A { } interface B { }; };" in
  Alcotest.(check int) "two" 2 (List.length s.s_interfaces)

let tests =
  [
    test "minimal interface" minimal;
    test "supertypes" supertypes;
    test "extent and keys" extent_and_keys;
    test "attribute domains" attribute_domains;
    test "relationships of all kinds" relationships;
    test "operations" operations;
    test "named schema" named_schema;
    test "anonymous schema" anonymous_schema;
    test "empty schema" empty_schema;
    test "syntax errors" syntax_errors;
    test "mismatched inverse qualifier" mismatched_inverse_qualifier;
    test "error position" error_position;
    test "optional semicolon" semicolon_after_interface_optional;
  ]
