(* Schema quality heuristics. *)

open Core.Quality

let test = Util.test

let fired findings heuristic subject =
  List.exists
    (fun f -> f.q_heuristic = heuristic && f.q_subject = subject)
    findings

let bundled_schemas_are_well_crafted () =
  (* the premise: the bundled shrink wrap schemas should score high *)
  List.iter
    (fun (name, s) ->
      let sc = score s in
      if sc < 85 then
        Alcotest.failf "%s scores %d:\n%s" name sc (report s))
    [
      ("university", Util.university ()); ("lumber", Util.lumber ());
      ("emsl", Util.emsl ()); ("commerce", Schemas.Commerce.v ());
    ]

let missing_extent_detected () =
  (* only roots that actually head a hierarchy are expected to be
     enumerable *)
  let s =
    Util.parse
      "interface A { attribute int x; key x; };\n\
       interface B : A { attribute int y; };"
  in
  Alcotest.(check bool) "fires on the hierarchy root" true
    (fired (assess s) "missing-extent" "A");
  let lone = Util.parse "interface A { attribute int x; key x; };" in
  Alcotest.(check bool) "silent on a lone type" false
    (fired (assess lone) "missing-extent" "A")

let missing_key_detected () =
  let s =
    Util.parse "interface A { extent as_; attribute int x; };"
  in
  Alcotest.(check bool) "fires" true (fired (assess s) "missing-key" "A");
  (* a weak entity anchored by a to-one end borrows identity *)
  let weak =
    Util.parse
      {|interface Owner { extent os; attribute int k; key k;
          relationship set<Weak> w inverse Weak::of_owner; };
        interface Weak { attribute int n;
          relationship Owner of_owner inverse Owner::w; };|}
  in
  Alcotest.(check bool) "anchored weak entity not flagged" false
    (fired (assess weak) "missing-key" "Weak");
  (* a key anywhere on the ISA line suffices *)
  let s2 =
    Util.parse
      "interface A { extent as_; attribute int x; key x; };\n\
       interface B : A { attribute int y; };"
  in
  Alcotest.(check bool) "inherited identity ok" false
    (fired (assess s2) "missing-key" "B")

let isolated_type_detected () =
  let s =
    Util.parse
      {|interface Island { extent is_; attribute int x; key x; };
        interface A { extent as_; attribute int y; key y;
          relationship B b inverse B::a; };
        interface B { relationship set<A> a inverse A::b; };|}
  in
  let findings = assess s in
  Alcotest.(check bool) "island flagged" true
    (fired findings "isolated-type" "Island");
  Alcotest.(check bool) "connected not flagged" false
    (fired findings "isolated-type" "A")

let god_object_detected () =
  (* a hub with ten spokes *)
  let spokes = List.init 10 (fun k -> k) in
  let hub_rels =
    spokes
    |> List.map (fun k ->
           Printf.sprintf "relationship S%d r%d inverse S%d::inv%d;" k k k k)
    |> String.concat "\n"
  in
  let spoke_ifaces =
    spokes
    |> List.map (fun k ->
           Printf.sprintf
             "interface S%d { relationship set<Hub> inv%d inverse Hub::r%d; };"
             k k k)
    |> String.concat "\n"
  in
  let s = Util.parse (Printf.sprintf "interface Hub { %s };\n%s" hub_rels spoke_ifaces) in
  Alcotest.(check bool) "fires" true (fired (assess s) "god-object" "Hub")

let needless_layer_detected () =
  let s =
    Util.parse
      "interface Top { attribute int x; }; interface Middle : Top { }; \
       interface Leaf : Middle { attribute int y; };"
  in
  Alcotest.(check bool) "fires on Middle" true
    (fired (assess s) "needless-layer" "Middle");
  Alcotest.(check bool) "not on Top" false (fired (assess s) "needless-layer" "Top")

let empty_leaf_detected () =
  let s =
    Util.parse "interface Base { attribute int x; }; interface Red : Base { };"
  in
  Alcotest.(check bool) "fires" true (fired (assess s) "empty-leaf" "Red")

let naming_style_detected () =
  let s =
    Util.parse
      "interface A { attribute int alpha; attribute int beta; attribute int \
       gamma; attribute int delta; attribute int CamelCase; };"
  in
  Alcotest.(check bool) "fires on the minority offender" true
    (fired (assess s) "naming-style" "A.CamelCase")

let deep_hierarchy_detected () =
  let chain =
    "interface L0 { attribute int a0; };"
    :: List.init 5 (fun k ->
           Printf.sprintf "interface L%d : L%d { attribute int a%d; };" (k + 1)
             k (k + 1))
  in
  let s = Util.parse (String.concat "\n" chain) in
  Alcotest.(check bool) "fires at depth five" true
    (fired (assess s) "deep-hierarchy" "L5")

let score_monotonicity () =
  (* strictly worse schema cannot score higher *)
  let good = Util.parse "interface A { extent as_; attribute int x; key x; };" in
  let bad =
    Util.parse
      "interface A { attribute int x; };\n\
       interface Island { };"
  in
  Alcotest.(check bool) "ordering" true (score good >= score bad)

let catalog_documented () =
  let ids = List.map fst heuristics in
  (* every finding produced anywhere uses a documented heuristic *)
  List.iter
    (fun s ->
      List.iter
        (fun f ->
          Alcotest.(check bool) (f.q_heuristic ^ " documented") true
            (List.mem f.q_heuristic ids))
        (assess s))
    [ Util.university (); Util.parse "interface A { };" ]

let tests =
  [
    test "bundled schemas are well crafted" bundled_schemas_are_well_crafted;
    test "missing extent" missing_extent_detected;
    test "missing key" missing_key_detected;
    test "isolated type" isolated_type_detected;
    test "god object" god_object_detected;
    test "needless layer" needless_layer_detected;
    test "empty leaf" empty_leaf_detected;
    test "naming style" naming_style_detected;
    test "deep hierarchy" deep_hierarchy_detected;
    test "score monotonicity" score_monotonicity;
    test "catalog documented" catalog_documented;
  ]
