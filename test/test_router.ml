(* The sharding front end: rendezvous-hash properties, a two-shard
   end-to-end pass through a real {!Server.Router} over real worker
   processes, and the kill -9 chaos criterion run over both transports
   (Unix socket and TCP).  Worker pids come from {!Server.Shard_pool.pid}
   — never from pattern-matching process listings. *)

module Io = Repository.Io
module Store = Repository.Store
module Repo = Repository.Repo
module Protocol = Server.Protocol
module Router = Server.Router
module Shard_pool = Server.Shard_pool
module Client = Server.Client

let test = Util.test

let prop name ?(count = 500) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- hashing --------------------------------------------------------------- *)

let name_gen =
  QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 64))

let hash_total_and_stable =
  prop "router: shard_of is total and deterministic"
    QCheck2.Gen.(pair name_gen (int_range 1 16))
    (fun (name, shards) ->
      let k = Router.shard_of ~shards name in
      0 <= k && k < shards && Router.shard_of ~shards name = k)

(* the rendezvous property that plain [hash mod n] lacks: growing the pool
   by one shard only moves names onto the new shard, never between
   survivors *)
let hash_minimal_disruption =
  prop "router: adding a shard only moves names onto the new shard"
    QCheck2.Gen.(pair name_gen (int_range 1 15))
    (fun (name, shards) ->
      let before = Router.shard_of ~shards name in
      let after = Router.shard_of ~shards:(shards + 1) name in
      after = before || after = shards)

(* routing is part of the on-disk contract (the same variant must land on
   the same shard across router restarts and releases), so pin a few
   digests against accidental hash changes *)
let hash_pinned () =
  List.iter
    (fun (name, shards, want) ->
      Alcotest.(check int)
        (Printf.sprintf "shard_of ~shards:%d %S" shards name)
        want
        (Router.shard_of ~shards name))
    [
      ("alpha", 2, 1);
      ("alpha", 4, 3);
      ("alpha", 8, 7);
      ("beta", 4, 3);
      ("gamma", 2, 0);
      ("gamma", 8, 4);
      ("delta", 4, 1);
      ("night_school", 8, 0);
      ("university", 4, 1);
      ("", 4, 1);
    ]

let hash_balanced () =
  let shards = 4 in
  let counts = Array.make shards 0 in
  for i = 0 to 999 do
    let k = Router.shard_of ~shards (Printf.sprintf "v%d" i) in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun k n ->
      if n < 200 then
        Alcotest.failf "shard %d got only %d of 1000 names (skewed hash)" k n)
    counts

(* --- a real cluster: pool + router + workers ------------------------------- *)

let tiny () =
  Util.parse
    "interface Person { attribute string name; attribute int age; };\n\
     interface Course { attribute string title; attribute string code; };"

let apply_line tag = Printf.sprintf "apply add_attribute(Person, string, 8, %s)" tag

let tmp_dir () =
  let f = Filename.temp_file "swsd_router" "" in
  Sys.remove f;
  f

let rec rm_rf p =
  if (try Sys.is_directory p with Sys_error _ -> false) then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else if Sys.file_exists p then Sys.remove p

let with_watchdog ~secs ~name f =
  let finished = Atomic.make false in
  ignore
    (Thread.create
       (fun () ->
         let deadline = Unix.gettimeofday () +. secs in
         while (not (Atomic.get finished)) && Unix.gettimeofday () < deadline do
           Thread.delay 0.05
         done;
         if not (Atomic.get finished) then begin
           Printf.eprintf "watchdog: %s still running after %.0fs (deadlock?)\n%!"
             name secs;
           Stdlib.exit 125
         end)
       ());
  Fun.protect ~finally:(fun () -> Atomic.set finished true) f

type cluster = {
  dir : string;
  pool : Shard_pool.t;
  router : Router.t;
  runner : Thread.t;
  addr : Protocol.address;
}

(* tests run from _build/default/test, next to the built daemon *)
let exe = "../bin/swsd.exe"

let start_cluster ?(shards = 2) transport =
  let dir = tmp_dir () in
  (match Repo.init dir (tiny ()) with
  | Result.Ok _ -> ()
  | Result.Error e -> Alcotest.fail e);
  let pool = Shard_pool.create ~exe ~dir ~shards () in
  (match Shard_pool.start pool with
  | Result.Ok () -> ()
  | Result.Error m ->
      Shard_pool.stop ~grace:2.0 pool;
      Alcotest.fail m);
  let listen =
    match transport with
    | `Unix -> Protocol.Unix_path (Filename.concat dir "front.sock")
    | `Tcp -> Protocol.Tcp ("127.0.0.1", 0)
  in
  match Router.create ~obs:(Obs.create ()) ~connect_retry:10.0 ~listen pool with
  | Result.Error m ->
      Shard_pool.stop ~grace:2.0 pool;
      Alcotest.fail m
  | Result.Ok router ->
      let runner = Thread.create (fun () -> Router.run router) () in
      { dir; pool; router; runner; addr = Router.listen_address router }

let stop_cluster cl =
  Router.stop cl.router;
  Thread.join cl.runner;
  Shard_pool.stop ~grace:5.0 cl.pool

let connect cl =
  match Client.connect_to ~retry_for:10.0 cl.addr with
  | Result.Error m -> Alcotest.failf "connect to router: %s" m
  | Result.Ok c -> (
      match Client.read_response c with
      | Some greeting ->
          if not (List.mem "!ok" greeting) then
            Alcotest.failf "bad greeting: %s" (String.concat " | " greeting);
          c
      | None -> Alcotest.fail "no greeting from router")

let roundtrip c line =
  match Client.request c line with
  | Some lines -> lines
  | None -> Alcotest.failf "%s: router hung up" line

let expect_ok c line =
  let lines = roundtrip c line in
  if not (List.mem "!ok" lines) then
    Alcotest.failf "%s: %s" line (String.concat " | " lines);
  lines

let version_of line_ctx lines =
  let prefix = "#version " in
  let np = String.length prefix in
  match
    List.find_map
      (fun l ->
        if String.length l > np && String.sub l 0 np = prefix then
          int_of_string_opt (String.sub l np (String.length l - np))
        else None)
      lines
  with
  | Some v -> v
  | None -> Alcotest.failf "%s: !ok without #version" line_ctx

(* the first names rendezvous-hashing onto each of two shards *)
let pick_variant ~shards target =
  let rec go i =
    if i > 10_000 then Alcotest.failf "no name hashes to shard %d" target
    else
      let n = Printf.sprintf "v%d" i in
      if Router.shard_of ~shards n = target then n else go (i + 1)
  in
  go 0

(* --- two shards, end to end: #version monotone through the router ---------- *)

let two_shard_versions () =
  with_watchdog ~secs:120.0 ~name:"router two-shard versions" (fun () ->
      let cl = start_cluster `Unix in
      Fun.protect
        ~finally:(fun () -> rm_rf cl.dir)
        (fun () ->
          Fun.protect
            ~finally:(fun () -> stop_cluster cl)
            (fun () ->
              let va = pick_variant ~shards:2 0
              and vb = pick_variant ~shards:2 1 in
              let ca = connect cl and cb = connect cl in
              ignore (expect_ok ca ("@new " ^ va));
              ignore (expect_ok cb ("@new " ^ vb));
              ignore (expect_ok ca "focus ww:Person");
              ignore (expect_ok cb "focus ww:Person");
              (* interleave writes on both shards; each variant's stamp
                 must be strictly monotone as seen through the router *)
              let last_a = ref 0 and last_b = ref 0 in
              for k = 1 to 6 do
                let bump c variant last =
                  let line = apply_line (Printf.sprintf "%s_%d" variant k) in
                  let v = version_of line (expect_ok c line) in
                  if v <= !last then
                    Alcotest.failf "%s: #version %d after %d (not monotone)"
                      variant v !last;
                  last := v
                in
                bump ca va last_a;
                bump cb vb last_b
              done;
              (* reads through the router carry the stamp too, and never
                 run it backwards *)
              let v =
                version_of "log" (expect_ok ca "log")
              in
              Alcotest.(check bool) "read-your-writes through the router" true
                (v >= !last_a);
              (* both variants are visible via @list whichever shard
                 answers (the pool shares one repository directory) *)
              let listing = String.concat "\n" (expect_ok ca "@list") in
              List.iter
                (fun n ->
                  if not (Str_contains.contains listing n) then
                    Alcotest.failf "@list through the router misses %s" n)
                [ va; vb ];
              (* merged stats name every shard and the router itself *)
              let stats = String.concat "\n" (expect_ok ca "@stats json") in
              List.iter
                (fun key ->
                  if not (Str_contains.contains stats (Printf.sprintf "%S" key))
                  then Alcotest.failf "@stats json misses %S" key)
                [ "router"; "shard-0"; "shard-1" ];
              (* the acked writes are durable in each variant's journal *)
              List.iter
                (fun variant ->
                  let journal =
                    Io.unix.Io.read_file
                      (Filename.concat cl.dir
                         (Filename.concat "variants"
                            (Filename.concat variant "log.ops")))
                  in
                  Alcotest.(check bool)
                    (variant ^ ": acked write durable")
                    true
                    (Str_contains.contains journal (variant ^ "_6")))
                [ va; vb ];
              Client.close ca;
              Client.close cb)))

(* --- branch and merge through the router ----------------------------------- *)

let body_of lines =
  List.filter_map
    (fun l ->
      if String.length l >= 2 && String.sub l 0 2 = ". " then
        Some (String.sub l 2 (String.length l - 2))
      else None)
    lines

(* a name that rendezvous-hashes onto [target], distinct from the v%d
   namespace [pick_variant] draws from *)
let pick_branch_name ~shards target =
  let rec go i =
    if i > 10_000 then Alcotest.failf "no branch name hashes to shard %d" target
    else
      let n = Printf.sprintf "b%d" i in
      if Router.shard_of ~shards n = target then n else go (i + 1)
  in
  go 0

(* The parent lives on shard 0, the child hashes onto shard 1: @branch
   must route by the child, the design sessions by their own variants,
   and @merge by the destination.  The lineage listing must come back
   byte-identical whichever shard answers (it is derived from the shared
   repository directory, never from per-shard state). *)
let branch_merge_routed transport () =
  let tname = match transport with `Unix -> "unix socket" | `Tcp -> "tcp" in
  with_watchdog ~secs:120.0 ~name:("router branch/merge over " ^ tname)
    (fun () ->
      let cl = start_cluster transport in
      Fun.protect
        ~finally:(fun () -> rm_rf cl.dir)
        (fun () ->
          Fun.protect
            ~finally:(fun () -> stop_cluster cl)
            (fun () ->
              let parent = pick_variant ~shards:2 0 in
              let child = pick_branch_name ~shards:2 1 in
              let c = connect cl in
              ignore (expect_ok c ("@new " ^ parent));
              ignore (expect_ok c "focus ww:Person");
              ignore (expect_ok c (apply_line "pre_fork"));
              ignore (expect_ok c "@close");
              let blines =
                expect_ok c (Printf.sprintf "@branch %s %s" parent child)
              in
              let fork =
                match
                  List.find_map
                    (fun l ->
                      match String.rindex_opt l '@' with
                      | Some i when Str_contains.contains l "branched" ->
                          int_of_string_opt
                            (String.sub l (i + 1) (String.length l - i - 1))
                      | _ -> None)
                    blines
                with
                | Some n -> n
                | None ->
                    Alcotest.failf "no fork stamp in: %s"
                      (String.concat " | " blines)
              in
              (* independent design on both sides, each on its own shard *)
              ignore (expect_ok c ("@open " ^ child));
              ignore (expect_ok c "focus ww:Person");
              ignore (expect_ok c (apply_line "on_branch"));
              ignore (expect_ok c "@close");
              ignore (expect_ok c ("@open " ^ parent));
              ignore (expect_ok c "focus ww:Person");
              ignore (expect_ok c (apply_line "on_base"));
              ignore (expect_ok c "@close");
              (* dry run writes nothing *)
              let dry =
                expect_ok c
                  (Printf.sprintf "@merge %s into %s --dry-run" child parent)
              in
              Alcotest.(check bool) "dry run labelled" true
                (List.exists
                   (fun l -> Str_contains.contains l "(dry run)")
                   dry);
              let parent_journal () =
                Io.unix.Io.read_file
                  (Filename.concat cl.dir
                     (Filename.concat "variants"
                        (Filename.concat parent "log.ops")))
              in
              Alcotest.(check bool) "dry run left the destination alone" false
                (Str_contains.contains (parent_journal ()) "on_branch");
              let merged =
                expect_ok c (Printf.sprintf "@merge %s into %s" child parent)
              in
              Alcotest.(check bool) "merge reports through the router" true
                (List.exists
                   (fun l -> Str_contains.contains l "merge report")
                   merged);
              Alcotest.(check bool) "merged op durable on the destination" true
                (Str_contains.contains (parent_journal ()) "on_branch");
              (* the lineage listing: same bytes from both connections,
                 and exactly the two variants with their lineage *)
              let want =
                List.sort compare
                  [
                    Printf.sprintf "%s root era 0" parent;
                    Printf.sprintf "%s %s@%d era 0" child parent fork;
                  ]
              in
              let c2 = connect cl in
              Alcotest.(check (list string)) "lineage listing, first client"
                want
                (body_of (expect_ok c "@list"));
              Alcotest.(check (list string)) "lineage listing, second client"
                want
                (body_of (expect_ok c2 "@list"));
              (* lineage queries route to the child's shard; branches-of
                 is repository-scoped and any shard may answer *)
              ignore (expect_ok c ("@open " ^ child));
              Alcotest.(check bool) "child's lineage via the router" true
                (List.exists
                   (fun l ->
                     Str_contains.contains l
                       (Printf.sprintf "parent %s@%d" parent fork))
                   (body_of (expect_ok c "@query lineage")));
              Alcotest.(check (list string)) "branches-of via the router"
                [ Printf.sprintf "%s fork %d" child fork ]
                (body_of (expect_ok c2 ("@query branches of " ^ parent)));
              Client.close c;
              Client.close c2)))

(* --- chaos: kill -9 a worker mid-load, over both transports ---------------- *)

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* after shutdown the journals are authoritative: fsck (with salvage, as a
   crashed worker may have left a stale snapshot) must come back clean and
   every acked op must appear, in ack order *)
let check_clean_and_durable ~dir ~variant acked =
  let vdir = Filename.concat (Filename.concat dir "variants") variant in
  let report = Store.fsck ~salvage:true (Store.open_dir vdir) in
  (match report.Store.fsck_session with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: no recoverable session after kill -9" variant);
  (match (Store.fsck (Store.open_dir vdir)).Store.fsck_issues with
  | [] -> ()
  | issues ->
      Alcotest.failf "%s: fsck issues after salvage: %s" variant
        (String.concat "; " issues));
  let journal = Io.unix.Io.read_file (Filename.concat vdir "log.ops") in
  ignore
    (List.fold_left
       (fun last tag ->
         match find_sub journal tag with
         | None -> Alcotest.failf "%s: acked op %s lost" variant tag
         | Some p ->
             if p < last then
               Alcotest.failf "%s: acked ops out of order at %s" variant tag;
             p)
       (-1) acked)

let ops_per_client = 16

(* One client thread, one variant: apply tagged ops until [ops_per_client]
   are acked.  [!busy]/[!retry-after] (the router's answer when its
   backend died mid-request) waits and retries with a FRESH tag — the
   router never resends a mutation, and neither do we: the interrupted
   attempt may or may not be durable, and only acked tags are asserted
   on.  [!err] after a worker restart (e.g. lost focus) repairs the
   session and retries, also fresh. *)
let chaos_client cl variant acked record_error =
  let c = connect cl in
  let send line =
    match Client.request c line with
    | Some lines -> lines
    | None ->
        record_error (Printf.sprintf "%s: %s: router hung up" variant line);
        [ "!err router hung up" ]
  in
  let busy lines = List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "!busy") lines in
  let rec settle tries line =
    if tries > 200 then
      record_error (Printf.sprintf "%s: %s never settled" variant line)
    else
      let lines = send line in
      if busy lines then begin
        Thread.delay 0.05;
        settle (tries + 1) line
      end
  in
  settle 0 ("@open " ^ variant);
  settle 0 "focus ww:Person";
  for i = 0 to ops_per_client - 1 do
    let rec attempt tries =
      if tries > 200 then
        record_error
          (Printf.sprintf "%s: op %d never acked after %d tries" variant i tries)
      else
        let tag = Printf.sprintf "%s_op%d_try%d" variant i tries in
        let lines = send (apply_line tag) in
        if List.mem "!ok" lines then acked := tag :: !acked
        else if busy lines then begin
          Thread.delay 0.05;
          attempt (tries + 1)
        end
        else begin
          (* worker restarted under us: the router replays the @open, but
             session repair (refocus) is on us *)
          ignore (send ("@open " ^ variant));
          ignore (send "focus ww:Person");
          Thread.delay 0.02;
          attempt (tries + 1)
        end
    in
    attempt 0
  done;
  Client.close c

let chaos_kill9 transport () =
  let tname =
    match transport with `Unix -> "unix socket" | `Tcp -> "tcp"
  in
  with_watchdog ~secs:180.0 ~name:("router chaos kill -9 over " ^ tname)
    (fun () ->
      let cl = start_cluster transport in
      let stopped = ref false in
      let stop_once () =
        if not !stopped then begin
          stopped := true;
          stop_cluster cl
        end
      in
      Fun.protect
        ~finally:(fun () ->
          stop_once ();
          rm_rf cl.dir)
        (fun () ->
          let va = pick_variant ~shards:2 0
          and vb = pick_variant ~shards:2 1 in
          let first_error = Atomic.make None in
          let record_error m =
            ignore (Atomic.compare_and_set first_error None (Some m))
          in
          let acked_a = ref [] and acked_b = ref [] in
          (* create both variants before any kills, through the router *)
          let setup = connect cl in
          ignore (expect_ok setup ("@new " ^ va));
          ignore (expect_ok setup "@close");
          ignore (expect_ok setup ("@new " ^ vb));
          Client.close setup;
          let clients =
            [
              Thread.create (fun () -> chaos_client cl va acked_a record_error) ();
              Thread.create (fun () -> chaos_client cl vb acked_b record_error) ();
            ]
          in
          (* kill -9 each worker once, mid-load: wait for some acks, kill
             the pid the pool reports, wait for the supervisor's respawn *)
          let total () = List.length !acked_a + List.length !acked_b in
          let wait_until ?(bound = 60.0) what pred =
            let deadline = Unix.gettimeofday () +. bound in
            while (not (pred ())) && Unix.gettimeofday () < deadline do
              Thread.delay 0.02
            done;
            if not (pred ()) then
              record_error (Printf.sprintf "timed out waiting for %s" what)
          in
          List.iteri
            (fun round shard ->
              wait_until "mid-load ack threshold" (fun () ->
                  total () >= (round + 1) * 4);
              let pid = Shard_pool.pid cl.pool shard in
              if pid > 0 then Unix.kill pid Sys.sigkill
              else record_error (Printf.sprintf "shard %d had no pid to kill" shard);
              wait_until "supervisor respawn" (fun () ->
                  Shard_pool.restarts cl.pool >= round + 1))
            [ 0; 1 ];
          List.iter Thread.join clients;
          Alcotest.(check bool) "supervisor respawned both kills" true
            (Shard_pool.restarts cl.pool >= 2);
          (match Atomic.get first_error with
          | Some m -> Alcotest.fail m
          | None -> ());
          List.iter
            (fun (v, acked) ->
              Alcotest.(check int)
                (v ^ ": every op eventually acked")
                ops_per_client (List.length !acked))
            [ (va, acked_a); (vb, acked_b) ];
          (* stop everything, then audit the disk *)
          stop_once ();
          check_clean_and_durable ~dir:cl.dir ~variant:va (List.rev !acked_a);
          check_clean_and_durable ~dir:cl.dir ~variant:vb (List.rev !acked_b)))

let tests =
  [
    hash_total_and_stable;
    hash_minimal_disruption;
    test "router: pinned digests (routing is an on-disk contract)" hash_pinned;
    test "router: 1000 names spread evenly over 4 shards" hash_balanced;
    test "router: two shards end to end, #version monotone per variant"
      two_shard_versions;
    test "router: branch on one shard, merge on another (unix socket)"
      (branch_merge_routed `Unix);
    test "router: branch on one shard, merge on another (tcp)"
      (branch_merge_routed `Tcp);
    test "router: kill -9 a worker mid-load (unix socket), nothing acked lost"
      (chaos_kill9 `Unix);
    test "router: kill -9 a worker mid-load (tcp), nothing acked lost"
      (chaos_kill9 `Tcp);
  ]
