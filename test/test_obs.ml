(* The observability subsystem: histogram algebra (QCheck properties
   against a naive oracle), counter exactness under an 8-thread hammer,
   the trace ring, the monotonized clock, export sanity, and the retry
   jitter defaults (the thundering-herd satellite). *)

module Metrics = Obs.Metrics
module Histo = Obs.Histo
module Trace = Obs.Trace
module Retry = Server.Retry

let test = Util.test

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* --- histogram properties -------------------------------------------------- *)

(* Latency-like samples spanning the bucket range, plus under/overflow. *)
let sample_gen =
  QCheck2.Gen.(
    oneof
      [
        float_range 1e-7 1e-5;  (* around and below lo *)
        float_range 1e-5 1e-2;  (* the realistic latency band *)
        float_range 1e-2 10.0;
        float_range 100.0 1e4;  (* around and above hi *)
      ])

let samples_gen = QCheck2.Gen.(list_size (int_range 0 60) sample_gen)

let histo_of samples =
  let h = Histo.create "t_seconds" in
  List.iter (Histo.observe h) samples;
  Histo.snapshot h

(* Structural equality, except the running sum: float addition commutes
   exactly but does not associate exactly, so [s_sum] may differ in the
   last ulp between merge orders.  Everything discrete must match bit for
   bit. *)
let snapshot_eq a b =
  a.Histo.s_lo = b.Histo.s_lo
  && a.Histo.s_hi = b.Histo.s_hi
  && a.Histo.s_per_decade = b.Histo.s_per_decade
  && a.Histo.s_count = b.Histo.s_count
  && a.Histo.s_min = b.Histo.s_min
  && a.Histo.s_max = b.Histo.s_max
  && a.Histo.s_buckets = b.Histo.s_buckets
  && Float.abs (a.Histo.s_sum -. b.Histo.s_sum)
     <= 1e-9 *. Float.max 1.0 (Float.abs a.Histo.s_sum)

let merge_is_commutative =
  prop "histo: merge is commutative"
    QCheck2.Gen.(pair samples_gen samples_gen)
    (fun (a, b) ->
      let sa = histo_of a and sb = histo_of b in
      Histo.merge sa sb = Histo.merge sb sa)

let merge_is_associative =
  prop "histo: merge is associative"
    QCheck2.Gen.(triple samples_gen samples_gen samples_gen)
    (fun (a, b, c) ->
      let sa = histo_of a and sb = histo_of b and sc = histo_of c in
      snapshot_eq
        (Histo.merge (Histo.merge sa sb) sc)
        (Histo.merge sa (Histo.merge sb sc)))

let merge_equals_union =
  prop "histo: merge of two snapshots equals the histogram of the union"
    QCheck2.Gen.(pair samples_gen samples_gen)
    (fun (a, b) ->
      snapshot_eq (Histo.merge (histo_of a) (histo_of b)) (histo_of (a @ b)))

(* The quantile estimate must land in the same bucket as the exact oracle:
   sort the samples, take the value at the quantile rank, and compare
   bucket indices.  (Within a bucket the estimate is the geometric
   midpoint, so same-bucket is the strongest guarantee available.) *)
let quantile_within_one_bucket =
  prop "histo: quantile lands in the exact oracle's bucket" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 60) sample_gen)
        (oneofl [ 0.5; 0.9; 0.99 ]))
    (fun (samples, q) ->
      let s = histo_of samples in
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = max 0 (int_of_float (ceil (q *. float_of_int n)) - 1) in
      let exact = List.nth sorted rank in
      Histo.snapshot_bucket s (Histo.quantile s q)
      = Histo.snapshot_bucket s exact)

let quantile_edges () =
  let h = Histo.create "edges_seconds" in
  Alcotest.(check (float 0.0)) "empty quantile is 0" 0.0
    (Histo.quantile (Histo.snapshot h) 0.5);
  (* all mass in the underflow/overflow buckets answers with exact min/max *)
  List.iter (Histo.observe h) [ 1e-9; 2e-9; 1e5 ];
  let s = Histo.snapshot h in
  Alcotest.(check (float 0.0)) "underflow answers min" 1e-9 (Histo.quantile s 0.5);
  Alcotest.(check (float 0.0)) "overflow answers max" 1e5 (Histo.quantile s 1.0);
  Alcotest.(check int) "count" 3 s.Histo.s_count

(* --- counters under contention --------------------------------------------- *)

(* 8 threads, 10_000 increments each: the aggregate must be exact — sharded
   cells may race benignly on reads, never lose a write. *)
let counter_hammer () =
  let r = Metrics.create () in
  let c = Metrics.counter r "hammer_total" in
  let threads = 8 and per_thread = 10_000 in
  let ts =
    List.init threads (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do
              Metrics.incr c
            done)
          ())
  in
  List.iter Thread.join ts;
  Alcotest.(check int) "no lost increments" (threads * per_thread)
    (Metrics.value c);
  Alcotest.(check (list (pair string int)))
    "registry read agrees"
    [ ("hammer_total", threads * per_thread) ]
    (Metrics.counters r)

let disabled_instruments () =
  let r = Metrics.create ~on:false () in
  let c = Metrics.counter r "dead_total" and g = Metrics.gauge r "dead" in
  Metrics.incr c;
  Metrics.add c 5;
  Metrics.set g 42;
  Alcotest.(check int) "disabled counter stays 0" 0 (Metrics.value c);
  Alcotest.(check int) "disabled gauge stays 0" 0 (Metrics.gauge_value g);
  let h = Histo.create ~on:false "dead_seconds" in
  Histo.observe h 1.0;
  Alcotest.(check int) "disabled histo records nothing" 0
    (Histo.snapshot h).Histo.s_count

(* --- trace ring ------------------------------------------------------------ *)

let trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    let sp = Trace.start tr ~label:(Printf.sprintf "r%d" i) () in
    Trace.add_phase sp "work" 0.001;
    Trace.finish tr sp ~status:"ok"
  done;
  let recent = Trace.recent tr in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length recent);
  Alcotest.(check (list string))
    "newest first, oldest overwritten" [ "r6"; "r5"; "r4"; "r3" ]
    (List.map (fun t -> t.Trace.tr_label) recent);
  (* phases land on the calling thread's current span *)
  let sp = Trace.start tr ~label:"deep" () in
  Trace.add_phase_current tr "inner" 0.002;
  Trace.finish tr sp ~status:"ok";
  match Trace.recent tr with
  | t :: _ ->
      Alcotest.(check (list string))
        "add_phase_current reached the open span" [ "inner" ]
        (List.map (fun p -> p.Trace.ph_name) t.Trace.tr_phases)
  | [] -> Alcotest.fail "trace lost"

(* --- clock ----------------------------------------------------------------- *)

let clock_monotonic () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now () in
    if t < !prev then Alcotest.fail "Clock.now went backwards";
    prev := t
  done;
  (* monotonize clamps an injected clock that jumps back *)
  let seq = ref [ 1.0; 2.0; 1.5; 3.0 ] in
  let raw () =
    match !seq with
    | [] -> 4.0
    | t :: rest ->
        seq := rest;
        t
  in
  let mono = Obs.Clock.monotonize raw in
  let reads = List.init 4 (fun _ -> mono ()) in
  Alcotest.(check (list (float 0.0)))
    "backward jump clamped" [ 1.0; 2.0; 2.0; 3.0 ] reads

(* --- export sanity ---------------------------------------------------------- *)

let export_renders () =
  let obs = Obs.create () in
  Metrics.incr (Obs.counter obs "x.requests_total");
  Obs.Metrics.set (Obs.gauge obs "x.open") 3;
  Histo.observe (Obs.histo obs "x.latency_seconds") 0.012;
  let sp = Trace.start (Obs.tracer obs) ~label:"@ping" ~detail:"probe" () in
  Trace.add_phase sp "parse" 0.001;
  Trace.finish (Obs.tracer obs) sp ~status:"ok";
  let sn = Obs.snapshot ~notes:[ ("note.k", "v") ] obs in
  let text = Obs.Export.to_text sn in
  let has hay n = Str_contains.contains hay n in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " in text") true (has text n))
    [ "x.requests_total"; "x.open"; "x.latency_seconds"; "note.k"; "@ping" ];
  let json = Obs.Export.to_json sn in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " in json") true (has json n))
    [
      "\"x.requests_total\": 1";
      "\"x.open\": 3";
      "\"x.latency_seconds\"";
      "\"p99\"";
      "\"note.k\": \"v\"";
      "\"label\": \"@ping\"";
    ];
  (* no NaN/infinity may ever reach a JSON consumer *)
  Alcotest.(check bool) "json has no nan/inf" false
    (has json "nan" || has json "inf")

(* --- retry jitter defaults (thundering-herd satellite) ---------------------- *)

let policy =
  { Retry.max_attempts = 4; base_delay = 0.05; max_delay = 1.0; jitter = 0.5 }

let delays_of ~rand () =
  let delays = ref [] in
  ignore
    (Retry.with_retries ?rand
       ~sleep:(fun _ -> ())
       ~on_retry:(fun ~attempt:_ ~delay -> delays := delay :: !delays)
       policy
       (fun () -> raise (Sys_error "transient")));
  List.rev !delays

let retry_explicit_rand_is_deterministic () =
  let d1 = delays_of ~rand:(Some (Random.State.make [| 7 |])) () in
  let d2 = delays_of ~rand:(Some (Random.State.make [| 7 |])) () in
  Alcotest.(check (list (float 0.0))) "same seed, same jitter" d1 d2;
  Alcotest.(check int) "one delay per retry" (policy.Retry.max_attempts - 1)
    (List.length d1)

(* The default must be self-seeded: two independent calls drawing their
   jitter from a shared fixed seed would back off in lockstep — exactly
   the thundering herd the jitter exists to break.  Three samples of three
   delays each collide with probability ~0 for a self-seeded source. *)
let retry_default_rand_decorrelates () =
  let runs = List.init 3 (fun _ -> delays_of ~rand:None ()) in
  let all_equal =
    match runs with
    | first :: rest -> List.for_all (fun r -> r = first) rest
    | [] -> false
  in
  Alcotest.(check bool) "independent calls draw different jitter" false
    all_equal

let tests =
  [
    merge_is_commutative;
    merge_is_associative;
    merge_equals_union;
    quantile_within_one_bucket;
    test "histo: quantiles at the edges (empty, underflow, overflow)"
      quantile_edges;
    test "metrics: 8-thread hammer loses no increments" counter_hammer;
    test "metrics: disabled instruments record nothing" disabled_instruments;
    test "trace: fixed-size ring keeps the newest traces" trace_ring;
    test "clock: monotonized reads never go backwards" clock_monotonic;
    test "export: text and json render every section" export_renders;
    test "retry: explicit rand makes delays reproducible"
      retry_explicit_rand_is_deterministic;
    test "retry: default rand self-seeds (no thundering herd)"
      retry_default_rand_decorrelates;
  ]
