(* The replayable op-log and its rebase (Core.Oplog): fork-point
   arithmetic, per-op classification, the merge impact report, and the
   property that on conflict-free histories a rebase is exactly a
   sequential apply (same state, same mapping). *)

module Session = Core.Session
module Oplog = Core.Oplog

let test = Util.test

let prop name ?(count = 200) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

let entry ?(kind = Core.Concept.Wagon_wheel) text =
  { Oplog.e_kind = kind; e_op = Util.parse_op text; e_events = [] }

(* --- fork-point arithmetic ------------------------------------------------- *)

let fork_point () =
  let root = Util.session_of (Util.university ()) in
  let shared, _ = Util.apply_ok root "add_type_definition(Shared)" in
  let base, _ = Util.apply_ok shared "add_type_definition(Basework)" in
  let branch, _ = Util.apply_ok shared "add_type_definition(Branchwork)" in
  Alcotest.(check int) "common prefix is the shared history" 1
    (Oplog.common_prefix ~base ~branch);
  match Oplog.branch_entries ~base ~branch with
  | [ e ] ->
      Alcotest.check Util.op_testable "the branch's own op"
        (Util.parse_op "add_type_definition(Branchwork)")
        e.Oplog.e_op
  | es -> Alcotest.failf "expected 1 branch entry, got %d" (List.length es)

(* undo on the branch pops its tail; the prefix is what both still agree
   on, never more *)
let fork_point_after_undo () =
  let root = Util.session_of (Util.university ()) in
  let shared, _ = Util.apply_ok root "add_type_definition(Shared)" in
  let branch, _ = Util.apply_ok shared "add_type_definition(Gone)" in
  let branch = Option.get (Session.undo branch) in
  let base, _ = Util.apply_ok shared "add_type_definition(Basework)" in
  Alcotest.(check int) "prefix unaffected by undone work" 1
    (Oplog.common_prefix ~base ~branch);
  Alcotest.(check int) "nothing left to rebase" 0
    (List.length (Oplog.branch_entries ~base ~branch))

(* --- classification -------------------------------------------------------- *)

let rebase_clean () =
  let base = Util.session_of (Util.university ()) in
  let branch, _ =
    Util.apply_ok base "add_attribute(Person, string, 20, nickname)"
  in
  let report =
    Oplog.rebase ~base ~branch_ops:(Oplog.branch_entries ~base ~branch)
  in
  Alcotest.(check (list int)) "1 clean, 0 auto, 0 conflict" [ 1; 0; 0 ]
    [ report.Oplog.r_clean; report.r_auto; report.r_conflict ];
  Alcotest.(check bool) "applied to the merged session" true
    (List.exists
       (fun (a : Odl.Types.attribute) -> a.attr_name = "nickname")
       (Odl.Schema.get_interface
          (Session.workspace report.Oplog.r_session)
          "Person")
       .i_attrs)

let rebase_already_applied () =
  let root = Util.session_of (Util.university ()) in
  let base, _ = Util.apply_ok root "add_attribute(Person, string, 20, nickname)" in
  let report =
    Oplog.rebase ~base
      ~branch_ops:[ entry "add_attribute(Person, string, 20, nickname)" ]
  in
  Alcotest.(check (list int)) "auto-merged, not a conflict" [ 0; 1; 0 ]
    [ report.Oplog.r_clean; report.r_auto; report.r_conflict ];
  (* skipped, not double-applied *)
  Alcotest.(check int) "no step added" (Session.step_count base)
    (Session.step_count report.Oplog.r_session)

(* the semantic conflict of the paper's workflow: the branch's op was
   admissible when issued, but the base moved ahead and deleted its
   target — the checker refuses it on replay, and the merge reports it
   instead of applying it *)
let rebase_semantic_conflict () =
  let root = Util.session_of (Util.university ()) in
  let base, _ = Util.apply_ok root "delete_type_definition(Book)" in
  let report =
    Oplog.rebase ~base
      ~branch_ops:[ entry "add_attribute(Book, string, 20, shelfmark)" ]
  in
  Alcotest.(check (list int)) "conflict, nothing applied" [ 0; 0; 1 ]
    [ report.Oplog.r_clean; report.r_auto; report.r_conflict ];
  (match Oplog.conflicts report with
  | [ (_, Oplog.Rejected _) ] -> ()
  | _ -> Alcotest.fail "expected one checker-rejected conflict");
  Alcotest.(check int) "merged session unchanged" (Session.step_count base)
    (Session.step_count report.Oplog.r_session)

(* a (kind, op) pair the permission matrix never admits — a hand-edited or
   foreign log — is refused at the permission gate, before the checker *)
let rebase_permission_conflict () =
  let base = Util.session_of (Util.university ()) in
  let report =
    Oplog.rebase ~base
      ~branch_ops:
        [
          entry ~kind:Core.Concept.Wagon_wheel
            "add_supertype(Student, Person)";
        ]
  in
  (match Oplog.conflicts report with
  | [ (_, Oplog.Permission _) ] -> ()
  | _ -> Alcotest.fail "expected one permission conflict")

let report_text () =
  let root = Util.session_of (Util.university ()) in
  let branch =
    Util.apply_many root
      [
        "add_attribute(Person, string, 20, nickname)";
        "add_attribute(Book, string, 20, shelfmark)";
      ]
  in
  let base, _ = Util.apply_ok root "delete_type_definition(Book)" in
  let report =
    Oplog.rebase ~base ~branch_ops:(Oplog.branch_entries ~base ~branch)
  in
  let text = Oplog.render_report "w into v" report in
  List.iter
    (fun needle ->
      if not (Str_contains.contains text needle) then
        Alcotest.failf "report misses %S:\n%s" needle text)
    [
      "merge report: w into v";
      "clean";
      "CONFLICT";
      "rebased 2 op(s): 1 clean, 0 auto-merged, 1 conflict(s)";
    ]

(* --- replay (moved here from Session) -------------------------------------- *)

let replay_round_trip () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  let s, _ =
    Util.apply_ok ~kind:Core.Concept.Generalization s
      "add_supertype(Lab, Person)"
  in
  let log = Oplog.of_session s in
  match Oplog.replay (Session.original s) (Oplog.pairs log) with
  | Error e -> Alcotest.fail (Core.Apply.error_to_string e)
  | Ok s' ->
      Alcotest.check Util.schema_testable "same workspace"
        (Session.workspace s) (Session.workspace s')

(* --- rebase ≡ sequential apply on conflict-free histories ------------------ *)

(* The branch develops freely from the root; the base moves ahead with
   fresh type definitions no generated op can name (generated identifiers
   are at most 8 characters).  Rebase of the branch onto that base must
   then find no conflicts and land in exactly the state — workspace and
   shrink-wrap mapping — that applying the branch ops one by one on the
   base produces. *)
let rebase_equals_sequential =
  prop "rebase = sequential apply on conflict-free histories"
    Gen.schema_and_ops (fun (schema, steps) ->
      match Session.create schema with
      | Error _ -> false (* synth schemas are valid; see synth_always_valid *)
      | Ok root ->
          let branch =
            List.fold_left
              (fun s (kind, op) ->
                match Session.apply s ~kind op with
                | Ok (s', _) -> s'
                | Error _ -> s)
              root steps
          in
          let base =
            List.fold_left
              (fun s name ->
                match
                  Session.apply s ~kind:Core.Concept.Wagon_wheel
                    (Core.Modop.Add_type_definition name)
                with
                | Ok (s', _) -> s'
                | Error _ -> s)
              root
              [ "Qqbasemovedahead"; "Qqbasemovedfurther" ]
          in
          let branch_ops = Oplog.branch_entries ~base ~branch in
          let report = Oplog.rebase ~base ~branch_ops in
          let sequential =
            List.fold_left
              (fun s (e : Oplog.entry) ->
                match Session.apply s ~kind:e.Oplog.e_kind e.e_op with
                | Ok (s', _) -> s'
                | Error _ -> s)
              base branch_ops
          in
          report.Oplog.r_conflict = 0
          && Core.Recompose.equal_content
               (Session.workspace report.Oplog.r_session)
               (Session.workspace sequential)
          && Fmt.str "%a" Core.Mapping.pp report.Oplog.r_mapping
             = Fmt.str "%a" Core.Mapping.pp (Session.mapping sequential))

let tests =
  [
    test "fork point" fork_point;
    test "fork point after undo" fork_point_after_undo;
    test "rebase: clean" rebase_clean;
    test "rebase: already applied auto-merges" rebase_already_applied;
    test "rebase: semantic conflict reported" rebase_semantic_conflict;
    test "rebase: permission conflict reported" rebase_permission_conflict;
    test "merge impact report" report_text;
    test "replay round trip" replay_round_trip;
    rebase_equals_sequential;
  ]
