(* Relational DDL translation. *)

let test = Util.test
let contains = Str_contains.contains

let ddl schema = Core.Relational.ddl schema

let u_ddl = lazy (ddl (Util.university ()))

let tables_emitted () =
  let d = Lazy.force u_ddl in
  List.iter
    (fun t ->
      Alcotest.(check bool) ("table " ^ t) true
        (contains d ("CREATE TABLE " ^ t ^ " (")))
    [ "person"; "student"; "course_offering"; "book"; "department" ]

let declared_key_becomes_pk () =
  let d = Lazy.force u_ddl in
  (* Person keys on ssn, a sized string *)
  Alcotest.(check bool) "ssn primary key" true
    (contains d "ssn VARCHAR(11) PRIMARY KEY")

let surrogate_when_no_scalar_key () =
  let d = Lazy.force u_ddl in
  (* Syllabus has no key: surrogate id *)
  Alcotest.(check bool) "surrogate" true
    (contains d "syllabus_id INTEGER PRIMARY KEY")

let composite_key_gets_surrogate () =
  (* Course keys on (subject, number): composite -> surrogate *)
  Alcotest.(check bool) "surrogate for composite" true
    (contains (Lazy.force u_ddl) "course_id INTEGER PRIMARY KEY")

let class_table_inheritance () =
  let d = Lazy.force u_ddl in
  Alcotest.(check bool) "subtype references supertype" true
    (contains d "person_ssn VARCHAR(11) NOT NULL");
  Alcotest.(check bool) "cascading FK" true
    (contains d "FOREIGN KEY (person_ssn) REFERENCES person(ssn) ON DELETE CASCADE")

let one_to_many_column () =
  let d = Lazy.force u_ddl in
  (* Employee.works_in_a is the to-one side: a column + FK on employee *)
  Alcotest.(check bool) "fk column typed by the target key" true
    (contains d "works_in_a VARCHAR(40)");
  Alcotest.(check bool) "fk constraint" true
    (contains d "FOREIGN KEY (works_in_a) REFERENCES department(dept_name)")

let many_to_many_junction () =
  let d = Lazy.force u_ddl in
  (* Course.prerequisites is M:N (both ends sets): junction table *)
  Alcotest.(check bool) "junction table" true
    (contains d "CREATE TABLE course_prerequisite_of ("
    || contains d "CREATE TABLE course_prerequisites (")

let one_to_one_unique () =
  let d = Lazy.force u_ddl in
  (* Course_Offering.described_by <-> Syllabus.describes is 1:1 *)
  Alcotest.(check bool) "unique column" true (contains d "UNIQUE")

let part_of_cascades () =
  let d = ddl (Util.lumber ()) in
  (* the part side holds the FK with cascade *)
  Alcotest.(check bool) "cascade on part" true
    (contains d "FOREIGN KEY (structure_of) REFERENCES house(plan_number) ON DELETE CASCADE")

let collection_attribute_side_table () =
  let s =
    Util.parse "interface A { key k; attribute string<4> k; attribute set<int> xs; };"
  in
  let d = ddl s in
  Alcotest.(check bool) "side table" true (contains d "CREATE TABLE a_xs (");
  Alcotest.(check bool) "positioned" true (contains d "position INTEGER NOT NULL")

let operations_commented () =
  let d = Lazy.force u_ddl in
  Alcotest.(check bool) "operation comment" true
    (contains d "-- operation Course_Offering.average_grade does not translate")

let keyword_collision_renamed () =
  let s = Util.parse "interface Order { attribute int total; };" in
  let d = ddl s in
  Alcotest.(check bool) "renamed" true (contains d "CREATE TABLE order_ (")

let all_examples_translate () =
  List.iter
    (fun (name, s) ->
      let d = ddl s in
      Alcotest.(check bool) (name ^ " nonempty") true (String.length d > 200);
      Alcotest.(check bool)
        (name ^ " table count sane")
        true
        (Core.Relational.table_count s >= List.length s.s_interfaces))
    [
      ("university", Util.university ()); ("lumber", Util.lumber ());
      ("emsl", Util.emsl ()); ("acedb", Schemas.Genome.acedb_v ());
      ("vlsi", Schemas.Vlsi.v ());
    ]

let no_trailing_commas () =
  (* every CREATE TABLE body must end without a comma before the paren *)
  let check_schema name s =
    let lines = Array.of_list (String.split_on_char '\n' (ddl s)) in
    Array.iteri
      (fun idx line ->
        if line = ");" && idx > 0 then
          let prev = lines.(idx - 1) in
          if String.length prev > 0 && prev.[String.length prev - 1] = ',' then
            Alcotest.failf "%s: trailing comma before ); (%s)" name prev)
      lines
  in
  check_schema "university" (Util.university ());
  check_schema "lumber" (Util.lumber ());
  check_schema "vlsi" (Schemas.Vlsi.v ())

let tests =
  [
    test "tables emitted" tables_emitted;
    test "declared key becomes primary key" declared_key_becomes_pk;
    test "surrogate when no scalar key" surrogate_when_no_scalar_key;
    test "composite key gets surrogate" composite_key_gets_surrogate;
    test "class-table inheritance" class_table_inheritance;
    test "1:N becomes a column" one_to_many_column;
    test "M:N becomes a junction table" many_to_many_junction;
    test "1:1 gets UNIQUE" one_to_one_unique;
    test "part-of cascades" part_of_cascades;
    test "collection attribute side table" collection_attribute_side_table;
    test "operations are commented" operations_commented;
    test "keyword collisions renamed" keyword_collision_renamed;
    test "all examples translate" all_examples_translate;
    test "no trailing commas" no_trailing_commas;
  ]
