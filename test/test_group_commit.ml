(* The group-commit coordinator, in isolation and under the service.

   The contract under test (see group_commit.mli): records submitted to a
   lane are written as concatenated batches with one flush call each, in
   submission order; a ticket resolves [Ok] only after its batch's flush
   returned (ack implies durable); a failed flush fails every waiter of
   the batch and poisons the lane until [reset]; [drain]/[stop] force the
   remainder out.  The property test drives random concurrent writers
   against random policies and checks the flushed journal is an
   order-preserving interleaving of the per-writer streams — i.e. exactly
   what the per-op-fsync path would have produced for SOME admissible
   schedule — and that no writer was ever acked before its record was
   durable. *)

module Gc = Server.Group_commit

let test = Util.test

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* A deadlocked suite is worse than a failed one. *)
let with_watchdog ~secs ~name f =
  let finished = Atomic.make false in
  ignore
    (Thread.create
       (fun () ->
         let deadline = Unix.gettimeofday () +. secs in
         while (not (Atomic.get finished)) && Unix.gettimeofday () < deadline do
           Thread.delay 0.05
         done;
         if not (Atomic.get finished) then begin
           Printf.eprintf "watchdog: %s still running after %.0fs (deadlock?)\n%!"
             name secs;
           Stdlib.exit 125
         end)
       ());
  Fun.protect ~finally:(fun () -> Atomic.set finished true) f

(* A recording sink: every flush appends (path, data) under a mutex, so
   tests can assert batch count, contents, and the durable watermark. *)
type sink = {
  mu : Mutex.t;
  mutable flushes : (string * string) list;  (** newest first *)
  mutable fail_next : int;  (** this many upcoming flushes raise *)
}

let sink () = { mu = Mutex.create (); flushes = []; fail_next = 0 }

let sink_flush s ~path ~data =
  Mutex.lock s.mu;
  let fail = s.fail_next > 0 in
  if fail then s.fail_next <- s.fail_next - 1
  else s.flushes <- (path, data) :: s.flushes;
  Mutex.unlock s.mu;
  if fail then raise (Sys_error "injected: flush failed")

let flush_count s =
  Mutex.lock s.mu;
  let n = List.length s.flushes in
  Mutex.unlock s.mu;
  n

(* All data flushed to [path], oldest first, concatenated. *)
let flushed s path =
  Mutex.lock s.mu;
  let d =
    List.fold_left
      (fun acc (p, data) -> if p = path then data ^ acc else acc)
      "" s.flushes
  in
  Mutex.unlock s.mu;
  d

let ok = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "ticket should ack: %s" (Printexc.to_string e)

let deterministic = { Gc.max_batch = 4; max_linger = 3600.0; flush_on_idle = false }

(* max_batch reached -> exactly one flush holding every record, in
   submission order, and nobody acks before it. *)
let batch_of_k () =
  with_watchdog ~secs:30.0 ~name:"batch of k" (fun () ->
      let s = sink () in
      let t = Gc.create ~policy:deterministic ~flush:(sink_flush s) () in
      let tks =
        List.map (fun i -> Gc.submit t ~path:"log" (Printf.sprintf "r%d;" i))
          [ 0; 1; 2; 3 ]
      in
      List.iter (fun tk -> ok (Gc.await tk)) tks;
      Alcotest.(check int) "one flush" 1 (flush_count s);
      Alcotest.(check string) "submission order, concatenated" "r0;r1;r2;r3;"
        (flushed s "log");
      Alcotest.(check bool) "lane quiescent" true (Gc.quiescent t ~path:"log");
      Gc.stop t)

(* Under max_batch, the linger bound departs the bus with what's aboard. *)
let linger_departs () =
  with_watchdog ~secs:30.0 ~name:"linger departs" (fun () ->
      let s = sink () in
      let t =
        Gc.create
          ~policy:{ deterministic with Gc.max_linger = 0.005 }
          ~flush:(sink_flush s) ()
      in
      let a = Gc.submit t ~path:"log" "a;" in
      let b = Gc.submit t ~path:"log" "b;" in
      ok (Gc.await a);
      ok (Gc.await b);
      Alcotest.(check int) "one flush for both" 1 (flush_count s);
      Alcotest.(check string) "both records" "a;b;" (flushed s "log");
      Gc.stop t)

(* flush_on_idle lets a paused stream out without waiting out a long
   linger. *)
let idle_departs () =
  with_watchdog ~secs:30.0 ~name:"idle departs" (fun () ->
      let s = sink () in
      let t =
        Gc.create
          ~policy:{ Gc.max_batch = 1000; max_linger = 3600.0; flush_on_idle = true }
          ~flush:(sink_flush s) ()
      in
      let tk = Gc.submit t ~path:"log" "solo;" in
      ok (Gc.await tk);
      Alcotest.(check string) "record out" "solo;" (flushed s "log");
      Gc.stop t)

(* Lanes are per path: batches never mix two journals' bytes. *)
let lanes_are_isolated () =
  with_watchdog ~secs:30.0 ~name:"lanes are isolated" (fun () ->
      let s = sink () in
      let t =
        Gc.create
          ~policy:{ deterministic with Gc.max_batch = 2 }
          ~flush:(sink_flush s) ()
      in
      let a1 = Gc.submit t ~path:"a/log" "a1;" in
      let b1 = Gc.submit t ~path:"b/log" "b1;" in
      let a2 = Gc.submit t ~path:"a/log" "a2;" in
      let b2 = Gc.submit t ~path:"b/log" "b2;" in
      List.iter (fun tk -> ok (Gc.await tk)) [ a1; a2; b1; b2 ];
      Alcotest.(check string) "lane a" "a1;a2;" (flushed s "a/log");
      Alcotest.(check string) "lane b" "b1;b2;" (flushed s "b/log");
      Gc.stop t)

(* on_durable callbacks run in submission order, before their tickets
   settle: the publish hook of record N can rely on records 0..N-1 having
   been published. *)
let on_durable_in_order () =
  with_watchdog ~secs:30.0 ~name:"on_durable order" (fun () ->
      let s = sink () in
      let t = Gc.create ~policy:deterministic ~flush:(sink_flush s) () in
      let mu = Mutex.create () in
      let order = ref [] in
      let published i () =
        Mutex.lock mu;
        order := i :: !order;
        Mutex.unlock mu
      in
      let tks =
        List.map
          (fun i ->
            Gc.submit t ~path:"log" ~on_durable:(published i)
              (Printf.sprintf "r%d;" i))
          [ 0; 1; 2; 3 ]
      in
      List.iter (fun tk -> ok (Gc.await tk)) tks;
      Alcotest.(check (list int)) "publish order = submission order"
        [ 0; 1; 2; 3 ] (List.rev !order);
      Gc.stop t)

(* A state change with no journal bytes still gets ordered through the
   lane (the service submits "" so publishes stay in order), but no flush
   call is spent on it. *)
let empty_batch_skips_io () =
  with_watchdog ~secs:30.0 ~name:"empty batch skips io" (fun () ->
      let s = sink () in
      let t =
        Gc.create
          ~policy:{ deterministic with Gc.max_batch = 2 }
          ~flush:(sink_flush s) ()
      in
      let a = Gc.submit t ~path:"log" "" in
      let b = Gc.submit t ~path:"log" "" in
      ok (Gc.await a);
      ok (Gc.await b);
      Alcotest.(check int) "no flush call" 0 (flush_count s);
      Gc.stop t)

(* A failed flush fails the whole batch — nothing is acked — and poisons
   the lane (its on-disk tail is unknown) until [reset]. *)
let failure_fails_batch_and_poisons () =
  with_watchdog ~secs:30.0 ~name:"failure poisons" (fun () ->
      let s = sink () in
      s.fail_next <- 1;
      let t =
        Gc.create
          ~policy:{ deterministic with Gc.max_batch = 2 }
          ~flush:(sink_flush s) ()
      in
      let a = Gc.submit t ~path:"log" "a;" in
      let b = Gc.submit t ~path:"log" "b;" in
      (match (Gc.await a, Gc.await b) with
      | Error _, Error _ -> ()
      | _ -> Alcotest.fail "both waiters must fail with their batch");
      (* the lane is poisoned: a new submit fails immediately *)
      (match Gc.await (Gc.submit t ~path:"log" "c;") with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "poisoned lane must refuse records");
      Alcotest.(check bool) "poisoned lane is not quiescent" false
        (Gc.quiescent t ~path:"log");
      (* other lanes are unaffected *)
      let other = Gc.submit t ~path:"other" "x;" in
      Gc.drain t ~path:"other";
      ok (Gc.await other);
      (* recovery reloaded the journal: reset re-opens the lane *)
      Gc.reset t ~path:"log";
      let d = Gc.submit t ~path:"log" "d;" in
      let e = Gc.submit t ~path:"log" "e;" in
      ok (Gc.await d);
      ok (Gc.await e);
      Alcotest.(check string) "post-reset records flushed, failed batch gone"
        "d;e;" (flushed s "log");
      Gc.stop t)

(* drain forces a short batch out; stop flushes the remainder and fails
   late submits instead of hanging them. *)
let drain_and_stop () =
  with_watchdog ~secs:30.0 ~name:"drain and stop" (fun () ->
      let s = sink () in
      let t = Gc.create ~policy:deterministic ~flush:(sink_flush s) () in
      let a = Gc.submit t ~path:"log" "a;" in
      Alcotest.(check bool) "pending lane is not quiescent" false
        (Gc.quiescent t ~path:"log");
      Gc.drain t ~path:"log";
      ok (Gc.await a);
      Alcotest.(check string) "drained early, under max_batch" "a;"
        (flushed s "log");
      let b = Gc.submit t ~path:"log" "b;" in
      Gc.stop t;
      ok (Gc.await b);
      Alcotest.(check string) "stop flushed the remainder" "a;b;"
        (flushed s "log");
      (match Gc.await (Gc.submit t ~path:"log" "late;") with
      | Error Gc.Stopped -> ()
      | Error e -> Alcotest.failf "want Stopped, got %s" (Printexc.to_string e)
      | Ok () -> Alcotest.fail "a stopped coordinator must refuse records");
      Alcotest.(check string) "late record never written" "a;b;"
        (flushed s "log"))

(* --- the property: equivalence with the per-op-fsync journal -------------- *)

(* Each of W writer threads submits its records one at a time, awaiting
   each ack before the next (the service's discipline: one in-flight op
   per connection).  Whatever the batching, the flushed journal must then
   be an order-preserving interleaving of the writer streams — the set of
   journals the per-op path could have produced — and at the moment a
   writer's await returns Ok its record must already be in the flushed
   bytes (ack implies durable). *)
let interleaving_prop (writers, ops, max_batch, linger_ms, flush_on_idle) =
  let s = sink () in
  let t =
    Gc.create
      ~policy:
        {
          Gc.max_batch;
          max_linger = float_of_int linger_ms /. 1000.0;
          flush_on_idle;
        }
      ~flush:(sink_flush s) ()
  in
  let failures = Atomic.make 0 in
  let threads =
    List.init writers (fun w ->
        Thread.create
          (fun () ->
            for i = 0 to ops - 1 do
              let r = Printf.sprintf "w%d.%d;" w i in
              match Gc.await (Gc.submit t ~path:"log" r) with
              | Error _ -> Atomic.incr failures
              | Ok () ->
                  (* durable watermark: the acked record is on disk *)
                  let bytes = flushed s "log" in
                  let sub = Str_contains.contains bytes r in
                  if not sub then Atomic.incr failures
            done)
          ())
  in
  List.iter Thread.join threads;
  Gc.drain_all t;
  Gc.stop t;
  if Atomic.get failures > 0 then
    QCheck2.Test.fail_reportf "%d acks missing or early" (Atomic.get failures);
  (* parse the journal back into records and check each writer's stream
     appears in order, exactly once *)
  let bytes = flushed s "log" in
  let records =
    String.split_on_char ';' bytes |> List.filter (fun r -> r <> "")
  in
  if List.length records <> writers * ops then
    QCheck2.Test.fail_reportf "journal holds %d records, submitted %d"
      (List.length records) (writers * ops);
  let next = Array.make writers 0 in
  List.iter
    (fun r ->
      Scanf.sscanf r "w%d.%d" (fun w i ->
          if next.(w) <> i then
            QCheck2.Test.fail_reportf
              "writer %d's records out of order: saw %d, expected %d" w i
              next.(w);
          next.(w) <- i + 1))
    records;
  Array.iteri
    (fun w n ->
      if n <> ops then
        QCheck2.Test.fail_reportf "writer %d: %d of %d records journaled" w n
          ops)
    next;
  true

let policy_gen =
  QCheck2.Gen.(
    tup5 (int_range 1 6) (* writers *)
      (int_range 1 8) (* ops per writer *)
      (int_range 1 8) (* max_batch *)
      (int_range 0 2) (* linger ms *)
      bool (* flush_on_idle *))

(* --- under the service: appends actually amortize ------------------------- *)

let tiny_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

(* Four writers, max_batch = 4, idle flush off, linger long: the flusher
   cannot depart before the fourth record boards, so the four concurrent
   applies produce exactly ONE journal append (counted through the global
   journal observer) where the per-op path would have made four. *)
let service_amortizes_appends () =
  with_watchdog ~secs:60.0 ~name:"service amortizes appends" (fun () ->
      let module Io = Repository.Io in
      let module Repo = Repository.Repo in
      let module Service = Server.Service in
      let module Protocol = Server.Protocol in
      let m = Io.mem_create () in
      let io = Io.locked (Io.mem_io m) in
      (match Repo.init ~io "/repo" (Util.parse tiny_text) with
      | Ok repo -> (
          match Repo.create_variant repo "v" with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e)
      | Error e -> Alcotest.fail e);
      let config =
        {
          Service.default_config with
          Service.use_file_locks = false;
          flush_max_batch = 4;
          flush_linger = 3600.0;
          flush_on_idle = false;
          max_waiters = 16;
        }
      in
      let t =
        match Service.open_service ~config ~obs:Obs.noop ~io "/repo" with
        | Ok t -> t
        | Error e -> Alcotest.fail e
      in
      let appends = Atomic.make 0 in
      Repository.Journal.set_observer
        (Some
           (fun ~op ~seconds:_ ->
             if op = "append" then Atomic.incr appends));
      Fun.protect
        ~finally:(fun () -> Repository.Journal.set_observer None)
        (fun () ->
          let ok c line =
            let r = Service.request t c line in
            match r.Protocol.status with
            | Protocol.Ok -> ()
            | _ ->
                Alcotest.failf "%s should succeed: %s" line
                  (Protocol.to_string r)
          in
          (* barrier between focus and apply: a focus on a busy lane rides
             it as an empty ordering record, which would let a batch ripen
             on fewer than four real applies — all four focuses run while
             the lane is quiescent (direct publish, no submit), so exactly
             the four applies board the one batch *)
          let focused = Atomic.make 0 in
          let threads =
            List.init 4 (fun w ->
                Thread.create
                  (fun () ->
                    let c = Service.connect t in
                    ok c "@open v";
                    ok c "focus ww:Person";
                    Atomic.incr focused;
                    while Atomic.get focused < 4 do
                      Thread.yield ()
                    done;
                    ok c
                      (Printf.sprintf
                         "apply add_attribute(Person, string, 8, w%d)" w);
                    Service.disconnect t c)
                  ())
          in
          List.iter Thread.join threads;
          Alcotest.(check int)
            "four concurrent applies, one fsync'd append" 1
            (Atomic.get appends);
          ignore (Service.shutdown t)))

let tests =
  [
    test "group commit: max_batch flushes once, in submission order" batch_of_k;
    test "group commit: linger departs a short batch" linger_departs;
    test "group commit: idle flush releases a paused stream" idle_departs;
    test "group commit: lanes are per journal path" lanes_are_isolated;
    test "group commit: on_durable fires in submission order" on_durable_in_order;
    test "group commit: empty records order without io" empty_batch_skips_io;
    test "group commit: flush failure fails the batch and poisons the lane"
      failure_fails_batch_and_poisons;
    test "group commit: drain and stop force the remainder out" drain_and_stop;
    prop ~count:60
      "group commit: batched journal = an order-preserving interleaving; \
       ack implies durable"
      policy_gen interleaving_prop;
    test "service: concurrent applies amortize to one append"
      service_amortizes_appends;
  ]
