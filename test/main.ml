(* The bounded chaos soak only exists when SWSD_SOAK_SECS is set (the
   [@soak] dune alias); tier-1 runs never see the suite. *)
let soak_suites =
  if Sys.getenv_opt "SWSD_SOAK_SECS" = None then []
  else [ ("server-soak", Test_server.soak_tests) ]

let () =
  Alcotest.run "shrinkwrap"
    ([
      ("lexer", Test_lexer.tests);
      ("parser", Test_parser.tests);
      ("printer", Test_printer.tests);
      ("schema", Test_schema.tests);
      ("validate", Test_validate.tests);
      ("concept", Test_concept.tests);
      ("modop", Test_modop.tests);
      ("permission", Test_permission.tests);
      ("apply", Test_apply.tests);
      ("apply-members", Test_apply_members.tests);
      ("propagate", Test_propagate.tests);
      ("mapping", Test_mapping.tests);
      ("session", Test_session.tests);
      ("oplog", Test_oplog.tests);
      ("coverage", Test_coverage.tests);
      ("render", Test_render.tests);
      ("schemas", Test_schemas.tests);
      ("repository", Test_repository.tests);
      ("designer", Test_designer.tests);
      ("explain", Test_explain.tests);
      ("aliases", Test_aliases.tests);
      ("advisor", Test_advisor.tests);
      ("diff", Test_diff.tests);
      ("affinity", Test_affinity.tests);
      ("interop", Test_interop.tests);
      ("plan", Test_plan.tests);
      ("knowledge", Test_knowledge.tests);
      ("cli", Test_cli.tests);
      ("repo", Test_repo.tests);
      ("dot", Test_dot.tests);
      ("relational", Test_relational.tests);
      ("er", Test_er.tests);
      ("quality", Test_quality.tests);
      ("objects", Test_objects.tests);
      ("migrate", Test_migrate.tests);
      ("serial", Test_serial.tests);
      ("query", Test_query.tests);
      ("query-view", Test_query_view.tests);
      ("query-service", Test_query_service.tests);
      ("html", Test_html.tests);
      ("end-to-end", Test_endtoend.tests);
      ("api-corners", Test_api_corners.tests);
      ("fuzz", Test_fuzz.tests);
      ("properties", Test_properties.tests);
      ("index", Test_index.tests);
      ("server", Test_server.tests);
      ("replication", Test_replication.tests);
      ("router", Test_router.tests);
      ("group-commit", Test_group_commit.tests);
      ("server-restore", Test_restore.tests);
      ("obs", Test_obs.tests);
    ]
    @ soak_suites)
