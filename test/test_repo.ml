(* The multi-variant repository. *)

module Repo = Repository.Repo

let test = Util.test

let with_repo schema f =
  let dir = Filename.temp_file "swsd_repo" "" in
  Sys.remove dir;
  let rec rm p =
    (* [Sys.is_directory] raises on dangling symlinks; treat them as files *)
    if (try Sys.is_directory p with Sys_error _ -> false) then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () ->
      match Repo.init dir schema with
      | Ok repo -> f dir repo
      | Error m -> Alcotest.fail m)

let init_rejects_invalid () =
  let dir = Filename.temp_file "swsd_repo" "" in
  Sys.remove dir;
  match Repo.init dir (Util.parse "interface A : Ghost { };") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid shrink wrap schema must be rejected"

let init_and_reopen () =
  with_repo (Util.university ()) (fun dir _repo ->
      match Repo.open_dir dir with
      | Error m -> Alcotest.fail m
      | Ok reopened ->
          Alcotest.check Util.schema_testable "schema survives"
            (Util.university ())
            (Repo.shrink_wrap reopened))

let open_missing () =
  match Repo.open_dir "/nonexistent/definitely/not" with
  | Error m ->
      Alcotest.(check bool) "error names the shrinkwrap file" true
        (Str_contains.contains m "shrinkwrap.odl")
  | Ok _ -> Alcotest.fail "should not open"

let variant_lifecycle () =
  with_repo (Util.university ()) (fun _dir repo ->
      Alcotest.(check (list string)) "empty" [] (Repo.variant_names repo);
      let session =
        match Repo.create_variant repo "night_school" with
        | Ok s -> s
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check (list string)) "listed" [ "night_school" ]
        (Repo.variant_names repo);
      (* duplicate and invalid names rejected *)
      Alcotest.(check bool) "duplicate rejected" true
        (Result.is_error (Repo.create_variant repo "night_school"));
      Alcotest.(check bool) "bad name rejected" true
        (Result.is_error (Repo.create_variant repo "not a name"));
      (* customize and save *)
      let session, _ =
        Util.apply_ok session "delete_type_definition(Time_Slot)"
      in
      (match Repo.save_variant repo "night_school" session with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      match Repo.open_variant repo "night_school" with
      | Ok loaded ->
          Alcotest.(check bool) "customization survived" false
            (Odl.Schema.mem_interface (Core.Session.workspace loaded) "Time_Slot")
      | Error e -> Alcotest.fail (Repo.open_error_to_string e))

let open_unknown_variant () =
  with_repo (Util.emsl ()) (fun _dir repo ->
      match Repo.open_variant repo "ghost" with
      | Error (Repo.No_variant _) -> ()
      | _ -> Alcotest.fail "unknown variant must be No_variant")

let variant_names_skip_dangling () =
  with_repo (Util.university ()) (fun dir repo ->
      ignore (Repo.create_variant repo "real");
      let variants = Filename.concat dir "variants" in
      Unix.symlink "/nonexistent/target" (Filename.concat variants "ghostlink");
      Alcotest.(check (list string)) "dangling symlink skipped" [ "real" ]
        (Repo.variant_names repo))

let two_variants_interop () =
  with_repo (Util.university ()) (fun _dir repo ->
      let a = Result.get_ok (Repo.create_variant repo "campus") in
      let a, _ = Util.apply_ok a "delete_type_definition(Book)" in
      ignore (Repo.save_variant repo "campus" a);
      let b = Result.get_ok (Repo.create_variant repo "online") in
      let b, _ = Util.apply_ok b "delete_type_definition(Time_Slot)" in
      let b, _ = Util.apply_ok b "delete_attribute(Course_Offering, room)" in
      ignore (Repo.save_variant repo "online" b);
      match Repo.interop repo "campus" "online" with
      | Error e -> Alcotest.fail (Repo.open_error_to_string e)
      | Ok r ->
          let names =
            List.map (fun i -> i.Odl.Types.i_name) r.r_interchange.s_interfaces
          in
          Alcotest.(check bool) "Book out" false (List.mem "Book" names);
          Alcotest.(check bool) "Time_Slot out" false (List.mem "Time_Slot" names);
          Alcotest.(check bool) "Person in" true (List.mem "Person" names);
          Util.check_valid "interchange" r.r_interchange;
          match Repo.interop_report repo "campus" "online" with
          | Ok text ->
              Alcotest.(check bool) "report names variants" true
                (Str_contains.contains text "campus <-> online")
          | Error e -> Alcotest.fail (Repo.open_error_to_string e))

let catalog_and_affinity () =
  with_repo (Util.emsl ()) (fun _dir repo ->
      let a = Result.get_ok (Repo.create_variant repo "site1") in
      let a, _ = Util.apply_ok a "delete_type_definition(Machine)" in
      ignore (Repo.save_variant repo "site1" a);
      ignore (Repo.create_variant repo "site2");
      let catalog = Repo.catalog repo in
      Alcotest.(check bool) "both listed" true
        (Str_contains.contains catalog "site1"
        && Str_contains.contains catalog "site2");
      Alcotest.(check bool) "mapping summary present" true
        (Str_contains.contains catalog "deleted");
      let matrix = Repo.affinity_matrix repo in
      Alcotest.(check bool) "matrix has diagonal" true
        (Str_contains.contains matrix "1.000"))

let tests =
  [
    test "init rejects invalid shrink wrap" init_rejects_invalid;
    test "init and reopen" init_and_reopen;
    test "open missing repository" open_missing;
    test "variant lifecycle" variant_lifecycle;
    test "open unknown variant" open_unknown_variant;
    test "variant names skip dangling symlinks" variant_names_skip_dangling;
    test "two variants interoperate" two_variants_interop;
    test "catalog and affinity" catalog_and_affinity;
  ]
