(* End-to-end workflows across all subsystems. *)

let test = Util.test
let ww = Core.Concept.Wagon_wheel
let gh = Core.Concept.Generalization
let ah = Core.Concept.Aggregation

let quickstart_workflow () =
  (* the full figure-3 -> figure-7 story, ending with persisted deliverables *)
  let session = Util.session_of (Util.university ()) in
  let session = Util.apply_many session [ "add_type_definition(Schedule)" ] in
  let session =
    Util.apply_many session [ "add_attribute(Schedule, string, 10, term_label)" ]
  in
  let session =
    Util.apply_many ~kind:ah session
      [ "add_part_of_relationship(Schedule, set<Course_Offering>, slots, scheduled_in)" ]
  in
  (* the elaboration shows up in the refreshed decomposition *)
  let concepts = Core.Session.current_concepts session in
  Alcotest.(check bool) "schedule aggregation appears" true
    (Option.is_some (Core.Decompose.find concepts "ah:Schedule"));
  let ww_co = Option.get (Core.Decompose.find concepts "ww:Course_Offering") in
  Alcotest.(check bool) "offering wheel sees the schedule link" true
    (Core.Concept.mem_type ww_co "Schedule");
  (* deliverables *)
  let d = Core.Session.deliverables session in
  Alcotest.(check bool) "impact in deliverables" true
    (Str_contains.contains d "added relationship Schedule.slots");
  (* persist and reload through the store *)
  let dir = Filename.temp_file "swsd_e2e" "" in
  Sys.remove dir;
  let repo = Repository.Store.open_dir dir in
  Repository.Store.save_session repo session;
  (match Repository.Store.load_session repo with
  | Ok loaded ->
      Alcotest.check Util.schema_testable "reload equals"
        (Core.Session.workspace session)
        (Core.Session.workspace loaded)
  | Error e -> Alcotest.fail (Repository.Store.load_error_to_string e));
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  rm dir

let genome_workflow () =
  (* diff -> replay -> interop -> affinity, across the whole family *)
  let acedb = Schemas.Genome.acedb_v () in
  let derive target =
    let steps, _, converged = Core.Diff.infer ~original:acedb ~target in
    Alcotest.(check bool) "diff converges" true converged;
    match Core.Oplog.replay acedb steps with
    | Ok s -> s
    | Error e -> Alcotest.fail (Core.Apply.error_to_string e)
  in
  let aatdb_session = derive (Schemas.Genome.aatdb_v ()) in
  let sacchdb_session = derive (Schemas.Genome.sacchdb_v ()) in
  (* the derived schemas really are the bundled ones *)
  Alcotest.check Util.schema_testable "aatdb derived"
    (Schemas.Genome.aatdb_v ())
    (Core.Session.workspace aatdb_session);
  (* interop over the common core *)
  let r =
    Core.Interop.analyse ~original:acedb
      ~custom_a:(Core.Session.workspace aatdb_session)
      ~custom_b:(Core.Session.workspace sacchdb_session)
  in
  Alcotest.(check int) "ten common object types" 10
    (List.length r.r_interchange.s_interfaces);
  (* affinity of the two derivatives *)
  let a =
    Core.Affinity.semantic_affinity
      (Core.Session.workspace aatdb_session)
      (Core.Session.workspace sacchdb_session)
  in
  Alcotest.(check bool) "derivatives stay related" true (a > 0.6)

let long_session_with_undo () =
  (* a long mixed session on a synthetic schema: after interleaved applies
     and undos, the log replays to the same workspace and validity holds *)
  let schema = Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:30) in
  let session = Util.session_of schema in
  let ops =
    [
      (ww, "add_type_definition(Extra1)");
      (ww, "add_attribute(Extra1, string, 8, tag)");
      (ww, "add_extent_name(Extra1, extras)");
      (ww, "add_key_list(Extra1, (tag))");
      (gh, "add_supertype(Extra1, T0)");
      (ww, "delete_type_definition(T5)");
      (ww, "add_relationship(Extra1, set<T1>, friends, friend_of)");
      (ww, "delete_type_definition(T1)");
      (ww, "add_type_definition(Extra2)");
      (gh, "add_supertype(Extra2, Extra1)");
      (gh, "modify_attribute(Extra1, tag, Extra2)");
    ]
  in
  let session =
    List.fold_left
      (fun s (kind, text) ->
        match Core.Session.apply s ~kind (Util.parse_op text) with
        | Ok (s', _) -> s'
        | Error _ -> s)
      session ops
  in
  (* a couple of undos *)
  let session = Option.value (Core.Session.undo session) ~default:session in
  let session = Option.value (Core.Session.undo session) ~default:session in
  Util.check_valid "still valid" (Core.Session.workspace session);
  let steps =
    List.map
      (fun (st : Core.Session.step) -> (st.st_kind, st.st_op))
      (Core.Session.log session)
  in
  match Core.Oplog.replay schema steps with
  | Ok replayed ->
      Alcotest.check Util.schema_testable "log replays"
        (Core.Session.workspace session)
        (Core.Session.workspace replayed)
  | Error e -> Alcotest.fail (Core.Apply.error_to_string e)

let designer_full_session () =
  (* drive a long scripted session through the designer engine *)
  let state = Designer.Engine.start (Util.session_of (Util.university ())) in
  let script =
    [
      "concepts"; "focus gh:Person"; "show"; "explain";
      "apply modify_relationship_target_type(Department, has, Employee, Person)";
      "focus ww:Course_Offering";
      "preview delete_type_definition(Time_Slot)";
      "apply delete_type_definition(Time_Slot)";
      "apply delete_attribute(Course_Offering, room)";
      "alias Course_Offering Correspondence_Course";
      "aliases"; "check"; "impact"; "mapping"; "log"; "summary";
      "custom Correspondence_University";
    ]
  in
  let state, error_count =
    List.fold_left
      (fun (st, errs) line ->
        let st, fb = Designer.Engine.exec_line st line in
        (st, errs + List.length (List.filter Designer.Feedback.is_error fb)))
      (state, 0) script
  in
  Alcotest.(check int) "no command errors" 0 error_count;
  let w = Core.Session.workspace state.Designer.Engine.session in
  Alcotest.(check bool) "time slot gone" false
    (Odl.Schema.mem_interface w "Time_Slot");
  Alcotest.(check bool) "target moved" true
    (Odl.Schema.has_rel (Odl.Schema.get_interface w "Person") "works_in_a");
  Util.check_valid "valid at the end" w

let library_to_custom_workflow () =
  (* sketch -> library pick -> customize -> interchange with a sibling *)
  let library = [ Util.university (); Util.lumber (); Util.emsl () ] in
  let sketch =
    Util.parse
      "interface Application { attribute string vendor; }; interface Machine \
       { attribute string architecture; };"
  in
  match Core.Affinity.best ~sketch library with
  | None -> Alcotest.fail "library nonempty"
  | Some (winner, _) ->
      Alcotest.(check string) "EMSL wins" "EMSL_Software" winner.s_name;
      let a = Util.session_of winner in
      let a, _ = Util.apply_ok a "delete_type_definition(Machine)" in
      let b = Util.session_of winner in
      let b, _ =
        Util.apply_ok b "delete_attribute(Application, discipline)"
      in
      let r =
        Core.Interop.analyse ~original:winner
          ~custom_a:(Core.Session.workspace a)
          ~custom_b:(Core.Session.workspace b)
      in
      Alcotest.(check bool) "Machine out of interchange" false
        (Odl.Schema.mem_interface r.r_interchange "Machine");
      Util.check_valid "interchange" r.r_interchange

let tests =
  [
    test "quickstart workflow" quickstart_workflow;
    test "genome family workflow" genome_workflow;
    test "long session with undo" long_session_with_undo;
    test "full designer session" designer_full_session;
    test "library to custom workflow" library_to_custom_workflow;
  ]
