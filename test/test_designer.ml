(* The interactive designer engine, driven as a pure function. *)

module Engine = Designer.Engine
module Feedback = Designer.Feedback

let test = Util.test

let start () = Engine.start (Util.session_of (Util.university ()))

let run state line = Engine.exec_line state line

let run_all state lines = List.fold_left (fun st l -> fst (run st l)) state lines

let has_error feedback = List.exists Feedback.is_error feedback

let output_contains feedback fragment =
  List.exists (fun f -> Str_contains.contains (Feedback.to_string f) fragment) feedback

let concepts_lists_all () =
  let _, fb = run (start ()) "concepts" in
  Alcotest.(check bool) "wagon wheel listed" true
    (output_contains fb "ww:Course_Offering");
  Alcotest.(check bool) "hierarchy listed" true (output_contains fb "gh:Person");
  Alcotest.(check bool) "no errors" false (has_error fb)

let focus_and_show () =
  let st, fb = run (start ()) "focus ww:Book" in
  Alcotest.(check bool) "confirmation" true (output_contains fb "focused ww:Book");
  let _, fb = run st "show" in
  Alcotest.(check bool) "renders the wheel" true
    (output_contains fb "wagon wheel: Book")

let focus_unknown () =
  let _, fb = run (start ()) "focus ww:Ghost" in
  Alcotest.(check bool) "error" true (has_error fb)

let show_without_focus () =
  let _, fb = run (start ()) "show" in
  Alcotest.(check bool) "error" true (has_error fb)

let apply_requires_focus () =
  let _, fb = run (start ()) "apply add_type_definition(Lab)" in
  Alcotest.(check bool) "error" true (has_error fb);
  Alcotest.(check bool) "explains" true (output_contains fb "focus")

let apply_with_focus () =
  let st = run_all (start ()) [ "focus ww:Person" ] in
  let st, fb = run st "apply add_attribute(Person, string, 12, phone)" in
  Alcotest.(check bool) "applied" true (output_contains fb "applied");
  let _, fb = run st "odl Person" in
  Alcotest.(check bool) "attribute visible" true (output_contains fb "phone")

let apply_denied_with_hint () =
  let st = run_all (start ()) [ "focus ww:Person" ] in
  let _, fb = run st "apply add_supertype(Student, Book)" in
  Alcotest.(check bool) "denied" true (has_error fb);
  Alcotest.(check bool) "points at GH" true
    (output_contains fb "generalization hierarchy")

let cautions_surface () =
  let st = run_all (start ()) [ "focus ww:Book" ] in
  let _, fb = run st "preview delete_type_definition(Book)" in
  Alcotest.(check bool) "caution shown" true (output_contains fb "caution:")

let preview_then_workspace_unchanged () =
  let st = run_all (start ()) [ "focus ww:Book" ] in
  let st, _ = run st "preview delete_type_definition(Book)" in
  let _, fb = run st "odl Book" in
  Alcotest.(check bool) "Book still there" true (output_contains fb "interface Book")

let undo_via_engine () =
  let st =
    run_all (start ())
      [ "focus ww:Person"; "apply add_attribute(Person, string, 12, phone)" ]
  in
  let st, fb = run st "undo" in
  Alcotest.(check bool) "confirmed" true (output_contains fb "reverted");
  let _, fb = run st "odl Person" in
  Alcotest.(check bool) "gone" false (output_contains fb "phone");
  let _, fb = run st "undo" in
  Alcotest.(check bool) "empty undo errors" true (has_error fb)

let check_and_reports () =
  let st = start () in
  let _, fb = run st "check" in
  Alcotest.(check bool) "no findings" true (output_contains fb "no findings");
  let _, fb = run st "mapping" in
  Alcotest.(check bool) "mapping" true (output_contains fb "mapping report");
  let _, fb = run st "impact" in
  Alcotest.(check bool) "impact" true (output_contains fb "impact report");
  let _, fb = run st "rules" in
  Alcotest.(check bool) "rules" true (output_contains fb "propagation")

let custom_named () =
  let _, fb = run (start ()) "custom Tailored" in
  Alcotest.(check bool) "renamed" true (output_contains fb "schema Tailored")

let summary_and_schema () =
  let st = start () in
  let _, fb = run st "summary" in
  Alcotest.(check bool) "inventory" true (output_contains fb "object types");
  let _, fb = run st "schema" in
  Alcotest.(check bool) "odl" true (output_contains fb "schema University")

let bad_commands () =
  let st = start () in
  let checks = [ "frobnicate"; "focus"; "apply"; "apply nonsense(" ] in
  List.iter
    (fun line ->
      let _, fb = run st line in
      Alcotest.(check bool) (line ^ " errors") true (has_error fb))
    checks

let quit_finishes () =
  let st, _ = run (start ()) "quit" in
  Alcotest.(check bool) "finished" true st.Engine.finished

let help_lists_commands () =
  let _, fb = run (start ()) "help" in
  List.iter
    (fun cmd ->
      Alcotest.(check bool) (cmd ^ " documented") true (output_contains fb cmd))
    [ "concepts"; "apply"; "preview"; "undo"; "mapping"; "save" ]

let explain_command () =
  let st = run_all (start ()) [ "focus ww:Course_Offering" ] in
  let _, fb = run st "explain" in
  Alcotest.(check bool) "prose" true
    (output_contains fb "presents the course offering point of view");
  let _, fb = run st "explain gh:Person" in
  Alcotest.(check bool) "explicit id" true
    (output_contains fb "generalization hierarchy rooted at person")

let alias_commands () =
  let st = start () in
  let st, fb = run st "alias Student Learner" in
  Alcotest.(check bool) "confirmed" true (output_contains fb "locally known as");
  let _, fb = run st "aliases" in
  Alcotest.(check bool) "listed" true (output_contains fb "Student -> Learner");
  let _, fb = run st "alias Ghost Spooky" in
  Alcotest.(check bool) "bad target errors" true (has_error fb);
  let _, fb = run st "alias Student" in
  Alcotest.(check bool) "usage errors" true (has_error fb);
  let st, _ = run st "unalias Student" in
  let _, fb = run st "aliases" in
  Alcotest.(check bool) "empty after unalias" true
    (output_contains fb "no local names")

let suggestions_on_rejection () =
  let st = run_all (start ()) [ "focus ww:Person" ] in
  let _, fb = run st "apply delete_type_definition(Studnet)" in
  Alcotest.(check bool) "did-you-mean shown" true
    (output_contains fb "did you mean")

let log_after_apply () =
  let st =
    run_all (start ())
      [ "focus ww:Person"; "apply add_attribute(Person, string, 12, phone)" ]
  in
  let _, fb = run st "log" in
  Alcotest.(check bool) "log line" true
    (output_contains fb "add_attribute(Person, string, 12, phone)")

let redo_command () =
  let st =
    run_all (start ())
      [ "focus ww:Person"; "apply add_attribute(Person, string, 12, phone)";
        "undo" ]
  in
  let st, fb = run st "redo" in
  Alcotest.(check bool) "confirmed" true (output_contains fb "re-applied");
  let _, fb = run st "odl Person" in
  Alcotest.(check bool) "attribute back" true (output_contains fb "phone");
  let st, _ = run st "undo" in
  let st, _ = run st "apply add_attribute(Person, string, 12, fax)" in
  let _, fb = run st "redo" in
  Alcotest.(check bool) "cleared by fresh apply" true (has_error fb)

let source_command () =
  let script = Filename.temp_file "swsd_script" ".txt" in
  let oc = open_out script in
  output_string oc
    "# comment line\nfocus ww:Person\napply add_attribute(Person, string, 12, \
     phone)\nsummary\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove script)
    (fun () ->
      let st, fb = run (start ()) ("source " ^ script) in
      Alcotest.(check bool) "commands echoed" true (output_contains fb "> focus");
      Alcotest.(check bool) "no errors" false (has_error fb);
      let _, fb = run st "odl Person" in
      Alcotest.(check bool) "applied" true (output_contains fb "phone"));
  let _, fb = run (start ()) "source /no/such/file" in
  Alcotest.(check bool) "missing file errors" true (has_error fb)

let quality_command () =
  let _, fb = run (start ()) "quality" in
  Alcotest.(check bool) "score shown" true (output_contains fb "schema quality:")

let todo_tracks_review () =
  let st = start () in
  let _, fb = run st "todo" in
  Alcotest.(check bool) "all pending initially" true
    (output_contains fb "not yet considered");
  Alcotest.(check bool) "lists a wheel" true (output_contains fb "ww:Person");
  let st = run_all st [ "focus ww:Person"; "focus gh:Person" ] in
  let _, fb = run st "todo" in
  Alcotest.(check bool) "visited dropped" false (output_contains fb "ww:Person ");
  Alcotest.(check bool) "others remain" true (output_contains fb "ww:Book");
  (* visiting everything clears the list *)
  let all_ids =
    Core.Session.concepts st.Engine.session
    |> List.map (fun c -> "focus " ^ c.Core.Concept.c_id)
  in
  let st = run_all st all_ids in
  let _, fb = run st "todo" in
  Alcotest.(check bool) "done" true
    (output_contains fb "every concept schema has been considered")

let data_workflow () =
  let data = Filename.temp_file "swsd_data" ".objs" in
  let oc = open_out data in
  output_string oc
    "object @1 : Time_Slot {\n  day = \"Mon\";\n  starts = \"09:00\";\n  \
     ends = \"10:00\";\n}\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove data)
    (fun () ->
      let st, fb = run (start ()) ("data " ^ data) in
      Alcotest.(check bool) "loaded" true (output_contains fb "loaded 1 object");
      (* deleting the type the data inhabits reports a data impact *)
      let st, _ = run st "focus ww:Time_Slot" in
      let st, fb = run st "apply delete_type_definition(Time_Slot)" in
      Alcotest.(check bool) "data impact caution" true
        (output_contains fb "data impact");
      let _, fb = run st "migrate" in
      Alcotest.(check bool) "drop reported" true
        (output_contains fb "dropped: @1 object"));
  let _, fb = run (start ()) "migrate" in
  Alcotest.(check bool) "no data loaded errors" true (has_error fb);
  let _, fb = run (start ()) "data /no/such/file" in
  Alcotest.(check bool) "missing file errors" true (has_error fb)

let select_command () =
  let data = Filename.temp_file "swsd_q" ".objs" in
  let oc = open_out data in
  output_string oc "object @1 : Person { name = \"Alice\"; ssn = \"1\"; }\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove data)
    (fun () ->
      let _, fb = run (start ()) "select Person" in
      Alcotest.(check bool) "needs data" true (has_error fb);
      let st, _ = run (start ()) ("data " ^ data) in
      let _, fb = run st "select Person where name like \"Ali\"" in
      Alcotest.(check bool) "match shown" true (output_contains fb "@1 : Person");
      let _, fb = run st "select Person where name = \"Zed\"" in
      Alcotest.(check bool) "no matches" true (output_contains fb "no matches"))

let save_includes_data () =
  let data = Filename.temp_file "swsd_save" ".objs" in
  let oc = open_out data in
  output_string oc "object @1 : Book { isbn = \"i\"; title = \"t\"; }\n";
  close_out oc;
  let dir = Filename.temp_file "swsd_save_dir" "" in
  Sys.remove dir;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove data;
      if Sys.file_exists dir then rm dir)
    (fun () ->
      let st = run_all (start ()) [ "data " ^ data ] in
      let _, fb = run st ("save " ^ dir) in
      Alcotest.(check bool) "confirmed" true (output_contains fb "saved");
      Alcotest.(check bool) "data persisted" true
        (Sys.file_exists (Filename.concat dir "data.objs")))

(* Every Command constructor has a decided service classification.  The
   [expected] match below is exhaustive with no catch-all — as are
   [Command.access] and [Command.mutates] themselves — so adding a
   constructor without deciding its read/write class fails to compile in
   all three places; this test then pins the decisions at run time. *)
let command_classification () =
  let module C = Designer.Command in
  let op =
    match C.parse "apply add_attribute(Person, string, 8, x)" with
    | C.Apply op -> op
    | _ -> Alcotest.fail "apply should parse to Apply"
    | exception C.Bad_command m -> Alcotest.fail m
  in
  let expected (c : C.t) =
    match c with
    (* pure reads: lock-free against the published snapshot *)
    | C.Concepts -> (C.Read, false)
    | C.Show _ -> (C.Read, false)
    | C.Odl _ -> (C.Read, false)
    | C.Print_schema -> (C.Read, false)
    | C.Summary -> (C.Read, false)
    | C.Preview _ -> (C.Read, false)
    | C.Plan _ -> (C.Read, false)
    | C.Check -> (C.Read, false)
    | C.Quality -> (C.Read, false)
    | C.Todo -> (C.Read, false)
    | C.Migrate_data -> (C.Read, false)
    | C.Query _ -> (C.Read, false)
    | C.Mapping -> (C.Read, false)
    | C.Impact -> (C.Read, false)
    | C.Custom _ -> (C.Read, false)
    | C.Explain _ -> (C.Read, false)
    | C.List_aliases -> (C.Read, false)
    | C.Log -> (C.Read, false)
    | C.Rules -> (C.Read, false)
    | C.Help -> (C.Read, false)
    (* design mutations: writer lock, refused on readonly connections *)
    | C.Apply _ -> (C.Write, true)
    | C.Undo -> (C.Write, true)
    | C.Redo -> (C.Write, true)
    | C.Alias _ -> (C.Write, true)
    | C.Unalias _ -> (C.Write, true)
    | C.Source _ -> (C.Write, true)
    | C.Save _ -> (C.Write, true)
    | C.Load_data _ -> (C.Write, true)
    (* engine-state changes that are not design mutations: the writer
       lock, but allowed readonly *)
    | C.Focus _ -> (C.Write, false)
    | C.Quit -> (C.Write, false)
  in
  let samples =
    [
      ("concepts", C.Concepts);
      ("focus", C.Focus "ww:Person");
      ("show", C.Show None);
      ("show <c>", C.Show (Some "ww:Person"));
      ("odl", C.Odl "ww:Person");
      ("schema", C.Print_schema);
      ("summary", C.Summary);
      ("apply", C.Apply op);
      ("preview", C.Preview op);
      ("plan", C.Plan op);
      ("undo", C.Undo);
      ("redo", C.Redo);
      ("source", C.Source "cmds.txt");
      ("check", C.Check);
      ("quality", C.Quality);
      ("todo", C.Todo);
      ("data", C.Load_data "objs");
      ("migrate", C.Migrate_data);
      ("select", C.Query "select Person");
      ("mapping", C.Mapping);
      ("impact", C.Impact);
      ("custom", C.Custom None);
      ("custom <n>", C.Custom (Some "mine"));
      ("explain", C.Explain None);
      ("explain <r>", C.Explain (Some "r1"));
      ("alias", C.Alias ("aa", "apply add_attribute"));
      ("unalias", C.Unalias "aa");
      ("aliases", C.List_aliases);
      ("log", C.Log);
      ("rules", C.Rules);
      ("save", C.Save "/tmp/out");
      ("help", C.Help);
      ("quit", C.Quit);
    ]
  in
  List.iter
    (fun (name, c) ->
      let acc, mut = expected c in
      Alcotest.(check bool)
        (name ^ ": access")
        (acc = C.Write)
        (C.access c = C.Write);
      Alcotest.(check bool) (name ^ ": mutates") mut (C.mutates c);
      (* the invariant the service relies on: every mutating command goes
         through the writer lock — nothing mutating may classify Read *)
      if C.mutates c then
        Alcotest.(check bool)
          (name ^ ": mutating implies write-class")
          true
          (C.access c = C.Write))
    samples

let tests =
  [
    test "concepts lists all" concepts_lists_all;
    test "focus and show" focus_and_show;
    test "focus unknown concept" focus_unknown;
    test "show without focus" show_without_focus;
    test "apply requires focus" apply_requires_focus;
    test "apply with focus" apply_with_focus;
    test "apply denied with hint" apply_denied_with_hint;
    test "cautions surface" cautions_surface;
    test "preview leaves workspace unchanged" preview_then_workspace_unchanged;
    test "undo via engine" undo_via_engine;
    test "check and reports" check_and_reports;
    test "custom with a name" custom_named;
    test "summary and schema" summary_and_schema;
    test "bad commands" bad_commands;
    test "every command constructor has a decided service classification"
      command_classification;
    test "quit finishes" quit_finishes;
    test "help lists commands" help_lists_commands;
    test "log after apply" log_after_apply;
    test "explain command" explain_command;
    test "alias commands" alias_commands;
    test "suggestions on rejection" suggestions_on_rejection;
    test "redo command" redo_command;
    test "source command" source_command;
    test "quality command" quality_command;
    test "todo tracks review" todo_tracks_review;
    test "data workflow" data_workflow;
    test "select command" select_command;
    test "save includes data" save_includes_data;
  ]
