(* The explanation facility. *)

let test = Util.test
let contains = Str_contains.contains

let concept_of schema id =
  Option.get (Core.Decompose.find (Core.Decompose.decompose schema) id)

let explain schema id = Core.Explain.concept_text schema (concept_of schema id)

let wagon_wheel_sentences () =
  let text = explain (Util.university ()) "ww:Course_Offering" in
  List.iter
    (fun frag -> Alcotest.(check bool) ("has: " ^ frag) true (contains text frag))
    [
      "presents the course offering point of view";
      "records room (a string of at most 20)";
      "is an instance of exactly one course";
      "related to a set of book through books";
      "kept ordered by name";
      "can raise No_Grades";
      "returning nothing";
    ]

let wagon_wheel_isa_and_keys () =
  let text = explain (Util.university ()) "ww:Student" in
  Alcotest.(check bool) "isa sentence" true
    (contains text "Every student is a person.");
  Alcotest.(check bool) "subtypes listed" true
    (contains text "Specialized kinds of student: undergraduate, graduate.");
  let text = explain (Util.university ()) "ww:Course" in
  Alcotest.(check bool) "composite key" true
    (contains text "identified by subject together with number")

let generalization_inheritance_paths () =
  let text = explain (Util.university ()) "gh:Person" in
  Alcotest.(check bool) "root sentence" true
    (contains text "Person is the root of the hierarchy.");
  Alcotest.(check bool) "path" true
    (contains text "Doctoral inherits from graduate, then student, then person.");
  Alcotest.(check bool) "additions" true
    (contains text "It adds: dissertation_title, candidacy_date.")

let aggregation_sentences () =
  let text = explain (Util.lumber ()) "ah:House" in
  Alcotest.(check bool) "intro" true
    (contains text "presents the parts explosion of house");
  Alcotest.(check bool) "part sentence" true
    (contains text "Each roof consists of a set of shingle bundle (through shingles).")

let instance_chain_sentences () =
  let text = explain (Util.emsl ()) "ih:Application" in
  Alcotest.(check bool) "intro" true
    (contains text "instantiation sequence headed by application");
  Alcotest.(check bool) "generic sentence" true
    (contains text
       "Each application is a generic specification; its instances are \
        application version objects (through versions).")

let whole_and_part_sentences () =
  let text = explain (Util.lumber ()) "ww:Roof" in
  Alcotest.(check bool) "whole end" true
    (contains text "is a whole aggregating a set of plywood decking parts");
  let text = explain (Util.lumber ()) "ww:Stud" in
  Alcotest.(check bool) "part end" true
    (contains text "Each stud is a part of exactly one framing")

let explanation_is_deterministic () =
  let u = Util.university () in
  Alcotest.(check string) "stable"
    (explain u "ww:Person") (explain u "ww:Person")

let every_concept_explainable () =
  List.iter
    (fun schema ->
      List.iter
        (fun c ->
          let text = Core.Explain.concept_text schema c in
          Alcotest.(check bool) (c.Core.Concept.c_id ^ " nonempty") true
            (String.length text > 0))
        (Core.Decompose.decompose schema))
    [ Util.university (); Util.lumber (); Util.emsl ();
      Schemas.Genome.acedb_v () ]

let tests =
  [
    test "wagon wheel sentences" wagon_wheel_sentences;
    test "ISA and key sentences" wagon_wheel_isa_and_keys;
    test "generalization inheritance paths" generalization_inheritance_paths;
    test "aggregation sentences" aggregation_sentences;
    test "instance chain sentences" instance_chain_sentences;
    test "whole and part sentences" whole_and_part_sentences;
    test "explanations are deterministic" explanation_is_deterministic;
    test "every concept schema is explainable" every_concept_explainable;
  ]
