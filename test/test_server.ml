(* The concurrent design service: protocol, retry/breaker/lock building
   blocks, EINTR discipline, and the chaos harness — N concurrent clients
   over a fault-injected in-memory filesystem, with injected crashes and
   killed workers; after every schedule the repository must fsck clean and
   every acknowledged operation must survive recovery.

   All service-level tests drive {!Server.Service.request} directly from
   threads (the socket layer adds nothing to the concurrency semantics);
   one test exercises the real Unix-domain-socket server end to end, and
   one the SIGTERM drain of a spawned [swsd serve] process. *)

module Io = Repository.Io
module Store = Repository.Store
module Repo = Repository.Repo
module Service = Server.Service
module Protocol = Server.Protocol
module Retry = Server.Retry
module Breaker = Server.Breaker
module Locks = Server.Locks

let test = Util.test

let tiny_text =
  "interface Person { attribute string name; attribute int age; };\n\
   interface Course { attribute string title; attribute string code; };"

let tiny () = Util.parse tiny_text

(* A deadlocked suite is worse than a failed one: if [f] does not finish
   within [secs], name the test and abort the whole run. *)
let with_watchdog ~secs ~name f =
  let finished = Atomic.make false in
  ignore
    (Thread.create
       (fun () ->
         let deadline = Unix.gettimeofday () +. secs in
         while (not (Atomic.get finished)) && Unix.gettimeofday () < deadline do
           Thread.delay 0.05
         done;
         if not (Atomic.get finished) then begin
           Printf.eprintf "watchdog: %s still running after %.0fs (deadlock?)\n%!"
             name secs;
           Stdlib.exit 125
         end)
       ());
  Fun.protect ~finally:(fun () -> Atomic.set finished true) f

(* --- protocol ------------------------------------------------------------- *)

let parse_requests () =
  let ok l r =
    match Protocol.parse_request l with
    | Result.Ok got when got = r -> ()
    | Result.Ok _ -> Alcotest.failf "%s: wrong request" l
    | Result.Error m -> Alcotest.failf "%s: %s" l m
  in
  ok "@list" Protocol.List;
  ok "  @open night_school "
    (Protocol.Open { variant = "night_school"; readonly = false });
  ok "@open night_school readonly"
    (Protocol.Open { variant = "night_school"; readonly = true });
  (match Protocol.parse_request "@open night_school sideways" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "bad @open mode must be rejected");
  ok "@new v1" (Protocol.New "v1");
  ok "@branch v w" (Protocol.Branch { parent = "v"; child = "w"; at = None });
  ok "  @branch v w @at 3 "
    (Protocol.Branch { parent = "v"; child = "w"; at = Some 3 });
  (match Protocol.parse_request "@branch v" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "bad @branch must be rejected");
  (match Protocol.parse_request "@branch v w @at -1" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "negative @at must be rejected");
  ok "@merge w into v"
    (Protocol.Merge { source = "w"; dest = "v"; dry_run = false });
  ok "@merge w into v --dry-run"
    (Protocol.Merge { source = "w"; dest = "v"; dry_run = true });
  (match Protocol.parse_request "@merge w v" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "bad @merge must be rejected");
  ok "@close" Protocol.Close;
  ok "@ping" Protocol.Ping;
  ok "@quit" Protocol.Quit;
  ok "focus ww:Person" (Protocol.Command "focus ww:Person");
  ok "apply add_attribute(Person, string, 8, x)"
    (Protocol.Command "apply add_attribute(Person, string, 8, x)");
  (match Protocol.parse_request "@frobnicate" with
  | Result.Error m ->
      Alcotest.(check bool) "names the request" true
        (Str_contains.contains m "@frobnicate")
  | Result.Ok _ -> Alcotest.fail "unknown control must be rejected");
  match Protocol.parse_request "   " with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "empty must be rejected"

let render_responses () =
  Alcotest.(check string) "ok" "!ok\n" (Protocol.to_string (Protocol.ok []));
  Alcotest.(check string) "body prefixed" ". a\n. b\n!ok\n"
    (Protocol.to_string (Protocol.ok [ "a\nb" ]));
  Alcotest.(check string) "err" "!err boom\n"
    (Protocol.to_string (Protocol.err "boom"));
  Alcotest.(check string) "busy is two lines"
    "!busy queue full\n!retry-after 250\n"
    (Protocol.to_string (Protocol.busy ~retry_after_ms:250 "queue full"));
  Alcotest.(check string) "readonly" "!readonly no writes\n"
    (Protocol.to_string (Protocol.readonly "no writes"));
  Alcotest.(check string) "version meta line precedes the status"
    ". a\n#version 7\n!ok\n"
    (Protocol.to_string (Protocol.ok ~version:7 [ "a" ]));
  List.iter
    (fun (line, expect) ->
      Alcotest.(check bool) line expect (Protocol.is_terminator line))
    [
      ("!ok", true);
      ("!err nope", true);
      ("!readonly no writes", true);
      ("!retry-after 100", true);
      ("!busy queue full", false);
      ("#version 7", false);
      (". body", false);
    ]

(* --- retry ---------------------------------------------------------------- *)

let retry_policy =
  { Retry.max_attempts = 3; base_delay = 0.001; max_delay = 0.01; jitter = 0.5 }

let retry_transient () =
  let calls = ref 0 in
  let result =
    Retry.with_retries ~sleep:(fun _ -> ()) retry_policy (fun () ->
        incr calls;
        if !calls < 3 then raise (Sys_error "transient EIO");
        "done")
  in
  Alcotest.(check int) "three attempts" 3 !calls;
  (match result with
  | Result.Ok s -> Alcotest.(check string) "value" "done" s
  | Result.Error _ -> Alcotest.fail "should succeed on the third attempt");
  calls := 0;
  (match
     Retry.with_retries ~sleep:(fun _ -> ()) retry_policy (fun () ->
         incr calls;
         raise (Sys_error "always"))
   with
  | Result.Error (Sys_error _) -> ()
  | _ -> Alcotest.fail "exhausted retries must report the failure");
  Alcotest.(check int) "gives up after max_attempts" 3 !calls

let retry_non_transient () =
  let calls = ref 0 in
  (try
     ignore
       (Retry.with_retries ~sleep:(fun _ -> ()) retry_policy (fun () ->
            incr calls;
            raise Io.Crash));
     Alcotest.fail "Crash must fly through"
   with Io.Crash -> ());
  Alcotest.(check int) "no retry of a crash" 1 !calls

let retry_delays_bounded () =
  let rand = Random.State.make [| 42 |] in
  for attempt = 0 to 10 do
    let d = Retry.delay_for ~policy:Retry.default ~rand attempt in
    if d < 0.0 || d > Retry.default.Retry.max_delay then
      Alcotest.failf "attempt %d: delay %f out of bounds" attempt d
  done

(* The absolute deadline clamps every backoff to the remaining budget, and
   a spent budget stops the loop at the next failure — no sleeping past
   the deadline, and no busy-spin on zero-length sleeps.  (The group
   commit flusher leans on this: its flush retries under a request-scale
   deadline, so a failing disk can pin a batch for at most one deadline,
   not max_attempts * max_delay.) *)
let retry_deadline_clamped () =
  let clock = ref 0.0 in
  let slept = ref 0.0 in
  let sleep d =
    if d <= 0.0 then Alcotest.failf "zero-length sleep (busy spin): %f" d;
    slept := !slept +. d;
    clock := !clock +. d
  in
  let calls = ref 0 in
  let policy =
    { Retry.max_attempts = 50; base_delay = 0.4; max_delay = 0.4; jitter = 0.0 }
  in
  (match
     Retry.with_retries ~sleep ~now:(fun () -> !clock) ~deadline:1.0 policy
       (fun () ->
         incr calls;
         raise (Sys_error "always"))
   with
  | Result.Error (Sys_error _) -> ()
  | _ -> Alcotest.fail "a failing thunk must report its failure");
  if !slept > 1.0 +. 1e-9 then
    Alcotest.failf "slept %.3fs past a 1s deadline" !slept;
  Alcotest.(check int)
    "gave up when the deadline was spent, not at max_attempts"
    4 (* 0.4 + 0.4 + 0.2 (clamped), then the budget is zero *)
    !calls

(* --- breaker -------------------------------------------------------------- *)

let breaker_ladder () =
  let b = Breaker.create ~threshold:2 ~cooldown:10.0 () in
  Alcotest.(check bool) "starts closed" true (Breaker.allows b ~now:0.0);
  Breaker.record_failure b ~now:1.0;
  Alcotest.(check bool) "below threshold" true (Breaker.allows b ~now:1.0);
  Breaker.record_failure b ~now:2.0;
  Alcotest.(check bool) "tripped" false (Breaker.allows b ~now:3.0);
  Alcotest.(check bool) "is_open" true (Breaker.is_open b);
  (* half-open probe after the cooldown *)
  Alcotest.(check bool) "probe allowed" true (Breaker.allows b ~now:12.5);
  Breaker.record_failure b ~now:12.5;
  Alcotest.(check bool) "failed probe re-trips" false (Breaker.allows b ~now:13.0);
  Alcotest.(check bool) "new cooldown restarts" true (Breaker.allows b ~now:23.0);
  Breaker.record_success b ~now:23.0;
  Alcotest.(check bool) "success closes" true (Breaker.allows b ~now:23.0);
  Breaker.record_failure b ~now:24.0;
  Alcotest.(check bool) "counter was reset" true (Breaker.allows b ~now:24.0)

(* The transition log records every closed → open → half-open edge with its
   timestamp, newest first, and feeds [describe] and [time_in_state]. *)
let breaker_transition_log () =
  let b = Breaker.create ~threshold:2 ~cooldown:10.0 () in
  Alcotest.(check (list (pair (float 0.0) string)))
    "no transitions before the first trip" [] (Breaker.transitions b);
  Alcotest.(check (option (float 0.0)))
    "no time-in-state before the first trip" None
    (Breaker.time_in_state b ~now:5.0);
  Breaker.record_failure b ~now:1.0;
  Breaker.record_failure b ~now:2.0;
  (* trip at 2, half-open probe admitted at 12.5, probe fails at 13,
     cooled-down probe at 23.5 succeeds and closes at 24 *)
  ignore (Breaker.allows b ~now:12.5);
  Breaker.record_failure b ~now:13.0;
  ignore (Breaker.allows b ~now:23.5);
  Breaker.record_success b ~now:24.0;
  Alcotest.(check (list (pair (float 0.0) string)))
    "full history, newest first"
    [
      (24.0, "closed");
      (23.5, "half-open");
      (13.0, "open");
      (12.5, "half-open");
      (2.0, "open");
    ]
    (Breaker.transitions b);
  Alcotest.(check (option (float 1e-6)))
    "time in (closed) state counts from the closing transition" (Some 6.0)
    (Breaker.time_in_state b ~now:30.0);
  let d = Breaker.describe b in
  let mem needle =
    let nl = String.length needle and dl = String.length d in
    let rec go i = i + nl <= dl && (String.sub d i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "describe names the state" true (mem "closed");
  Alcotest.(check bool)
    "describe carries the timestamped history" true (mem "open@2.000")

(* --- locks ---------------------------------------------------------------- *)

let locks_shed_and_timeout () =
  let l = Locks.create () in
  let entered = Atomic.make false and release = Atomic.make false in
  let holder =
    Thread.create
      (fun () ->
        ignore
          (Locks.with_key l "v" ~deadline:(Unix.gettimeofday () +. 10.0)
             (fun () ->
               Atomic.set entered true;
               while not (Atomic.get release) do
                 Thread.delay 0.001
               done)))
      ()
  in
  while not (Atomic.get entered) do
    Thread.delay 0.001
  done;
  (* bound 0: shed on arrival while the lock is held *)
  (match
     Locks.with_key ~max_waiters:0 l "v"
       ~deadline:(Unix.gettimeofday () +. 10.0)
       (fun () -> ())
   with
  | Result.Error (Locks.Busy _) -> ()
  | _ -> Alcotest.fail "should shed with Busy at the queue bound");
  (* queued, but the deadline passes first *)
  (match
     Locks.with_key ~max_waiters:8 l "v"
       ~deadline:(Unix.gettimeofday () +. 0.05)
       (fun () -> ())
   with
  | Result.Error Locks.Timed_out -> ()
  | _ -> Alcotest.fail "should time out");
  (* a different key is free *)
  (match
     Locks.with_key l "w" ~deadline:(Unix.gettimeofday () +. 1.0) (fun () -> 7)
   with
  | Result.Ok 7 -> ()
  | _ -> Alcotest.fail "distinct keys must not contend");
  Atomic.set release true;
  Thread.join holder;
  match Locks.with_key l "v" ~deadline:(Unix.gettimeofday () +. 1.0) (fun () -> ()) with
  | Result.Ok () -> ()
  | _ -> Alcotest.fail "lock must be free after release"

(* --- EINTR discipline (satellite: every syscall survives signals) --------- *)

let eintr_retry_loop () =
  let calls = ref 0 in
  let v =
    Io.retry_eintr (fun () ->
        incr calls;
        if !calls < 3 then raise (Unix.Unix_error (Unix.EINTR, "read", ""));
        "through")
  in
  Alcotest.(check string) "eventually returns" "through" v;
  Alcotest.(check int) "retried twice" 3 !calls

let eintr_injection () =
  let m = Io.mem_create () in
  let base = Io.mem_io m in
  (* unprotected, the injected interrupt escapes *)
  let raw, _ = Io.eintr_faulty ~eintr_at:[ 0 ] base in
  (try
     raw.Io.write "/f" "x";
     Alcotest.fail "EINTR should escape an unprotected io"
   with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  (* protected, every operation rides through the interrupts *)
  let fio, delivered = Io.eintr_faulty ~eintr_at:[ 0; 2; 4; 6 ] base in
  let io = Io.protected fio in
  io.Io.mkdir "/d";
  io.Io.write "/d/f" "hello";
  io.Io.append "/d/f" " world";
  io.Io.fsync "/d/f";
  io.Io.rename "/d/f" "/d/g";
  Alcotest.(check string) "contents intact" "hello world"
    (io.Io.read_file "/d/g");
  Alcotest.(check int) "all four interrupts delivered" 4 (delivered ())

(* --- mem-fs service helpers ----------------------------------------------- *)

let quick_retry =
  { Retry.max_attempts = 3; base_delay = 0.0002; max_delay = 0.001; jitter = 0.5 }

let quick_config ?now ?sleep ?(deadline = 2.0) ?(max_waiters = 8)
    ?(idle = 300.0) ?(threshold = 3) ?(cooldown = 30.0)
    ?(lockfree_reads = true) ?(group_commit = true) ?(flush_max_batch = 64)
    ?(flush_linger = 0.002) ?(flush_on_idle = true) ?chaos_hook () =
  {
    Service.request_deadline = deadline;
    max_waiters;
    idle_timeout = idle;
    drain_timeout = 5.0;
    retry = quick_retry;
    breaker_threshold = threshold;
    breaker_cooldown = cooldown;
    use_file_locks = false (* lockf needs a real fd; mem fs has none *);
    retry_after_ms = 25;
    lockfree_reads;
    group_commit;
    flush_max_batch;
    flush_linger;
    flush_on_idle;
    follower = false;
    era = 0;
    now = Option.value now ~default:Unix.gettimeofday;
    sleep = Option.value sleep ~default:Thread.delay;
    chaos_hook;
    instance_notes = [];
    shard_span = None;
  }

(* A mem-fs repository with one variant [v], ready to serve. *)
let mem_repo () =
  let m = Io.mem_create () in
  let io = Io.locked (Io.mem_io m) in
  (match Repo.init ~io "/repo" (tiny ()) with
  | Result.Ok repo -> (
      match Repo.create_variant repo "v" with
      | Result.Ok _ -> ()
      | Result.Error e -> Alcotest.fail e)
  | Result.Error e -> Alcotest.fail e);
  (m, io)

let service ?config ?obs io =
  match Service.open_service ?config ?obs ~io "/repo" with
  | Result.Ok t -> t
  | Result.Error m -> Alcotest.fail m

let req_ok t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Ok -> r.Protocol.body
  | _ -> Alcotest.failf "%s should succeed, got: %s" line (Protocol.to_string r)

let req_err t c line =
  let r = Service.request t c line in
  match r.Protocol.status with
  | Protocol.Err m -> m
  | _ -> Alcotest.failf "%s should be refused, got: %s" line (Protocol.to_string r)

let apply_line name = Printf.sprintf "apply add_attribute(Person, string, 8, %s)" name

(* The journal as recovered after a full post-mortem: resolved steps. *)
let recovered_steps io =
  match Store.load_session (Store.open_dir ~io "/repo/variants/v") with
  | Result.Ok s ->
      List.map
        (fun (st : Core.Session.step) ->
          Core.Op_printer.to_string st.Core.Session.st_op)
        (Core.Session.log s)
  | Result.Error e -> Alcotest.fail (Store.load_error_to_string e)

(* --- service basics -------------------------------------------------------- *)

let service_lifecycle () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  Alcotest.(check (list string)) "list" [ "v root era 0" ] (req_ok t c "@list");
  ignore (req_ok t c "@ping");
  Alcotest.(check bool) "command without a session refused" true
    (Str_contains.contains (req_err t c "concepts") "@open");
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "nickname"));
  (* the ack implies a durable journal record, before any snapshot *)
  Alcotest.(check bool) "journal holds the acked op" true
    (Str_contains.contains (io.Io.read_file "/repo/variants/v/log.ops") "nickname");
  (* engine rejections surface as !err with the feedback as body *)
  Alcotest.(check bool) "duplicate attribute rejected" true
    (Str_contains.contains (req_err t c (apply_line "nickname")) "rejected");
  (* server-session refusals *)
  Alcotest.(check bool) "save refused" true
    (Str_contains.contains (req_err t c "save /tmp/x") "@close");
  Alcotest.(check bool) "source refused" true
    (Str_contains.contains (req_err t c "source cmds.txt") "not available");
  ignore (req_ok t c "undo");
  ignore (req_ok t c "redo");
  ignore (req_ok t c "@close");
  Alcotest.(check int) "session freed on last close" 0 (Service.session_count t);
  (* a full shutdown on a quiet service reports nothing *)
  Alcotest.(check (list (pair string string))) "clean shutdown" [] (Service.shutdown t);
  Alcotest.(check bool) "stopped service refuses" true
    (Str_contains.contains (req_err t c "@ping") "shutting down")

let shared_session_attach () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let a = Service.connect t and b = Service.connect t in
  ignore (req_ok t a "@open v");
  let body = req_ok t b "@open v" in
  Alcotest.(check bool) "second client told it shares" true
    (List.exists (fun l -> Str_contains.contains l "2 client(s)") body);
  Alcotest.(check int) "one shared session" 1 (Service.session_count t);
  ignore (req_ok t a "@close");
  Alcotest.(check int) "still alive for b" 1 (Service.session_count t);
  ignore (req_ok t b "@close");
  Alcotest.(check int) "freed on last detach" 0 (Service.session_count t)

let idle_reaper () =
  let clock = ref 0.0 in
  let config =
    quick_config ~now:(fun () -> !clock) ~sleep:(fun d -> clock := !clock +. d)
      ~idle:300.0 ()
  in
  let _, io = mem_repo () in
  let t = service ~config io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "kept"));
  Alcotest.(check int) "not yet idle" 0 (Service.reap_idle t);
  clock := !clock +. 301.0;
  Alcotest.(check int) "reaped" 1 (Service.reap_idle t);
  Alcotest.(check int) "freed" 0 (Service.session_count t);
  Alcotest.(check bool) "connection learns on next use" true
    (Str_contains.contains (req_err t c "concepts") "expired");
  (* reopening resumes from the reaper's snapshot *)
  ignore (req_ok t c "@open v");
  let log = req_ok t c "log" in
  Alcotest.(check bool) "state survived the reap" true
    (List.exists (fun l -> Str_contains.contains l "kept") log)

(* --- backpressure and deadlines ------------------------------------------- *)

(* Block one request inside the variant lock via the chaos hook, then look
   at what happens to the others. *)
let blocked_variant ~max_waiters ~deadline k =
  with_watchdog ~secs:30.0 ~name:"backpressure" (fun () ->
      let entered = Atomic.make false and release = Atomic.make false in
      let hook ~variant:_ ~line =
        if Str_contains.contains line "slowpoke" then begin
          Atomic.set entered true;
          while not (Atomic.get release) do
            Thread.delay 0.001
          done
        end
      in
      let _, io = mem_repo () in
      let t = service ~config:(quick_config ~max_waiters ~deadline ~chaos_hook:hook ()) io in
      let a = Service.connect t and b = Service.connect t in
      ignore (req_ok t a "@open v");
      ignore (req_ok t b "@open v");
      ignore (req_ok t a "focus ww:Person");
      let slow =
        Thread.create (fun () -> ignore (req_ok t a (apply_line "slowpoke"))) ()
      in
      while not (Atomic.get entered) do
        Thread.delay 0.001
      done;
      Fun.protect
        ~finally:(fun () ->
          Atomic.set release true;
          Thread.join slow)
        (fun () -> k t b))

(* [focus] is write-class (it moves the shared cursor) but non-mutating:
   the cheapest probe that must queue on the writer lock. *)
let backpressure_sheds () =
  blocked_variant ~max_waiters:0 ~deadline:5.0 (fun t b ->
      (* a read-class command bypasses the full queue entirely *)
      (match (Service.request t b "summary").Protocol.status with
      | Protocol.Ok -> ()
      | _ -> Alcotest.fail "reads must not queue behind a blocked writer");
      match (Service.request t b "focus ww:Course").Protocol.status with
      | Protocol.Busy { retry_after_ms; reason } ->
          Alcotest.(check int) "advertises the configured backoff" 25
            retry_after_ms;
          Alcotest.(check bool) "names the queue" true
            (Str_contains.contains reason "queued")
      | _ -> Alcotest.fail "should shed with !busy at the queue bound")

let deadline_sheds () =
  blocked_variant ~max_waiters:8 ~deadline:0.08 (fun t b ->
      match (Service.request t b "focus ww:Course").Protocol.status with
      | Protocol.Busy { reason; _ } ->
          Alcotest.(check bool) "names the deadline" true
            (Str_contains.contains reason "deadline")
      | _ -> Alcotest.fail "should shed with !busy when the deadline passes")

(* --- circuit breaker: degradation to read-only ----------------------------- *)

let breaker_degrades_variant () =
  let clock = ref 0.0 in
  let failing = ref false in
  let m = Io.mem_create () in
  let raw = Io.locked (Io.mem_io m) in
  let io =
    {
      raw with
      Io.append =
        (fun path data ->
          if !failing then raise (Sys_error (path ^ ": injected EIO"))
          else raw.Io.append path data);
    }
  in
  (match Repo.init ~io:raw "/repo" (tiny ()) with
  | Result.Ok repo -> (
      match Repo.create_variant repo "v" with
      | Result.Ok _ -> ()
      | Result.Error e -> Alcotest.fail e)
  | Result.Error e -> Alcotest.fail e);
  let config =
    quick_config ~now:(fun () -> !clock) ~sleep:(fun _ -> ()) ~threshold:1
      ~cooldown:30.0 ()
  in
  let t = service ~config io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "before"));
  failing := true;
  (* retries exhaust, the op is not accepted, the session is evicted *)
  let msg = req_err t c (apply_line "lost") in
  Alcotest.(check bool) "op refused on persistence failure" true
    (Str_contains.contains msg "persistence failed");
  Alcotest.(check int) "session evicted" 0 (Service.session_count t);
  (* the variant reopens read-only: the breaker has tripped *)
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "summary");
  let msg = req_err t c (apply_line "still_lost") in
  Alcotest.(check bool) "mutations refused while open" true
    (Str_contains.contains msg "read-only");
  (* after the cooldown a half-open probe goes through, and success closes *)
  failing := false;
  clock := !clock +. 31.0;
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "recovered"));
  ignore (req_ok t c (apply_line "and_again"));
  ignore (req_ok t c "@close");
  ignore (Service.shutdown t);
  (* nothing acked was lost; the refused op is nowhere *)
  let steps = String.concat "\n" (recovered_steps raw) in
  Alcotest.(check bool) "acked op kept" true (Str_contains.contains steps "before");
  Alcotest.(check bool) "recovered op kept" true
    (Str_contains.contains steps "recovered");
  Alcotest.(check bool) "refused op absent" true
    (not (Str_contains.contains steps "lost"))

(* A failed batch flush fails EVERY writer aboard — nothing in the batch
   is acked, every session is evicted, the breaker trips — and once the
   disk heals and the breaker cools, a fresh @open reloads the journal
   and resets the poisoned commit lane: writes flow again. *)
let group_batch_failure_fails_all () =
  with_watchdog ~secs:60.0 ~name:"batch failure" (fun () ->
      let clock = ref 0.0 in
      let failing = ref false in
      let m = Io.mem_create () in
      let raw = Io.locked (Io.mem_io m) in
      let io =
        {
          raw with
          Io.append =
            (fun path data ->
              if !failing then raise (Sys_error (path ^ ": injected EIO"))
              else raw.Io.append path data);
        }
      in
      (match Repo.init ~io:raw "/repo" (tiny ()) with
      | Result.Ok repo -> (
          match Repo.create_variant repo "v" with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e)
      | Result.Error e -> Alcotest.fail e);
      (* three writers fill one batch exactly; the strict policy (no idle
         flush, long linger) makes the batch boundary deterministic *)
      let config =
        quick_config ~now:(fun () -> !clock) ~threshold:1 ~cooldown:30.0
          ~flush_max_batch:3 ~flush_linger:3600.0 ~flush_on_idle:false ()
      in
      let t = service ~config io in
      let conns =
        List.init 3 (fun _ ->
            let c = Service.connect t in
            ignore (req_ok t c "@open v");
            ignore (req_ok t c "focus ww:Person");
            c)
      in
      failing := true;
      let failures = Atomic.make 0 in
      let threads =
        List.mapi
          (fun i c ->
            Thread.create
              (fun () ->
                let r =
                  Service.request t c (apply_line (Printf.sprintf "doomed%d" i))
                in
                match r.Protocol.status with
                | Protocol.Err m
                  when Str_contains.contains m "persistence failed" ->
                    Atomic.incr failures
                | _ -> ())
              ())
          conns
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "every waiter of the batch failed" 3
        (Atomic.get failures);
      Alcotest.(check int) "every session evicted" 0 (Service.session_count t);
      (* the breaker tripped: reopened variant is read-only *)
      let c = List.hd conns in
      ignore (req_ok t c "@open v");
      Alcotest.(check bool) "breaker tripped" true
        (Str_contains.contains (req_err t c (apply_line "still_down")) "read-only");
      (* disk heals, breaker cools; @open already reloaded the journal and
         reset the lane — the next batch commits *)
      failing := false;
      clock := !clock +. 31.0;
      ignore (req_ok t c "focus ww:Person");
      ignore (req_ok t c (apply_line "healed"));
      ignore (Service.shutdown t);
      let steps = String.concat "\n" (recovered_steps raw) in
      Alcotest.(check bool) "post-heal op durable" true
        (Str_contains.contains steps "healed");
      Alcotest.(check bool) "no doomed op leaked" true
        (not (Str_contains.contains steps "doomed")))

(* The crash window between a batch's fsync and its acks: the record is
   durable but the writer never hears Ok.  That outcome is allowed — the
   durability contract is one-way (ack implies durable, not the reverse)
   — but it must leave the journal clean: the reopened session replays
   the unacked op, and fsck finds nothing to repair. *)
let durable_but_unacked () =
  with_watchdog ~secs:60.0 ~name:"durable but unacked" (fun () ->
      let failing = ref false in
      let m = Io.mem_create () in
      let raw = Io.locked (Io.mem_io m) in
      let io =
        {
          raw with
          Io.fsync =
            (fun path ->
              raw.Io.fsync path;
              (* the data IS durable; the failure hits on the way back *)
              if !failing then raise (Sys_error (path ^ ": injected: lost ack")));
        }
      in
      (match Repo.init ~io:raw "/repo" (tiny ()) with
      | Result.Ok repo -> (
          match Repo.create_variant repo "v" with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e)
      | Result.Error e -> Alcotest.fail e);
      (* one attempt only: a retry after the durable-but-failed fsync
         would append the same record twice *)
      let config =
        {
          (quick_config ~threshold:max_int ()) with
          Service.retry = { quick_retry with Retry.max_attempts = 1 };
        }
      in
      let t = service ~config io in
      let c = Service.connect t in
      ignore (req_ok t c "@open v");
      ignore (req_ok t c "focus ww:Person");
      ignore (req_ok t c (apply_line "acked"));
      failing := true;
      Alcotest.(check bool) "ack withheld" true
        (Str_contains.contains (req_err t c (apply_line "limbo"))
           "persistence failed");
      Alcotest.(check int) "session evicted (state unknown)" 0
        (Service.session_count t);
      failing := false;
      (* the unacked op was durable after all: the reload replays it *)
      ignore (req_ok t c "@open v");
      let steps = String.concat "\n" (recovered_steps raw) in
      Alcotest.(check bool) "acked op present" true
        (Str_contains.contains steps "acked");
      Alcotest.(check bool) "unacked-but-durable op survives" true
        (Str_contains.contains steps "limbo");
      ignore (Service.shutdown t);
      (* and the journal needs no repair *)
      match (Store.fsck (Store.open_dir ~io:raw "/repo/variants/v")).Store.fsck_issues with
      | [] -> ()
      | issues ->
          Alcotest.failf "journal not clean: %s" (String.concat "; " issues))

(* --- lock discipline ------------------------------------------------------- *)

(* Same variant: requests must serialize.  The chaos hook briefly dwells
   inside the critical section; any overlap is a mutual-exclusion bug. *)
let same_variant_serializes () =
  with_watchdog ~secs:60.0 ~name:"same-variant serialization" (fun () ->
      let inside = Atomic.make 0 in
      let overlapped = Atomic.make false in
      let hook ~variant:_ ~line:_ =
        if Atomic.fetch_and_add inside 1 > 0 then Atomic.set overlapped true;
        Thread.delay 0.001;
        ignore (Atomic.fetch_and_add inside (-1))
      in
      let _, io = mem_repo () in
      let t = service ~config:(quick_config ~deadline:30.0 ~chaos_hook:hook ()) io in
      let clients = 4 and ops = 5 in
      let threads =
        List.init clients (fun i ->
            Thread.create
              (fun () ->
                let c = Service.connect t in
                ignore (req_ok t c "@open v");
                for j = 1 to ops do
                  ignore (req_ok t c "focus ww:Person");
                  ignore (req_ok t c (apply_line (Printf.sprintf "c%d_%d" i j)))
                done;
                Service.disconnect t c)
              ())
      in
      List.iter Thread.join threads;
      ignore (Service.shutdown t);
      Alcotest.(check bool) "no two requests inside one variant" false
        (Atomic.get overlapped);
      (* every acked op is recovered, in each client's order *)
      let steps = recovered_steps io in
      Alcotest.(check int) "all ops journalled" (clients * ops)
        (List.length steps);
      let position name =
        let rec go k = function
          | [] -> Alcotest.failf "%s missing from the recovered journal" name
          | s :: rest ->
              if Str_contains.contains s (name ^ ")") then k else go (k + 1) rest
        in
        go 0 steps
      in
      for i = 0 to clients - 1 do
        let ps =
          List.init ops (fun j -> position (Printf.sprintf "c%d_%d" i (j + 1)))
        in
        if List.sort compare ps <> ps then
          Alcotest.failf "client %d ops recovered out of order" i
      done)

(* Distinct variants: requests must run in parallel.  Both workers meet at
   a barrier inside their respective variant locks; a global lock could
   never let the second one arrive. *)
let distinct_variants_parallel () =
  with_watchdog ~secs:30.0 ~name:"distinct-variant parallelism" (fun () ->
      let arrived = Atomic.make 0 in
      let met = Atomic.make false in
      let hook ~variant:_ ~line =
        if Str_contains.contains line "barrier" then begin
          ignore (Atomic.fetch_and_add arrived 1);
          let deadline = Unix.gettimeofday () +. 10.0 in
          while Atomic.get arrived < 2 && Unix.gettimeofday () < deadline do
            Thread.delay 0.001
          done;
          if Atomic.get arrived >= 2 then Atomic.set met true
        end
      in
      let _, io = mem_repo () in
      let t = service ~config:(quick_config ~deadline:15.0 ~chaos_hook:hook ()) io in
      let setup = Service.connect t in
      ignore (req_ok t setup "@new w");
      ignore (req_ok t setup "@close");
      let worker variant =
        Thread.create
          (fun () ->
            let c = Service.connect t in
            ignore (req_ok t c ("@open " ^ variant));
            ignore (req_ok t c "focus ww:Person");
            ignore (req_ok t c (apply_line "barrier"));
            Service.disconnect t c)
          ()
      in
      let a = worker "v" and b = worker "w" in
      Thread.join a;
      Thread.join b;
      ignore (Service.shutdown t);
      Alcotest.(check bool)
        "both variants were inside their locks at the same time" true
        (Atomic.get met))

(* --- chaos: concurrent clients over a crashing filesystem ------------------ *)

(* One chaos schedule: 3 clients race 3 ops each onto the shared variant
   while (a) the filesystem crashes at a seed-chosen syscall, (b) a
   seed-chosen subset of requests has its worker killed mid-flight, and
   (c) two readonly readers hammer the published snapshot throughout —
   every successful read must carry a never-backwards version stamp and a
   schema that passes the full consistency checker (snapshot isolation),
   and every writer must read its own acknowledged writes.  Then: power
   loss, salvage, and the recovered journal must contain every
   acknowledged op, per client in order, with a clean re-fsck.

   The group-commit flush policy is varied by seed (batch bound, linger,
   idle flush): batches then form differently across schedules, so the
   seed-chosen crash syscall lands in every phase of a batch's life —
   while records are queued but unflushed, inside a multi-record append
   (a torn half-batch tail for recovery to cut), and after the fsync but
   before the waiters ack.  The invariants don't care which: acked ops
   are durable in per-client order, unacked ops may go either way, and
   fsck always comes back clean.

   Assertions made on worker threads are collected into [first_error]
   (an Alcotest failure raised off the main thread would vanish with its
   thread) and re-raised on the main thread after the joins. *)
let chaos_schedule seed =
  let m = Io.mem_create () in
  let plain = Io.locked (Io.mem_io m) in
  (match Repo.init ~io:plain "/repo" (tiny ()) with
  | Result.Ok repo -> (
      match Repo.create_variant repo "v" with
      | Result.Ok _ -> ()
      | Result.Error e -> Alcotest.fail e)
  | Result.Error e -> Alcotest.fail e);
  (* the locked wrapper outermost also serializes the injector's counter *)
  let faulted, _ = Io.faulty ~crash_at:(5 + (seed * 17 mod 120)) (Io.mem_io m) in
  let io = Io.locked faulted in
  let hook ~variant:_ ~line =
    if Hashtbl.hash (seed, line) mod 11 = 0 then
      failwith "chaos: worker killed mid-request"
  in
  let config =
    quick_config ~deadline:10.0 ~threshold:max_int ~chaos_hook:hook
      ~flush_max_batch:(1 + (seed mod 4))
      ~flush_linger:(float_of_int (seed mod 3) /. 1000.0)
      ~flush_on_idle:(seed mod 2 = 0) ()
  in
  let t = service ~config io in
  let clients = 3 and ops = 3 in
  let acked = Array.make clients [] in
  let first_error = Atomic.make None in
  let record fmt =
    Printf.ksprintf
      (fun m -> ignore (Atomic.compare_and_set first_error None (Some m)))
      fmt
  in
  let writers_done = Atomic.make false in
  let readers =
    List.init 2 (fun ri ->
        Thread.create
          (fun () ->
            let c = Service.connect t in
            ignore (Service.request t c "@open v readonly");
            let last = ref 0 in
            let flip = ref false in
            while not (Atomic.get writers_done) do
              flip := not !flip;
              let line = if !flip then "check" else "summary" in
              let r = Service.request t c line in
              (match r.Protocol.status with
              | Protocol.Ok -> (
                  (match r.Protocol.version with
                  | Some v ->
                      if v < !last then
                        record
                          "seed %d reader %d: version went backwards (%d \
                           after %d)"
                          seed ri v !last
                      else last := v
                  | None ->
                      record "seed %d reader %d: read response without #version"
                        seed ri);
                  if line = "check" then
                    List.iter
                      (fun b ->
                        if Str_contains.contains b "error [" then
                          record
                            "seed %d reader %d: torn read — snapshot failed \
                             the consistency checker: %s"
                            seed ri b)
                      r.Protocol.body)
              | Protocol.Err _ ->
                  (* evicted/expired under chaos: reattach and continue *)
                  ignore (Service.request t c "@open v readonly")
              | Protocol.Readonly m ->
                  record "seed %d reader %d: read refused as mutating: %s" seed
                    ri m
              | Protocol.Busy _ -> Thread.delay 0.0005);
              Thread.delay 0.0002
            done;
            Service.disconnect t c)
          ())
  in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            let c = Service.connect t in
            for j = 1 to ops do
              let name = Printf.sprintf "c%d_%d" i j in
              (* open (sessions get evicted under chaos), focus, apply; a
                 few attempts per op, give up on persistent refusal *)
              let rec attempt k =
                if k > 0 then begin
                  ignore (Service.request t c "@open v");
                  ignore (Service.request t c "focus ww:Person");
                  let r = Service.request t c (apply_line name) in
                  match r.Protocol.status with
                  | Protocol.Ok -> (
                      acked.(i) <- name :: acked.(i);
                      (* read-your-writes: a later read on this connection
                         must see at least the acked write's stamp *)
                      match r.Protocol.version with
                      | None ->
                          record "seed %d: acked write without #version" seed
                      | Some vw -> (
                          let r2 = Service.request t c "log" in
                          match (r2.Protocol.status, r2.Protocol.version) with
                          | Protocol.Ok, Some vr when vr < vw ->
                              record
                                "seed %d client %d: read-your-writes violated \
                                 (read %d after write %d)"
                                seed i vr vw
                          | _ -> ()))
                  | Protocol.Err m when Str_contains.contains m "rejected" ->
                      (* the engine refused it — e.g. a crashed-but-written
                         earlier attempt replayed into the reopened session.
                         Applied or not, it was never acknowledged. *)
                      ()
                  | _ ->
                      Thread.delay 0.001;
                      attempt (k - 1)
                end
              in
              attempt 4
            done;
            Service.disconnect t c)
          ())
  in
  List.iter Thread.join threads;
  Atomic.set writers_done true;
  List.iter Thread.join readers;
  (match Atomic.get first_error with
  | Some m -> Alcotest.fail m
  | None -> ());
  ignore (Service.shutdown t);
  (* power loss, then recovery with the fault injector unplugged *)
  Io.mem_crash ~flush:seed m;
  let store = Store.open_dir ~io:plain "/repo/variants/v" in
  let report = Store.fsck ~salvage:true store in
  (match report.Store.fsck_session with
  | Some _ -> ()
  | None -> Alcotest.failf "seed %d: repository unrecoverable" seed);
  (match (Store.fsck store).Store.fsck_issues with
  | [] -> ()
  | issues ->
      Alcotest.failf "seed %d: not clean after salvage: %s" seed
        (String.concat "; " issues));
  let steps = recovered_steps plain in
  let position name =
    let rec go k = function
      | [] -> None
      | s :: rest ->
          if Str_contains.contains s (name ^ ")") then Some k else go (k + 1) rest
    in
    go 0 steps
  in
  Array.iteri
    (fun i names ->
      ignore
        (List.fold_left
           (fun last name ->
             match position name with
             | None ->
                 Alcotest.failf "seed %d: acked op %s lost after recovery" seed
                   name
             | Some p ->
                 if p > last then
                   Alcotest.failf "seed %d: client %d acked ops out of order"
                     seed i;
                 p)
           max_int (* acked lists are newest-first *)
           names))
    acked

let chaos_soak_schedules = 200

let chaos_property () =
  with_watchdog ~secs:300.0 ~name:"chaos schedules" (fun () ->
      for seed = 0 to chaos_soak_schedules - 1 do
        chaos_schedule seed
      done)

(* The @soak alias: keep running fresh schedules for SWSD_SOAK_SECS wall
   seconds (tier-1 skips this; the suite is only registered when set). *)
let soak () =
  let secs =
    match float_of_string_opt (Sys.getenv "SWSD_SOAK_SECS") with
    | Some s -> s
    | None -> 30.0
  in
  with_watchdog ~secs:(secs +. 120.0) ~name:"chaos soak" (fun () ->
      let t0 = Unix.gettimeofday () in
      let n = ref 0 in
      while Unix.gettimeofday () -. t0 < secs do
        chaos_schedule (1000 + !n);
        incr n
      done;
      Printf.printf "soak: %d chaos schedule(s) in %.1fs, all clean\n%!" !n
        (Unix.gettimeofday () -. t0);
      if !n < chaos_soak_schedules then
        Alcotest.failf "soak ran only %d schedule(s) in %.0fs" !n secs)

(* --- the real socket server ------------------------------------------------ *)

let tmp_dir () =
  let f = Filename.temp_file "swsd_server" "" in
  Sys.remove f;
  f

let rec rm_rf p =
  if (try Sys.is_directory p with Sys_error _ -> false) then begin
    Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
    Sys.rmdir p
  end
  else if Sys.file_exists p then Sys.remove p

let socket_end_to_end () =
  with_watchdog ~secs:60.0 ~name:"socket end-to-end" (fun () ->
      let dir = tmp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (match Repo.init dir (tiny ()) with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e);
          let socket_path = Filename.concat dir "swsd.sock" in
          let server =
            match
              Server.create ~listen:(Server.Protocol.Unix_path socket_path) dir
            with
            | Result.Ok s -> s
            | Result.Error m -> Alcotest.fail m
          in
          let runner = Thread.create (fun () -> ignore (Server.run server)) () in
          let client =
            match Server.Client.connect socket_path with
            | Result.Ok c -> c
            | Result.Error m -> Alcotest.fail m
          in
          (match Server.Client.read_response client with
          | Some greeting ->
              Alcotest.(check bool) "greeting terminates with !ok" true
                (List.mem "!ok" greeting)
          | None -> Alcotest.fail "no greeting");
          let roundtrip line =
            match Server.Client.request client line with
            | Some lines -> lines
            | None -> Alcotest.failf "%s: server hung up" line
          in
          let expect_ok line =
            let lines = roundtrip line in
            if not (List.mem "!ok" lines) then
              Alcotest.failf "%s: %s" line (String.concat " | " lines)
          in
          expect_ok "@new night";
          expect_ok "focus ww:Person";
          expect_ok (apply_line "over_the_wire");
          Alcotest.(check bool) "journal durable behind the socket" true
            (Str_contains.contains
               (Io.unix.Io.read_file
                  (Filename.concat dir "variants/night/log.ops"))
               "over_the_wire");
          (* the branch/merge round trip over the same wire *)
          expect_ok "@close";
          expect_ok "@branch night day";
          expect_ok "@open day";
          expect_ok "focus ww:Person";
          expect_ok (apply_line "on_the_branch");
          expect_ok "@close";
          let merged = roundtrip "@merge day into night" in
          if not (List.mem "!ok" merged) then
            Alcotest.failf "@merge over the wire: %s"
              (String.concat " | " merged);
          Alcotest.(check bool) "merge report crosses the socket" true
            (List.exists
               (fun l ->
                 Str_contains.contains l "merge report: day into night")
               merged);
          Alcotest.(check bool) "merged op durable behind the socket" true
            (Str_contains.contains
               (Io.unix.Io.read_file
                  (Filename.concat dir "variants/night/log.ops"))
               "on_the_branch");
          expect_ok "@quit";
          Server.Client.close client;
          (* a second client arrives, then the server stops underneath it *)
          Server.stop server;
          Thread.join runner;
          Alcotest.(check bool) "socket file removed" false
            (Sys.file_exists socket_path)))

(* [swsd serve] as a child process: SIGTERM must drain gracefully (exit 0)
   and a concurrent [repl --save] on a served variant must fail fast. *)
let sigterm_drains () =
  with_watchdog ~secs:60.0 ~name:"sigterm drain" (fun () ->
      let dir = tmp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (match Repo.init dir (tiny ()) with
          | Result.Ok repo -> (
              match Repo.create_variant repo "v" with
              | Result.Ok _ -> ()
              | Result.Error e -> Alcotest.fail e)
          | Result.Error e -> Alcotest.fail e);
          let socket_path = Filename.concat dir "swsd.sock" in
          let pid =
            Unix.create_process "../bin/swsd.exe"
              [| "swsd"; "serve"; dir; "--socket"; socket_path |]
              Unix.stdin Unix.stdout Unix.stderr
          in
          (* poll for socket readiness against a wall-clock deadline (not a
             fixed try count x fixed sleep): a slow CI box gets the whole
             window, a fast one connects on the first probe, and a child
             that dies during startup fails the test immediately instead of
             burning the rest of the budget on connection refusals *)
          let deadline = Unix.gettimeofday () +. 30.0 in
          let rec connect () =
            match Server.Client.connect socket_path with
            | Result.Ok c -> c
            | Result.Error m ->
                (match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> ()
                | _, status ->
                    Alcotest.failf "server died during startup (%s)"
                      (match status with
                      | Unix.WEXITED n -> Printf.sprintf "exited %d" n
                      | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
                      | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n));
                if Unix.gettimeofday () > deadline then
                  Alcotest.failf "server socket never came up: %s" m
                else begin
                  Thread.delay 0.02;
                  connect ()
                end
          in
          let client = connect () in
          ignore (Server.Client.read_response client);
          (match Server.Client.request client "@open v" with
          | Some lines -> Alcotest.(check bool) "opened" true (List.mem "!ok" lines)
          | None -> Alcotest.fail "open failed");
          (* the served variant is lockf-locked against other processes *)
          let rc =
            Sys.command
              (Printf.sprintf
                 "../bin/swsd.exe repl university --save %s </dev/null \
                  >/dev/null 2>&1"
                 (Filename.quote (Filename.concat dir "variants/v")))
          in
          Alcotest.(check int) "repl --save fails fast on a served variant" 2 rc;
          Server.Client.close client;
          Unix.kill pid Sys.sigterm;
          let _, status = Io.retry_eintr (fun () -> Unix.waitpid [] pid) in
          (match status with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED n -> Alcotest.failf "server exited %d" n
          | Unix.WSIGNALED n -> Alcotest.failf "server killed by signal %d" n
          | Unix.WSTOPPED _ -> Alcotest.fail "server stopped");
          Alcotest.(check bool) "socket removed on drain" false
            (Sys.file_exists socket_path)))

(* --- socket lifecycle (satellites) ----------------------------------------- *)

(* The stale-socket bug: a kill -9'd server leaves its bound socket file
   behind, and [Server.create] used to die on EADDRINUSE at the next
   start.  The fix probes the path: a dead socket is unlinked and
   reclaimed; a live listener or a non-socket file is still refused. *)
let stale_socket_reclaimed () =
  with_watchdog ~secs:60.0 ~name:"stale socket reclamation" (fun () ->
      let dir = tmp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (match Repo.init dir (tiny ()) with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e);
          let path = Filename.concat dir "swsd.sock" in
          (* the kill -9 shape, in-process: bind, listen, die without
             unlinking *)
          let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.bind dead (Unix.ADDR_UNIX path);
          Unix.listen dead 1;
          Unix.close dead;
          Alcotest.(check bool) "stale socket file left behind" true
            (Sys.file_exists path);
          let server =
            match Server.create ~listen:(Protocol.Unix_path path) dir with
            | Result.Ok s -> s
            | Result.Error m -> Alcotest.failf "stale socket not reclaimed: %s" m
          in
          let runner = Thread.create (fun () -> ignore (Server.run server)) () in
          let client =
            match Server.Client.connect ~retry_for:10.0 path with
            | Result.Ok c -> c
            | Result.Error m -> Alcotest.fail m
          in
          ignore (Server.Client.read_response client);
          (match Server.Client.request client "@ping" with
          | Some lines ->
              Alcotest.(check bool) "reclaimed server answers" true
                (List.mem "!ok" lines)
          | None -> Alcotest.fail "reclaimed server hung up");
          (* a LIVE listener is never stolen... *)
          (match Server.Transport.bind (Protocol.Unix_path path) with
          | Result.Ok fd ->
              Unix.close fd;
              Alcotest.fail "bind stole a live listener's socket"
          | Result.Error m ->
              Alcotest.(check bool) "refusal names the live listener" true
                (Str_contains.contains m "already listening"));
          (* ...and a regular file at the path is never unlinked *)
          let decoy = Filename.concat dir "not_a_socket" in
          Io.unix.Io.write decoy "precious";
          (match Server.Transport.bind (Protocol.Unix_path decoy) with
          | Result.Ok fd ->
              Unix.close fd;
              Alcotest.fail "bind replaced a regular file"
          | Result.Error m ->
              Alcotest.(check bool) "refusal names the non-socket" true
                (Str_contains.contains m "not a socket"));
          Alcotest.(check string) "the file survived the refusal" "precious"
            (Io.unix.Io.read_file decoy);
          Server.Client.close client;
          Server.stop server;
          Thread.join runner))

(* The same regression end to end: kill -9 a [swsd serve] process, then
   restart it on the very socket path the corpse left behind. *)
let kill9_restart_same_socket () =
  with_watchdog ~secs:60.0 ~name:"kill -9 then restart on the same socket"
    (fun () ->
      let dir = tmp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (match Repo.init dir (tiny ()) with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e);
          let path = Filename.concat dir "swsd.sock" in
          let spawn () =
            Unix.create_process "../bin/swsd.exe"
              [| "swsd"; "serve"; dir; "--socket"; path |]
              Unix.stdin Unix.stdout Unix.stderr
          in
          let ping () =
            match Server.Client.connect ~retry_for:30.0 path with
            | Result.Error m -> Alcotest.failf "server never came up: %s" m
            | Result.Ok c ->
                ignore (Server.Client.read_response c);
                (match Server.Client.request c "@ping" with
                | Some lines ->
                    Alcotest.(check bool) "pong" true (List.mem "!ok" lines)
                | None -> Alcotest.fail "server hung up on @ping");
                Server.Client.close c
          in
          let pid = spawn () in
          ping ();
          Unix.kill pid Sys.sigkill;
          ignore (Io.retry_eintr (fun () -> Unix.waitpid [] pid));
          Alcotest.(check bool) "kill -9 leaves the socket file behind" true
            (Sys.file_exists path);
          (* the regression: this restart used to fail on EADDRINUSE *)
          let pid = spawn () in
          ping ();
          Unix.kill pid Sys.sigterm;
          let _, status = Io.retry_eintr (fun () -> Unix.waitpid [] pid) in
          match status with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED n -> Alcotest.failf "restarted server exited %d" n
          | Unix.WSIGNALED n ->
              Alcotest.failf "restarted server killed by signal %d" n
          | Unix.WSTOPPED _ -> Alcotest.fail "restarted server stopped"))

(* [Client.connect ~retry_for] rides out the startup race (ECONNREFUSED /
   ENOENT while the server is still binding) but still fails honestly
   against a server that never arrives. *)
let connect_retry_deadline () =
  with_watchdog ~secs:60.0 ~name:"bounded connect retry" (fun () ->
      let dir = tmp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (match Repo.init dir (tiny ()) with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e);
          let path = Filename.concat dir "swsd.sock" in
          (* nothing will ever listen here: the retry gives up at its
             deadline, not immediately and not never *)
          let t0 = Unix.gettimeofday () in
          (match Server.Client.connect ~retry_for:0.3 path with
          | Result.Ok _ -> Alcotest.fail "connected to nothing"
          | Result.Error _ -> ());
          let waited = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "gave up near the deadline (%.2fs)" waited)
            true
            (waited >= 0.25 && waited < 10.0);
          (* a server that binds late: the retrying client wins the race a
             single-shot connect used to flake on *)
          let slot = Atomic.make None in
          let late =
            Thread.create
              (fun () ->
                Thread.delay 0.3;
                match Server.create ~listen:(Protocol.Unix_path path) dir with
                | Result.Error m -> Printf.eprintf "late server: %s\n%!" m
                | Result.Ok s ->
                    Atomic.set slot (Some s);
                    ignore (Server.run s))
              ()
          in
          (match Server.Client.connect ~retry_for:10.0 path with
          | Result.Error m -> Alcotest.failf "retrying connect lost: %s" m
          | Result.Ok c ->
              (match Server.Client.read_response c with
              | Some greeting ->
                  Alcotest.(check bool) "greeted" true (List.mem "!ok" greeting)
              | None -> Alcotest.fail "no greeting");
              Server.Client.close c);
          let rec stop_late () =
            match Atomic.get slot with
            | Some s -> Server.stop s
            | None ->
                Thread.delay 0.02;
                stop_late ()
          in
          stop_late ();
          Thread.join late))

(* A client that pipelines requests and vanishes without reading: the
   server hits EPIPE mid-response, which must be that connection's clean
   teardown — the process survives, the session detaches, and the next
   client gets full service. *)
let hangup_mid_response () =
  with_watchdog ~secs:60.0 ~name:"client hangup mid-response" (fun () ->
      let dir = tmp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          (match Repo.init dir (tiny ()) with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e);
          let path = Filename.concat dir "swsd.sock" in
          let server =
            match Server.create ~listen:(Protocol.Unix_path path) dir with
            | Result.Ok s -> s
            | Result.Error m -> Alcotest.fail m
          in
          let runner = Thread.create (fun () -> ignore (Server.run server)) () in
          (* rude clients: stuff the pipe with requests whose responses
             are large, never read a byte, slam the connection *)
          for _ = 1 to 5 do
            match Server.Transport.connect ~retry_for:10.0 (Protocol.Unix_path path) with
            | Result.Error m -> Alcotest.fail m
            | Result.Ok fd ->
                let burst =
                  "@open rude\n"
                  ^ String.concat ""
                      (List.init 50 (fun _ -> "@stats json\n@list\n"))
                in
                Server.Transport.write_all fd burst;
                Unix.close fd
          done;
          (* the server is intact and polite to the next client *)
          let client =
            match Server.Client.connect ~retry_for:10.0 path with
            | Result.Ok c -> c
            | Result.Error m ->
                Alcotest.failf "server died with its rude clients: %s" m
          in
          ignore (Server.Client.read_response client);
          let expect_ok line =
            match Server.Client.request client line with
            | Some lines ->
                if not (List.mem "!ok" lines) then
                  Alcotest.failf "%s: %s" line (String.concat " | " lines)
            | None -> Alcotest.failf "%s: server hung up" line
          in
          expect_ok "@new survivor";
          expect_ok "focus ww:Person";
          expect_ok (apply_line "after_the_rudeness");
          expect_ok "@quit";
          Server.Client.close client;
          (* every rude connection tore down cleanly: no session leaks *)
          let deadline = Unix.gettimeofday () +. 10.0 in
          while
            Service.session_count (Server.service server) > 0
            && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.02
          done;
          Alcotest.(check int) "sessions drained back to zero" 0
            (Service.session_count (Server.service server));
          Server.stop server;
          Thread.join runner))

(* --- deterministic listings (satellite) ------------------------------------ *)

let variant_names_sorted () =
  let m = Io.mem_create () in
  let io = Io.mem_io m in
  (match Repo.init ~io "/repo" (tiny ()) with
  | Result.Ok repo ->
      List.iter
        (fun n ->
          match Repo.create_variant repo n with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.fail e)
        [ "zeta"; "alpha"; "mid" ]
  | Result.Error e -> Alcotest.fail e);
  (* a filesystem enumerating in any order must not leak through *)
  let scrambled = { io with Io.readdir = (fun p -> List.rev (io.Io.readdir p)) } in
  match Repo.open_dir ~io:scrambled "/repo" with
  | Result.Error e -> Alcotest.fail e
  | Result.Ok repo ->
      Alcotest.(check (list string)) "sorted regardless of readdir order"
        [ "alpha"; "mid"; "zeta" ]
        (Repo.variant_names repo)

(* --- snapshot concurrency: the lock-free read path ------------------------- *)

let readonly_connection () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let ro = Service.connect t and rw = Service.connect t in
  let r = Service.request t ro "@open v readonly" in
  (match r.Protocol.status with
  | Protocol.Ok -> ()
  | _ -> Alcotest.failf "readonly open failed: %s" (Protocol.to_string r));
  Alcotest.(check bool) "attach announces readonly" true
    (List.exists (fun l -> Str_contains.contains l "readonly") r.Protocol.body);
  (* reads flow, and so does focus (write-class but not mutating) *)
  ignore (req_ok t ro "summary");
  ignore (req_ok t ro "check");
  ignore (req_ok t ro "focus ww:Person");
  (* mutations get !readonly — a distinct status, not a generic !err *)
  let refused line =
    let r = Service.request t ro line in
    match r.Protocol.status with
    | Protocol.Readonly m ->
        Alcotest.(check bool) "refusal says how to get write access" true
          (Str_contains.contains m "reopen")
    | _ -> Alcotest.failf "%s not refused: %s" line (Protocol.to_string r)
  in
  refused (apply_line "nickname");
  refused "undo";
  refused "alias nick nickname";
  (* the refusal is connection-scoped: the variant stays writable *)
  ignore (req_ok t rw "@open v");
  ignore (req_ok t rw "focus ww:Person");
  ignore (req_ok t rw (apply_line "nickname"));
  (* ...and the readonly reader sees the committed write *)
  Alcotest.(check bool) "reader sees the committed write" true
    (List.exists
       (fun l -> Str_contains.contains l "nickname)")
       (req_ok t ro "log"));
  let sn = Obs.snapshot (Service.obs t) in
  (match List.assoc_opt "swsd.readonly.rejected_total" sn.Obs.sn_counters with
  | Some n when n >= 3 -> ()
  | v ->
      Alcotest.failf "readonly rejections miscounted: %s"
        (match v with Some n -> string_of_int n | None -> "absent"));
  (* reopening without readonly restores write access *)
  ignore (req_ok t ro "@close");
  ignore (req_ok t ro "@open v");
  ignore (req_ok t ro "focus ww:Course");
  ignore (req_ok t ro (apply_line "credits_note"));
  ignore (Service.shutdown t)

let version_stamps () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  let version line =
    let r = Service.request t c line in
    match (r.Protocol.status, r.Protocol.version) with
    | Protocol.Ok, Some v -> v
    | Protocol.Ok, None -> Alcotest.failf "%s: !ok without #version" line
    | _ -> Alcotest.failf "%s failed: %s" line (Protocol.to_string r)
  in
  let v0 = version "@open v" in
  Alcotest.(check bool) "first publication stamps from 1" true (v0 >= 1);
  Alcotest.(check int) "a read does not advance the stamp" v0 (version "summary");
  let v1 = version "focus ww:Person" in
  Alcotest.(check bool) "a state change advances the stamp" true (v1 > v0);
  let v2 = version (apply_line "nickname") in
  Alcotest.(check bool) "a write advances the stamp" true (v2 > v1);
  Alcotest.(check bool) "read-your-writes" true (version "log" >= v2);
  let v3 = version "undo" in
  Alcotest.(check bool) "undo publishes a new state" true (v3 > v2);
  (* a rejected op responds with the stamp left where it was *)
  let r = Service.request t c "apply add_attribute(NoSuch, string, 8, x)" in
  (match (r.Protocol.status, r.Protocol.version) with
  | Protocol.Err _, Some v ->
      Alcotest.(check int) "rejected op keeps the stamp" v3 v
  | _ -> Alcotest.failf "bad apply should be !err with #version");
  (* the stamp survives eviction: @close frees the session (and retracts
     the snapshot); reopening reloads and republishes strictly above *)
  ignore (req_ok t c "@close");
  Alcotest.(check int) "session freed" 0 (Service.session_count t);
  let v4 = version "@open v" in
  Alcotest.(check bool) "stamps stay monotone across eviction" true (v4 > v3);
  ignore (Service.shutdown t)

let read_path_counters () =
  let run lockfree =
    let _, io = mem_repo () in
    let t = service ~config:(quick_config ~lockfree_reads:lockfree ()) io in
    let c = Service.connect t in
    ignore (req_ok t c "@open v");
    ignore (req_ok t c "summary");
    ignore (req_ok t c "check");
    ignore (req_ok t c "focus ww:Person");
    ignore (req_ok t c (apply_line "nickname"));
    let sn = Obs.snapshot (Service.obs t) in
    ignore (Service.shutdown t);
    let n name =
      match List.assoc_opt name sn.Obs.sn_counters with Some v -> v | None -> 0
    in
    let histos name =
      match List.assoc_opt name sn.Obs.sn_histos with
      | Some h -> h.Obs.Histo.s_count
      | None -> 0
    in
    ( n "swsd.read.lockfree_total",
      n "swsd.read.fallback_total",
      n "swsd.write_total",
      histos "swsd.read_seconds",
      histos "swsd.write_seconds" )
  in
  let lf, fb, w, hr, hw = run true in
  Alcotest.(check int) "lock-free serves both reads" 2 lf;
  Alcotest.(check int) "no fallbacks with a live snapshot" 0 fb;
  Alcotest.(check int) "focus and apply are writes" 2 w;
  Alcotest.(check int) "read latencies recorded" 2 hr;
  Alcotest.(check int) "write latencies recorded" 2 hw;
  let lf, fb, w, hr, hw = run false in
  Alcotest.(check int) "toggled off: nothing lock-free" 0 lf;
  Alcotest.(check int) "toggled off: reads fall back to the lock" 2 fb;
  Alcotest.(check int) "toggled off: writes unchanged" 2 w;
  Alcotest.(check int) "toggled off: reads still timed as reads" 2 hr;
  Alcotest.(check int) "toggled off: write timings unchanged" 2 hw

(* Snapshot isolation without chaos: three readonly readers hammer the
   snapshot while one writer storms; every read must be a consistent
   schema with a never-backwards stamp, and none may fail or shed. *)
let snapshot_isolation_storm () =
  with_watchdog ~secs:60.0 ~name:"snapshot isolation storm" (fun () ->
      let _, io = mem_repo () in
      let t = service ~config:(quick_config ~deadline:10.0 ()) io in
      let first_error = Atomic.make None in
      let record fmt =
        Printf.ksprintf
          (fun m -> ignore (Atomic.compare_and_set first_error None (Some m)))
          fmt
      in
      let storm_done = Atomic.make false in
      let reads = Atomic.make 0 in
      (* the readers spin; more of them than spare cores just preempts the
         writer (and on a 1-2 core CI box, stalls the whole storm) without
         adding any concurrency the test cares about *)
      let nreaders =
        max 1 (min 3 (Domain.recommended_domain_count () - 1))
      in
      let readers =
        List.init nreaders (fun ri ->
            Thread.create
              (fun () ->
                let c = Service.connect t in
                ignore (Service.request t c "@open v readonly");
                let last = ref 0 in
                let flip = ref false in
                while not (Atomic.get storm_done) do
                  flip := not !flip;
                  let line = if !flip then "check" else "summary" in
                  let r = Service.request t c line in
                  (match r.Protocol.status with
                  | Protocol.Ok ->
                      Atomic.incr reads;
                      (match r.Protocol.version with
                      | Some v when v >= !last -> last := v
                      | Some v ->
                          record "reader %d: version backwards (%d after %d)"
                            ri v !last
                      | None -> record "reader %d: read without #version" ri);
                      if line = "check" then
                        List.iter
                          (fun b ->
                            if Str_contains.contains b "error [" then
                              record "reader %d: torn read: %s" ri b)
                          r.Protocol.body
                  | _ ->
                      record "reader %d: read failed under storm: %s" ri
                        (Protocol.to_string r));
                  Thread.yield ()
                done;
                Service.disconnect t c)
              ())
      in
      let c = Service.connect t in
      ignore (req_ok t c "@open v");
      ignore (req_ok t c "focus ww:Person");
      (* the mem fs never blocks, so on one core the storm could finish
         before any reader thread is scheduled: wait for every reader to
         be reading, and yield between writes to keep them interleaved *)
      while Atomic.get reads < nreaders do
        Thread.yield ()
      done;
      for k = 1 to 30 do
        ignore (req_ok t c (apply_line (Printf.sprintf "storm_%d" k)));
        if k mod 5 = 0 then ignore (req_ok t c "undo");
        Thread.yield ()
      done;
      Atomic.set storm_done true;
      List.iter Thread.join readers;
      (match Atomic.get first_error with
      | Some m -> Alcotest.fail m
      | None -> ());
      Alcotest.(check bool) "readers actually overlapped the storm" true
        (Atomic.get reads > 0);
      ignore (Service.shutdown t))

(* --- branch and merge: optimistic concurrent design ------------------------ *)

let body_contains body needle =
  List.exists (fun l -> Str_contains.contains l needle) body

(* "branched w from v@N" -> N *)
let fork_of_branch_body body =
  match
    List.find_map
      (fun l ->
        match String.rindex_opt l '@' with
        | Some i when Str_contains.contains l "branched" ->
            int_of_string_opt
              (String.sub l (i + 1) (String.length l - i - 1))
        | _ -> None)
      body
  with
  | Some n -> n
  | None ->
      Alcotest.failf "branch response carries no fork stamp: %s"
        (String.concat " | " body)

(* The lineage listing (satellite): one deterministic line per variant —
   name, parent@stamp or root, era — sorted, pinned to the byte. *)
let branch_lineage_listing () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "pre_fork"));
  ignore (req_ok t c "@close");
  let body = req_ok t c "@branch v w" in
  Alcotest.(check bool) "response announces parent and fork" true
    (body_contains body "branched w from v@");
  let fork = fork_of_branch_body body in
  Alcotest.(check int) "forked at the parent's tip" 2 fork;
  Alcotest.(check (list string)) "pinned lineage listing"
    [ "v root era 0"; "w v@2 era 0" ]
    (req_ok t c "@list");
  (* @at forks at a historical point; the stamp is the branch point *)
  let body = req_ok t c "@branch v x @at 0" in
  Alcotest.(check int) "@at 0 forks before the first op" 0
    (fork_of_branch_body body);
  Alcotest.(check (list string)) "listing stays sorted and deterministic"
    [ "v root era 0"; "w v@2 era 0"; "x v@0 era 0" ]
    (req_ok t c "@list");
  (* the historical child really lacks the parent's later op *)
  ignore (req_ok t c "@open x readonly");
  Alcotest.(check bool) "x predates pre_fork" false
    (body_contains (req_ok t c "log") "pre_fork");
  (* refusals: unknown parent, duplicate child *)
  Alcotest.(check bool) "unknown parent refused" true
    (Str_contains.contains (req_err t c "@branch ghost y") "ghost");
  Alcotest.(check bool) "existing child refused" true
    (Str_contains.contains (req_err t c "@branch v w") "exists");
  ignore (Service.shutdown t)

(* A branched child's published stamp never falls below its fork stamp:
   a reader attaching to the fresh copy sees [#version >= fork], not a
   from-1 restart (satellite). *)
let branch_child_version_floor () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "one"));
  ignore (req_ok t c (apply_line "two"));
  ignore (req_ok t c (apply_line "three"));
  ignore (req_ok t c "@close");
  let r = Service.request t c "@branch v w" in
  let fork =
    match r.Protocol.status with
    | Protocol.Ok -> fork_of_branch_body r.Protocol.body
    | _ -> Alcotest.failf "branch failed: %s" (Protocol.to_string r)
  in
  Alcotest.(check bool) "fork stamp covers the parent's ops" true (fork >= 3);
  (match r.Protocol.version with
  | Some v when v >= fork -> ()
  | v ->
      Alcotest.failf "branch published w at %s, below fork %d"
        (match v with Some v -> string_of_int v | None -> "none")
        fork);
  (* a fresh readonly reader reports at least the fork stamp too *)
  let ro = Service.connect t in
  let r = Service.request t ro "@open w readonly" in
  (match (r.Protocol.status, r.Protocol.version) with
  | Protocol.Ok, Some v when v >= fork -> ()
  | Protocol.Ok, v ->
      Alcotest.failf "reader attached at %s, below fork %d"
        (match v with Some v -> string_of_int v | None -> "none")
        fork
  | _ -> Alcotest.failf "readonly attach failed: %s" (Protocol.to_string r));
  ignore (Service.shutdown t)

(* The full optimistic-concurrency round trip: fork, design independently
   on both sides, dry-run, merge.  The clean branch op lands on the
   destination; the branch itself is never written. *)
let merge_round_trip () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "pre_fork"));
  ignore (req_ok t c "@close");
  ignore (req_ok t c "@branch v w");
  ignore (req_ok t c "@open w");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "on_branch"));
  ignore (req_ok t c "@close");
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "on_base"));
  ignore (req_ok t c "@close");
  (* dry run: the report comes back, nothing is written *)
  let dry = req_ok t c "@merge w into v --dry-run" in
  Alcotest.(check bool) "dry run labelled" true
    (body_contains dry "merge report: w into v (dry run)");
  Alcotest.(check bool) "dry run classifies the branch op clean" true
    (body_contains dry "1 clean");
  Alcotest.(check bool) "dry run writes nothing" false
    (Str_contains.contains (io.Io.read_file "/repo/variants/v/log.ops") "on_branch");
  (* the real merge: durable on the destination, branch untouched *)
  let body = req_ok t c "@merge w into v" in
  Alcotest.(check bool) "merge reports" true
    (body_contains body "merge report: w into v");
  Alcotest.(check bool) "merged op durable on the destination" true
    (Str_contains.contains (io.Io.read_file "/repo/variants/v/log.ops") "on_branch");
  Alcotest.(check bool) "the branch is never written by a merge" false
    (Str_contains.contains (io.Io.read_file "/repo/variants/w/log.ops") "on_base");
  (* a designer on v sees both lines of development *)
  ignore (req_ok t c "@open v");
  let log = req_ok t c "log" in
  Alcotest.(check bool) "merged history: base op" true
    (body_contains log "on_base");
  Alcotest.(check bool) "merged history: branch op" true
    (body_contains log "on_branch");
  (* merging a variant into itself is refused *)
  Alcotest.(check bool) "self-merge refused" true
    (Str_contains.contains (req_err t c "@merge v into v") "itself");
  (* the merge counters moved, and the trace shows a rebase phase *)
  let sn = Obs.snapshot (Service.obs t) in
  (match List.assoc_opt "swsd.merge.clean_total" sn.Obs.sn_counters with
  | Some n when n >= 2 -> () (* dry run + real merge *)
  | v ->
      Alcotest.failf "clean merges miscounted: %s"
        (match v with Some n -> string_of_int n | None -> "absent"));
  Alcotest.(check bool) "rebase phase traced" true
    (Str_contains.contains
       (String.concat "\n" (req_ok t c "@stats"))
       "rebase=");
  ignore (Service.shutdown t)

(* The paper's semantic conflict, end to end: the base deletes the type
   the branch decorated.  The merge still answers !ok — the conflict is
   *reported* in the impact report, never silently applied. *)
let merge_conflict_reported () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "pre_fork"));
  ignore (req_ok t c "@close");
  ignore (req_ok t c "@branch v w");
  ignore (req_ok t c "@open w");
  ignore (req_ok t c "focus ww:Person");
  ignore
    (req_ok t c "apply add_attribute(Course, string, 8, on_branch)");
  ignore (req_ok t c (apply_line "also_clean"));
  ignore (req_ok t c "@close");
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c "apply delete_type_definition(Course)");
  ignore (req_ok t c "@close");
  let r = Service.request t c "@merge w into v" in
  (match r.Protocol.status with
  | Protocol.Ok -> ()
  | _ ->
      Alcotest.failf "a conflicted merge still reports with !ok: %s"
        (Protocol.to_string r));
  let body = r.Protocol.body in
  Alcotest.(check bool) "impact report flags the conflict" true
    (body_contains body "CONFLICT");
  Alcotest.(check bool) "tallies one clean, one conflict" true
    (body_contains body "1 clean" && body_contains body "1 conflict(s)");
  (* the conflicted op never reached the destination; the clean one did *)
  let journal = io.Io.read_file "/repo/variants/v/log.ops" in
  Alcotest.(check bool) "conflicted op not applied" false
    (Str_contains.contains journal "on_branch");
  Alcotest.(check bool) "clean op applied" true
    (Str_contains.contains journal "also_clean");
  let sn = Obs.snapshot (Service.obs t) in
  (match List.assoc_opt "swsd.merge.conflict_total" sn.Obs.sn_counters with
  | Some n when n >= 1 -> ()
  | v ->
      Alcotest.failf "conflicts miscounted: %s"
        (match v with Some n -> string_of_int n | None -> "absent"));
  ignore (Service.shutdown t)

(* Lineage on the read side: @query lineage answers from the variant's
   materialized view; branches-of is repository-scoped. *)
let lineage_queries () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "pre_fork"));
  ignore (req_ok t c "@close");
  ignore (req_ok t c "@branch v w");
  ignore (req_ok t c "@open v");
  Alcotest.(check (list string)) "a root variant has no parent" [ "root" ]
    (req_ok t c "@query lineage");
  Alcotest.(check (list string)) "branches of the root" [ "w fork 2" ]
    (req_ok t c "@query branches of v");
  ignore (req_ok t c "@close");
  ignore (req_ok t c "@open w");
  let lines = req_ok t c "@query lineage" in
  Alcotest.(check bool) "child names its parent and fork" true
    (body_contains lines "parent v@2");
  Alcotest.(check bool) "child points at the fork diff" true
    (body_contains lines "diff since fork: @query diff 2");
  Alcotest.(check (list string)) "the child has no branches yet" []
    (req_ok t c "@query branches of w");
  Alcotest.(check bool) "unknown variant refused" true
    (Str_contains.contains (req_err t c "@query branches of ghost") "ghost");
  ignore (Service.shutdown t)

(* --- chaos: crash in the middle of a merge --------------------------------- *)

let merge_recovered_steps io variant =
  match
    Store.load_session (Store.open_dir ~io ("/repo/variants/" ^ variant))
  with
  | Result.Ok s ->
      List.map
        (fun (st : Core.Session.step) ->
          Core.Op_printer.to_string st.Core.Session.st_op)
        (Core.Session.log s)
  | Result.Error e -> Alcotest.fail (Store.load_error_to_string e)

(* One schedule: build divergent histories cleanly, then attempt the
   merge over a filesystem that crashes at a seed-chosen syscall while a
   seed-chosen subset of merge requests is killed mid-flight by the
   chaos hook; group-commit flush policy varies by seed so the crash
   lands in every phase of the write pipeline.  Then power loss, and the
   audit: both variants must fsck back to a session (salvageable — exit
   0/1, never 2), every acked op must survive — including the merged
   branch ops iff the merge was acknowledged — and the child's lineage
   record must still name its parent. *)
let merge_chaos_schedule seed =
  let m = Io.mem_create () in
  let plain = Io.locked (Io.mem_io m) in
  (match Repo.init ~io:plain "/repo" (tiny ()) with
  | Result.Ok repo -> (
      match Repo.create_variant repo "v" with
      | Result.Ok _ -> ()
      | Result.Error e -> Alcotest.fail e)
  | Result.Error e -> Alcotest.fail e);
  (* divergent histories, no faults: these acks are durable ground truth *)
  let setup = service ~config:(quick_config ()) plain in
  let c = Service.connect setup in
  ignore (req_ok setup c "@open v");
  ignore (req_ok setup c "focus ww:Person");
  ignore (req_ok setup c (apply_line "pre_fork"));
  ignore (req_ok setup c "@close");
  ignore (req_ok setup c "@branch v w");
  ignore (req_ok setup c "@open w");
  ignore (req_ok setup c "focus ww:Person");
  ignore (req_ok setup c (apply_line "w_one"));
  ignore (req_ok setup c (apply_line "w_two"));
  ignore (req_ok setup c "@close");
  ignore (req_ok setup c "@open v");
  ignore (req_ok setup c "focus ww:Person");
  ignore (req_ok setup c (apply_line "v_ahead"));
  ignore (req_ok setup c "@close");
  ignore (Service.shutdown setup);
  (* now the faults: crash syscall + mid-request kills, varied by seed *)
  let faulted, _ = Io.faulty ~crash_at:(3 + (seed * 13 mod 90)) (Io.mem_io m) in
  let io = Io.locked faulted in
  let hook ~variant:_ ~line =
    if
      Str_contains.contains line "@merge"
      && Hashtbl.hash (seed, line) mod 3 = 0
    then failwith "chaos: merge killed mid-request"
  in
  let config =
    quick_config ~deadline:10.0 ~threshold:max_int ~chaos_hook:hook
      ~flush_max_batch:(1 + (seed mod 4))
      ~flush_linger:(float_of_int (seed mod 3) /. 1000.0)
      ~flush_on_idle:(seed mod 2 = 0) ()
  in
  let t = service ~config io in
  let c = Service.connect t in
  let merge_acked = ref false in
  let dry = seed mod 5 = 0 in
  let line =
    if dry then "@merge w into v --dry-run" else "@merge w into v"
  in
  (let rec attempt k =
     if k > 0 && not !merge_acked then begin
       (match (Service.request t c line).Protocol.status with
       | Protocol.Ok -> merge_acked := true
       | _ -> Thread.delay 0.001);
       attempt (k - 1)
     end
   in
   attempt 3);
  ignore (Service.shutdown t);
  (* power loss; audit with the fault injector unplugged *)
  Io.mem_crash ~flush:seed m;
  List.iter
    (fun variant ->
      let store = Store.open_dir ~io:plain ("/repo/variants/" ^ variant) in
      let report = Store.fsck ~salvage:true store in
      (match report.Store.fsck_session with
      | Some _ -> ()
      | None ->
          Alcotest.failf "seed %d: %s unrecoverable after merge crash" seed
            variant);
      match (Store.fsck store).Store.fsck_issues with
      | [] -> ()
      | issues ->
          Alcotest.failf "seed %d: %s not clean after salvage: %s" seed variant
            (String.concat "; " issues))
    [ "v"; "w" ];
  let has variant needle =
    List.exists
      (fun s -> Str_contains.contains s needle)
      (merge_recovered_steps plain variant)
  in
  List.iter
    (fun op ->
      if not (has "v" op) then
        Alcotest.failf "seed %d: acked op %s lost from v" seed op)
    [ "pre_fork"; "v_ahead" ];
  List.iter
    (fun op ->
      if not (has "w" op) then
        Alcotest.failf "seed %d: acked op %s lost from w" seed op)
    [ "pre_fork"; "w_one"; "w_two" ];
  if !merge_acked && not dry then
    List.iter
      (fun op ->
        if not (has "v" op) then
          Alcotest.failf "seed %d: acked merge lost %s" seed op)
      [ "w_one"; "w_two" ];
  if !merge_acked && dry then
    List.iter
      (fun op ->
        if has "v" op then
          Alcotest.failf "seed %d: dry-run merge wrote %s" seed op)
      [ "w_one"; "w_two" ];
  match Repo.open_dir ~io:plain "/repo" with
  | Result.Error e -> Alcotest.fail e
  | Result.Ok repo -> (
      match Repo.variant_lineage repo "w" with
      | Some ("v", _) -> ()
      | Some _ | None ->
          Alcotest.failf "seed %d: lineage lost in the crash" seed)

(* 200 schedules by default; the nightly [@merge-chaos] alias scales to
   1000 via SWSD_MERGE_CHAOS_SCHEDULES. *)
let merge_chaos_schedules =
  match Sys.getenv_opt "SWSD_MERGE_CHAOS_SCHEDULES" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 200)
  | None -> 200

let merge_chaos_property () =
  with_watchdog
    ~secs:(300.0 +. (float_of_int merge_chaos_schedules /. 2.0))
    ~name:"merge chaos schedules" (fun () ->
      for seed = 0 to merge_chaos_schedules - 1 do
        merge_chaos_schedule seed
      done)

(* --- @stats (observability end to end) ------------------------------------- *)

let stats_snapshot () =
  let _, io = mem_repo () in
  let obs = Obs.create () in
  let t = service ~config:(quick_config ()) ~obs io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "nickname"));
  ignore (req_ok t c "check");
  ignore (req_err t c "no such command anywhere");
  let body = String.concat "\n" (req_ok t c "@stats") in
  let has n = Str_contains.contains body n in
  (* request counters are live and non-zero *)
  Alcotest.(check bool) "counts requests" true (has "swsd.requests_total");
  Alcotest.(check bool) "counts ok responses" true (has "swsd.responses.ok_total");
  (* the mutation went through the journal, lock, and engine instruments *)
  Alcotest.(check bool) "journal append histogram" true
    (has "swsd.journal.append_seconds");
  Alcotest.(check bool) "io fsync histogram" true (has "swsd.io.fsync_seconds");
  Alcotest.(check bool) "lock wait histogram" true (has "swsd.lock.wait_seconds");
  Alcotest.(check bool) "engine apply histogram" true
    (has "swsd.engine.apply_seconds");
  Alcotest.(check bool) "breaker note" true (has "breaker.v");
  Alcotest.(check bool) "session note" true (has "session.v");
  Alcotest.(check bool) "recent traces" true (has "recent traces");
  (* the same figures through the registry API: nothing is zero that the
     transcript above must have moved *)
  let sn = Obs.snapshot obs in
  let counter n =
    match List.assoc_opt n sn.Obs.sn_counters with Some v -> v | None -> 0
  in
  let histo_count n =
    match List.assoc_opt n sn.Obs.sn_histos with
    | Some h -> h.Obs.Histo.s_count
    | None -> 0
  in
  Alcotest.(check bool) "requests > 0" true (counter "swsd.requests_total" > 0);
  Alcotest.(check bool) "ok > 0" true (counter "swsd.responses.ok_total" > 0);
  Alcotest.(check bool) "err > 0" true (counter "swsd.responses.err_total" > 0);
  Alcotest.(check bool) "ops > 0" true (counter "swsd.engine.ops_total" > 0);
  Alcotest.(check bool) "fsyncs recorded" true
    (histo_count "swsd.io.fsync_seconds" > 0);
  Alcotest.(check bool) "journal appends recorded" true
    (histo_count "swsd.journal.append_seconds" > 0);
  Alcotest.(check bool) "lock waits recorded" true
    (histo_count "swsd.lock.wait_seconds" > 0);
  Alcotest.(check bool) "requests timed" true
    (histo_count "swsd.request_seconds" > 0);
  Alcotest.(check bool) "consistency checks timed" true
    (histo_count "swsd.engine.check_seconds" > 0);
  (* the read/write split: "check" above was served lock-free, the focus
     and apply went through the writer lock *)
  Alcotest.(check bool) "lock-free reads counted" true
    (counter "swsd.read.lockfree_total" > 0);
  Alcotest.(check bool) "writes counted" true (counter "swsd.write_total" > 0);
  Alcotest.(check bool) "read latencies recorded" true
    (histo_count "swsd.read_seconds" > 0);
  Alcotest.(check bool) "write latencies recorded" true
    (histo_count "swsd.write_seconds" > 0);
  (* JSON rendering round-trips through the wire protocol in one body *)
  let json = String.concat "\n" (req_ok t c "@stats json") in
  Alcotest.(check bool) "json has counters" true
    (Str_contains.contains json "\"swsd.requests_total\"");
  Alcotest.(check bool) "json has quantiles" true
    (Str_contains.contains json "\"p99\"");
  ignore (Service.shutdown t)

let stats_disabled () =
  let _, io = mem_repo () in
  let t = service ~config:(quick_config ()) ~obs:Obs.noop io in
  let c = Service.connect t in
  ignore (req_ok t c "@open v");
  ignore (req_ok t c "focus ww:Person");
  ignore (req_ok t c (apply_line "nickname"));
  Alcotest.(check bool) "@stats refused under --no-obs" true
    (Str_contains.contains (req_err t c "@stats") "disabled");
  ignore (Service.shutdown t)

let tests =
  [
    test "protocol: request parsing" parse_requests;
    test "protocol: response rendering" render_responses;
    test "retry: transient failures retried, then reported" retry_transient;
    test "retry: crashes fly through untouched" retry_non_transient;
    test "retry: jittered delays stay bounded" retry_delays_bounded;
    test "retry: the deadline clamps backoff and stops the loop"
      retry_deadline_clamped;
    test "breaker: trip, half-open probe, close" breaker_ladder;
    test "breaker: timestamped transition log" breaker_transition_log;
    test "stats: @stats reports live counters, latencies, and traces"
      stats_snapshot;
    test "stats: @stats refused when observability is disabled" stats_disabled;
    test "locks: queue bound sheds, deadline sheds, keys independent"
      locks_shed_and_timeout;
    test "eintr: the shared retry loop" eintr_retry_loop;
    test "eintr: injected interrupts ride through a protected io" eintr_injection;
    test "service: session lifecycle over one connection" service_lifecycle;
    test "service: one variant is one shared session" shared_session_attach;
    test "service: idle sessions are snapshotted and reaped" idle_reaper;
    test "service: full queue sheds with !busy" backpressure_sheds;
    test "service: deadline expiry sheds with !busy" deadline_sheds;
    test "service: journal failures degrade the variant to read-only"
      breaker_degrades_variant;
    test "service: a failed batch flush fails every writer aboard"
      group_batch_failure_fails_all;
    test "service: durable-but-unacked is clean after the lost-ack window"
      durable_but_unacked;
    test "service: readonly connections read but never write" readonly_connection;
    test "service: #version stamps are monotone and read-your-writes"
      version_stamps;
    test "service: read/write paths counted, lockfree toggle falls back"
      read_path_counters;
    test "service: snapshot isolation holds under a writer storm"
      snapshot_isolation_storm;
    test "locks: same-variant requests serialize (journal intact)"
      same_variant_serializes;
    test "locks: distinct variants run in parallel" distinct_variants_parallel;
    Alcotest.test_case
      (Printf.sprintf "chaos: %d crash/kill schedules recover every acked op"
         chaos_soak_schedules)
      `Slow chaos_property;
    test "branch: @list shows lineage, pinned and deterministic"
      branch_lineage_listing;
    test "branch: a child's #version never falls below its fork stamp"
      branch_child_version_floor;
    test "merge: branch, design on both sides, dry-run, merge, audit"
      merge_round_trip;
    test "merge: a semantic conflict is reported, never silently applied"
      merge_conflict_reported;
    test "query: lineage and branches-of answer from views" lineage_queries;
    Alcotest.test_case
      (Printf.sprintf
         "chaos: %d crash-mid-merge schedules leave both variants salvageable"
         merge_chaos_schedules)
      `Slow merge_chaos_property;
    test "server: socket round trip, stop removes the socket" socket_end_to_end;
    test "server: SIGTERM drains; repl --save fails fast on a served variant"
      sigterm_drains;
    test "server: a stale socket is reclaimed, a live one never stolen"
      stale_socket_reclaimed;
    test "server: kill -9 then restart binds the same socket path"
      kill9_restart_same_socket;
    test "client: connect retries to a deadline, then gives up honestly"
      connect_retry_deadline;
    test "server: EPIPE mid-response is a clean per-connection teardown"
      hangup_mid_response;
    test "repo: variant names are sorted whatever readdir yields"
      variant_names_sorted;
  ]

let soak_tests = [ Alcotest.test_case "bounded chaos soak" `Slow soak ]
