(** QCheck generators for schemas and modification operations. *)

open QCheck2.Gen
open Odl.Types

let ident =
  let* len = int_range 1 8 in
  let* first = char_range 'a' 'z' in
  let* rest = list_size (return (len - 1)) (char_range 'a' 'z') in
  let s = String.init len (fun i -> if i = 0 then first else List.nth rest (i - 1)) in
  if Odl.Names.is_keyword s then return (s ^ "_") else return s

let type_ident = map String.capitalize_ascii ident

let collection_kind = oneofl [ Set; List; Bag; Array ]

let rec domain_type_sized n =
  if n = 0 then oneofl [ D_int; D_float; D_string; D_char; D_boolean ]
  else
    frequency
      [
        (4, oneofl [ D_int; D_float; D_string; D_char; D_boolean ]);
        (2, map (fun t -> D_named t) type_ident);
        (1,
         let* k = collection_kind in
         let* inner = domain_type_sized (n - 1) in
         return (D_collection (k, inner)));
      ]

let domain_type = domain_type_sized 2

let size_opt = opt (int_range 1 200)

(** Parameters for the synthetic schema generator. *)
let synth_params =
  let* n_types = int_range 1 40 in
  let* attrs_per_type = int_range 0 4 in
  let* ops_per_type = int_range 0 2 in
  let* assocs_per_type = int_range 0 3 in
  let* isa_fraction = float_bound_inclusive 0.9 in
  let* part_edges = int_range 0 (max 1 (n_types / 3)) in
  let* instance_chain_length = int_range 0 (min 5 (max 0 (n_types - 1))) in
  let* seed = int_range 0 10_000 in
  return
    {
      Schemas.Synth.n_types;
      attrs_per_type;
      ops_per_type;
      assocs_per_type;
      isa_fraction;
      part_edges;
      instance_chain_length;
      seed;
    }

let synth_schema = map Schemas.Synth.generate synth_params

(** Parameters biased towards deep structure: dense part-of hierarchies and
    long (near schema-spanning) linear instance-of chains.  The general
    [synth_params] rarely produces more than shallow aggregation, so the
    hierarchy-shaped concept schemas — and the index's adjacency maps for
    part-of / instance-of edges — would otherwise go under-exercised. *)
let synth_params_hierarchical =
  let* n_types = int_range 4 30 in
  let* attrs_per_type = int_range 0 3 in
  let* ops_per_type = int_range 0 1 in
  let* assocs_per_type = int_range 0 2 in
  let* isa_fraction = float_bound_inclusive 0.6 in
  let* part_edges = int_range (n_types / 2) n_types in
  let* instance_chain_length = int_range (n_types / 2) (n_types - 1) in
  let* seed = int_range 0 10_000 in
  return
    {
      Schemas.Synth.n_types;
      attrs_per_type;
      ops_per_type;
      assocs_per_type;
      isa_fraction;
      part_edges;
      instance_chain_length;
      seed;
    }

let synth_schema_hierarchical =
  map Schemas.Synth.generate synth_params_hierarchical

(** Any synthetic schema: mostly the general shape, one third with heavy
    part-of / instance-of structure. *)
let any_synth_schema =
  frequency [ (2, synth_schema); (1, synth_schema_hierarchical) ]

let concept_kind =
  oneofl
    Core.Concept.[ Wagon_wheel; Generalization; Aggregation; Instance_chain ]

(* --- arbitrary operations (for parser/printer round trips) -------------- *)

let name_list = list_size (int_range 0 3) ident

let add_rel =
  let* ar_owner = type_ident in
  let* ar_target = type_ident in
  let* ar_card = opt collection_kind in
  let* ar_name = ident in
  let* ar_inverse = ident in
  let* ar_order_by = name_list in
  return { Core.Modop.ar_owner; ar_target; ar_card; ar_name; ar_inverse; ar_order_by }

let argument =
  let* arg_type = domain_type in
  let* arg_name = ident in
  return { arg_name; arg_type }

let arg_list = list_size (int_range 0 3) argument

let modop : Core.Modop.t t =
  let open Core.Modop in
  let t2 f = map2 f type_ident ident in
  oneof
    [
      map (fun n -> Add_type_definition n) type_ident;
      map (fun n -> Delete_type_definition n) type_ident;
      map2 (fun n s -> Add_supertype (n, s)) type_ident type_ident;
      map2 (fun n s -> Delete_supertype (n, s)) type_ident type_ident;
      map3
        (fun n o w -> Modify_supertype (n, o, w))
        type_ident
        (list_size (int_range 0 3) type_ident)
        (list_size (int_range 0 3) type_ident);
      t2 (fun n e -> Add_extent_name (n, e));
      t2 (fun n e -> Delete_extent_name (n, e));
      map3 (fun n o w -> Modify_extent_name (n, o, w)) type_ident ident ident;
      map2 (fun n k -> Add_key_list (n, k)) type_ident name_list;
      map2 (fun n k -> Delete_key_list (n, k)) type_ident name_list;
      map3 (fun n o w -> Modify_key_list (n, o, w)) type_ident name_list name_list;
      (let* n = type_ident and* d = domain_type and* s = size_opt and* a = ident in
       return (Add_attribute (n, d, s, a)));
      t2 (fun n a -> Delete_attribute (n, a));
      map3 (fun n a n' -> Modify_attribute (n, a, n')) type_ident ident type_ident;
      (let* n = type_ident and* a = ident and* o = domain_type and* w = domain_type in
       return (Modify_attribute_type (n, a, o, w)));
      (let* n = type_ident and* a = ident and* o = size_opt and* w = size_opt in
       return (Modify_attribute_size (n, a, o, w)));
      map (fun ar -> Add_relationship ar) add_rel;
      t2 (fun n p -> Delete_relationship (n, p));
      (let* n = type_ident and* p = ident and* o = type_ident and* w = type_ident in
       return (Modify_relationship_target_type (n, p, o, w)));
      (let* n = type_ident
       and* p = ident
       and* o = opt collection_kind
       and* w = opt collection_kind in
       return (Modify_relationship_cardinality (n, p, o, w)));
      (let* n = type_ident and* p = ident and* o = name_list and* w = name_list in
       return (Modify_relationship_order_by (n, p, o, w)));
      (let* n = type_ident
       and* ret = domain_type
       and* o = ident
       and* args = arg_list
       and* raises = name_list in
       return (Add_operation (n, ret, o, args, raises)));
      t2 (fun n o -> Delete_operation (n, o));
      map3 (fun n o n' -> Modify_operation (n, o, n')) type_ident ident type_ident;
      (let* n = type_ident and* o = ident and* ot = domain_type and* nt = domain_type in
       return (Modify_operation_return_type (n, o, ot, nt)));
      (let* n = type_ident and* o = ident and* oa = arg_list and* na = arg_list in
       return (Modify_operation_arg_list (n, o, oa, na)));
      (let* n = type_ident and* o = ident and* oe = name_list and* ne = name_list in
       return (Modify_operation_exceptions_raised (n, o, oe, ne)));
      map (fun ar -> Add_part_of_relationship ar) add_rel;
      t2 (fun n p -> Delete_part_of_relationship (n, p));
      (let* n = type_ident and* p = ident and* o = type_ident and* w = type_ident in
       return (Modify_part_of_target_type (n, p, o, w)));
      (let* n = type_ident and* p = ident and* o = collection_kind and* w = collection_kind in
       return (Modify_part_of_cardinality (n, p, o, w)));
      (let* n = type_ident and* p = ident and* o = name_list and* w = name_list in
       return (Modify_part_of_order_by (n, p, o, w)));
      map (fun ar -> Add_instance_of_relationship ar) add_rel;
      t2 (fun n p -> Delete_instance_of_relationship (n, p));
      (let* n = type_ident and* p = ident and* o = type_ident and* w = type_ident in
       return (Modify_instance_of_target_type (n, p, o, w)));
      (let* n = type_ident and* p = ident and* o = collection_kind and* w = collection_kind in
       return (Modify_instance_of_cardinality (n, p, o, w)));
      (let* n = type_ident and* p = ident and* o = name_list and* w = name_list in
       return (Modify_instance_of_order_by (n, p, o, w)));
    ]

(* --- pathological names (for persistence round trips) ------------------- *)

(** Names that stress the journal's line discipline: embedded newlines,
    leading comment markers, concept tags, quotes, backslashes, separators —
    everything that once could corrupt an op-log line.  Such names are only
    representable as quoted identifiers, so the generator guarantees
    [Odl.Names.needs_quoting]. *)
let pathological_name =
  let nasty_char =
    oneofl
      [ '\n'; '\r'; '\t'; ' '; '"'; '\\'; '/'; '@'; ';'; '('; ')'; ':'; ',' ]
  in
  let* prefix = oneofl [ ""; "//"; "@ww "; "@undo"; "\"" ] in
  let* chars =
    list_size (int_range 1 8)
      (frequency [ (2, char_range 'a' 'z'); (3, nasty_char) ])
  in
  let s = prefix ^ String.concat "" (List.map (String.make 1) chars) in
  return (if Odl.Names.needs_quoting s then s else s ^ "!")

(** Operations whose every name position is pathological: a representative
    subset of constructors covering the printer's name holes (targets,
    members, name lists, relationship records, operation signatures, named
    domains). *)
let pathological_op : Core.Modop.t t =
  let open Core.Modop in
  let name = pathological_name in
  let names n = list_size (int_range 0 n) name in
  let named_domain = map (fun t -> D_named t) name in
  oneof
    [
      map (fun n -> Add_type_definition n) name;
      map (fun n -> Delete_type_definition n) name;
      map2 (fun n s -> Add_supertype (n, s)) name name;
      map3 (fun n o w -> Modify_supertype (n, o, w)) name (names 2) (names 2);
      map2 (fun n e -> Add_extent_name (n, e)) name name;
      map2 (fun n k -> Add_key_list (n, k)) name (list_size (int_range 1 3) name);
      map3 (fun n o w -> Modify_key_list (n, o, w)) name (names 2) (names 2);
      (let* n = name and* d = named_domain and* s = size_opt and* a = name in
       return (Add_attribute (n, d, s, a)));
      map2 (fun n a -> Delete_attribute (n, a)) name name;
      (let* ar_owner = name
       and* ar_target = name
       and* ar_card = opt collection_kind
       and* ar_name = name
       and* ar_inverse = name
       and* ar_order_by = names 2 in
       return
         (Add_relationship
            { ar_owner; ar_target; ar_card; ar_name; ar_inverse; ar_order_by }));
      (let* n = name
       and* ret = named_domain
       and* o = name
       and* args =
         list_size (int_range 0 2)
           (let* arg_type = named_domain and* arg_name = name in
            return { arg_name; arg_type })
       and* raises = names 2 in
       return (Add_operation (n, ret, o, args, raises)));
      (let* n = name and* p = name and* o = name and* w = name in
       return (Modify_part_of_target_type (n, p, o, w)));
    ]

(** Ops for persistence round trips: plain names, pathological names, and a
    mix inside one log. *)
let roundtrip_op = frequency [ (3, modop); (2, pathological_op) ]

(* --- plausible operations against a concrete schema --------------------- *)

(** Operations whose names mostly refer to constructs that actually exist in
    [schema]: a workload for exercising the application engine's accept and
    reject paths alike. *)
let plausible_op schema : Core.Modop.t t =
  let interfaces = Odl.Schema.interface_names schema in
  let pick_type =
    if interfaces = [] then type_ident
    else frequency [ (9, oneofl interfaces); (1, type_ident) ]
  in
  let pick_attr_of n =
    match Odl.Schema.find_interface schema n with
    | Some i when i.i_attrs <> [] ->
        frequency
          [ (9, oneofl (List.map (fun a -> a.attr_name) i.i_attrs)); (1, ident) ]
    | _ -> ident
  in
  let pick_rel_of n =
    match Odl.Schema.find_interface schema n with
    | Some i when i.i_rels <> [] ->
        frequency
          [ (9, oneofl (List.map (fun r -> r.rel_name) i.i_rels)); (1, ident) ]
    | _ -> ident
  in
  let pick_op_of n =
    match Odl.Schema.find_interface schema n with
    | Some i when i.i_ops <> [] ->
        frequency
          [ (9, oneofl (List.map (fun o -> o.op_name) i.i_ops)); (1, ident) ]
    | _ -> ident
  in
  let open Core.Modop in
  let* n = pick_type in
  oneof
    [
      map (fun t -> Add_type_definition t) type_ident;
      return (Delete_type_definition n);
      map (fun s -> Add_supertype (n, s)) pick_type;
      map (fun s -> Delete_supertype (n, s)) pick_type;
      (let* d = domain_type_sized 0 and* s = size_opt and* a = ident in
       return (Add_attribute (n, d, s, a)));
      map (fun a -> Delete_attribute (n, a)) (pick_attr_of n);
      (let* a = pick_attr_of n and* n' = pick_type in
       return (Modify_attribute (n, a, n')));
      map (fun p -> Delete_relationship (n, p)) (pick_rel_of n);
      (let* p = pick_rel_of n and* o = pick_type and* w = pick_type in
       return (Modify_relationship_target_type (n, p, o, w)));
      (let* target = pick_type
       and* card = opt collection_kind
       and* name = ident
       and* inv = ident in
       return
         (Add_relationship
            {
              ar_owner = n;
              ar_target = target;
              ar_card = card;
              ar_name = name;
              ar_inverse = inv;
              ar_order_by = [];
            }));
      (let* target = pick_type and* name = ident and* inv = ident in
       return
         (Add_part_of_relationship
            {
              ar_owner = n;
              ar_target = target;
              ar_card = Some Set;
              ar_name = name;
              ar_inverse = inv;
              ar_order_by = [];
            }));
      map (fun p -> Delete_part_of_relationship (n, p)) (pick_rel_of n);
      (let* target = pick_type and* name = ident and* inv = ident in
       return
         (Add_instance_of_relationship
            {
              ar_owner = n;
              ar_target = target;
              ar_card = Some Set;
              ar_name = name;
              ar_inverse = inv;
              ar_order_by = [];
            }));
      map (fun o -> Delete_operation (n, o)) (pick_op_of n);
      (let* o = pick_op_of n and* n' = pick_type in
       return (Modify_operation (n, o, n')));
      map (fun e -> Add_extent_name (n, e)) ident;
      map (fun k -> Add_key_list (n, k)) (list_size (int_range 1 2) (pick_attr_of n));
      (let* e = ident and* e' = ident in
       return (Modify_extent_name (n, e, e')));
      map (fun e -> Delete_extent_name (n, e)) ident;
      (let* old_k = list_size (int_range 1 2) (pick_attr_of n)
       and* new_k = list_size (int_range 1 2) (pick_attr_of n) in
       return (Modify_key_list (n, old_k, new_k)));
      map (fun k -> Delete_key_list (n, k)) (list_size (int_range 1 2) (pick_attr_of n));
      (let* a = pick_attr_of n and* o = domain_type_sized 0 and* w = domain_type_sized 0 in
       return (Modify_attribute_type (n, a, o, w)));
      (let* a = pick_attr_of n and* o = size_opt and* w = size_opt in
       return (Modify_attribute_size (n, a, o, w)));
      (let* p = pick_rel_of n
       and* o = opt collection_kind
       and* w = opt collection_kind in
       return (Modify_relationship_cardinality (n, p, o, w)));
      (let* p = pick_rel_of n
       and* old_l = list_size (int_range 0 1) (pick_attr_of n)
       and* new_l = list_size (int_range 0 1) (pick_attr_of n) in
       return (Modify_relationship_order_by (n, p, old_l, new_l)));
      (let* p = pick_rel_of n and* o = collection_kind and* w = collection_kind in
       return (Modify_part_of_cardinality (n, p, o, w)));
      (let* p = pick_rel_of n and* o = collection_kind and* w = collection_kind in
       return (Modify_instance_of_cardinality (n, p, o, w)));
      (let* p = pick_rel_of n
       and* old_l = list_size (int_range 0 1) (pick_attr_of n)
       and* new_l = list_size (int_range 0 1) (pick_attr_of n) in
       return (Modify_part_of_order_by (n, p, old_l, new_l)));
      (let* p = pick_rel_of n
       and* old_l = list_size (int_range 0 1) (pick_attr_of n)
       and* new_l = list_size (int_range 0 1) (pick_attr_of n) in
       return (Modify_instance_of_order_by (n, p, old_l, new_l)));
      (let* p = pick_rel_of n and* o = pick_type and* w = pick_type in
       return (Modify_part_of_target_type (n, p, o, w)));
      (let* p = pick_rel_of n and* o = pick_type and* w = pick_type in
       return (Modify_instance_of_target_type (n, p, o, w)));
      map (fun p -> Delete_instance_of_relationship (n, p)) (pick_rel_of n);
      (let* ret = domain_type_sized 0 and* name = ident in
       return (Add_operation (n, ret, name, [], [])));
      (let* o = pick_op_of n and* ot = domain_type_sized 0 and* nt = domain_type_sized 0 in
       return (Modify_operation_return_type (n, o, ot, nt)));
      (let* o = pick_op_of n and* ne = name_list in
       return (Modify_operation_exceptions_raised (n, o, [], ne)));
      (let* olds = list_size (int_range 0 2) pick_type
       and* news = list_size (int_range 0 2) pick_type in
       return (Modify_supertype (n, olds, news)));
    ]

(* --- operation workloads ------------------------------------------------- *)

(** A sequence of up to [max_len] (concept kind, plausible op) steps against
    [schema].  Built from [list_size] over element generators, so QCheck2
    shrinks a failing case by dropping steps and simplifying the survivors. *)
let op_sequence ?(max_len = 10) schema =
  list_size (int_range 0 max_len) (pair concept_kind (plausible_op schema))

(** A synthetic schema together with an operation workload against it — the
    shared input shape of the differential and fuzz suites. *)
let schema_and_ops =
  let* schema = any_synth_schema in
  let* ops = op_sequence schema in
  return (schema, ops)
