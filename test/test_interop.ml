(* Interoperation through common objects. *)

open Core.Interop

let test = Util.test

let derive schema texts_with_kinds =
  let s = Util.session_of schema in
  let s =
    List.fold_left
      (fun s (kind, text) -> fst (Util.apply_ok ~kind s text))
      s texts_with_kinds
  in
  Core.Session.workspace s

let ww = Core.Concept.Wagon_wheel
let gh = Core.Concept.Generalization

let identical_customs_share_everything () =
  let u = Util.university () in
  let r = analyse ~original:u ~custom_a:u ~custom_b:u in
  let a, rels, o = Odl.Schema.count_constructs u in
  Alcotest.(check int) "all constructs common"
    (List.length u.s_interfaces + a + rels + o)
    (List.length r.r_common);
  Alcotest.check Util.schema_testable "interchange is the whole schema" u
    r.r_interchange;
  Alcotest.(check int) "nothing exclusive" 0
    (List.length r.r_only_a + List.length r.r_only_b)

let disjoint_deletions () =
  let u = Util.university () in
  let a = derive u [ (ww, "delete_type_definition(Book)") ] in
  let b = derive u [ (ww, "delete_type_definition(Syllabus)") ] in
  let r = analyse ~original:u ~custom_a:a ~custom_b:b in
  let names =
    List.map (fun i -> i.Odl.Types.i_name) r.r_interchange.s_interfaces
  in
  Alcotest.(check bool) "Book out" false (List.mem "Book" names);
  Alcotest.(check bool) "Syllabus out" false (List.mem "Syllabus" names);
  Alcotest.(check bool) "Person in" true (List.mem "Person" names);
  (* Book survives only in B; Syllabus only in A *)
  Alcotest.(check bool) "Book only in b" true
    (List.exists
       (fun c -> c = Core.Change.C_interface "Book")
       r.r_only_b);
  Alcotest.(check bool) "Syllabus only in a" true
    (List.exists (fun c -> c = Core.Change.C_interface "Syllabus") r.r_only_a)

let interchange_is_valid () =
  let u = Util.university () in
  let a = derive u [ (ww, "delete_type_definition(Time_Slot)") ] in
  let b =
    derive u
      [
        (ww, "delete_type_definition(Book)");
        (ww, "delete_attribute(Person, birthdate)");
      ]
  in
  let s = interchange_schema ~original:u ~custom_a:a ~custom_b:b in
  Util.check_valid "interchange" s

let rel_needs_both_ends () =
  let u = Util.university () in
  (* A drops Syllabus entirely; B keeps it.  The described_by relationship
     cannot be part of the interchange. *)
  let a = derive u [ (ww, "delete_type_definition(Syllabus)") ] in
  let r = analyse ~original:u ~custom_a:a ~custom_b:u in
  let co =
    Odl.Schema.get_interface r.r_interchange "Course_Offering"
  in
  Alcotest.(check bool) "described_by excluded" false
    (Odl.Schema.has_rel co "described_by")

let moved_constructs_flagged () =
  let u = Util.university () in
  let a = derive u [ (gh, "modify_attribute(Student, gpa, Person)") ] in
  let r = analyse ~original:u ~custom_a:a ~custom_b:u in
  let gpa =
    List.find
      (fun c -> c.co_construct = Core.Change.C_attribute ("Student", "gpa"))
      r.r_common
  in
  Alcotest.(check string) "in A on Person" "Person" gpa.co_in_a;
  Alcotest.(check string) "in B on Student" "Student" gpa.co_in_b;
  let text = report_text ~name_a:"A" ~name_b:"B" r in
  Alcotest.(check bool) "report flags the move" true
    (Str_contains.contains text "move translation needed")

let genome_family_interchange () =
  (* derive AAtDB-like and SacchDB-like customs from ACEDB via Diff, then
     compute the interchange: it must contain the family's common core *)
  let acedb = Schemas.Genome.acedb_v () in
  let replay target =
    let steps, _, _ = Core.Diff.infer ~original:acedb ~target in
    match Core.Oplog.replay acedb steps with
    | Ok s -> Core.Session.workspace s
    | Error e -> Alcotest.fail (Core.Apply.error_to_string e)
  in
  let custom_a = replay (Schemas.Genome.aatdb_v ()) in
  let custom_b = replay (Schemas.Genome.sacchdb_v ()) in
  let r = analyse ~original:acedb ~custom_a ~custom_b in
  let names =
    List.map (fun i -> i.Odl.Types.i_name) r.r_interchange.s_interfaces
    |> List.sort compare
  in
  Alcotest.(check (list string)) "the paper's common objects"
    [ "Allele"; "Author"; "Clone"; "Contig"; "Journal"; "Laboratory"; "Locus";
      "Map"; "Paper"; "Sequence" ]
    names;
  Util.check_valid "interchange valid" r.r_interchange

let report_counts () =
  let u = Util.emsl () in
  let a = derive u [ (ww, "delete_type_definition(Machine)") ] in
  let r = analyse ~original:u ~custom_a:a ~custom_b:u in
  let text = report_text ~name_a:"site1" ~name_b:"site2" r in
  Alcotest.(check bool) "mentions both systems" true
    (Str_contains.contains text "site1 <-> site2");
  Alcotest.(check bool) "exclusive counts present" true
    (Str_contains.contains text "survive only in site2")

let tests =
  [
    test "identical customs share everything" identical_customs_share_everything;
    test "disjoint deletions" disjoint_deletions;
    test "interchange schema is valid" interchange_is_valid;
    test "relationships need both ends" rel_needs_both_ends;
    test "moved constructs are flagged" moved_constructs_flagged;
    test "genome family interchange" genome_family_interchange;
    test "report counts" report_counts;
  ]
