(* The object store: typed instances under a schema. *)

open Objects

let test = Util.test

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "should succeed: %s" m

let err what = function
  | Ok _ -> Alcotest.failf "%s should fail" what
  | Error m -> m

let consistent name store =
  match Check.check store with
  | [] -> ()
  | ps ->
      Alcotest.failf "%s should be consistent:\n%s" name
        (String.concat "\n" (List.map Check.to_string ps))

(* a small populated university store used across the tests *)
let university_store () =
  let s = Store.create (Util.university ()) in
  let s, dept = ok (Store.new_object s "Department") in
  let s = ok (Store.set_attr s dept "dept_name" (Value.V_string "CSE")) in
  let s, alice = ok (Store.new_object s "Faculty") in
  let s = ok (Store.set_attr s alice "name" (Value.V_string "Alice")) in
  let s = ok (Store.set_attr s alice "ssn" (Value.V_string "111-22-3333")) in
  let s = ok (Store.link s alice "works_in_a" dept) in
  let s, bob = ok (Store.new_object s "Doctoral") in
  let s = ok (Store.set_attr s bob "ssn" (Value.V_string "444-55-6666")) in
  let s = ok (Store.set_attr s bob "gpa" (Value.V_float 3.9)) in
  let s = ok (Store.link s bob "advised_by" alice) in
  let s, course = ok (Store.new_object s "Course") in
  let s = ok (Store.set_attr s course "subject" (Value.V_string "CS")) in
  let s = ok (Store.set_attr s course "number" (Value.V_int 101)) in
  let s, offering = ok (Store.new_object s "Course_Offering") in
  let s = ok (Store.link s offering "offering_of" course) in
  let s = ok (Store.link s offering "taught_by" alice) in
  let s = ok (Store.link s bob "takes" offering) in
  (s, dept, alice, bob, course, offering)

let creation_and_attrs () =
  let s, _, alice, _, _, _ = university_store () in
  Alcotest.(check int) "five objects" 5 (Store.count s);
  (match Store.get_attr s alice "name" with
  | Some (Value.V_string "Alice") -> ()
  | _ -> Alcotest.fail "attribute readable");
  consistent "populated store" s

let unknown_type_rejected () =
  let s = Store.create (Util.university ()) in
  ignore (err "new_object Ghost" (Store.new_object s "Ghost"))

let attr_type_checked () =
  let s = Store.create (Util.university ()) in
  let s, p = ok (Store.new_object s "Person") in
  ignore (err "wrong domain" (Store.set_attr s p "name" (Value.V_int 3)));
  ignore (err "unknown attr" (Store.set_attr s p "nope" (Value.V_int 3)));
  (* size limit: Person.name is string<60> *)
  ignore
    (err "oversize"
       (Store.set_attr s p "name" (Value.V_string (String.make 61 'x'))));
  (* int widens to float *)
  let s, st = ok (Store.new_object s "Student") in
  let s = ok (Store.set_attr s st "gpa" (Value.V_int 4)) in
  ignore s

let inherited_attrs_writable () =
  let s = Store.create (Util.university ()) in
  let s, d = ok (Store.new_object s "Doctoral") in
  let s = ok (Store.set_attr s d "name" (Value.V_string "Dee")) in
  (* own attribute too *)
  let s = ok (Store.set_attr s d "dissertation_title" (Value.V_string "T")) in
  ignore s

let link_maintains_inverse () =
  let s, dept, alice, _, _, _ = university_store () in
  Alcotest.(check (list int)) "forward" [ dept ] (Store.linked s alice "works_in_a");
  Alcotest.(check (list int)) "inverse" [ alice ] (Store.linked s dept "has")

let to_one_displaces () =
  let s, dept, alice, _, _, _ = university_store () in
  let s, dept2 = ok (Store.new_object s "Department") in
  let s = ok (Store.set_attr s dept2 "dept_name" (Value.V_string "EE")) in
  let s = ok (Store.link s alice "works_in_a" dept2) in
  Alcotest.(check (list int)) "new forward" [ dept2 ]
    (Store.linked s alice "works_in_a");
  Alcotest.(check (list int)) "old inverse cleared" []
    (Store.linked s dept "has");
  consistent "after displacement" s

let link_type_checked () =
  let s, _, alice, _, _, offering = university_store () in
  ignore
    (err "wrong target"
       (Store.link s alice "works_in_a" offering));
  (* subtypes conform: a Faculty can take courses (Faculty ISA Person... not
     Student!) — so this must fail *)
  ignore (err "not a student" (Store.link s offering "taken_by" alice))

let subtype_conforms () =
  let s, _, _, bob, _, offering = university_store () in
  (* bob is Doctoral <= Student: taken_by accepts him *)
  Alcotest.(check bool) "linked as student" true
    (List.mem bob (Store.linked s offering "taken_by"))

let unlink_both_ends () =
  let s, dept, alice, _, _, _ = university_store () in
  let s = ok (Store.unlink s alice "works_in_a" dept) in
  Alcotest.(check (list int)) "forward gone" [] (Store.linked s alice "works_in_a");
  Alcotest.(check (list int)) "inverse gone" [] (Store.linked s dept "has")

let delete_scrubs_references () =
  let s, _, alice, bob, _, _ = university_store () in
  let s = ok (Store.delete s alice) in
  Alcotest.(check bool) "gone" true (Store.find s alice = None);
  Alcotest.(check (list int)) "bob's advisor link scrubbed" []
    (Store.linked s bob "advised_by")

let extents () =
  let s, _, _, _, _, _ = university_store () in
  Alcotest.(check int) "people includes all subtypes" 2
    (List.length (Store.objects_of_type s "Person"));
  Alcotest.(check int) "students" 1 (List.length (Store.objects_of_type s "Student"));
  Alcotest.(check int) "exact type only" 0
    (List.length (Store.objects_of_type ~include_subtypes:false s "Person"))

let key_uniqueness_checked () =
  let s = Store.create (Util.university ()) in
  let s, p1 = ok (Store.new_object s "Person") in
  let s = ok (Store.set_attr s p1 "ssn" (Value.V_string "1")) in
  let s, p2 = ok (Store.new_object s "Person") in
  let s = ok (Store.set_attr s p2 "ssn" (Value.V_string "1")) in
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists
       (fun p -> Str_contains.contains p.Check.p_message "duplicate key")
       (Check.check s));
  let s = ok (Store.set_attr s p2 "ssn" (Value.V_string "2")) in
  consistent "after fix" s

let mandatory_whole_checked () =
  let s = Store.create (Util.lumber ()) in
  let s, roof = ok (Store.new_object s "Roof") in
  (* a roof is a part of a structure: unattached, the store is inconsistent *)
  Alcotest.(check bool) "orphan part flagged" true
    (List.exists
       (fun p -> Str_contains.contains p.Check.p_message "exactly one")
       (Check.check s));
  let s, structure = ok (Store.new_object s "Structure") in
  let s = ok (Store.link s roof "roof_of" structure) in
  (* the structure itself is a part of a house; attach it too *)
  let s, house = ok (Store.new_object s "House") in
  let s = ok (Store.set_attr s house "plan_number" (Value.V_string "P1")) in
  let s = ok (Store.link s structure "structure_of" house) in
  consistent "attached" s

let collection_attributes () =
  let s =
    Store.create
      (Util.parse "interface A { attribute set<string> tags; };")
  in
  let s, a = ok (Store.new_object s "A") in
  let s =
    ok
      (Store.set_attr s a "tags"
         (Value.V_coll (Odl.Types.Set, [ Value.V_string "x"; Value.V_string "y" ])))
  in
  ignore
    (err "wrong collection kind"
       (Store.set_attr s a "tags"
          (Value.V_coll (Odl.Types.List, [ Value.V_string "x" ]))));
  ignore
    (err "wrong element"
       (Store.set_attr s a "tags" (Value.V_coll (Odl.Types.Set, [ Value.V_int 1 ]))))

let dump_renders () =
  let s, _, _, _, _, _ = university_store () in
  let text = Store.dump s in
  Alcotest.(check bool) "object line" true (Str_contains.contains text ": Faculty");
  Alcotest.(check bool) "attr line" true (Str_contains.contains text "name = \"Alice\"");
  Alcotest.(check bool) "link line" true (Str_contains.contains text "works_in_a -> @1")

let tests =
  [
    test "creation and attributes" creation_and_attrs;
    test "unknown type rejected" unknown_type_rejected;
    test "attribute writes type-checked" attr_type_checked;
    test "inherited attributes writable" inherited_attrs_writable;
    test "link maintains inverse" link_maintains_inverse;
    test "to-one links displace" to_one_displaces;
    test "link target type-checked" link_type_checked;
    test "subtypes conform" subtype_conforms;
    test "unlink removes both ends" unlink_both_ends;
    test "delete scrubs references" delete_scrubs_references;
    test "extents" extents;
    test "key uniqueness" key_uniqueness_checked;
    test "mandatory whole" mandatory_whole_checked;
    test "collection attributes" collection_attributes;
    test "dump" dump_renders;
  ]
