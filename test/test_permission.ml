open Core.Permission
module C = Core.Concept

let test = Util.test

let kinds = [ C.Wagon_wheel; C.Generalization; C.Aggregation; C.Instance_chain ]

let every_op_has_a_home () =
  List.iter
    (fun op ->
      Alcotest.(check bool) (op ^ " allowed somewhere") true (homes op <> []))
    all_op_names

let per_kind_op_lists_are_subsets () =
  List.iter
    (fun k ->
      List.iter
        (fun op ->
          Alcotest.(check bool) (op ^ " is a known operation") true
            (List.mem op all_op_names))
        (ops_for k))
    kinds

let wagon_wheel_policy () =
  let allowed = [
    "add_type_definition"; "delete_type_definition"; "add_attribute";
    "delete_attribute"; "modify_attribute_type"; "modify_attribute_size";
    "add_relationship"; "modify_relationship_cardinality"; "add_operation";
    "modify_operation_return_type"; "add_part_of_relationship";
    "delete_instance_of_relationship"; "add_extent_name"; "modify_key_list";
  ] in
  let denied = [
    "add_supertype"; "delete_supertype"; "modify_supertype";
    "modify_attribute"; "modify_operation"; "modify_relationship_target_type";
    "modify_part_of_target_type"; "modify_part_of_cardinality";
    "modify_instance_of_order_by";
  ] in
  List.iter
    (fun op -> Alcotest.(check bool) ("WW allows " ^ op) true
        (allowed_name C.Wagon_wheel op))
    allowed;
  List.iter
    (fun op -> Alcotest.(check bool) ("WW denies " ^ op) false
        (allowed_name C.Wagon_wheel op))
    denied

let generalization_policy () =
  List.iter
    (fun op -> Alcotest.(check bool) ("GH allows " ^ op) true
        (allowed_name C.Generalization op))
    [ "add_supertype"; "delete_supertype"; "modify_supertype";
      "modify_attribute"; "modify_operation"; "modify_relationship_target_type";
      "add_type_definition"; "delete_type_definition" ];
  List.iter
    (fun op -> Alcotest.(check bool) ("GH denies " ^ op) false
        (allowed_name C.Generalization op))
    [ "add_attribute"; "add_relationship"; "add_extent_name";
      "modify_part_of_target_type"; "add_instance_of_relationship" ]

let aggregation_policy () =
  List.iter
    (fun op -> Alcotest.(check bool) ("AH allows " ^ op) true
        (allowed_name C.Aggregation op))
    [ "add_part_of_relationship"; "delete_part_of_relationship";
      "modify_part_of_target_type"; "modify_part_of_cardinality";
      "modify_part_of_order_by"; "add_type_definition" ];
  List.iter
    (fun op -> Alcotest.(check bool) ("AH denies " ^ op) false
        (allowed_name C.Aggregation op))
    [ "add_relationship"; "add_attribute"; "add_supertype";
      "add_instance_of_relationship"; "modify_instance_of_target_type" ]

let instance_chain_policy () =
  List.iter
    (fun op -> Alcotest.(check bool) ("IH allows " ^ op) true
        (allowed_name C.Instance_chain op))
    [ "add_instance_of_relationship"; "delete_instance_of_relationship";
      "modify_instance_of_target_type"; "modify_instance_of_cardinality";
      "modify_instance_of_order_by"; "delete_type_definition" ];
  List.iter
    (fun op -> Alcotest.(check bool) ("IH denies " ^ op) false
        (allowed_name C.Instance_chain op))
    [ "add_part_of_relationship"; "add_relationship"; "modify_attribute" ]

let moves_only_in_generalization () =
  List.iter
    (fun op ->
      Alcotest.(check (list bool))
        (op ^ " only in GH")
        [ false; true; false; false ]
        (List.map (fun k -> allowed_name k op) kinds))
    [ "modify_attribute"; "modify_operation"; "modify_relationship_target_type" ]

let type_definitions_everywhere () =
  List.iter
    (fun op ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (op ^ " everywhere") true (allowed_name k op))
        kinds)
    [ "add_type_definition"; "delete_type_definition" ]

let denial_message_points_home () =
  let op = Util.parse_op "add_supertype(A, B)" in
  match allowed C.Wagon_wheel op with
  | Ok () -> Alcotest.fail "should be denied"
  | Error m ->
      Alcotest.(check bool) "names the right concept schema" true
        (Str_contains.contains m "generalization hierarchy")

let allowed_agrees_with_allowed_name () =
  List.iter
    (fun text ->
      let op = Util.parse_op text in
      List.iter
        (fun k ->
          Alcotest.(check bool) (text ^ " agreement")
            (allowed_name k (Core.Modop.name op))
            (Result.is_ok (allowed k op)))
        kinds)
    [
      "add_supertype(A, B)"; "add_attribute(A, int, none, x)";
      "modify_part_of_cardinality(A, p, set, list)";
      "add_instance_of_relationship(A, set<B>, i, g)";
    ]

let tests =
  [
    test "every operation has a home" every_op_has_a_home;
    test "per-kind lists are well formed" per_kind_op_lists_are_subsets;
    test "wagon wheel policy" wagon_wheel_policy;
    test "generalization policy" generalization_policy;
    test "aggregation policy" aggregation_policy;
    test "instance chain policy" instance_chain_policy;
    test "moves only in generalization hierarchies" moves_only_in_generalization;
    test "type definitions everywhere" type_definitions_everywhere;
    test "denial message points home" denial_message_points_home;
    test "allowed agrees with allowed_name" allowed_agrees_with_allowed_name;
  ]
