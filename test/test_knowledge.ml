(* The knowledge component's cautionary statements. *)

let test = Util.test
let contains = Str_contains.contains

let cautions schema text =
  String.concat "\n" (Repository.Knowledge.cautions schema (Util.parse_op text))

let u = Util.university

let delete_type_counts_dependents () =
  let c = cautions (u ()) "delete_type_definition(Course_Offering)" in
  Alcotest.(check bool) "incoming ends counted" true
    (contains c "relationship end(s) on other interfaces");
  Alcotest.(check bool) "own ends counted" true
    (contains c "itself declares")

let delete_type_subtype_reconnection () =
  let c = cautions (u ()) "delete_type_definition(Graduate)" in
  Alcotest.(check bool) "reconnection warned" true
    (contains c "3 subtype(s) of Graduate will be reconnected")

let delete_type_domain_uses () =
  let s =
    Util.parse
      "interface A { }; interface B { attribute A ref_a; attribute set<A> more; };"
  in
  let c = cautions s "delete_type_definition(A)" in
  Alcotest.(check bool) "domain attrs counted" true
    (contains c "2 attribute(s) elsewhere use A")

let delete_attr_keys_and_descendants () =
  let c = cautions (u ()) "delete_attribute(Person, ssn)" in
  Alcotest.(check bool) "key participation" true (contains c "1 key(s)");
  Alcotest.(check bool) "descendant visibility" true
    (contains c "descendant type(s) will no longer inherit")

let move_direction () =
  let up = cautions (u ()) "modify_attribute(Student, gpa, Person)" in
  Alcotest.(check bool) "up widens" true (contains up "visible to every subtype");
  let down = cautions (u ()) "modify_attribute(Student, gpa, Graduate)" in
  Alcotest.(check bool) "down hides" true (contains down "hides it from the other subtypes")

let target_move_direction () =
  let widen =
    cautions (u ())
      "modify_relationship_target_type(Department, has, Employee, Person)"
  in
  Alcotest.(check bool) "widening" true (contains widen "widening");
  let narrow =
    cautions (u ())
      "modify_relationship_target_type(Department, has, Employee, Faculty)"
  in
  Alcotest.(check bool) "narrowing" true (contains narrow "narrowing")

let supertype_cautions () =
  let del = cautions (u ()) "delete_supertype(Student, Person)" in
  Alcotest.(check bool) "inherited loss estimated" true
    (contains del "loses up to");
  let s =
    Util.parse
      "interface A { attribute int x; }; interface B { attribute int x; };"
  in
  let add = cautions s "add_supertype(B, A)" in
  Alcotest.(check bool) "shadowing flagged" true (contains add "shadowing")

let delete_relationship_inverse () =
  let c = cautions (u ()) "delete_relationship(Student, takes)" in
  Alcotest.(check bool) "names the inverse end" true
    (contains c "Course_Offering.taken_by")

let silent_operations () =
  List.iter
    (fun text ->
      Alcotest.(check string) (text ^ " is silent") "" (cautions (u ()) text))
    [
      "add_type_definition(Lab)";
      "add_attribute(Person, int, none, age)";
      "modify_extent_name(Person, people, persons)";
      "delete_type_definition(Ghost)" (* unknown: nothing to warn about *);
    ]

let tests =
  [
    test "delete type counts dependents" delete_type_counts_dependents;
    test "delete type warns about reconnection" delete_type_subtype_reconnection;
    test "delete type counts domain uses" delete_type_domain_uses;
    test "delete attribute: keys and descendants" delete_attr_keys_and_descendants;
    test "move direction phrasing" move_direction;
    test "target move direction phrasing" target_move_direction;
    test "supertype cautions" supertype_cautions;
    test "delete relationship names the inverse" delete_relationship_inverse;
    test "uneventful operations are silent" silent_operations;
  ]
