let test = Util.test

let roundtrip name schema =
  let printed = Odl.Printer.schema_to_string schema in
  let reparsed = Util.parse printed in
  Alcotest.check Util.schema_testable name schema reparsed;
  (* printing is stable: printing the reparse gives the same text *)
  Alcotest.(check string)
    (name ^ " stable") printed
    (Odl.Printer.schema_to_string reparsed)

let examples () =
  roundtrip "university" (Util.university ());
  roundtrip "lumber" (Util.lumber ());
  roundtrip "emsl" (Util.emsl ());
  roundtrip "acedb" (Schemas.Genome.acedb_v ());
  roundtrip "aatdb" (Schemas.Genome.aatdb_v ());
  roundtrip "sacchdb" (Schemas.Genome.sacchdb_v ())

let synthetic () =
  List.iter
    (fun n ->
      roundtrip
        (Printf.sprintf "synth%d" n)
        (Schemas.Synth.generate (Schemas.Synth.default_params ~n_types:n)))
    [ 1; 5; 20; 60 ]

let sized_attribute () =
  let s = Util.parse "interface A { attribute string<17> x; };" in
  Alcotest.(check bool) "prints size" true
    (Str_contains.contains (Odl.Printer.schema_to_string s) "string<17> x")

let key_forms () =
  let s =
    Util.parse
      "interface A { key x; key (y, z); attribute int x; attribute int y; \
       attribute int z; };"
  in
  let printed = Odl.Printer.schema_to_string s in
  Alcotest.(check bool) "single" true (Str_contains.contains printed "key x;");
  Alcotest.(check bool) "composite" true (Str_contains.contains printed "key (y, z);")

let part_of_keyword () =
  let src =
    "interface W { part_of relationship set<P> parts inverse P::whole; };\n\
     interface P { part_of relationship W whole inverse W::parts; };"
  in
  let printed = Odl.Printer.schema_to_string (Util.parse src) in
  Alcotest.(check bool) "keyword kept" true
    (Str_contains.contains printed "part_of relationship set<P> parts")

let order_by_printed () =
  let src =
    "interface A { attribute int x; relationship set<A> r inverse A::r_inv \
     order_by (x); relationship A r_inv inverse A::r; };"
  in
  let printed = Odl.Printer.schema_to_string (Util.parse src) in
  Alcotest.(check bool) "order_by" true
    (Str_contains.contains printed "order_by (x)")

let operation_raises_printed () =
  let src = "interface A { int f(string s) raises (Bad); };" in
  let printed = Odl.Printer.schema_to_string (Util.parse src) in
  Alcotest.(check bool) "raises" true
    (Str_contains.contains printed "raises (Bad)")

let tests =
  [
    test "example schemas round trip" examples;
    test "synthetic schemas round trip" synthetic;
    test "sized attribute" sized_attribute;
    test "key forms" key_forms;
    test "part-of keyword" part_of_keyword;
    test "order_by" order_by_printed;
    test "operation raises" operation_raises_printed;
  ]
