(* The query subsystem's core: parser, planner, evaluator, and — the
   correctness foundation — the incrementally maintained {!Query.View}.
   The central property is differential, in the house style of the PR 1
   index-vs-naive checker: after an arbitrary accepted op sequence (plus
   undo/redo), the incrementally refreshed view is logically identical to
   a from-scratch build at every step.

   Run with QCHECK_LONG=1 (the [fuzz-long] alias) for a 10x deeper pass;
   the [query-fuzz] alias scales the never-crash fuzz property instead. *)

module Ast = Query.Ast
module Parser = Query.Parser
module Plan = Query.Plan
module View = Query.View
module Eval = Query.Eval

let test = Util.test

let prop name ?(count = 500) gen f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~long_factor:10 gen f)

let parse_ok text =
  match Parser.parse text with
  | Ok q -> q
  | Error m -> Alcotest.failf "%S should parse: %s" text m

let parse_err text =
  match Parser.parse text with
  | Ok _ -> Alcotest.failf "%S should be rejected" text
  | Error m -> m

(* --- parser ---------------------------------------------------------------- *)

let parser_forms () =
  let q = parse_ok "name Person" in
  Alcotest.(check bool) "not all" false q.Ast.q_all;
  Alcotest.(check bool) "not explain" false q.Ast.q_explain;
  (match q.q_atom with
  | Ast.Name (Ast.Exact "Person") -> ()
  | _ -> Alcotest.fail "name Person should be an exact name atom");
  (match (parse_ok "name \"Per*\"").q_atom with
  | Ast.Name (Ast.Glob "Per*") -> ()
  | _ -> Alcotest.fail "quoted wildcard pattern should be a glob");
  (* a quoted pattern without wildcards is a point lookup *)
  (match (parse_ok "name \"Person\"").q_atom with
  | Ast.Name (Ast.Exact "Person") -> ()
  | _ -> Alcotest.fail "quoted non-wildcard pattern should be exact");
  (match (parse_ok "attr gpa inherited").q_atom with
  | Ast.Attr { pat = Ast.Exact "gpa"; inherited = true } -> ()
  | _ -> Alcotest.fail "attr ... inherited");
  (match (parse_ok "isa Person").q_atom with
  | Ast.Isa { name = "Person"; dir = Ast.Down } -> ()
  | _ -> Alcotest.fail "isa defaults down");
  (match (parse_ok "partof Engine up").q_atom with
  | Ast.Part { name = "Engine"; dir = Ast.Up } -> ()
  | _ -> Alcotest.fail "partof ... up");
  (match (parse_ok "diff 3").q_atom with
  | Ast.Diff { since = 3; until = None } -> ()
  | _ -> Alcotest.fail "diff with one stamp");
  (match (parse_ok "diff 3 9").q_atom with
  | Ast.Diff { since = 3; until = Some 9 } -> ()
  | _ -> Alcotest.fail "diff with a range");
  let q = parse_ok "all explain name Person" in
  Alcotest.(check bool) "all" true q.q_all;
  Alcotest.(check bool) "explain" true q.q_explain

let parser_rejects () =
  let contains m frag =
    if not (Str_contains.contains m frag) then
      Alcotest.failf "error %S should mention %S" m frag
  in
  contains (parse_err "") "expected a query form";
  contains (parse_err "frobnicate Person") "expected a query form";
  contains (parse_err "name") "expected a name";
  contains (parse_err "diff") "expected";
  (* trailing garbage is an error, not silently ignored *)
  contains (parse_err "name Person Person") "";
  contains (parse_err "isa Person sideways") "";
  (* lex errors surface with a position, not an exception *)
  contains (parse_err "name \"unterminated") "lex error"

let glob_semantics () =
  let m pat s = Ast.matches (Ast.Glob pat) s in
  Alcotest.(check bool) "* spans" true (m "P*n" "Person");
  Alcotest.(check bool) "* empty run" true (m "Person*" "Person");
  Alcotest.(check bool) "? is one char" true (m "Pers?n" "Person");
  Alcotest.(check bool) "? not empty" false (m "Person?" "Person");
  Alcotest.(check bool) "star runs collapse" true (m "P**n" "Person");
  Alcotest.(check bool) "no match" false (m "Q*" "Person");
  Alcotest.(check string) "literal prefix" "Per" (Ast.literal_prefix "Per*o?");
  Alcotest.(check string) "no prefix" "" (Ast.literal_prefix "*Person")

let planner_picks_access_paths () =
  let plan text = Plan.of_atom (parse_ok text).Ast.q_atom in
  (match plan "name Person" with
  | Plan.Name_point "Person" -> ()
  | _ -> Alcotest.fail "exact name should be a point lookup");
  (match plan "name \"Per*\"" with
  | Plan.Name_prefix { prefix = "Per"; _ } -> ()
  | _ -> Alcotest.fail "prefixed glob should be a bounded scan");
  (match plan "name \"*son\"" with
  | Plan.Name_scan _ -> ()
  | _ -> Alcotest.fail "prefixless glob should be a full scan");
  (match plan "attr gpa" with
  | Plan.Attr_point { attr = "gpa"; inherited = false } -> ()
  | _ -> Alcotest.fail "exact attr should probe the attribute index");
  List.iter
    (fun text ->
      let d = Plan.describe (plan text) in
      if not (Str_contains.contains d "plan:") then
        Alcotest.failf "describe %S should start with plan:" text)
    [ "name x"; "name \"x*\""; "attr \"*\" inherited"; "isa A up";
      "partof B"; "wheel C"; "diff 1 2" ]

(* --- evaluation on the university schema ----------------------------------- *)

let university_view () =
  let session = Util.session_of (Util.university ()) in
  (session, View.build ~stamp:1 session)

let run view text =
  match Eval.run view (parse_ok text).Ast.q_atom with
  | Ok lines -> lines
  | Error m -> Alcotest.failf "%S should evaluate: %s" text m

let run_err view text =
  match Eval.run view (parse_ok text).Ast.q_atom with
  | Ok _ -> Alcotest.failf "%S should fail" text
  | Error m -> m

let eval_university () =
  let _, v = university_view () in
  Alcotest.(check (list string)) "point name" [ "Person" ] (run v "name Person");
  Alcotest.(check (list string)) "missing name" [] (run v "name Nobody");
  Alcotest.(check (list string))
    "glob name"
    [ "Course"; "Course_Offering" ]
    (run v "name \"Course*\"");
  Alcotest.(check (list string))
    "isa down is transitive"
    [ "Doctoral"; "Employee"; "Faculty"; "Graduate"; "Nonthesis_Masters";
      "Student"; "Thesis_Masters"; "Undergraduate" ]
    (run v "isa Person");
  Alcotest.(check (list string))
    "isa up" [ "Graduate"; "Person"; "Student" ] (run v "isa Doctoral up");
  Alcotest.(check (list string))
    "attr point" [ "Student.gpa" ] (run v "attr gpa");
  (* inherited attrs walk the ISA closure and report the declarer *)
  Alcotest.(check (list string))
    "attr inherited"
    [ "Doctoral.gpa (from Student)"; "Graduate.gpa (from Student)";
      "Nonthesis_Masters.gpa (from Student)"; "Student.gpa";
      "Thesis_Masters.gpa (from Student)"; "Undergraduate.gpa (from Student)" ]
    (run v "attr gpa inherited");
  let wheel = run v "wheel Course" in
  if not (List.mem "Course" wheel) then
    Alcotest.fail "wagon wheel should contain its focus";
  if not (Str_contains.contains (run_err v "isa Nobody") "no interface") then
    Alcotest.fail "closure of a missing interface names the problem";
  if not (Str_contains.contains (run_err v "diff 0 9") "ahead") then
    Alcotest.fail "a future stamp is refused"

(* A pinned digest over a battery of queries: the canonical (sorted)
   output is a wire-format promise — shard-merged answers reassemble to
   these exact bytes, so any ordering change must be deliberate and show
   up here. *)
let battery =
  [ "name \"*\""; "name \"Co*\""; "attr \"*\""; "attr \"*\" inherited";
    "isa Person"; "isa Person up"; "isa Doctoral up"; "partof Course";
    "partof Syllabus up"; "wheel Course"; "wheel Person"; "diff 0" ]

let pinned_digest () =
  let _, v = university_view () in
  let text =
    String.concat "\n"
      (List.concat_map
         (fun q ->
           (q ^ ":")
           ::
           (match Eval.run v (parse_ok q).Ast.q_atom with
           | Ok lines -> lines
           | Error m -> [ "error: " ^ m ]))
         battery)
  in
  Alcotest.(check string)
    "university battery digest"
    "222e112af2ae2b3d0ced3d535602ca5e"
    (Digest.to_hex (Digest.string text))

(* --- incremental maintenance ----------------------------------------------- *)

let refresh_after_ops () =
  let s, v = university_view () in
  let s, _ = Util.apply_ok s "add_attribute(Person, string, 8, badge)" in
  let v = View.refresh v ~stamp:2 s in
  Alcotest.(check int) "one refresh" 1 (View.refresh_count v);
  Alcotest.(check (list string)) "new attr indexed" [ "Person.badge" ]
    (run v "attr badge");
  let s, _ = Util.apply_ok s "delete_attribute(Person, badge)" in
  let v = View.refresh v ~stamp:3 s in
  Alcotest.(check (list string)) "deleted attr deindexed" [] (run v "attr badge");
  Alcotest.(check (list string))
    "history records both steps, chronologically"
    [ "2 @ww add_attribute(Person, string, 8, badge)";
      "3 @ww delete_attribute(Person, badge)" ]
    (run v "diff 1")

let refresh_sees_undo () =
  let s, v = university_view () in
  let s, _ = Util.apply_ok s "add_attribute(Person, string, 8, badge)" in
  let v = View.refresh v ~stamp:2 s in
  let s = Option.get (Core.Session.undo s) in
  let v = View.refresh v ~stamp:3 s in
  Alcotest.(check (list string)) "undo removed the attr" [] (run v "attr badge");
  Alcotest.(check (list string))
    "undo shows in the history"
    [ "2 @ww add_attribute(Person, string, 8, badge)";
      "3 undo @ww add_attribute(Person, string, 8, badge)" ]
    (run v "diff 1");
  match Core.Session.redo s with
  | None -> Alcotest.fail "redo should be available"
  | Some (s, _) ->
      let v = View.refresh v ~stamp:4 s in
      Alcotest.(check (list string))
        "redo restores the attr" [ "Person.badge" ] (run v "attr badge")

let history_is_bounded () =
  let s, v = university_view () in
  let n = 520 (* past max_history = 512 *) in
  let rec go s v i =
    if i > n then (s, v)
    else
      let s, _ =
        Util.apply_ok s
          (Printf.sprintf "add_attribute(Person, string, 8, b%04d)" i)
      in
      go s (View.refresh v ~stamp:(i + 1) s) (i + 1)
  in
  let _, v = go s v 1 in
  Alcotest.(check int) "stamp tracks" (n + 1) (View.stamp v);
  if View.floor_stamp v <= 1 then
    Alcotest.fail "floor should have moved past the dropped prefix";
  (match run v "diff 0" with
  | note :: _ when Str_contains.contains note "history truncated" -> ()
  | _ -> Alcotest.fail "a pre-floor diff should carry the truncation note");
  (* a slice entirely above the floor is complete: no note *)
  match run v (Printf.sprintf "diff %d" (View.floor_stamp v)) with
  | note :: _ when Str_contains.contains note "history truncated" ->
      Alcotest.fail "an in-window diff should not claim truncation"
  | _ -> ()

let update_is_monotone () =
  let s, v = university_view () in
  let s', _ = Util.apply_ok s "add_attribute(Person, string, 8, badge)" in
  let v2 = View.update ~prev:v ~stamp:2 s' in
  (* a racing writer that lost the CAS re-updates at an older stamp: the
     newer view must win unchanged *)
  let v2' = View.update ~prev:v2 ~stamp:1 s in
  if not (v2 == v2') then Alcotest.fail "update must keep a newer view";
  match View.update ~stamp:5 s' with
  | v5 ->
      Alcotest.(check int) "build from nothing adopts the stamp" 5
        (View.stamp v5)

(* --- the differential property --------------------------------------------- *)

(* Incremental refresh after every accepted op (and undo/redo) produces
   exactly the rows and attribute index of a from-scratch build.  This is
   the property the whole subsystem leans on: it exercises
   Schema_index.changed_names (the pointer-diff dirty seed) and the
   neighbourhood widening in View.refresh against arbitrary generated
   schemas and workloads. *)
let incremental_equals_scratch =
  prop "incremental view refresh = from-scratch build" Gen.schema_and_ops
    (fun (schema, steps) ->
      match Core.Session.create schema with
      | Error _ -> QCheck2.assume_fail () (* synth schemas are valid *)
      | Ok session ->
          let check stamp session v =
            View.equal_logical v (View.build ~stamp session)
          in
          let step (session, v, stamp, ok) act =
            if not ok then (session, v, stamp, false)
            else
              match act session with
              | None -> (session, v, stamp, ok)
              | Some session ->
                  let stamp = stamp + 1 in
                  let v = View.refresh v ~stamp session in
                  (session, v, stamp, check stamp session v)
          in
          let acts =
            List.map
              (fun (kind, op) session ->
                match Core.Session.apply session ~kind op with
                | Ok (s, _) -> Some s
                | Error _ -> None)
              steps
            @ [
                (fun s -> Core.Session.undo s);
                (fun s -> Core.Session.undo s);
                (fun s -> Option.map fst (Core.Session.redo s));
              ]
          in
          let _, _, _, ok =
            List.fold_left step
              (session, View.build ~stamp:1 session, 1, true)
              acts
          in
          ok)

(* The evaluator's other invariant: every answer except [diff] is sorted
   and duplicate-free, whatever the view holds. *)
let answers_are_canonical =
  let gen =
    QCheck2.Gen.(
      let* schema, ops = Gen.schema_and_ops in
      let* pat = oneofl [ "*"; "a*"; "?*"; "x" ] in
      return (schema, ops, pat))
  in
  prop "non-diff answers are sorted and unique" gen (fun (schema, ops, pat) ->
      match Core.Session.create schema with
      | Error _ -> QCheck2.assume_fail ()
      | Ok session ->
          let session =
            List.fold_left
              (fun s (kind, op) ->
                match Core.Session.apply s ~kind op with
                | Ok (s', _) -> s'
                | Error _ -> s)
              session ops
          in
          let v = View.build ~stamp:1 session in
          let sorted_unique lines =
            lines = List.sort_uniq String.compare lines
          in
          let q text =
            match Eval.run v (parse_ok text).Ast.q_atom with
            | Ok lines -> sorted_unique lines
            | Error _ -> true
          in
          q (Printf.sprintf "name \"%s\"" pat)
          && q (Printf.sprintf "attr \"%s\"" pat)
          && q (Printf.sprintf "attr \"%s\" inherited" pat))

(* --- query fuzz: parse/evaluate never raises -------------------------------
   Tier-1 runs 500 random token soups; the nightly [query-fuzz] alias
   scales up through SWSD_QUERY_FUZZ. *)

let fuzz_count =
  match Sys.getenv_opt "SWSD_QUERY_FUZZ" with
  | Some n -> ( match int_of_string_opt n with Some n -> max 1 n | None -> 500)
  | None -> 500

let query_soup =
  QCheck2.Gen.(
    let fragment =
      oneofl
        [ "name"; "attr"; "isa"; "partof"; "wheel"; "diff"; "all"; "explain";
          "up"; "down"; "inherited"; "Person"; "Student"; "Nobody"; "x";
          "\"*\""; "\"Per?on\""; "\"\""; "\"unterminated"; "0"; "1"; "7";
          "999999"; "-3"; "("; "::"; "~"; "3.14"; "set<int>" ]
    in
    map (String.concat " ") (list_size (int_range 0 6) fragment))

let fuzz_never_crashes =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parse+eval never raises on token soup"
       ~count:fuzz_count ~long_factor:10 query_soup
       (fun text ->
         let v = lazy (snd (university_view ())) in
         match Parser.parse text with
         | Error m -> String.length m > 0
         | Ok q -> (
             ignore (Eval.explain q.Ast.q_atom);
             match Eval.run (Lazy.force v) q.q_atom with
             | Ok _ | Error _ -> true)))

(* run_fresh (the bench baseline) answers exactly like the maintained view *)
let fresh_equals_materialized () =
  let s, v = university_view () in
  let s, _ = Util.apply_ok s "add_attribute(Person, string, 8, badge)" in
  let v = View.refresh v ~stamp:2 s in
  List.iter
    (fun q ->
      let atom = (parse_ok q).Ast.q_atom in
      match (Eval.run v atom, Eval.run_fresh ~stamp:2 s atom) with
      | Ok a, Ok b ->
          Alcotest.(check (list string)) (q ^ " agrees") a b
      | Error a, Error b -> Alcotest.(check string) (q ^ " agrees") a b
      | _ -> Alcotest.failf "%s: fresh and materialized disagree on status" q)
    [ "name \"*\""; "attr badge"; "attr \"*\" inherited"; "isa Person";
      "partof Course up"; "wheel Course" ]

let tests =
  [
    test "parser: every query form round-trips" parser_forms;
    test "parser: malformed queries are structured errors" parser_rejects;
    test "glob: * and ? semantics" glob_semantics;
    test "planner: picks the right access path" planner_picks_access_paths;
    test "eval: university answers are exact" eval_university;
    test "eval: pinned digest over the battery" pinned_digest;
    test "view: refresh tracks adds and deletes" refresh_after_ops;
    test "view: refresh tracks undo and redo" refresh_sees_undo;
    test "view: history is bounded with an honest floor" history_is_bounded;
    test "view: update is stamp-monotone" update_is_monotone;
    test "eval: fresh build answers = materialized answers"
      fresh_equals_materialized;
    incremental_equals_scratch;
    answers_are_canonical;
    fuzz_never_crashes;
  ]
