(* Robustness: hostile inputs must produce diagnostics, never crashes. *)

let prop name ?(count = 300) gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen f)

(* arbitrary printable garbage *)
let garbage =
  QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 200))

(* garbage built from the languages' own token vocabulary — much likelier to
   get deep into the parsers *)
let tokeny =
  QCheck2.Gen.(
    let word =
      oneofl
        [
          "interface"; "schema"; "attribute"; "relationship"; "part_of";
          "instance_of"; "inverse"; "order_by"; "extent"; "key"; "raises";
          "set"; "int"; "string"; "void"; "Foo"; "bar"; "x"; "{"; "}"; "(";
          ")"; "<"; ">"; ";"; ","; ":"; "::"; "30"; "//c"; "/*"; "*/";
          "add_attribute"; "modify_supertype"; "delete_relationship"; "none";
          "one";
        ]
    in
    map (String.concat " ") (list_size (int_range 0 40) word))

let no_crash f src =
  match f src with
  | _ -> true
  | exception Odl.Parser.Parse_error _ -> true
  | exception Odl.Lexer.Lex_error _ -> true
  | exception Core.Op_parser.Parse_error _ -> true

let schema_parser_garbage =
  prop "schema parser survives garbage" garbage (no_crash Odl.Parser.parse_schema)

let schema_parser_tokeny =
  prop "schema parser survives token salad" tokeny (no_crash Odl.Parser.parse_schema)

let op_parser_garbage =
  prop "operation parser survives garbage" garbage (no_crash Core.Op_parser.parse)

let op_parser_tokeny =
  prop "operation parser survives token salad" tokeny (no_crash Core.Op_parser.parse)

let log_parser_garbage =
  prop "log parser survives garbage" garbage (fun src ->
      match Repository.Store.log_of_string src with
      | _ -> true
      | exception Repository.Store.Bad_log _ -> true)

let aliases_parser_garbage =
  prop "aliases parser survives garbage" garbage (fun src ->
      match Core.Aliases.of_string src with
      | _ -> true
      | exception Core.Aliases.Bad_aliases _ -> true)

let engine_survives_garbage =
  (* any input line to the designer produces feedback, never an exception *)
  prop "designer engine survives garbage" ~count:200 tokeny (fun line ->
      let state =
        Designer.Engine.start
          (Result.get_ok (Core.Session.create (Schemas.Emsl.v ())))
      in
      match Designer.Engine.exec_line state line with
      | _, feedback -> feedback <> [] || String.trim line = "")

let store_schema = lazy (Schemas.University.v ())

let serial_parser_garbage =
  prop "store parser survives garbage" garbage (fun src ->
      match Objects.Serial.of_string (Lazy.force store_schema) src with
      | _ -> true
      | exception Objects.Serial.Bad_store _ -> true)

let serial_tokeny =
  QCheck2.Gen.(
    let word =
      oneofl
        [
          "object"; "@1"; "@2"; ":"; "Person"; "{"; "}"; "="; ";"; "->"; ",";
          "name"; "\"x\""; "3"; "3.5"; "'c'"; "true"; "set"; "takes";
        ]
    in
    map (String.concat " ") (list_size (int_range 0 30) word))

let serial_parser_tokeny =
  prop "store parser survives token salad" serial_tokeny (fun src ->
      match Objects.Serial.of_string (Lazy.force store_schema) src with
      | _ -> true
      | exception Objects.Serial.Bad_store _ -> true)

let query_garbage =
  prop "query parser survives garbage" garbage (fun src ->
      match Objects.Query.parse src with
      | _ -> true
      | exception Objects.Query.Bad_query _ -> true)

let query_tokeny =
  QCheck2.Gen.(
    let word =
      oneofl
        [
          "select"; "where"; "and"; "or"; "not"; "like"; "count"; "Person";
          "name"; "."; "="; "!="; "<"; ">"; "<="; ">="; "\"x\""; "3"; "3.5";
          "@1"; "true";
        ]
    in
    map (String.concat " ") (list_size (int_range 0 25) word))

let query_parser_tokeny =
  prop "query parser survives token salad" query_tokeny (fun src ->
      match Objects.Query.parse src with
      | _ -> true
      | exception Objects.Query.Bad_query _ -> true)

(* a parsed store dump reprints and reparses to the same store *)
let serial_roundtrip_closure =
  prop "parsed store dumps round trip" serial_tokeny (fun src ->
      match Objects.Serial.of_string (Lazy.force store_schema) src with
      | exception _ -> true
      | store -> (
          let text = Objects.Serial.to_string store in
          match Objects.Serial.of_string (Lazy.force store_schema) text with
          | reparsed ->
              Objects.Serial.to_string reparsed = text
          | exception _ -> false))

(* the application engine survives arbitrary plausible workloads: no
   exceptions, and every accepted step preserves validity *)
let engine_survives_op_sequences =
  prop "apply survives op sequences" ~count:200 Gen.schema_and_ops
    (fun (schema, steps) ->
      let rec go ws = function
        | [] -> true
        | (kind, op) :: rest -> (
            match Core.Apply.apply ~original:schema ~kind ws op with
            | Error _ -> go ws rest
            | Ok (ws', _) -> Odl.Validate.errors ws' = [] && go ws' rest)
      in
      go schema steps)

(* whatever parses must also print and reparse (parser output is always
   printable) *)
let parse_print_closure =
  prop "parsed garbage round trips" tokeny (fun src ->
      match Odl.Parser.parse_schema src with
      | exception _ -> true
      | schema -> (
          let printed = Odl.Printer.schema_to_string schema in
          match Odl.Parser.parse_schema printed with
          | reparsed -> Core.Recompose.equal_content schema reparsed
          | exception _ -> false))

let tests =
  [
    schema_parser_garbage;
    schema_parser_tokeny;
    op_parser_garbage;
    op_parser_tokeny;
    log_parser_garbage;
    aliases_parser_garbage;
    engine_survives_garbage;
    engine_survives_op_sequences;
    parse_print_closure;
    serial_parser_garbage;
    serial_parser_tokeny;
    query_garbage;
    query_parser_tokeny;
    serial_roundtrip_closure;
  ]
