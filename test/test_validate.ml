open Odl.Validate

let test = Util.test

let valid src =
  Alcotest.(check int) "no errors" 0 (List.length (errors (Util.parse src)))

let expect_error src fragment =
  let s = Util.parse src in
  if not (Util.has_error_containing s fragment) then
    Alcotest.failf "expected error containing %S, got: %s" fragment
      (Fmt.str "%a" Fmt.(list ~sep:(any "; ") pp_diagnostic_line) (check s))

let expect_warning src fragment =
  let s = Util.parse src in
  Alcotest.(check int) "but no errors" 0 (List.length (errors s));
  if not (Util.has_warning_containing s fragment) then
    Alcotest.failf "expected warning containing %S, got: %s" fragment
      (Fmt.str "%a" Fmt.(list ~sep:(any "; ") pp_diagnostic_line) (check s))

let examples_valid () =
  Util.check_valid "university" (Util.university ());
  Util.check_valid "lumber" (Util.lumber ());
  Util.check_valid "emsl" (Util.emsl ());
  Alcotest.(check int) "university warnings" 0
    (List.length (warnings (Util.university ())))

let unknown_supertype () =
  expect_error "interface A : Ghost { };" "unknown supertype"

let unknown_rel_target () =
  expect_error "interface A { relationship Ghost r inverse Ghost::s; };"
    "unknown target"

let missing_inverse () =
  expect_error
    "interface A { relationship B r inverse B::ghost; }; interface B { };"
    "does not exist"

let inverse_wrong_target () =
  expect_error
    {|interface A { relationship B r inverse B::s; };
      interface B { relationship C s inverse C::t; };
      interface C { relationship B t inverse B::s; };|}
    "targets"

let inverse_wrong_back_path () =
  expect_error
    {|interface A { relationship B r inverse B::s; relationship B r2 inverse B::s; };
      interface B { relationship A s inverse A::r2; };|}
    "as its inverse"

let kind_mismatch () =
  expect_error
    {|interface A { part_of relationship set<B> r inverse B::s; };
      interface B { relationship A s inverse A::r; };|}
    "different kinds"

let part_of_shape () =
  expect_error
    {|interface A { part_of relationship set<B> r inverse B::s; };
      interface B { part_of relationship set<A> s inverse A::r; };|}
    "1:N";
  expect_error
    {|interface A { part_of relationship B r inverse B::s; };
      interface B { part_of relationship A s inverse A::r; };|}
    "1:N"

let isa_cycle () =
  expect_error "interface A : B { }; interface B : A { };" "ISA cycle"

let part_of_cycle () =
  expect_error
    {|interface A { part_of relationship set<B> parts inverse B::whole;
                    part_of relationship B whole2 inverse B::parts2; };
      interface B { part_of relationship A whole inverse A::parts;
                    part_of relationship set<A> parts2 inverse A::whole2; };|}
    "part-of cycle"

let instance_of_cycle () =
  expect_error
    {|interface A { instance_of relationship set<B> insts inverse B::gen;
                    instance_of relationship B gen2 inverse B::insts2; };
      interface B { instance_of relationship A gen inverse A::insts;
                    instance_of relationship set<A> insts2 inverse A::gen2; };|}
    "instance-of cycle"

let multi_root_warning () =
  expect_warning
    "interface A { }; interface B { }; interface C : A, B { };"
    "multiple roots"

let branching_chain_warning () =
  expect_warning
    {|interface G { instance_of relationship set<A> ia inverse A::g;
                    instance_of relationship set<B> ib inverse B::g; };
      interface A { instance_of relationship G g inverse G::ia; };
      interface B { instance_of relationship G g inverse G::ib; };|}
    "branches"

let key_unknown_attr () =
  expect_error "interface A { key ghost; attribute int x; };" "key names"

let key_inherited_ok () =
  valid
    "interface A { attribute int x; }; interface B : A { key x; };"

let unknown_attr_domain () =
  expect_error "interface A { attribute Ghost x; };" "unknown type"

let unknown_op_types () =
  expect_error "interface A { Ghost f(); };" "unknown type";
  expect_error "interface A { void f(Ghost g); };" "unknown type"

let order_by_unknown () =
  expect_error
    {|interface A { relationship set<B> r inverse B::s order_by (ghost); };
      interface B { relationship A s inverse A::r; };|}
    "order_by"

let order_by_inherited_ok () =
  valid
    {|interface Base { attribute int x; };
      interface B : Base { relationship A s inverse A::r; };
      interface A { relationship set<B> r inverse B::s order_by (x); };|}

let override_signature_warning () =
  expect_warning
    "interface A { int f(); }; interface B : A { float f(); };"
    "different signature"

let shadow_warning () =
  expect_warning
    "interface A { attribute int x; }; interface B : A { attribute float x; };"
    "different domain"

let duplicate_names () =
  expect_error "interface A { }; interface A { };" "duplicate interface";
  expect_error "interface A { attribute int x; attribute float x; };"
    "duplicate property";
  expect_error
    {|interface A { attribute int x;
        relationship B x inverse B::y; };
      interface B { relationship A y inverse A::x; };|}
    "duplicate property";
  expect_error "interface A { void f(); int f(); };" "duplicate operation"

let duplicate_extent () =
  expect_error "interface A { extent e; }; interface B { extent e; };"
    "duplicate extent"

let self_relationship_valid () =
  valid
    {|interface Course { relationship set<Course> prereqs inverse Course::prereq_of;
                         relationship set<Course> prereq_of inverse Course::prereqs; };|}

let severity_partition () =
  let s = Util.parse "interface A : Ghost { };" in
  Alcotest.(check int) "total = errors + warnings"
    (List.length (check s))
    (List.length (errors s) + List.length (warnings s))

let tests =
  [
    test "bundled examples are valid" examples_valid;
    test "unknown supertype" unknown_supertype;
    test "unknown relationship target" unknown_rel_target;
    test "missing inverse" missing_inverse;
    test "inverse targets wrong type" inverse_wrong_target;
    test "inverse names wrong back path" inverse_wrong_back_path;
    test "kind mismatch" kind_mismatch;
    test "part-of 1:N shape" part_of_shape;
    test "ISA cycle" isa_cycle;
    test "part-of cycle" part_of_cycle;
    test "instance-of cycle" instance_of_cycle;
    test "multi-root warning" multi_root_warning;
    test "branching chain warning" branching_chain_warning;
    test "key with unknown attribute" key_unknown_attr;
    test "key with inherited attribute is fine" key_inherited_ok;
    test "unknown attribute domain" unknown_attr_domain;
    test "unknown operation types" unknown_op_types;
    test "order_by unknown attribute" order_by_unknown;
    test "order_by inherited attribute is fine" order_by_inherited_ok;
    test "override signature warning" override_signature_warning;
    test "shadowing warning" shadow_warning;
    test "duplicate names" duplicate_names;
    test "duplicate extent" duplicate_extent;
    test "self relationship is valid" self_relationship_valid;
    test "severity partition" severity_partition;
  ]
