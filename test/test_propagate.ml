(* Propagation rules in isolation: Propagate.repair on hand-broken schemas. *)

open Odl.Types

let test = Util.test

let repair schema = Core.Propagate.repair schema

let removals events =
  List.filter_map
    (fun e ->
      match e.Core.Change.ev_change with
      | Core.Change.Removed c -> Some c
      | _ -> None)
    events

let no_change_on_valid () =
  let s, events = repair (Util.university ()) in
  Alcotest.(check int) "no events" 0 (List.length events);
  Alcotest.check Util.schema_testable "unchanged" (Util.university ()) s

let drops_dangling_supertype () =
  let s = Util.parse "interface A : Ghost { };" in
  let s', events = repair s in
  Alcotest.(check (list string)) "cleared" []
    (Odl.Schema.get_interface s' "A").i_supertypes;
  Alcotest.(check int) "one event" 1 (List.length events)

let drops_rel_with_missing_target () =
  let s = Util.parse "interface A { relationship Ghost r inverse Ghost::s; };" in
  let s', _ = repair s in
  Alcotest.(check int) "rel dropped" 0
    (List.length (Odl.Schema.get_interface s' "A").i_rels)

let drops_rel_with_missing_inverse () =
  let s =
    Util.parse "interface A { relationship B r inverse B::ghost; }; interface B { };"
  in
  let s', _ = repair s in
  Alcotest.(check int) "rel dropped" 0
    (List.length (Odl.Schema.get_interface s' "A").i_rels)

let drops_attr_with_missing_domain () =
  let s = Util.parse "interface A { attribute Ghost x; attribute int y; };" in
  let s', _ = repair s in
  let a = Odl.Schema.get_interface s' "A" in
  Alcotest.(check bool) "ghost attr gone" false (Odl.Schema.has_attr a "x");
  Alcotest.(check bool) "good attr kept" true (Odl.Schema.has_attr a "y")

let drops_op_with_missing_types () =
  let s =
    Util.parse
      "interface A { Ghost f(); void g(Ghost x); int h(); };"
  in
  let s', _ = repair s in
  let a = Odl.Schema.get_interface s' "A" in
  Alcotest.(check bool) "bad return gone" false (Odl.Schema.has_op a "f");
  Alcotest.(check bool) "bad arg gone" false (Odl.Schema.has_op a "g");
  Alcotest.(check bool) "good op kept" true (Odl.Schema.has_op a "h")

let drops_key_with_invisible_attr () =
  let s = Util.parse "interface A { key ghost; attribute int x; key x; };" in
  let s', events = repair s in
  Alcotest.(check (list (list string))) "only the good key" [ [ "x" ] ]
    (Odl.Schema.get_interface s' "A").i_keys;
  Alcotest.(check bool) "key removal reported" true
    (List.exists
       (function Core.Change.C_key ("A", [ "ghost" ]) -> true | _ -> false)
       (removals events))

let prunes_order_by_entries () =
  let s =
    Util.parse
      {|interface A { attribute int x;
          relationship set<A> r inverse A::r_inv order_by (x, ghost);
          relationship A r_inv inverse A::r; };|}
  in
  let s', _ = repair s in
  let r = Option.get (Odl.Schema.find_rel (Odl.Schema.get_interface s' "A") "r") in
  Alcotest.(check (list string)) "ghost pruned, x kept" [ "x" ] r.rel_order_by

let cascade_to_fixpoint () =
  (* the key on B names an attribute inherited from Ghost-typed A... the
     cascade needs two passes: first the attribute goes, then the key *)
  let s =
    Util.parse
      {|interface A { attribute Ghost x; };
        interface B : A { key x; };|}
  in
  let s', _ = repair s in
  Alcotest.(check (list (list string))) "key gone" []
    (Odl.Schema.get_interface s' "B").i_keys;
  Util.check_valid "fixpoint is valid" s'

let all_events_propagated () =
  let s = Util.parse "interface A : Ghost { attribute Ghost x; };" in
  let _, events = repair s in
  Alcotest.(check bool) "all marked propagated" true
    (List.for_all (fun e -> not e.Core.Change.ev_direct) events)

let tests =
  [
    test "no change on a valid schema" no_change_on_valid;
    test "drops dangling supertype" drops_dangling_supertype;
    test "drops relationship with missing target" drops_rel_with_missing_target;
    test "drops relationship with missing inverse" drops_rel_with_missing_inverse;
    test "drops attribute with missing domain" drops_attr_with_missing_domain;
    test "drops operation with missing types" drops_op_with_missing_types;
    test "drops key naming invisible attribute" drops_key_with_invisible_attr;
    test "prunes order_by entries" prunes_order_by_entries;
    test "cascades to a fixpoint" cascade_to_fixpoint;
    test "repair events are propagated" all_events_propagated;
  ]
