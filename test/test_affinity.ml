(* Schema affinity and the schema library. *)

open Core.Affinity

let test = Util.test

let close ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let self_affinity_is_one () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Odl.Types.s_name ^ " self")
        true
        (close (semantic_affinity s s) 1.0))
    [ Util.university (); Util.lumber (); Schemas.Genome.acedb_v () ]

let disjoint_affinity_is_zero () =
  Alcotest.(check bool) "university vs emsl" true
    (close (semantic_affinity (Util.university ()) (Util.emsl ())) 0.0)

let symmetry () =
  let a = Schemas.Genome.acedb_v () and b = Schemas.Genome.aatdb_v () in
  Alcotest.(check bool) "symmetric" true
    (close (semantic_affinity a b) (semantic_affinity b a))

let bounded () =
  let pairs =
    [
      (Util.university (), Util.lumber ());
      (Schemas.Genome.acedb_v (), Schemas.Genome.sacchdb_v ());
      (Util.emsl (), Schemas.Genome.aatdb_v ());
    ]
  in
  List.iter
    (fun (a, b) ->
      let x = semantic_affinity a b in
      Alcotest.(check bool) "within [0,1]" true (x >= 0.0 && x <= 1.0))
    pairs

let genome_family_is_close () =
  let acedb = Schemas.Genome.acedb_v () in
  let aatdb = Schemas.Genome.aatdb_v () in
  let sacchdb = Schemas.Genome.sacchdb_v () in
  let aa = semantic_affinity acedb aatdb in
  let as_ = semantic_affinity acedb sacchdb in
  Alcotest.(check bool) "family affinity is high" true (aa > 0.6 && as_ > 0.6);
  (* both carry Strain, so ACEDB is closer to SacchDB than to AAtDB *)
  Alcotest.(check bool) "strain databases closer" true (as_ > aa);
  let au = semantic_affinity acedb (Util.university ()) in
  Alcotest.(check bool) "unrelated schema is far" true (au < 0.1)

let interface_similarity_behaviour () =
  let a = Util.parse "interface A { attribute int x; attribute int y; };" in
  let b = Util.parse "interface A { attribute int x; attribute int z; };" in
  let ia = Odl.Schema.get_interface a "A" and ib = Odl.Schema.get_interface b "A" in
  Alcotest.(check bool) "half shared" true (close (interface_similarity ia ib) 0.5);
  (* same member name in different namespaces does not count as shared *)
  let c = Util.parse "interface A { void x(); };" in
  let ic = Odl.Schema.get_interface c "A" in
  Alcotest.(check bool) "attr vs op disjoint" true
    (close (interface_similarity ia ic) 0.0)

let descriptors () =
  let d = descriptor (Util.university ()) in
  Alcotest.(check int) "types" 15 d.d_types;
  Alcotest.(check int) "instance-of ends" 2 d.d_instance_ofs;
  Alcotest.(check int) "isa depth" 3 d.d_isa_depth;
  let dl = descriptor (Util.lumber ()) in
  Alcotest.(check bool) "lumber is part-of heavy" true (dl.d_part_ofs > 20)

let ranking () =
  let library =
    [ Util.university (); Util.lumber (); Schemas.Genome.acedb_v () ]
  in
  (* a sketch of a genome application: a couple of the family's types *)
  let sketch =
    Util.parse
      {|schema Sketch {
          interface Locus { attribute string<20> locus_name; attribute float position; };
          interface Clone { attribute string<20> clone_name; };
        };|}
  in
  match best ~sketch library with
  | Some (winner, a) ->
      Alcotest.(check string) "ACEDB wins" "ACEDB" winner.Odl.Types.s_name;
      Alcotest.(check bool) "positive affinity" true (a > 0.0)
  | None -> Alcotest.fail "library is nonempty"

let matrix_renders () =
  let m =
    matrix
      [ Schemas.Genome.acedb_v (); Schemas.Genome.sacchdb_v ();
        Schemas.Genome.aatdb_v () ]
  in
  Alcotest.(check bool) "has names" true (Str_contains.contains m "SacchDB");
  Alcotest.(check bool) "has unit diagonal" true (Str_contains.contains m "1.000")

let library_on_disk () =
  let dir = Filename.temp_file "swsd_lib" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let lib, failures = Repository.Library.load dir in
      Alcotest.(check int) "empty library" 0 (List.length lib.entries);
      Alcotest.(check int) "no failures" 0 (List.length failures);
      let lib = Repository.Library.store lib (Util.university ()) in
      let lib = Repository.Library.store lib (Schemas.Genome.acedb_v ()) in
      Alcotest.(check int) "in-memory entries" 2 (List.length lib.entries);
      let reloaded, failures = Repository.Library.load dir in
      Alcotest.(check int) "two entries" 2 (List.length reloaded.entries);
      Alcotest.(check int) "no failures" 0 (List.length failures);
      let sketch = Util.parse "interface Student { attribute float gpa; };" in
      (match Repository.Library.search reloaded ~sketch with
      | (e, a) :: _ ->
          Alcotest.(check string) "university first" "University"
            e.e_schema.s_name;
          Alcotest.(check bool) "positive" true (a > 0.0)
      | [] -> Alcotest.fail "search found nothing");
      Alcotest.(check bool) "catalog mentions both" true
        (Str_contains.contains (Repository.Library.catalog reloaded) "ACEDB"))

let library_reports_bad_files () =
  let dir = Filename.temp_file "swsd_lib" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let bad = Filename.concat dir "broken.odl" in
  let oc = open_out bad in
  output_string oc "interface {{{";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Sys.remove bad;
      Sys.rmdir dir)
    (fun () ->
      let lib, failures = Repository.Library.load dir in
      Alcotest.(check int) "no entries" 0 (List.length lib.entries);
      Alcotest.(check int) "one failure" 1 (List.length failures))

let tests =
  [
    test "self affinity is one" self_affinity_is_one;
    test "disjoint affinity is zero" disjoint_affinity_is_zero;
    test "affinity is symmetric" symmetry;
    test "affinity is bounded" bounded;
    test "genome family is close" genome_family_is_close;
    test "interface similarity" interface_similarity_behaviour;
    test "descriptors" descriptors;
    test "library ranking" ranking;
    test "matrix rendering" matrix_renders;
    test "library on disk" library_on_disk;
    test "library reports bad files" library_reports_bad_files;
  ]
