(* Application engine: interface definitions and type properties. *)

open Core.Apply

let test = Util.test
let gh = Core.Concept.Generalization

let err_kind = function
  | Not_allowed _ -> "not_allowed"
  | Unknown _ -> "unknown"
  | Conflict _ -> "conflict"
  | Violation _ -> "violation"

let check_err expected e =
  Alcotest.(check string) "error kind" expected (err_kind e)

let add_type () =
  let s = Util.session_of (Util.university ()) in
  let s, events = Util.apply_ok s "add_type_definition(Lab)" in
  Alcotest.(check bool) "present" true
    (Odl.Schema.mem_interface (Util.workspace s) "Lab");
  Alcotest.(check int) "one direct event" 1 (List.length events);
  Util.check_valid "still valid" (Util.workspace s)

let add_type_conflict () =
  let s = Util.session_of (Util.university ()) in
  check_err "conflict" (Util.apply_err s "add_type_definition(Person)")

let add_type_bad_ident () =
  let s = Util.session_of (Util.university ()) in
  (* 'interface' is an ODL keyword, unusable as a type name *)
  check_err "violation" (Util.apply_err s "add_type_definition(interface)")

let delete_type_unknown () =
  let s = Util.session_of (Util.university ()) in
  check_err "unknown" (Util.apply_err s "delete_type_definition(Ghost)")

let delete_type_reconnects_subtypes () =
  let s = Util.session_of (Util.university ()) in
  let s, events = Util.apply_ok s "delete_type_definition(Graduate)" in
  let w = Util.workspace s in
  (* the Graduate subtypes now hang off Student *)
  Alcotest.(check (list string)) "reconnected" [ "Student" ]
    (Odl.Schema.get_interface w "Doctoral").i_supertypes;
  Alcotest.(check bool) "propagated events" true
    (List.exists (fun e -> not e.Core.Change.ev_direct) events);
  Util.check_valid "still valid" w

let delete_type_cascades_relationships () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "delete_type_definition(Syllabus)" in
  let co = Util.iface s "Course_Offering" in
  Alcotest.(check bool) "described_by gone" false
    (Odl.Schema.has_rel co "described_by");
  Util.check_valid "still valid" (Util.workspace s)

let supertype_add () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Visitor)" in
  let s, _ = Util.apply_ok ~kind:gh s "add_supertype(Visitor, Person)" in
  Alcotest.(check (list string)) "added" [ "Person" ]
    (Util.iface s "Visitor").i_supertypes

let supertype_add_duplicate () =
  let s = Util.session_of (Util.university ()) in
  check_err "conflict" (Util.apply_err ~kind:gh s "add_supertype(Student, Person)")

let supertype_cycle_rejected () =
  let s = Util.session_of (Util.university ()) in
  check_err "violation"
    (Util.apply_err ~kind:gh s "add_supertype(Person, Doctoral)");
  check_err "violation" (Util.apply_err ~kind:gh s "add_supertype(Person, Person)")

let supertype_delete () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok ~kind:gh s "delete_supertype(Undergraduate, Student)" in
  Alcotest.(check (list string)) "gone" []
    (Util.iface s "Undergraduate").i_supertypes;
  Util.check_valid "still valid" (Util.workspace s)

let supertype_delete_absent () =
  let s = Util.session_of (Util.university ()) in
  check_err "unknown"
    (Util.apply_err ~kind:gh s "delete_supertype(Undergraduate, Person)")

let supertype_modify_rewires () =
  let s = Util.session_of (Util.university ()) in
  let s, _ =
    Util.apply_ok ~kind:gh s "modify_supertype(Doctoral, (Graduate), (Student))"
  in
  Alcotest.(check (list string)) "rewired" [ "Student" ]
    (Util.iface s "Doctoral").i_supertypes

let supertype_modify_stale () =
  let s = Util.session_of (Util.university ()) in
  check_err "violation"
    (Util.apply_err ~kind:gh s "modify_supertype(Doctoral, (Person), (Student))")

let supertype_modify_cycle () =
  let s = Util.session_of (Util.university ()) in
  check_err "violation"
    (Util.apply_err ~kind:gh s "modify_supertype(Person, (), (Doctoral))")

let extent_add_delete_modify () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  let s, _ = Util.apply_ok s "add_extent_name(Lab, labs)" in
  Alcotest.(check (option string)) "added" (Some "labs") (Util.iface s "Lab").i_extent;
  let s, _ = Util.apply_ok s "modify_extent_name(Lab, labs, laboratories)" in
  Alcotest.(check (option string)) "modified" (Some "laboratories")
    (Util.iface s "Lab").i_extent;
  let s, _ = Util.apply_ok s "delete_extent_name(Lab, laboratories)" in
  Alcotest.(check (option string)) "deleted" None (Util.iface s "Lab").i_extent

let extent_conflicts () =
  let s = Util.session_of (Util.university ()) in
  (* Person already has an extent *)
  check_err "conflict" (Util.apply_err s "add_extent_name(Person, persons)");
  (* extent names are unique across the schema *)
  let s, _ = Util.apply_ok s "add_type_definition(Lab)" in
  check_err "conflict" (Util.apply_err s "add_extent_name(Lab, people)");
  (* stale old value *)
  check_err "violation"
    (Util.apply_err s "modify_extent_name(Person, wrong, persons)");
  check_err "violation" (Util.apply_err s "delete_extent_name(Person, wrong)")

let key_add_delete_modify () =
  let s = Util.session_of (Util.university ()) in
  let s, _ = Util.apply_ok s "add_key_list(Book, (title, isbn))" in
  Alcotest.(check int) "two keys" 2 (List.length (Util.iface s "Book").i_keys);
  let s, _ = Util.apply_ok s "modify_key_list(Book, (title, isbn), (title))" in
  Alcotest.(check bool) "modified" true
    (List.mem [ "title" ] (Util.iface s "Book").i_keys);
  let s, _ = Util.apply_ok s "delete_key_list(Book, (title))" in
  Alcotest.(check int) "back to one" 1 (List.length (Util.iface s "Book").i_keys)

let key_with_inherited_attribute () =
  let s = Util.session_of (Util.university ()) in
  (* ssn is declared on Person; Student may key on it *)
  let s, _ = Util.apply_ok s "add_key_list(Student, (ssn))" in
  Util.check_valid "still valid" (Util.workspace s)

let key_errors () =
  let s = Util.session_of (Util.university ()) in
  check_err "violation" (Util.apply_err s "add_key_list(Book, (ghost))");
  check_err "conflict" (Util.apply_err s "add_key_list(Book, (isbn))");
  check_err "unknown" (Util.apply_err s "delete_key_list(Book, (ghost))");
  check_err "unknown" (Util.apply_err s "modify_key_list(Book, (ghost), (isbn))");
  check_err "violation" (Util.apply_err s "add_key_list(Book, ())")

let delete_everything_then_rebuild () =
  (* paper section 3.5: in the extreme, the whole shrink wrap schema can be
     deleted and an entirely new schema added *)
  let u = Util.emsl () in
  let s = Util.session_of u in
  let s =
    List.fold_left
      (fun s i ->
        fst (Util.apply_ok s ("delete_type_definition(" ^ i.Odl.Types.i_name ^ ")")))
      s u.s_interfaces
  in
  Alcotest.(check int) "empty" 0
    (List.length (Util.workspace s).s_interfaces);
  let s =
    Util.apply_many s
      [
        "add_type_definition(Fresh)";
        "add_attribute(Fresh, string, 20, label)";
        "add_key_list(Fresh, (label))";
        "add_extent_name(Fresh, freshes)";
      ]
  in
  Util.check_valid "rebuilt" (Util.workspace s);
  let _, _, _, deleted, added = Core.Mapping.summary (Core.Session.mapping s) in
  Alcotest.(check bool) "all deleted" true (deleted > 0);
  (* the new interface and its attribute; keys and extents are interface
     properties, not separate mapping entries *)
  Alcotest.(check int) "two additions" 2 added

let tests =
  [
    test "add type definition" add_type;
    test "add type conflict" add_type_conflict;
    test "add type with keyword name" add_type_bad_ident;
    test "delete unknown type" delete_type_unknown;
    test "delete type reconnects subtypes" delete_type_reconnects_subtypes;
    test "delete type cascades relationships" delete_type_cascades_relationships;
    test "add supertype" supertype_add;
    test "add duplicate supertype" supertype_add_duplicate;
    test "supertype cycles rejected" supertype_cycle_rejected;
    test "delete supertype" supertype_delete;
    test "delete absent supertype" supertype_delete_absent;
    test "modify supertype rewires" supertype_modify_rewires;
    test "modify supertype stale check" supertype_modify_stale;
    test "modify supertype cycle" supertype_modify_cycle;
    test "extent lifecycle" extent_add_delete_modify;
    test "extent conflicts" extent_conflicts;
    test "key lifecycle" key_add_delete_modify;
    test "key on inherited attribute" key_with_inherited_attribute;
    test "key errors" key_errors;
    test "delete everything then rebuild" delete_everything_then_rebuild;
  ]
