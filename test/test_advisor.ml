(* The advisor: remedial suggestions after rejected operations. *)

let test = Util.test
let contains = Str_contains.contains

let suggest ?(kind = Core.Concept.Wagon_wheel) text =
  let u = Util.university () in
  let op = Util.parse_op text in
  match Core.Apply.apply ~original:u ~kind u op with
  | Ok _ -> Alcotest.failf "%s unexpectedly accepted" text
  | Error e -> String.concat "\n" (Core.Advisor.suggest ~original:u u kind op e)

let edit_distance () =
  Alcotest.(check int) "identical" 0 (Core.Advisor.edit_distance "abc" "abc");
  Alcotest.(check int) "one sub" 1 (Core.Advisor.edit_distance "abc" "abd");
  Alcotest.(check int) "insert" 1 (Core.Advisor.edit_distance "abc" "abcd");
  Alcotest.(check int) "delete" 1 (Core.Advisor.edit_distance "abc" "ab");
  Alcotest.(check int) "far" 5 (Core.Advisor.edit_distance "abcde" "vwxyz")

let near_misses () =
  Alcotest.(check (list string)) "nearest first" [ "Person"; "Persons" ]
    (Core.Advisor.near_misses "Persn" [ "Persons"; "Person"; "Book" ])

let wrong_concept_schema () =
  let s = suggest "add_supertype(Student, Book)" in
  Alcotest.(check bool) "points at GH" true
    (contains s "generalization hierarchy");
  Alcotest.(check bool) "gives the focus prefix" true (contains s "gh:")

let typo_in_interface_name () =
  let s = suggest "delete_type_definition(Studnet)" in
  Alcotest.(check bool) "did-you-mean" true (contains s "did you mean");
  Alcotest.(check bool) "offers Student" true (contains s "Student")

let unknown_interface_add_first () =
  let s = suggest "add_attribute(Warehouse, int, none, bays)" in
  Alcotest.(check bool) "suggests adding it" true
    (contains s "add_type_definition(Warehouse)")

let typo_in_member_name () =
  let s = suggest "delete_attribute(Person, nmae)" in
  Alcotest.(check bool) "did-you-mean member" true (contains s "Person.name")

let conflict_hint () =
  let s = suggest "add_type_definition(Person)" in
  Alcotest.(check bool) "explains name equivalence" true
    (contains s "name equivalence")

let stability_hint () =
  let s =
    suggest ~kind:Core.Concept.Generalization
      "modify_attribute(Student, gpa, Book)"
  in
  Alcotest.(check bool) "lists the ISA line" true
    (contains s "legal destinations");
  Alcotest.(check bool) "includes Person" true (contains s "Person");
  Alcotest.(check bool) "excludes Book" false (contains s "Book")

let target_move_hint () =
  let s =
    suggest ~kind:Core.Concept.Generalization
      "modify_relationship_target_type(Department, has, Employee, Book)"
  in
  Alcotest.(check bool) "legal new targets" true (contains s "legal new targets");
  Alcotest.(check bool) "mentions Person" true (contains s "Person")

let stale_value_hint () =
  let s = suggest "modify_extent_name(Person, wrong, p)" in
  Alcotest.(check bool) "reports current value" true (contains s "stale")

let cycle_hint () =
  let s = suggest ~kind:Core.Concept.Generalization "add_supertype(Person, Doctoral)" in
  Alcotest.(check bool) "rewire advice" true (contains s "re-wire")

let suggestions_never_raise () =
  (* advisor total over all specimen operations and both error-producing
     kinds *)
  let u = Util.university () in
  List.iter
    (fun text ->
      let op = Util.parse_op text in
      List.iter
        (fun kind ->
          match Core.Apply.apply ~original:u ~kind u op with
          | Ok _ -> ()
          | Error e -> ignore (Core.Advisor.suggest ~original:u u kind op e))
        Core.Concept.
          [ Wagon_wheel; Generalization; Aggregation; Instance_chain ])
    [
      "add_supertype(A, B)"; "delete_type_definition(Nope)";
      "modify_attribute(Student, gpa, Ghost)";
      "modify_part_of_cardinality(X, y, set, list)";
      "add_relationship(A, set<B>, r, s)";
    ]

let tests =
  [
    test "edit distance" edit_distance;
    test "near misses" near_misses;
    test "wrong concept schema" wrong_concept_schema;
    test "typo in interface name" typo_in_interface_name;
    test "unknown interface: add first" unknown_interface_add_first;
    test "typo in member name" typo_in_member_name;
    test "conflict hint" conflict_hint;
    test "stability hint lists the ISA line" stability_hint;
    test "target move hint" target_move_hint;
    test "stale value hint" stale_value_hint;
    test "cycle hint" cycle_hint;
    test "suggestions never raise" suggestions_never_raise;
  ]
