(* ER-model translation. *)

open Core.Er

let test = Util.test
let contains = Str_contains.contains

let u_model = lazy (of_schema (Util.university ()))

let entities_and_isa () =
  let m = Lazy.force u_model in
  Alcotest.(check int) "one entity per interface" 15 (List.length m.m_entities);
  let student = List.find (fun e -> e.e_name = "Student") m.m_entities in
  Alcotest.(check (list string)) "ISA kept" [ "Person" ] student.e_supertypes

let keys_marked () =
  let m = Lazy.force u_model in
  let person = List.find (fun e -> e.e_name = "Person") m.m_entities in
  let ssn = List.find (fun a -> a.ea_name = "ssn") person.e_attributes in
  let name = List.find (fun a -> a.ea_name = "name") person.e_attributes in
  Alcotest.(check bool) "ssn is key" true ssn.ea_key;
  Alcotest.(check bool) "name is not" false name.ea_key

let multivalued_attributes () =
  let s = Util.parse "interface A { attribute set<string> tags; attribute int n; };" in
  let m = of_schema s in
  let a = List.find (fun e -> e.e_name = "A") m.m_entities in
  Alcotest.(check bool) "tags multivalued" true
    (List.find (fun x -> x.ea_name = "tags") a.e_attributes).ea_multivalued;
  Alcotest.(check bool) "n single" false
    (List.find (fun x -> x.ea_name = "n") a.e_attributes).ea_multivalued

let relationships_once () =
  let m = Lazy.force u_model in
  (* one ER relationship per ODL pair (the university schema has 20
     relationship ends = 10 pairs) *)
  Alcotest.(check int) "ten relationship types" 10
    (List.length m.m_relationships)

let cardinalities () =
  let m = Lazy.force u_model in
  let works =
    List.find
      (fun r -> r.er_left_role = "has" || r.er_right_role = "has")
      m.m_relationships
  in
  (* Department has set<Employee>: the Department side sees (0,N) employees;
     an employee works in (0,1) department *)
  let dept_card =
    if fst works.er_left = "Department" then snd works.er_left
    else snd works.er_right
  in
  let emp_card =
    if fst works.er_left = "Employee" then snd works.er_left
    else snd works.er_right
  in
  Alcotest.(check string) "department end" "(0,N)" (card_to_string dept_card);
  Alcotest.(check string) "employee end" "(0,1)" (card_to_string emp_card)

let part_of_mandatory () =
  let m = of_schema (Util.lumber ()) in
  let structures =
    List.find
      (fun r -> r.er_left_role = "structures" || r.er_right_role = "structures")
      m.m_relationships
  in
  Alcotest.(check bool) "aggregation kind" true
    (structures.er_kind = Er_aggregation);
  (* a structure belongs to exactly one house *)
  let part_card =
    if fst structures.er_left = "Structure" then snd structures.er_left
    else snd structures.er_right
  in
  Alcotest.(check string) "mandatory part" "(1,1)" (card_to_string part_card)

let instance_of_kind () =
  let m = of_schema (Util.emsl ()) in
  Alcotest.(check bool) "instantiation relationships present" true
    (List.exists (fun r -> r.er_kind = Er_instantiation) m.m_relationships)

let operations_counted () =
  let m = Lazy.force u_model in
  Alcotest.(check int) "dropped operations" 6 m.m_dropped_operations

let rendering () =
  let text = to_string (Lazy.force u_model) in
  List.iter
    (fun frag -> Alcotest.(check bool) ("has " ^ frag) true (contains text frag))
    [
      "ER model University"; "Student ISA Person"; "_ssn_";
      "<<instance-of>>"; "(0,N)"; "operation(s) have no ER counterpart";
    ]

let summary_counts () =
  let e, r, a = summary (Lazy.force u_model) in
  Alcotest.(check int) "entities" 15 e;
  Alcotest.(check bool) "relationships" true (r >= 9);
  Alcotest.(check bool) "attributes" true (a > 25)

let all_examples_translate () =
  List.iter
    (fun (name, s) ->
      let m = of_schema s in
      Alcotest.(check int) (name ^ " entity count")
        (List.length s.s_interfaces)
        (List.length m.m_entities);
      Alcotest.(check bool) (name ^ " renders") true
        (String.length (to_string m) > 100))
    [
      ("university", Util.university ()); ("lumber", Util.lumber ());
      ("vlsi", Schemas.Vlsi.v ()); ("commerce", Schemas.Commerce.v ());
    ]

let tests =
  [
    test "entities and ISA" entities_and_isa;
    test "keys marked" keys_marked;
    test "multivalued attributes" multivalued_attributes;
    test "one relationship per pair" relationships_once;
    test "cardinalities" cardinalities;
    test "part-of is mandatory on the part" part_of_mandatory;
    test "instance-of kind" instance_of_kind;
    test "operations counted" operations_counted;
    test "rendering" rendering;
    test "summary counts" summary_counts;
    test "all examples translate" all_examples_translate;
  ]
