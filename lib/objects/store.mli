(** An in-memory object store conforming to an extended-ODL schema.

    Mutations are conformance-checked: typed object creation, domain- and
    size-checked attribute writes, and relationship links that maintain
    their inverses and respect to-one cardinalities (linking a to-one end
    displaces its previous target).  All operations are pure — they return
    a new store. *)

open Odl.Types

type obj = {
  o_id : Value.oid;
  o_type : type_name;
  o_attrs : (string * Value.t) list;  (** set attributes, by name *)
  o_links : (string * Value.oid list) list;  (** links, by traversal path *)
}

type t

val create : schema -> t
val schema : t -> schema
val find : t -> Value.oid -> obj option
val objects : t -> obj list
val count : t -> int

val objects_of_type : ?include_subtypes:bool -> t -> type_name -> obj list
(** The extent of a type (subtypes included by default). *)

val new_object : t -> type_name -> (t * Value.oid, string) result
val set_attr : t -> Value.oid -> string -> Value.t -> (t, string) result
val get_attr : t -> Value.oid -> string -> Value.t option

val link : t -> Value.oid -> string -> Value.oid -> (t, string) result
(** [link t src path dst] — [path] must be visible on [src]'s type and
    [dst] must conform to its target; the inverse end is maintained. *)

val unlink : t -> Value.oid -> string -> Value.oid -> (t, string) result
val linked : t -> Value.oid -> string -> Value.oid list

val delete : t -> Value.oid -> (t, string) result
(** Removes the object and every link end pointing at it. *)

val restore : t -> obj -> t
(** Re-insert an existing object keeping its identity (migration). *)

val scrub_asymmetric : t -> t
(** Drop link ends whose far end no longer links back (migration). *)

val set_links : t -> Value.oid -> string -> Value.oid list -> t
(** Raw bulk link write, bypassing inverse maintenance; callers must restore
    symmetry (used by tests and migration plumbing). *)

val dump : t -> string
(** Deterministic text rendering of every object. *)
