(** An OQL subset over object stores.

    ODMG pairs ODL with OQL; this is the query-side counterpart of the
    instance layer — enough OQL to inspect populated stores and to write
    assertions over them:

    {v
    select Person                                -- the extent, subtypes included
    select Person where name = "Alice"           -- predicate on a path
    select Student where advised_by.name = "A"   -- paths traverse links
    select Course_Offering where taken_by.count > 2
    select Person where name like "Al"           -- substring
    select Person where gpa >= 3.5 and name != "Bob"
    v}

    A {e path} is a dot-separated sequence of attribute or relationship
    names starting from the selected object; traversing a to-many link (or
    applying a predicate to one) means {e some} target satisfies the rest of
    the path (existential semantics, as OQL's implicit quantification).  The
    pseudo-member [count] ends a path with the number of linked targets. *)

exception Bad_query of string

type comparison = Eq | Neq | Lt | Leq | Gt | Geq | Like

type predicate =
  | Compare of string list * comparison * Value.t  (** path, op, literal *)
  | Count of string list * comparison * int  (** path.count op n *)
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type t = {
  q_type : string;  (** the extent selected from *)
  q_where : predicate option;
}

(* --- evaluation ----------------------------------------------------------- *)

let compare_values op (a : Value.t) (b : Value.t) =
  let num = function
    | Value.V_int n -> Some (float_of_int n)
    | Value.V_float f -> Some f
    | _ -> None
  in
  match op with
  | Like -> (
      match (a, b) with
      | Value.V_string s, Value.V_string sub -> Core.Str_helpers.contains s sub
      | _ -> false)
  | Eq | Neq -> (
      let eq =
        match (num a, num b) with
        | Some x, Some y -> x = y
        | _ -> Value.equal a b
      in
      match op with Eq -> eq | _ -> not eq)
  | Lt | Leq | Gt | Geq -> (
      let cmp =
        match (num a, num b) with
        | Some x, Some y -> Some (compare x y)
        | None, None -> (
            match (a, b) with
            | Value.V_string x, Value.V_string y -> Some (compare x y)
            | _ -> None)
        | _ -> None
      in
      match cmp with
      | None -> false
      | Some c -> (
          match op with
          | Lt -> c < 0
          | Leq -> c <= 0
          | Gt -> c > 0
          | Geq -> c >= 0
          | Eq | Neq | Like -> false))

(* every value reachable from [oid] along [path]; to-many links fan out *)
let rec walk store oid path : Value.t list =
  match path with
  | [] -> []
  | [ last ] -> (
      match Store.get_attr store oid last with
      | Some v -> [ v ]
      | None ->
          Store.linked store oid last |> List.map (fun o -> Value.V_ref o))
  | step :: rest ->
      let via_links =
        Store.linked store oid step
        |> List.concat_map (fun next -> walk store next rest)
      in
      let via_ref_attr =
        match Store.get_attr store oid step with
        | Some (Value.V_ref next) -> walk store next rest
        | _ -> []
      in
      via_links @ via_ref_attr

let count_at store oid path =
  match List.rev path with
  | [] -> 0
  | _ ->
      (* the count of the final link set reached by the path *)
      let prefix = List.rev (List.tl (List.rev path)) in
      let last = List.nth path (List.length path - 1) in
      let anchors = if prefix = [] then [ oid ] else
          walk store oid prefix
          |> List.filter_map (function Value.V_ref o -> Some o | _ -> None)
      in
      List.fold_left
        (fun acc o -> acc + List.length (Store.linked store o last))
        0 anchors

let rec eval store oid = function
  | Compare (path, op, lit) ->
      List.exists (fun v -> compare_values op v lit) (walk store oid path)
  | Count (path, op, n) ->
      compare_values op
        (Value.V_int (count_at store oid path))
        (Value.V_int n)
  | And (p, q) -> eval store oid p && eval store oid q
  | Or (p, q) -> eval store oid p || eval store oid q
  | Not p -> not (eval store oid p)

(** Run a query: the matching objects, in oid order. *)
let run store q =
  Store.objects_of_type store q.q_type
  |> List.filter (fun (o : Store.obj) ->
         match q.q_where with
         | None -> true
         | Some p -> eval store o.o_id p)

(* --- parsing -------------------------------------------------------------- *)

type tok =
  | T_ident of string
  | T_int of int
  | T_float of float
  | T_string of string
  | T_char of char
  | T_ref of int
  | T_op of string  (* one of = != < <= > >= . *)
  | T_eof

let scan src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let fail msg = raise (Bad_query (Printf.sprintf "%s (at byte %d)" msg !i)) in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\r' | '\n' -> incr i
    | '.' ->
        emit (T_op ".");
        incr i
    | '=' ->
        emit (T_op "=");
        incr i
    | '!' when !i + 1 < n && src.[!i + 1] = '=' ->
        emit (T_op "!=");
        i := !i + 2
    | '<' | '>' ->
        let base = String.make 1 src.[!i] in
        incr i;
        if !i < n && src.[!i] = '=' then begin
          emit (T_op (base ^ "="));
          incr i
        end
        else emit (T_op base)
    | '@' ->
        incr i;
        let start = !i in
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
        if !i = start then fail "reference without a number";
        emit (T_ref (int_of_string (String.sub src start (!i - start))))
    | '"' ->
        incr i;
        let buf = Buffer.create 16 in
        let rec go () =
          if !i >= n then fail "unterminated string"
          else
            match src.[!i] with
            | '"' -> incr i
            | '\\' ->
                incr i;
                if !i >= n then fail "dangling escape";
                Buffer.add_char buf (if src.[!i] = 'n' then '\n' else src.[!i]);
                incr i;
                go ()
            | c ->
                Buffer.add_char buf c;
                incr i;
                go ()
        in
        go ();
        emit (T_string (Buffer.contents buf))
    | '\'' ->
        if !i + 2 < n && src.[!i + 2] = '\'' then begin
          emit (T_char src.[!i + 1]);
          i := !i + 3
        end
        else fail "malformed character literal"
    | c when (c >= '0' && c <= '9') || c = '-' ->
        let start = !i in
        incr i;
        let is_floaty = ref false in
        while
          !i < n
          &&
          match src.[!i] with
          | '0' .. '9' -> true
          | '.' ->
              (* a dot is part of the number only when a digit follows *)
              !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9'
              && begin
                   is_floaty := true;
                   true
                 end
          | 'e' | 'E' ->
              is_floaty := true;
              true
          | _ -> false
        do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        if !is_floaty then
          match float_of_string_opt text with
          | Some f -> emit (T_float f)
          | None -> fail (Printf.sprintf "malformed number %S" text)
        else (
          match int_of_string_opt text with
          | Some n -> emit (T_int n)
          | None -> fail (Printf.sprintf "malformed number %S" text))
    | c when Odl.Names.is_ident_start c ->
        let start = !i in
        while !i < n && Odl.Names.is_ident_char src.[!i] do incr i done;
        emit (T_ident (String.sub src start (!i - start)))
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit T_eof;
  List.rev !toks

type cur = { mutable toks : tok list }

let peek c = match c.toks with [] -> T_eof | t :: _ -> t

let next c =
  match c.toks with
  | [] -> T_eof
  | t :: rest ->
      c.toks <- rest;
      t

let ident c =
  match next c with
  | T_ident s -> s
  | _ -> raise (Bad_query "expected an identifier")

let parse_path c =
  let rec go acc =
    match peek c with
    | T_op "." ->
        ignore (next c);
        go (ident c :: acc)
    | _ -> List.rev acc
  in
  go [ ident c ]

let parse_comparison c =
  match next c with
  | T_op "=" -> Eq
  | T_op "!=" -> Neq
  | T_op "<" -> Lt
  | T_op "<=" -> Leq
  | T_op ">" -> Gt
  | T_op ">=" -> Geq
  | T_ident "like" -> Like
  | _ -> raise (Bad_query "expected a comparison operator")

let parse_literal c =
  match next c with
  | T_int n -> Value.V_int n
  | T_float f -> Value.V_float f
  | T_string s -> Value.V_string s
  | T_char ch -> Value.V_char ch
  | T_ref oid -> Value.V_ref oid
  | T_ident "true" -> Value.V_bool true
  | T_ident "false" -> Value.V_bool false
  | _ -> raise (Bad_query "expected a literal")

let rec parse_predicate c =
  let lhs = parse_conjunct c in
  match peek c with
  | T_ident "or" ->
      ignore (next c);
      Or (lhs, parse_predicate c)
  | _ -> lhs

and parse_conjunct c =
  let lhs = parse_atom c in
  match peek c with
  | T_ident "and" ->
      ignore (next c);
      And (lhs, parse_conjunct c)
  | _ -> lhs

and parse_atom c =
  match peek c with
  | T_ident "not" ->
      ignore (next c);
      Not (parse_atom c)
  | _ -> (
      let path = parse_path c in
      match List.rev path with
      | "count" :: rev_prefix ->
          let op = parse_comparison c in
          (match parse_literal c with
          | Value.V_int n -> Count (List.rev rev_prefix, op, n)
          | _ -> raise (Bad_query "count compares against an integer"))
      | _ ->
          let op = parse_comparison c in
          Compare (path, op, parse_literal c))

(** Parse a query.  @raise Bad_query on syntax errors. *)
let parse src =
  let c = { toks = scan src } in
  (match next c with
  | T_ident "select" -> ()
  | _ -> raise (Bad_query "a query starts with 'select'"));
  let q_type = ident c in
  let q_where =
    match peek c with
    | T_ident "where" ->
        ignore (next c);
        Some (parse_predicate c)
    | _ -> None
  in
  (match next c with
  | T_eof -> ()
  | _ -> raise (Bad_query "trailing input after the query"));
  { q_type; q_where }

(** Parse and run in one step. *)
let query store src = run store (parse src)
