(** Whole-store validation: reference integrity, link symmetry, to-one
    cardinality, key uniqueness within extents, and the mandatory-whole rule
    for part-of / instance-of (a part or instance object belongs to exactly
    one whole / generic). *)

type problem = {
  p_oid : Value.oid;
  p_subject : string;  (** e.g. ["Employee.works_in_a"] *)
  p_message : string;
}

val to_string : problem -> string

val check : Store.t -> problem list
val is_consistent : Store.t -> bool
