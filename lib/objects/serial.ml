(** Textual persistence for object stores.

    One object per block, human-readable and diff-friendly, in the spirit of
    the other persisted artifacts (ODL text, operation logs):

    {v
    object @1 : Department {
      dept_name = "CSE";
      has -> @2, @5;
    }
    v}

    Values: integers, floats, [true]/[false], ['c'] characters, ["..."]
    strings with [\\]-escapes, [@n] references, and
    [set{...}]/[list{...}]/[bag{...}]/[array{...}] collections.  Blank
    lines and [# ...] comment lines are skipped. *)

open Odl.Types

exception Bad_store of string

(* --- writing -------------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec value_to_text = function
  | Value.V_int n -> string_of_int n
  | Value.V_float f ->
      (* keep a distinguishing mark so floats parse back as floats *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then s
      else s ^ "."
  | Value.V_string s -> "\"" ^ escape_string s ^ "\""
  | Value.V_char c -> Printf.sprintf "'%c'" c
  | Value.V_bool b -> string_of_bool b
  | Value.V_ref oid -> Printf.sprintf "@%d" oid
  | Value.V_coll (k, vs) ->
      Printf.sprintf "%s{%s}" (collection_kind_name k)
        (String.concat ", " (List.map value_to_text vs))

let to_string store =
  Store.objects store
  |> List.map (fun (o : Store.obj) ->
         let attrs =
           o.o_attrs
           |> List.rev
           |> List.map (fun (n, v) ->
                  Printf.sprintf "  %s = %s;" n (value_to_text v))
         in
         let links =
           o.o_links
           |> List.rev
           |> List.filter (fun (_, ts) -> ts <> [])
           |> List.map (fun (p, ts) ->
                  Printf.sprintf "  %s -> %s;" p
                    (String.concat ", " (List.map (Printf.sprintf "@%d") ts)))
         in
         String.concat "\n"
           ((Printf.sprintf "object @%d : %s {" o.o_id o.o_type :: attrs)
           @ links
           @ [ "}" ]))
  |> String.concat "\n\n"

(* --- reading -------------------------------------------------------------- *)

(* a dedicated little scanner: the ODL lexer has no string/char/float
   literals *)
type tok =
  | T_ident of string
  | T_int of int
  | T_float of float
  | T_string of string
  | T_char of char
  | T_ref of int
  | T_punct of char  (* one of { } = ; , > - *)
  | T_arrow
  | T_eof

let scan src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let fail msg = raise (Bad_store (Printf.sprintf "%s (at byte %d)" msg !i)) in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\r' | '\n' -> incr i
    | '#' -> while !i < n && src.[!i] <> '\n' do incr i done
    | '{' | '}' | '=' | ';' | ',' | ':' ->
        emit (T_punct src.[!i]);
        incr i
    | '-' when !i + 1 < n && src.[!i + 1] = '>' ->
        emit T_arrow;
        i := !i + 2
    | '@' ->
        incr i;
        let start = !i in
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
        if !i = start then fail "reference without a number";
        emit (T_ref (int_of_string (String.sub src start (!i - start))))
    | '"' ->
        incr i;
        let buf = Buffer.create 16 in
        let rec go () =
          match peek () with
          | None -> fail "unterminated string"
          | Some '"' -> incr i
          | Some '\\' ->
              incr i;
              (match peek () with
              | Some 'n' -> Buffer.add_char buf '\n'
              | Some c -> Buffer.add_char buf c
              | None -> fail "dangling escape");
              incr i;
              go ()
          | Some c ->
              Buffer.add_char buf c;
              incr i;
              go ()
        in
        go ();
        emit (T_string (Buffer.contents buf))
    | '\'' ->
        if !i + 2 < n && src.[!i + 2] = '\'' then begin
          emit (T_char src.[!i + 1]);
          i := !i + 3
        end
        else fail "malformed character literal"
    | c when (c >= '0' && c <= '9') || c = '-' ->
        let start = !i in
        incr i;
        let is_floaty = ref false in
        while
          !i < n
          &&
          match src.[!i] with
          | '0' .. '9' -> true
          | '.' | 'e' | 'E' | '+' | '-' ->
              is_floaty := true;
              true
          | _ -> false
        do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        if !is_floaty then
          match float_of_string_opt text with
          | Some f -> emit (T_float f)
          | None -> fail (Printf.sprintf "malformed number %S" text)
        else (
          match int_of_string_opt text with
          | Some n -> emit (T_int n)
          | None -> fail (Printf.sprintf "malformed number %S" text))
    | c when Odl.Names.is_ident_start c ->
        let start = !i in
        while !i < n && Odl.Names.is_ident_char src.[!i] do incr i done;
        emit (T_ident (String.sub src start (!i - start)))
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit T_eof;
  List.rev !toks

(* cursor over the token list *)
type cur = { mutable toks : tok list }

let peek_t c = match c.toks with [] -> T_eof | t :: _ -> t
let next_t c =
  match c.toks with
  | [] -> T_eof
  | t :: rest ->
      c.toks <- rest;
      t

let expect_punct c ch =
  match next_t c with
  | T_punct p when p = ch -> ()
  | _ -> raise (Bad_store (Printf.sprintf "expected %C" ch))

let expect_ident c name =
  match next_t c with
  | T_ident s when String.equal s name -> ()
  | _ -> raise (Bad_store ("expected " ^ name))

let rec parse_value c =
  match next_t c with
  | T_int n -> Value.V_int n
  | T_float f -> Value.V_float f
  | T_string s -> Value.V_string s
  | T_char ch -> Value.V_char ch
  | T_ref oid -> Value.V_ref oid
  | T_ident "true" -> Value.V_bool true
  | T_ident "false" -> Value.V_bool false
  | T_ident kind -> (
      match Odl.Parser.collection_of_ident kind with
      | Some k ->
          expect_punct c '{';
          let rec elems acc =
            match peek_t c with
            | T_punct '}' ->
                ignore (next_t c);
                List.rev acc
            | _ -> (
                let v = parse_value c in
                match peek_t c with
                | T_punct ',' ->
                    ignore (next_t c);
                    elems (v :: acc)
                | _ -> elems (v :: acc))
          in
          Value.V_coll (k, elems [])
      | None -> raise (Bad_store ("unexpected identifier " ^ kind)))
  | _ -> raise (Bad_store "expected a value")

let parse_ref_list c =
  let rec go acc =
    match next_t c with
    | T_ref oid -> (
        match peek_t c with
        | T_punct ',' ->
            ignore (next_t c);
            go (oid :: acc)
        | _ -> List.rev (oid :: acc))
    | _ -> raise (Bad_store "expected a reference")
  in
  go []

let parse_object c =
  expect_ident c "object";
  let oid =
    match next_t c with
    | T_ref oid -> oid
    | _ -> raise (Bad_store "expected @id after 'object'")
  in
  expect_punct c ':';
  let type_name =
    match next_t c with
    | T_ident t -> t
    | _ -> raise (Bad_store "expected a type name")
  in
  expect_punct c '{';
  let attrs = ref [] and links = ref [] in
  let rec members () =
    match peek_t c with
    | T_punct '}' -> ignore (next_t c)
    | T_ident name -> (
        ignore (next_t c);
        match next_t c with
        | T_punct '=' ->
            let v = parse_value c in
            expect_punct c ';';
            attrs := (name, v) :: !attrs;
            members ()
        | T_arrow ->
            let refs = parse_ref_list c in
            expect_punct c ';';
            links := (name, refs) :: !links;
            members ()
        | _ -> raise (Bad_store ("expected '=' or '->' after " ^ name)))
    | _ -> raise (Bad_store "expected a member or '}'")
  in
  members ();
  {
    Store.o_id = oid;
    o_type = type_name;
    o_attrs = !attrs;
    o_links = !links;
  }

(** Parse a store dump against [schema].
    @raise Bad_store on malformed input.  The result is {e not} checked for
    consistency — run [Check.check] on it. *)
let of_string schema src =
  let c = { toks = scan src } in
  let rec objects acc =
    match peek_t c with
    | T_eof -> List.rev acc
    | _ -> objects (parse_object c :: acc)
  in
  let objs = objects [] in
  List.fold_left Store.restore (Store.create schema) objs
