(** Whole-store validation: the instance-level counterpart of
    [Odl.Validate].

    Mutation-time checks in {!Store} keep individual writes sound; these
    checks judge the store as a whole — reference integrity, link symmetry,
    cardinality, key uniqueness within extents, and the mandatory-whole rule
    of part-of (a part object must belong to exactly one whole, matching the
    ER translation's (1,1)). *)

open Odl.Types
module Schema = Odl.Schema

type problem = {
  p_oid : Value.oid;
  p_subject : string;  (** e.g. ["Employee.works_in_a"] *)
  p_message : string;
}

let problem p_oid p_subject p_message = { p_oid; p_subject; p_message }

let to_string p = Printf.sprintf "@%d %s: %s" p.p_oid p.p_subject p.p_message

let isa schema sub super =
  String.equal sub super || List.mem super (Schema.ancestors schema sub)

let check_object store (o : Store.obj) =
  let schema = Store.schema store in
  match Schema.find_interface schema o.o_type with
  | None -> [ problem o.o_id o.o_type "object of a type absent from the schema" ]
  | Some _ ->
      let visible_rels = Schema.visible_rels schema o.o_type in
      let sub name = o.o_type ^ "." ^ name in
      (* attribute values still conform (bulk edits / migration may have
         changed the schema under the data) *)
      let attr_problems =
        o.o_attrs
        |> List.concat_map (fun (name, v) ->
               match
                 List.find_opt
                   (fun a -> String.equal a.attr_name name)
                   (Schema.visible_attrs schema o.o_type)
               with
               | None ->
                   [ problem o.o_id (sub name) "value for an attribute the type no longer has" ]
               | Some a ->
                   let type_of oid =
                     Option.map (fun x -> x.Store.o_type) (Store.find store oid)
                   in
                   if
                     not
                       (Value.conforms ~type_of ~isa:(isa schema) v a.attr_type
                       && Value.size_ok v a.attr_size)
                   then
                     [ problem o.o_id (sub name) "value does not conform to the domain" ]
                   else [])
      in
      let link_problems =
        o.o_links
        |> List.concat_map (fun (path, targets) ->
               match
                 List.find_opt (fun r -> String.equal r.rel_name path) visible_rels
               with
               | None when targets = [] -> []
               | None ->
                   [ problem o.o_id (sub path) "links through a relationship the type no longer has" ]
               | Some r ->
                   let dangling =
                     targets
                     |> List.filter_map (fun oid ->
                            match Store.find store oid with
                            | None ->
                                Some
                                  (problem o.o_id (sub path)
                                     (Printf.sprintf "dangling reference @%d" oid))
                            | Some target ->
                                if not (isa schema target.o_type r.rel_target)
                                then
                                  Some
                                    (problem o.o_id (sub path)
                                       (Printf.sprintf
                                          "@%d is a %s, not a %s" oid
                                          target.o_type r.rel_target))
                                else None)
                   in
                   let cardinality =
                     if r.rel_card = None && List.length targets > 1 then
                       [
                         problem o.o_id (sub path)
                           (Printf.sprintf "to-one end holds %d targets"
                              (List.length targets));
                       ]
                     else []
                   in
                   let symmetry =
                     targets
                     |> List.filter_map (fun oid ->
                            match Store.find store oid with
                            | None -> None
                            | Some target ->
                                let back =
                                  Option.value
                                    (List.assoc_opt r.rel_inverse target.o_links)
                                    ~default:[]
                                in
                                if List.mem o.o_id back then None
                                else
                                  Some
                                    (problem o.o_id (sub path)
                                       (Printf.sprintf
                                          "@%d does not link back through %s"
                                          oid r.rel_inverse)))
                   in
                   dangling @ cardinality @ symmetry)
      in
      let mandatory_whole =
        (* every part object must belong to exactly one whole *)
        visible_rels
        |> List.concat_map (fun r ->
               match role_of_relationship r with
               | Part_end | Instance_end ->
                   let n =
                     List.length
                       (Option.value (List.assoc_opt r.rel_name o.o_links)
                          ~default:[])
                   in
                   if n = 1 then []
                   else
                     [
                       problem o.o_id (sub r.rel_name)
                         (Printf.sprintf
                            "a %s must have exactly one %s (has %d)"
                            o.o_type r.rel_target n);
                     ]
               | Assoc_end | Whole_end | Generic_end -> [])
      in
      attr_problems @ link_problems @ mandatory_whole

(* key uniqueness: within an extent (a type and its subtypes), no two
   objects share the values of a declared key *)
let check_keys store =
  let schema = Store.schema store in
  schema.s_interfaces
  |> List.concat_map (fun i ->
         i.i_keys
         |> List.concat_map (fun key ->
                let members = Store.objects_of_type store i.i_name in
                let key_values o =
                  List.map (fun a -> List.assoc_opt a o.Store.o_attrs) key
                in
                let seen = Hashtbl.create 8 in
                members
                |> List.filter_map (fun o ->
                       let kv = key_values o in
                       if List.exists Option.is_none kv then None
                         (* unset key attributes do not participate *)
                       else
                         let repr =
                           String.concat "|"
                             (List.map
                                (function
                                  | Some v -> Value.to_string v
                                  | None -> "")
                                kv)
                         in
                         if Hashtbl.mem seen repr then
                           Some
                             (problem o.o_id
                                (i.i_name ^ " key (" ^ String.concat ", " key ^ ")")
                                "duplicate key value in the extent")
                         else begin
                           Hashtbl.add seen repr ();
                           None
                         end)))

(** Every problem in the store. *)
let check store =
  List.concat_map (check_object store) (Store.objects store) @ check_keys store

let is_consistent store = check store = []
