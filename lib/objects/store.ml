(** An in-memory object store conforming to an extended-ODL schema.

    The store enforces conformance {e at mutation time}: objects are created
    with a known type, attribute writes are type- and size-checked against
    the visible (inherited) attributes, and relationship links maintain
    their inverses and respect to-one cardinalities.  {!Check} adds the
    whole-store validation (keys, mandatory wholes, dangling refs) used
    after bulk edits and after migration. *)

open Odl.Types
module Schema = Odl.Schema
module IntMap = Map.Make (Int)

type obj = {
  o_id : Value.oid;
  o_type : type_name;
  o_attrs : (string * Value.t) list;  (** set attributes, by name *)
  o_links : (string * Value.oid list) list;  (** links, by traversal path *)
}

type t = {
  st_schema : schema;
  st_objects : obj IntMap.t;
  st_next : Value.oid;
}

let create schema = { st_schema = schema; st_objects = IntMap.empty; st_next = 1 }

let schema t = t.st_schema
let find t oid = IntMap.find_opt oid t.st_objects
let objects t = List.map snd (IntMap.bindings t.st_objects)
let count t = IntMap.cardinal t.st_objects

let objects_of_type ?(include_subtypes = true) t name =
  objects t
  |> List.filter (fun o ->
         String.equal o.o_type name
         || include_subtypes
            && List.mem name (Schema.ancestors t.st_schema o.o_type))

let ( let* ) = Result.bind

let fail fmt = Printf.ksprintf (fun m -> Error m) fmt

let require_obj t oid =
  match find t oid with
  | Some o -> Ok o
  | None -> fail "no object @%d" oid

(** Allocate a fresh object of [type_name]. *)
let new_object t type_name =
  if not (Schema.mem_interface t.st_schema type_name) then
    fail "unknown type %s" type_name
  else
    let o = { o_id = t.st_next; o_type = type_name; o_attrs = []; o_links = [] } in
    Ok
      ( { t with st_objects = IntMap.add o.o_id o t.st_objects; st_next = t.st_next + 1 },
        o.o_id )

let update t oid f = { t with st_objects = IntMap.update oid (Option.map f) t.st_objects }

let isa t sub super =
  String.equal sub super || List.mem super (Schema.ancestors t.st_schema sub)

let type_of t oid = Option.map (fun o -> o.o_type) (find t oid)

(** Set an attribute; the attribute must be visible on the object's type and
    the value must conform to its domain and size. *)
let set_attr t oid attr_name v =
  let* o = require_obj t oid in
  let visible = Schema.visible_attrs t.st_schema o.o_type in
  match List.find_opt (fun a -> String.equal a.attr_name attr_name) visible with
  | None -> fail "%s has no attribute %s" o.o_type attr_name
  | Some a ->
      if not (Value.conforms ~type_of:(type_of t) ~isa:(isa t) v a.attr_type)
      then
        fail "value %s does not conform to the domain of %s.%s"
          (Value.to_string v) o.o_type attr_name
      else if not (Value.size_ok v a.attr_size) then
        fail "value %s exceeds the declared size of %s.%s" (Value.to_string v)
          o.o_type attr_name
      else
        Ok
          (update t oid (fun o ->
               {
                 o with
                 o_attrs =
                   (attr_name, v)
                   :: List.remove_assoc attr_name o.o_attrs;
               }))

let get_attr t oid attr_name =
  Option.bind (find t oid) (fun o -> List.assoc_opt attr_name o.o_attrs)

let links_of o path = Option.value (List.assoc_opt path o.o_links) ~default:[]

let visible_rel t type_name path =
  List.find_opt
    (fun r -> String.equal r.rel_name path)
    (Schema.visible_rels t.st_schema type_name)

let set_links t oid path targets =
  update t oid (fun o ->
      { o with o_links = (path, targets) :: List.remove_assoc path o.o_links })

let add_link_end t oid path target ~to_one =
  update t oid (fun o ->
      let current = links_of o path in
      let next =
        if to_one then [ target ]
        else if List.mem target current then current
        else current @ [ target ]
      in
      { o with o_links = (path, next) :: List.remove_assoc path o.o_links })

let remove_link_end t oid path target =
  update t oid (fun o ->
      {
        o with
        o_links =
          (path, List.filter (fun x -> x <> target) (links_of o path))
          :: List.remove_assoc path o.o_links;
      })

(** Link two objects through a relationship path declared (or inherited) on
    the source's type.  The inverse end is maintained; linking a to-one end
    replaces its previous target (and unlinks that target's inverse). *)
let link t src path dst =
  let* s = require_obj t src in
  let* d = require_obj t dst in
  match visible_rel t s.o_type path with
  | None -> fail "%s has no relationship %s" s.o_type path
  | Some r ->
      if not (isa t d.o_type r.rel_target) then
        fail "@%d is a %s, but %s.%s targets %s" dst d.o_type s.o_type path
          r.rel_target
      else
        let to_one = r.rel_card = None in
        let inv_to_one =
          match
            Option.bind
              (Schema.find_interface t.st_schema r.rel_target)
              (fun i -> Schema.find_rel i r.rel_inverse)
          with
          | Some inv -> inv.rel_card = None
          | None -> true
        in
        (* displacing a previous to-one target breaks its inverse first *)
        let t =
          if to_one then
            match Option.map (fun o -> links_of o path) (find t src) with
            | Some [ old ] when old <> dst ->
                remove_link_end t old r.rel_inverse src
            | _ -> t
          else t
        in
        let t = add_link_end t src path dst ~to_one in
        let t =
          if inv_to_one then
            (* the destination's to-one inverse displaces its previous source *)
            match Option.map (fun o -> links_of o r.rel_inverse) (find t dst) with
            | Some [ old ] when old <> src ->
                let t = remove_link_end t old path dst in
                add_link_end t dst r.rel_inverse src ~to_one:true
            | _ -> add_link_end t dst r.rel_inverse src ~to_one:true
          else add_link_end t dst r.rel_inverse src ~to_one:false
        in
        Ok t

(** Unlink two objects (both ends). *)
let unlink t src path dst =
  let* s = require_obj t src in
  match visible_rel t s.o_type path with
  | None -> fail "%s has no relationship %s" s.o_type path
  | Some r ->
      let t = remove_link_end t src path dst in
      Ok (remove_link_end t dst r.rel_inverse src)

let linked t oid path =
  match find t oid with None -> [] | Some o -> links_of o path

(** Delete an object and every link end pointing at it. *)
let delete t oid =
  let* _ = require_obj t oid in
  let without = IntMap.remove oid t.st_objects in
  let scrub o =
    {
      o with
      o_links =
        List.map (fun (p, ts) -> (p, List.filter (fun x -> x <> oid) ts)) o.o_links;
    }
  in
  Ok { t with st_objects = IntMap.map scrub without }

(** Re-insert an existing object (keeping its identity); used by migration
    to rebuild a store on a customized schema. *)
let restore t (o : obj) =
  {
    t with
    st_objects = IntMap.add o.o_id o t.st_objects;
    st_next = max t.st_next (o.o_id + 1);
  }

(** Make links symmetric by intersection: a link survives only if both ends
    still carry it.  Used after migration, where one end can lose its
    relationship while the other keeps it. *)
let scrub_asymmetric t =
  let back_ok o path target_oid =
    match visible_rel t o.o_type path with
    | None -> false
    | Some r -> (
        match find t target_oid with
        | None -> false
        | Some target ->
            List.mem o.o_id (links_of target r.rel_inverse))
  in
  let scrub o =
    {
      o with
      o_links =
        List.map
          (fun (path, targets) ->
            (path, List.filter (back_ok o path) targets))
          o.o_links;
    }
  in
  { t with st_objects = IntMap.map scrub t.st_objects }

let dump t =
  objects t
  |> List.map (fun o ->
         Printf.sprintf "@%d : %s%s%s" o.o_id o.o_type
           (o.o_attrs
           |> List.rev
           |> List.map (fun (n, v) -> Printf.sprintf "\n  %s = %s" n (Value.to_string v))
           |> String.concat "")
           (o.o_links
           |> List.rev
           |> List.filter (fun (_, ts) -> ts <> [])
           |> List.map (fun (p, ts) ->
                  Printf.sprintf "\n  %s -> %s" p
                    (String.concat ", " (List.map (Printf.sprintf "@%d") ts)))
           |> String.concat ""))
  |> String.concat "\n"
