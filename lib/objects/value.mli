(** Instance values and their conformance to ODL domain types. *)

type oid = int
(** Object identity; allocated by the store. *)

type t =
  | V_int of int
  | V_float of float
  | V_string of string
  | V_char of char
  | V_bool of bool
  | V_ref of oid  (** reference to an object (for named domains) *)
  | V_coll of Odl.Types.collection_kind * t list

val to_string : t -> string

val conforms :
  type_of:(oid -> string option) ->
  isa:(string -> string -> bool) ->
  t ->
  Odl.Types.domain_type ->
  bool
(** Does the value inhabit the domain?  [type_of] resolves references,
    [isa] is the subtype judgment.  Integer values widen to [float]. *)

val size_ok : t -> int option -> bool
(** Declared string sizes. *)

val equal : t -> t -> bool
