(** Instance migration through the shrink-wrap → custom mapping.

    After a schema is customized, existing data must follow: objects of
    deleted types are dropped, values of deleted attributes are dropped,
    values of moved attributes survive (the object's type still sees them
    along the ISA line), links through deleted relationships are dropped,
    and links whose far end was retargeted survive when the target objects
    still conform.  The migration is conservative — it never invents data —
    and reports everything it dropped. *)

open Odl.Types
module Schema = Odl.Schema

type dropped = {
  d_oid : Value.oid;
  d_what : string;  (** e.g. ["object"], ["attribute room"], ["link takes"] *)
  d_reason : string;
}

let dropped d_oid d_what d_reason = { d_oid; d_what; d_reason }

let to_string d = Printf.sprintf "@%d %s: %s" d.d_oid d.d_what d.d_reason

let isa schema sub super =
  String.equal sub super || List.mem super (Schema.ancestors schema sub)

(** [migrate store ~custom] carries the store's objects onto the custom
    schema, returning the migrated store and the drop report.  When the
    input was consistent, any residual problem is incompleteness on a
    newly-mandatory end — see {!residual_problems} (tested by property). *)
let migrate store ~custom =
  let report = ref [] in
  let note d = report := d :: !report in
  (* pass 1: drop objects whose type is gone *)
  let survivors =
    Store.objects store
    |> List.filter (fun (o : Store.obj) ->
           let kept = Schema.mem_interface custom o.o_type in
           if not kept then
             note (dropped o.o_id "object" ("type " ^ o.o_type ^ " was deleted"));
           kept)
  in
  let alive = List.map (fun o -> o.Store.o_id) survivors in
  (* pass 2: per-object repair against the custom schema *)
  let repair (o : Store.obj) =
    let visible_attrs = Schema.visible_attrs custom o.o_type in
    let attrs =
      o.o_attrs
      |> List.filter (fun (name, v) ->
             match
               List.find_opt (fun a -> String.equal a.attr_name name) visible_attrs
             with
             | None ->
                 note
                   (dropped o.o_id ("attribute " ^ name)
                      "no longer visible on the type");
                 false
             | Some a ->
                 let type_of oid =
                   (* types of surviving objects, in the original store *)
                   if List.mem oid alive then
                     Option.map (fun x -> x.Store.o_type) (Store.find store oid)
                   else None
                 in
                 let ok =
                   Value.conforms ~type_of ~isa:(isa custom) v a.attr_type
                   && Value.size_ok v a.attr_size
                 in
                 if not ok then
                   note
                     (dropped o.o_id ("attribute " ^ name)
                        "value no longer conforms to the customized domain");
                 ok)
    in
    let visible_rels = Schema.visible_rels custom o.o_type in
    let links =
      o.o_links
      |> List.filter_map (fun (path, targets) ->
             match
               List.find_opt (fun r -> String.equal r.rel_name path) visible_rels
             with
             | None ->
                 if targets <> [] then
                   note
                     (dropped o.o_id ("link " ^ path)
                        "relationship no longer visible on the type");
                 None
             | Some r ->
                 let kept_targets =
                   targets
                   |> List.filter (fun oid ->
                          if not (List.mem oid alive) then begin
                            note
                              (dropped o.o_id ("link " ^ path)
                                 (Printf.sprintf "@%d did not survive" oid));
                            false
                          end
                          else
                            match Store.find store oid with
                            | Some target
                              when isa custom target.o_type r.rel_target ->
                                true
                            | Some target ->
                                note
                                  (dropped o.o_id ("link " ^ path)
                                     (Printf.sprintf
                                        "@%d (%s) no longer conforms to %s"
                                        oid target.o_type r.rel_target));
                                false
                            | None -> false)
                 in
                 (* a customization can tighten a to-many end to to-one:
                    keep the first target, drop the rest *)
                 let kept_targets =
                   match (r.rel_card, kept_targets) with
                   | None, first :: (_ :: _ as rest) ->
                       List.iter
                         (fun oid ->
                           note
                             (dropped o.o_id ("link " ^ path)
                                (Printf.sprintf
                                   "@%d dropped: the end became to-one" oid)))
                         rest;
                       [ first ]
                   | _ -> kept_targets
                 in
                 Some (path, kept_targets))
    in
    { o with o_attrs = attrs; o_links = links }
  in
  let repaired = List.map repair survivors in
  (* pass 3: re-assemble on the custom schema and scrub asymmetric links
     (an end can lose its path while the far end keeps it) *)
  let migrated =
    List.fold_left
      (fun acc (o : Store.obj) -> Store.restore acc o)
      (Store.create custom) repaired
  in
  let migrated = Store.scrub_asymmetric migrated in
  (migrated, List.rev !report)

(** Problems the migration could not repair without inventing data — in
    practice, newly-mandatory part-of / instance-of ends that existing
    objects do not satisfy.  The designer must complete these by hand. *)
let residual_problems migrated = Check.check migrated
