(** An OQL subset over object stores: [select Type [where predicate]] with
    dot paths over attributes and links (existential semantics on to-many
    links), comparisons, [like] substring match, a [count] pseudo-member,
    and [and]/[or]/[not].  See the implementation header for examples. *)

exception Bad_query of string

type comparison = Eq | Neq | Lt | Leq | Gt | Geq | Like

type predicate =
  | Compare of string list * comparison * Value.t  (** path, op, literal *)
  | Count of string list * comparison * int  (** path.count op n *)
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type t = {
  q_type : string;  (** the extent selected from (subtypes included) *)
  q_where : predicate option;
}

val parse : string -> t
(** @raise Bad_query on syntax errors. *)

val run : Store.t -> t -> Store.obj list
(** Matching objects, in oid order. *)

val query : Store.t -> string -> Store.obj list
(** Parse and run in one step. *)
