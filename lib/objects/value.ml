(** Instance values and their conformance to ODL domain types.

    The paper's prototype ran on a real object store; this is the instance
    substrate of the reproduction: enough of an object model to populate a
    schema with data and to watch customization act on that data. *)

open Odl.Types

type oid = int
(** Object identity; allocated by the store. *)

type t =
  | V_int of int
  | V_float of float
  | V_string of string
  | V_char of char
  | V_bool of bool
  | V_ref of oid  (** reference to an object (for named domains) *)
  | V_coll of collection_kind * t list

let rec to_string = function
  | V_int n -> string_of_int n
  | V_float f -> Printf.sprintf "%g" f
  | V_string s -> Printf.sprintf "%S" s
  | V_char c -> Printf.sprintf "%C" c
  | V_bool b -> string_of_bool b
  | V_ref oid -> Printf.sprintf "@%d" oid
  | V_coll (k, vs) ->
      Printf.sprintf "%s{%s}" (collection_kind_name k)
        (String.concat ", " (List.map to_string vs))

(** [conforms ~type_of v domain] — does value [v] inhabit [domain]?
    [type_of oid] resolves a reference to its object's type name, or [None]
    for a dangling reference; [isa sub super] is the subtype judgment. *)
let rec conforms ~type_of ~isa v domain =
  match (v, domain) with
  | V_int _, D_int | V_float _, D_float | V_char _, D_char
  | V_bool _, D_boolean ->
      true
  | V_int _, D_float -> true  (* integer literals widen *)
  | V_string _, D_string -> true
  | V_ref oid, D_named target -> (
      match type_of oid with
      | Some t -> isa t target
      | None -> false)
  | V_coll (k, vs), D_collection (k', inner) ->
      k = k' && List.for_all (fun v -> conforms ~type_of ~isa v inner) vs
  | _ -> false

(** String sizes are declared separately from the domain; check them too. *)
let size_ok v size =
  match (v, size) with
  | V_string s, Some n -> String.length s <= n
  | _ -> true

(** Structural equality of values (used for key comparison). *)
let rec equal a b =
  match (a, b) with
  | V_coll (k, xs), V_coll (k', ys) ->
      k = k'
      && List.length xs = List.length ys
      && List.for_all2 equal xs ys
  | a, b -> a = b
