(** Textual persistence for object stores — human-readable, diff-friendly,
    round-tripping (see the implementation header for the format). *)

exception Bad_store of string

val to_string : Store.t -> string

val of_string : Odl.Types.schema -> string -> Store.t
(** Parse a store dump against the schema.
    @raise Bad_store on malformed input.  The result is not checked for
    consistency — run [Check.check] on it. *)
