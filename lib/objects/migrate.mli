(** Instance migration through schema customization: carry a store's objects
    onto the customized schema, dropping what no longer fits and reporting
    every drop.  Conservative — never invents data. *)

type dropped = {
  d_oid : Value.oid;
  d_what : string;  (** e.g. ["object"], ["attribute room"], ["link takes"] *)
  d_reason : string;
}

val to_string : dropped -> string

val migrate : Store.t -> custom:Odl.Types.schema -> Store.t * dropped list
(** The migrated store (on the custom schema) and the drop report.  When
    the input was consistent, any residual inconsistency is incompleteness
    the migration must not invent data for — newly-mandatory part-of /
    instance-of ends (tested by property). *)

val residual_problems : Store.t -> Check.problem list
(** The completion work left for the designer after a migration. *)
