(** The interactive schema designer's engine: interprets commands against a
    design session and produces feedback.  The REPL in [bin/swsd.ml] is a
    thin loop around {!exec_line}; keeping the engine pure makes the
    designer fully testable. *)

type state = {
  session : Core.Session.t;
  focus : string option;  (** focused concept schema id *)
  reviewed : string list;  (** concept schemas already considered (the
      paper's one-by-one review process; [focus] marks them) *)
  store : Objects.Store.t option;
      (** instance data under the shrink wrap schema; applies report their
          data impact and [migrate] carries them onto the workspace *)
  repo : Repository.Store.t option;
      (** when set, every accepted operation (and undo/redo) is journalled
          durably before it is acknowledged, so a crash loses at most the
          operation in flight *)
  finished : bool;  (** set by the [quit] command *)
}

val start : ?repo:Repository.Store.t -> Core.Session.t -> state

val exec : state -> Command.t -> state * Feedback.t list
(** Execute one parsed command. *)

val exec_line : state -> string -> state * Feedback.t list
(** Parse and execute one command line; parse failures become error
    feedback. *)
