(** The interactive schema designer's command language; see {!help_text} or
    the implementation header for the command list. *)

type t =
  | Concepts
  | Focus of string
  | Show of string option
  | Odl of string
  | Print_schema
  | Summary
  | Apply of Core.Modop.t
  | Preview of Core.Modop.t
  | Plan of Core.Modop.t
  | Undo
  | Redo
  | Source of string
  | Check
  | Quality
  | Todo
  | Load_data of string
  | Migrate_data
  | Query of string
  | Mapping
  | Impact
  | Custom of string option
  | Explain of string option
  | Alias of string * string
  | Unalias of string
  | List_aliases
  | Log
  | Rules
  | Save of string
  | Help
  | Quit

exception Bad_command of string

val parse : string -> t
(** Parse one command line.  @raise Bad_command on errors (including
    modification-language syntax errors in [apply]/[preview]/[plan]). *)

val help_text : string
