(** The interactive schema designer's command language; see {!help_text} or
    the implementation header for the command list. *)

type t =
  | Concepts
  | Focus of string
  | Show of string option
  | Odl of string
  | Print_schema
  | Summary
  | Apply of Core.Modop.t
  | Preview of Core.Modop.t
  | Plan of Core.Modop.t
  | Undo
  | Redo
  | Source of string
  | Check
  | Quality
  | Todo
  | Load_data of string
  | Migrate_data
  | Query of string
  | Mapping
  | Impact
  | Custom of string option
  | Explain of string option
  | Alias of string * string
  | Unalias of string
  | List_aliases
  | Log
  | Rules
  | Save of string
  | Help
  | Quit

exception Bad_command of string

type access = Read | Write
(** Which service path may execute a command. *)

val access : t -> access
(** Total classification (exhaustive match, no catch-all): [Read] commands
    never change the engine state and may run lock-free against a published
    snapshot; [Write] commands require the per-variant writer lock.  Adding
    a constructor without classifying it is a compile error, so no command
    can silently default onto the lock-free path. *)

val mutates : t -> bool
(** Does the command change durable design state (or have side effects
    outside the session)?  Strictly narrower than [access = Write]: e.g.
    [Focus] is a [Write] (it moves the shared cursor) but does not mutate
    the design, so read-only connections may still focus.  Drives the
    [!readonly] rejection. *)

val parse : string -> t
(** Parse one command line.  @raise Bad_command on errors (including
    modification-language syntax errors in [apply]/[preview]/[plan]). *)

val help_text : string
