(** Designer feedback: the messages the interactive schema designer returns
    for every command. *)

type level = Output | Info | Caution | Error

type t = { level : level; text : string }

val output : string -> t
val info : string -> t
val caution : string -> t
val error : string -> t

val to_string : t -> string
(** With a ["info: "] / ["caution: "] / ["error: "] prefix; outputs are
    unprefixed. *)

val pp : Format.formatter -> t -> unit
val is_error : t -> bool
