(** The interactive schema designer's engine: interprets commands against a
    design session and produces feedback.  The REPL in [bin/swsd.ml] is a
    thin loop around {!exec}; keeping the engine pure makes the designer
    fully testable. *)

module Session = Core.Session

type state = {
  session : Session.t;
  focus : string option;  (** focused concept schema id *)
  reviewed : string list;  (** concept schemas already considered *)
  store : Objects.Store.t option;
      (** instance data under the shrink wrap schema, for data impact *)
  repo : Repository.Store.t option;
      (** when set, every accepted operation (and undo) is journalled
          durably before it is acknowledged *)
  finished : bool;
}

let start ?repo session =
  { session; focus = None; reviewed = []; store = None; repo; finished = false }

(* Journal one durable record; a persistence failure never loses the
   in-memory state, it only warns. *)
let persist state entry =
  match state.repo with
  | None -> []
  | Some repo -> (
      match entry repo with
      | () -> []
      | exception Sys_error m ->
          [ Feedback.caution ("persistence failed: " ^ m) ])

let persist_step state kind op =
  persist state (fun repo -> Repository.Store.append_step repo (kind, op))

let persist_undo state = persist state Repository.Store.append_undo

(* what migrating the loaded data onto [schema] would drop *)
let data_impact state schema =
  match state.store with
  | None -> []
  | Some store ->
      let migrated, report = Objects.Migrate.migrate store ~custom:schema in
      let residual = Objects.Migrate.residual_problems migrated in
      (if report = [] then []
       else
         [
           Feedback.caution
             (Printf.sprintf "data impact: %d value/object drop(s) when migrating the loaded data"
                (List.length report));
         ])
      @
      if residual = [] then []
      else
        [
          Feedback.caution
            (Printf.sprintf
               "data impact: %d object(s) would need manual completion"
               (List.length residual));
        ]

let concept_line (c : Core.Concept.t) =
  Printf.sprintf "%-24s %-26s %d type(s)" c.c_id
    (Core.Concept.kind_name c.c_kind)
    (List.length c.c_members)

let find_concept state id =
  (* look the concept up in the decomposition of the current workspace so
     customizations are visible, falling back to the original decomposition
     for concepts the customization removed *)
  match Core.Decompose.find (Session.current_concepts state.session) id with
  | Some c -> Some c
  | None -> Core.Decompose.find (Session.concepts state.session) id

let focused_kind state =
  match state.focus with
  | None -> None
  | Some id ->
      Option.map (fun c -> c.Core.Concept.c_kind) (find_concept state id)

let apply_feedback events =
  List.map (fun e -> Feedback.info (Core.Change.event_to_string e)) events

let do_apply state op =
  match focused_kind state with
  | None ->
      ( state,
        [ Feedback.error "no concept schema focused; use: focus <concept-id>" ] )
  | Some kind -> (
      let cautions =
        Repository.Knowledge.cautions (Session.workspace state.session) op
        |> List.map Feedback.caution
      in
      match Session.apply state.session ~kind op with
      | Ok (session, events) ->
          ( { state with session },
            Feedback.info ("applied " ^ Core.Op_printer.to_string op)
            :: (persist_step state kind op @ cautions @ apply_feedback events
               @ data_impact state (Session.workspace session)) )
      | Error e ->
          let suggestions =
            Core.Advisor.suggest_text
              ~original:(Session.original state.session)
              (Session.workspace state.session)
              kind op e
            |> List.map Feedback.info
          in
          (state, Feedback.error (Core.Apply.error_to_string e) :: suggestions))

let do_preview state op =
  match focused_kind state with
  | None ->
      ( state,
        [ Feedback.error "no concept schema focused; use: focus <concept-id>" ] )
  | Some kind -> (
      let cautions =
        Repository.Knowledge.cautions (Session.workspace state.session) op
        |> List.map Feedback.caution
      in
      match Session.preview state.session ~kind op with
      | Ok events ->
          ( state,
            Feedback.info ("previewing " ^ Core.Op_printer.to_string op)
            :: (cautions @ apply_feedback events) )
      | Error e -> (state, [ Feedback.error (Core.Apply.error_to_string e) ]))

let do_plan state op =
  match focused_kind state with
  | None ->
      ( state,
        [ Feedback.error "no concept schema focused; use: focus <concept-id>" ] )
  | Some kind -> (
      let original = Session.original state.session in
      let workspace = Session.workspace state.session in
      match Core.Apply.apply ~original ~kind workspace op with
      | Ok _ ->
          (state, [ Feedback.info "the operation applies as is; no plan needed" ])
      | Error e -> (
          match Core.Advisor.repair_plan ~original workspace kind op with
          | Some steps ->
              ( state,
                Feedback.info
                  (Printf.sprintf "plan (%d steps) repairing: %s"
                     (List.length steps)
                     (Core.Apply.error_to_string e))
                :: List.map
                     (fun (k, o) ->
                       Feedback.output
                         (Printf.sprintf "  [%s] %s" (Core.Concept.kind_name k)
                            (Core.Op_printer.to_string o)))
                     steps )
          | None ->
              ( state,
                Feedback.error (Core.Apply.error_to_string e)
                :: List.map Feedback.info
                     (Core.Advisor.suggest_text ~original workspace kind op e) )))

(** Execute one parsed command. *)
let rec exec state (cmd : Command.t) =
  let workspace = Session.workspace state.session in
  match cmd with
  | Concepts ->
      let lines =
        Session.current_concepts state.session |> List.map concept_line
      in
      (state, List.map Feedback.output lines)
  | Focus id -> (
      match find_concept state id with
      | Some c ->
          ( {
              state with
              focus = Some id;
              reviewed =
                (if List.mem id state.reviewed then state.reviewed
                 else id :: state.reviewed);
            },
            [
              Feedback.info
                (Printf.sprintf "focused %s (%s)" id
                   (Core.Concept.kind_name c.c_kind));
            ] )
      | None -> (state, [ Feedback.error ("no concept schema named " ^ id) ]))
  | Show id_opt -> (
      let id = match id_opt with Some id -> Some id | None -> state.focus in
      match id with
      | None -> (state, [ Feedback.error "nothing focused; show <concept-id>" ])
      | Some id -> (
          match find_concept state id with
          | Some c -> (state, [ Feedback.output (Core.Render.concept workspace c) ])
          | None -> (state, [ Feedback.error ("no concept schema named " ^ id) ])))
  | Odl name -> (
      match Odl.Schema.find_interface workspace name with
      | Some i -> (state, [ Feedback.output (Odl.Printer.interface_to_string i) ])
      | None -> (state, [ Feedback.error ("no interface named " ^ name) ]))
  | Print_schema ->
      (state, [ Feedback.output (Odl.Printer.schema_to_string workspace) ])
  | Summary -> (state, [ Feedback.output (Core.Render.summary workspace) ])
  | Apply op -> do_apply state op
  | Preview op -> do_preview state op
  | Plan op -> do_plan state op
  | Undo -> (
      match Session.undo state.session with
      | Some session ->
          ( { state with session },
            Feedback.info
              (Printf.sprintf "reverted last operation (%d redoable)"
                 (Session.redoable session))
            :: persist_undo state )
      | None -> (state, [ Feedback.error "nothing to undo" ]))
  | Redo -> (
      match Session.redo state.session with
      | Some (session, events) ->
          let persisted =
            (* the redone step is the most recent entry of the log *)
            match Session.steps_rev session with
            | (s : Session.step) :: _ -> persist_step state s.st_kind s.st_op
            | [] -> []
          in
          ( { state with session },
            Feedback.info "re-applied" :: (persisted @ apply_feedback events) )
      | None -> (state, [ Feedback.error "nothing to redo" ]))
  | Source path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error m -> (state, [ Feedback.error m ])
      | contents ->
          let lines =
            String.split_on_char '\n' contents
            |> List.map String.trim
            |> List.filter (fun l ->
                   l <> "" && not (String.length l >= 1 && l.[0] = '#'))
          in
          List.fold_left
            (fun (st, fb) line ->
              let st, fb' = exec_line st line in
              (st, fb @ (Feedback.info ("> " ^ line) :: fb')))
            (state, []) lines)
  | Check ->
      (state, [ Feedback.output (Session.consistency_report_text state.session) ])
  | Quality -> (state, [ Feedback.output (Core.Quality.report workspace) ])
  | Load_data path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error m -> (state, [ Feedback.error m ])
      | text -> (
          match
            Objects.Serial.of_string (Session.original state.session) text
          with
          | exception Objects.Serial.Bad_store m ->
              (state, [ Feedback.error m ])
          | store ->
              let problems = Objects.Check.check store in
              ( { state with store = Some store },
                Feedback.info
                  (Printf.sprintf "loaded %d object(s)"
                     (Objects.Store.count store))
                :: List.map
                     (fun p -> Feedback.caution (Objects.Check.to_string p))
                     problems )))
  | Migrate_data -> (
      match state.store with
      | None -> (state, [ Feedback.error "no data loaded; use: data <file>" ])
      | Some store ->
          let migrated, report =
            Objects.Migrate.migrate store ~custom:workspace
          in
          ( state,
            List.map
              (fun d -> Feedback.info ("dropped: " ^ Objects.Migrate.to_string d))
              report
            @ List.map
                (fun p ->
                  Feedback.caution
                    ("needs completion: " ^ Objects.Check.to_string p))
                (Objects.Migrate.residual_problems migrated)
            @ [ Feedback.output (Objects.Serial.to_string migrated) ] ))
  | Query src -> (
      match state.store with
      | None -> (state, [ Feedback.error "no data loaded; use: data <file>" ])
      | Some store -> (
          match Objects.Query.query store src with
          | exception Objects.Query.Bad_query m -> (state, [ Feedback.error m ])
          | [] -> (state, [ Feedback.info "no matches" ])
          | objs ->
              ( state,
                List.map
                  (fun (o : Objects.Store.obj) ->
                    Feedback.output (Printf.sprintf "@%d : %s" o.o_id o.o_type))
                  objs )))
  | Todo ->
      (* the paper's process: the designer considers the concept schemas one
         by one; this lists the ones not yet visited *)
      let pending =
        Session.current_concepts state.session
        |> List.filter (fun c ->
               not (List.mem c.Core.Concept.c_id state.reviewed))
      in
      if pending = [] then
        (state, [ Feedback.info "every concept schema has been considered" ])
      else
        ( state,
          Feedback.info
            (Printf.sprintf "%d concept schema(s) not yet considered:"
               (List.length pending))
          :: List.map (fun c -> Feedback.output (concept_line c)) pending )
  | Mapping -> (state, [ Feedback.output (Session.mapping_report state.session) ])
  | Impact -> (state, [ Feedback.output (Session.impact_report state.session) ])
  | Custom name ->
      ( state,
        [
          Feedback.output
            (Odl.Printer.schema_to_string (Session.custom_schema ?name state.session));
        ] )
  | Explain id_opt -> (
      let id = match id_opt with Some id -> Some id | None -> state.focus in
      match id with
      | None -> (state, [ Feedback.error "nothing focused; explain <concept-id>" ])
      | Some id -> (
          match find_concept state id with
          | Some c ->
              (state, [ Feedback.output (Core.Explain.concept_text workspace c) ])
          | None -> (state, [ Feedback.error ("no concept schema named " ^ id) ])))
  | Alias (canonical, local) -> (
      let target = Core.Aliases.target_of_string canonical in
      match Session.add_alias state.session target local with
      | Ok session ->
          ( { state with session },
            [ Feedback.info (Printf.sprintf "%s is locally known as %s" canonical local) ]
          )
      | Error m -> (state, [ Feedback.error m ]))
  | Unalias canonical ->
      let target = Core.Aliases.target_of_string canonical in
      ( { state with session = Session.remove_alias state.session target },
        [ Feedback.info ("local name of " ^ canonical ^ " dropped") ] )
  | List_aliases ->
      (state, [ Feedback.output (Session.aliases_report state.session) ])
  | Log -> (state, [ Feedback.output (Core.Oplog.(render (of_session state.session))) ])
  | Rules ->
      ( state,
        Repository.Knowledge.rule_summaries
        |> List.map (fun (name, what) ->
               Feedback.output (Printf.sprintf "%-24s %s" name what)) )
  | Save dir ->
      let repo = Repository.Store.open_dir dir in
      Repository.Store.save_session repo state.session;
      (match state.store with
      | Some store ->
          Out_channel.with_open_text (Filename.concat dir "data.objs")
            (fun oc -> Out_channel.output_string oc (Objects.Serial.to_string store))
      | None -> ());
      (state, [ Feedback.info ("session saved to " ^ dir) ])
  | Help -> (state, [ Feedback.output Command.help_text ])
  | Quit -> ({ state with finished = true }, [ Feedback.info "bye" ])

(** Parse and execute one command line. *)
and exec_line state line =
  match Command.parse line with
  | cmd -> exec state cmd
  | exception Command.Bad_command m -> (state, [ Feedback.error m ])
