(** Designer feedback: the messages the interactive schema designer returns
    for every command — outputs, confirmations, cautions, and errors. *)

type level = Output | Info | Caution | Error

type t = { level : level; text : string }

let output text = { level = Output; text }
let info text = { level = Info; text }
let caution text = { level = Caution; text }
let error text = { level = Error; text }

let level_prefix = function
  | Output -> ""
  | Info -> "info: "
  | Caution -> "caution: "
  | Error -> "error: "

let to_string f = level_prefix f.level ^ f.text

let pp ppf f = Fmt.string ppf (to_string f)

let is_error f = f.level = Error
