(** The interactive schema designer's command language.

    {v
    concepts                     list the concept schemas
    focus <concept-id>           select the concept schema to work in
    show [<concept-id>]          render a concept schema (default: focused)
    odl <type>                   print an interface definition in ODL
    schema                       print the whole workspace in ODL
    summary                      one-line inventory of the workspace
    apply <operation>            apply an operation in the focused concept
    preview <operation>          impact preview without applying
    plan <operation>             verified repair plan for a rejected operation
    undo                         revert the last applied operation
    redo                         re-apply the last undone operation
    source <file>                run designer commands from a file
    check                        consistency report
    mapping                      shrink-wrap -> custom mapping report
    impact                       full impact report (all applied operations)
    custom [<name>]              print the custom schema in ODL
    explain [<concept-id>]       prose explanation of a concept schema
    alias <canonical> <local>    bind a local name
    unalias <canonical>          drop a local name
    aliases                      list local names
    log                          print the operation log
    rules                        list the knowledge component's rule groups
    save <dir>                   persist the session to a repository
    help                         this text
    quit                         leave the designer
    v} *)

type t =
  | Concepts
  | Focus of string
  | Show of string option
  | Odl of string
  | Print_schema
  | Summary
  | Apply of Core.Modop.t
  | Preview of Core.Modop.t
  | Plan of Core.Modop.t
  | Undo
  | Redo
  | Source of string
  | Check
  | Quality
  | Todo
  | Load_data of string
  | Migrate_data
  | Query of string
  | Mapping
  | Impact
  | Custom of string option
  | Explain of string option
  | Alias of string * string
  | Unalias of string
  | List_aliases
  | Log
  | Rules
  | Save of string
  | Help
  | Quit

exception Bad_command of string

let split_first_word s =
  let s = String.trim s in
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

let require_arg word rest =
  if rest = "" then raise (Bad_command (word ^ " needs an argument")) else rest

let parse_op rest =
  try Core.Op_parser.parse rest
  with Core.Op_parser.Parse_error (m, _, col) ->
    raise (Bad_command (Printf.sprintf "bad operation (column %d): %s" col m))

(** Parse one command line.  @raise Bad_command on errors. *)
let parse line =
  let line = String.trim line in
  let word, rest = split_first_word line in
  match word with
  | "concepts" -> Concepts
  | "focus" -> Focus (require_arg word rest)
  | "show" -> Show (if rest = "" then None else Some rest)
  | "odl" -> Odl (require_arg word rest)
  | "schema" -> Print_schema
  | "summary" -> Summary
  | "apply" -> Apply (parse_op (require_arg word rest))
  | "preview" -> Preview (parse_op (require_arg word rest))
  | "plan" -> Plan (parse_op (require_arg word rest))
  | "undo" -> Undo
  | "redo" -> Redo
  | "source" -> Source (require_arg word rest)
  | "check" -> Check
  | "quality" -> Quality
  | "todo" -> Todo
  | "data" -> Load_data (require_arg word rest)
  | "select" -> Query line
  | "migrate" -> Migrate_data
  | "mapping" -> Mapping
  | "impact" -> Impact
  | "custom" -> Custom (if rest = "" then None else Some rest)
  | "explain" -> Explain (if rest = "" then None else Some rest)
  | "alias" -> (
      match String.split_on_char ' ' (require_arg word rest) with
      | [ target; local ] -> Alias (target, local)
      | _ -> raise (Bad_command "usage: alias <canonical> <local-name>"))
  | "unalias" -> Unalias (require_arg word rest)
  | "aliases" -> List_aliases
  | "log" -> Log
  | "rules" -> Rules
  | "save" -> Save (require_arg word rest)
  | "help" | "?" -> Help
  | "quit" | "exit" -> Quit
  | "" -> raise (Bad_command "empty command")
  | other -> raise (Bad_command ("unknown command: " ^ other))

(* --- lock classification --------------------------------------------------

   [access] decides which service path executes a command: [Read] commands
   run lock-free on the published snapshot (and must leave the engine state
   untouched — the read path discards the state the engine returns), [Write]
   commands go through the per-variant writer lock.  The match is total on
   purpose: a new constructor fails to compile until someone decides which
   path it belongs on, so nothing can silently default onto the lock-free
   path.  [mutates] is the narrower question — does the command change the
   durable design state? — and drives the [!readonly] rejection. *)

type access = Read | Write

let access = function
  (* browsing/derivation: engine returns the same state value *)
  | Concepts | Show _ | Odl _ | Print_schema | Summary | Preview _ | Plan _
  | Check | Quality | Todo | Migrate_data | Query _ | Mapping | Impact
  | Custom _ | Explain _ | List_aliases | Log | Rules | Help ->
      Read
  (* design-state transitions *)
  | Apply _ | Undo | Redo | Alias _ | Unalias _ -> Write
  (* engine-state transitions that are not design changes *)
  | Focus _ | Load_data _ | Quit -> Write
  (* side effects outside the session (files, scripts) *)
  | Source _ | Save _ -> Write

let mutates = function
  | Apply _ | Undo | Redo | Alias _ | Unalias _ -> true
  | Source _ | Save _ | Load_data _ -> true  (* scripts, files, data store *)
  | Concepts | Focus _ | Show _ | Odl _ | Print_schema | Summary | Preview _
  | Plan _ | Check | Quality | Todo | Migrate_data | Query _ | Mapping
  | Impact | Custom _ | Explain _ | List_aliases | Log | Rules | Help | Quit ->
      false

let help_text =
  {|commands:
  concepts            list concept schemas
  focus <id>          select the concept schema to work in (e.g. ww:Course)
  show [<id>]         render a concept schema
  odl <type>          print an interface definition
  schema              print the workspace schema
  summary             one-line workspace inventory
  apply <op>          apply a modification operation, e.g.
                        apply add_attribute(Person, string, 30, nickname)
  preview <op>        impact preview without applying
  plan <op>           if <op> is rejected, propose a verified repair plan
  undo                revert the last operation
  redo                re-apply the last undone operation
  source <file>       run designer commands from a file
  check               consistency report
  quality             craft-quality assessment of the workspace
  todo                concept schemas not yet considered (focus marks them)
  data <file>         load an object store (validated against the shrink
                      wrap schema); applies then report their data impact
  migrate             migrate the loaded data onto the workspace and show it
  select ...          run an OQL query over the loaded data
  mapping             shrink-wrap -> custom mapping
  impact              impact report of all applied operations
  custom [<name>]     print the custom schema
  explain [<id>]      explain a concept schema in prose
  alias <c> <local>   give a construct a local name (e.g. alias Strain Phenotype)
  unalias <c>         drop a construct's local name
  aliases             list the local names
  log                 print the operation log
  rules               knowledge component rule groups
  save <dir>          persist the session
  help                this text
  quit                leave|}
