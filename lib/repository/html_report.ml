(** HTML deliverables: the designer feedback documents of a session as one
    self-contained page (paper activity 11: "generating deliverables for
    designer feedback as a result of shrink wrap schema customization").

    The page carries: the schema summaries, the concept schema inventory,
    the operation log with direct and propagated impacts, the consistency
    report, the full mapping table, and the local names.  No external
    assets; deterministic output. *)

module Session = Core.Session

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|  body { font-family: sans-serif; max-width: 60em; margin: 2em auto; color: #222; }
  h1 { border-bottom: 2px solid #558; }
  h2 { border-bottom: 1px solid #aac; margin-top: 2em; }
  table { border-collapse: collapse; width: 100%; }
  th, td { border: 1px solid #ccd; padding: 0.3em 0.6em; text-align: left; font-size: 90%; }
  th { background: #eef; }
  code, pre { background: #f5f5fa; }
  pre { padding: 0.6em; overflow-x: auto; }
  .direct { font-weight: bold; }
  .propagated { color: #666; }
  .warn { color: #a60; }
  .status-deleted { color: #a33; }
  .status-added { color: #383; }
  .status-moved { color: #338; }|}

let tag name ?(attrs = "") body =
  Printf.sprintf "<%s%s>%s</%s>"
    name
    (if attrs = "" then "" else " " ^ attrs)
    body name

let row cells = tag "tr" (String.concat "" (List.map (tag "td") cells))
let header_row cells = tag "tr" (String.concat "" (List.map (tag "th") cells))

let section title body = tag "h2" (escape title) ^ "\n" ^ body

let summaries session =
  tag "table"
    (header_row [ "schema"; "inventory" ]
    ^ row
        [ "shrink wrap"; escape (Core.Render.summary (Session.original session)) ]
    ^ row [ "custom"; escape (Core.Render.summary (Session.custom_schema session)) ]
    )

let concepts session =
  let rows =
    Session.current_concepts session
    |> List.map (fun (c : Core.Concept.t) ->
           row
             [
               tag "code" (escape c.c_id);
               escape (Core.Concept.kind_name c.c_kind);
               escape (String.concat ", " c.c_members);
             ])
  in
  tag "table"
    (header_row [ "concept schema"; "type"; "object types" ]
    ^ String.concat "" rows)

let event_html (e : Core.Change.event) =
  tag "li"
    ~attrs:
      (Printf.sprintf "class=\"%s\""
         (if e.ev_direct then "direct" else "propagated"))
    (escape (Core.Change.change_to_string e.ev_change)
    ^ if e.ev_direct then "" else " <em>(propagated)</em>")

let log session =
  match Session.log session with
  | [] -> tag "p" "No operations applied."
  | steps ->
      steps
      |> List.mapi (fun idx (s : Session.step) ->
             tag "li"
               (Printf.sprintf "%s <code>%s</code> <em>in the %s</em>"
                  (tag "strong" (string_of_int (idx + 1) ^ "."))
                  (escape (Core.Op_printer.to_string s.st_op))
                  (escape (Core.Concept.kind_name s.st_kind))
               ^ tag "ul" (String.concat "" (List.map event_html s.st_events))))
      |> String.concat "\n"
      |> tag "ol"

let consistency session =
  match Session.consistency_report session with
  | [] -> tag "p" "No findings."
  | ds ->
      ds
      |> List.map (fun d ->
             row
               [
                 (match d.Odl.Validate.severity with
                 | Odl.Validate.Error -> tag "span" ~attrs:"class=\"status-deleted\"" "error"
                 | Odl.Validate.Warning -> tag "span" ~attrs:"class=\"warn\"" "warning");
                 escape (Odl.Validate.category_name d.category);
                 tag "code" (escape d.subject);
                 escape d.message;
               ])
      |> String.concat ""
      |> fun rows ->
      tag "table" (header_row [ "severity"; "category"; "subject"; "finding" ] ^ rows)

let status_class = function
  | Core.Mapping.Preserved -> ""
  | Core.Mapping.Modified _ -> "status-moved"
  | Core.Mapping.Moved _ | Core.Mapping.Moved_and_modified _ -> "status-moved"
  | Core.Mapping.Deleted -> "status-deleted"

let mapping session =
  let m = Session.mapping session in
  let entry_rows =
    m.Core.Mapping.entries
    |> List.map (fun (e : Core.Mapping.entry) ->
           row
             [
               tag "code" (escape (Core.Change.construct_to_string e.m_construct));
               tag "span"
                 ~attrs:(Printf.sprintf "class=\"%s\"" (status_class e.m_status))
                 (escape (Core.Mapping.status_to_string e.m_status));
             ])
  in
  let added_rows =
    m.Core.Mapping.added
    |> List.map (fun c ->
           row
             [
               tag "code" (escape (Core.Change.construct_to_string c));
               tag "span" ~attrs:"class=\"status-added\"" "added by designer";
             ])
  in
  let p, md, mv, d, a = Core.Mapping.summary m in
  tag "p"
    (Printf.sprintf
       "%d preserved &middot; %d modified &middot; %d moved &middot; %d \
        deleted &middot; %d added"
       p md mv d a)
  ^ tag "table"
      (header_row [ "shrink wrap construct"; "status" ]
      ^ String.concat "" (entry_rows @ added_rows))

let aliases session =
  match Core.Aliases.bindings (Session.aliases session) with
  | [] -> tag "p" "No local names defined."
  | bs ->
      tag "table"
        (header_row [ "canonical"; "local name" ]
        ^ String.concat ""
            (List.rev_map
               (fun (b : Core.Aliases.binding) ->
                 row
                   [
                     tag "code" (escape (Core.Aliases.target_to_string b.target));
                     tag "code" (escape b.local);
                   ])
               bs))

let custom_odl session =
  tag "pre"
    (escape (Odl.Printer.schema_to_string (Session.custom_schema session)))

(** The whole deliverables page. *)
let render session =
  let title =
    Printf.sprintf "Design deliverables: %s"
      (Session.original session).Odl.Types.s_name
  in
  String.concat "\n"
    [
      "<!DOCTYPE html>";
      "<html><head><meta charset=\"utf-8\">";
      tag "title" (escape title);
      tag "style" style;
      "</head><body>";
      tag "h1" (escape title);
      section "Schemas" (summaries session);
      section "Concept schemas" (concepts session);
      section "Operation log and impact" (log session);
      section "Consistency report" (consistency session);
      section "Mapping" (mapping session);
      section "Local names" (aliases session);
      section "Custom schema (extended ODL)" (custom_odl session);
      "</body></html>";
    ]
