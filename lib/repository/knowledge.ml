(** The knowledge component: cautionary statements for the designer.

    Beyond hard constraint enforcement (done in [Core.Apply]) and propagation
    (in [Core.Propagate]), the paper's knowledge component issues cautionary
    feedback — consequences the designer should be aware of even though the
    operation is legal.  Cautions are computed against the workspace {e
    before} the operation is applied. *)

open Odl.Types
module Schema = Odl.Schema

let count_dependents schema n =
  let incoming =
    Schema.relationships_targeting schema n
    |> List.filter (fun (owner, _) -> not (String.equal owner.i_name n))
    |> List.length
  in
  let subtypes = List.length (Schema.direct_subtypes schema n) in
  let domain_uses =
    schema.s_interfaces
    |> List.concat_map (fun i ->
           List.filter
             (fun a -> base_name a.attr_type = Some n)
             i.i_attrs)
    |> List.length
  in
  (incoming, subtypes, domain_uses)

(** Cautionary statements for applying [op] to [schema].  The empty list
    means nothing noteworthy. *)
let cautions schema (op : Core.Modop.t) =
  match op with
  | Delete_type_definition n -> (
      match Schema.find_interface schema n with
      | None -> []
      | Some i ->
          let incoming, subtypes, domain_uses = count_dependents schema n in
          List.concat
            [
              (if incoming > 0 then
                 [
                   Printf.sprintf
                     "deleting %s also removes %d relationship end(s) on other \
                      interfaces"
                     n incoming;
                 ]
               else []);
              (if subtypes > 0 then
                 [
                   Printf.sprintf
                     "%d subtype(s) of %s will be reconnected to its supertypes"
                     subtypes n;
                 ]
               else []);
              (if domain_uses > 0 then
                 [
                   Printf.sprintf
                     "%d attribute(s) elsewhere use %s as their domain and will \
                      be removed"
                     domain_uses n;
                 ]
               else []);
              (if List.length i.i_rels > 0 then
                 [
                   Printf.sprintf "%s itself declares %d relationship end(s)" n
                     (List.length i.i_rels);
                 ]
               else []);
            ])
  | Delete_attribute (n, a) ->
      let key_uses =
        match Schema.find_interface schema n with
        | None -> 0
        | Some i -> List.length (List.filter (List.mem a) i.i_keys)
      in
      let sub_visibility = List.length (Schema.descendants schema n) in
      List.concat
        [
          (if key_uses > 0 then
             [
               Printf.sprintf "attribute %s.%s participates in %d key(s), which \
                               will be dropped"
                 n a key_uses;
             ]
           else []);
          (if sub_visibility > 0 then
             [
               Printf.sprintf
                 "%d descendant type(s) will no longer inherit %s.%s"
                 sub_visibility n a;
             ]
           else []);
        ]
  | Modify_attribute (n, a, n') ->
      if List.mem n' (Schema.descendants schema n) then
        [
          Printf.sprintf
            "moving %s.%s down to %s hides it from the other subtypes of %s" n a
            n' n;
        ]
      else if List.mem n' (Schema.ancestors schema n) then
        [
          Printf.sprintf
            "moving %s.%s up to %s makes it visible to every subtype of %s" n a
            n' n';
        ]
      else []
  | Modify_operation (n, o, n') ->
      if List.mem n' (Schema.descendants schema n) then
        [
          Printf.sprintf
            "moving %s.%s down to %s hides it from the other subtypes of %s" n o
            n' n;
        ]
      else if List.mem n' (Schema.ancestors schema n) then
        [
          Printf.sprintf
            "moving %s.%s up to %s makes it visible to every subtype of %s" n o
            n' n';
        ]
      else []
  | Modify_relationship_target_type (owner, path, old_t, new_t)
  | Modify_part_of_target_type (owner, path, old_t, new_t)
  | Modify_instance_of_target_type (owner, path, old_t, new_t) ->
      let direction =
        if List.mem new_t (Schema.ancestors schema old_t) then
          Some
            (Printf.sprintf
               "widening: every subtype of %s can now participate in %s.%s"
               new_t owner path)
        else if List.mem new_t (Schema.descendants schema old_t) then
          Some
            (Printf.sprintf
               "narrowing: instances of %s outside %s can no longer participate \
                in %s.%s"
               old_t new_t owner path)
        else None
      in
      Option.to_list direction
  | Delete_supertype (n, s) ->
      let inherited =
        match Schema.find_interface schema s with
        | None -> 0
        | Some si ->
            List.length si.i_attrs + List.length si.i_ops + List.length si.i_rels
      in
      if inherited > 0 then
        [
          Printf.sprintf
            "%s loses up to %d inherited member(s) declared on or above %s" n
            inherited s;
        ]
      else []
  | Add_supertype (n, s) ->
      let clashes =
        match (Schema.find_interface schema n, Schema.find_interface schema s) with
        | Some i, Some _ ->
            Schema.visible_attrs schema s
            |> List.filter (fun a -> Schema.has_attr i a.attr_name)
            |> List.map (fun a -> a.attr_name)
        | _ -> []
      in
      if clashes <> [] then
        [
          Printf.sprintf
            "%s already declares attribute(s) %s that %s also makes visible \
             (shadowing)"
            n (String.concat ", " clashes) s;
        ]
      else []
  | Delete_relationship (n, p)
  | Delete_part_of_relationship (n, p)
  | Delete_instance_of_relationship (n, p) -> (
      match Schema.find_interface schema n with
      | None -> []
      | Some i -> (
          match Schema.find_rel i p with
          | None -> []
          | Some r ->
              [
                Printf.sprintf "the inverse end %s.%s will also be removed"
                  r.rel_target r.rel_inverse;
              ]))
  | _ -> []

(** A summary of the rule base, for documentation and the REPL's [rules]
    command. *)
let rule_summaries =
  [
    ("consistency/structural", "dangling references, inverse mismatches, 1:N shape");
    ("consistency/hierarchy", "ISA, part-of, instance-of acyclicity; single roots");
    ("consistency/semantic", "keys, order-by, domains, overriding signatures");
    ("consistency/naming", "uniqueness and identifier validity");
    ("propagation", "cascading removal of constructs referring to deleted ones");
    ("stability", "moves restricted to the shrink wrap generalization hierarchy");
    ("permission", "operations restricted by concept schema type (Table 1)");
    ("caution", "advisory feedback on legal but consequential operations");
  ]
