(** On-disk schema repository (crash-safe).

    Persistence reuses the system's own languages: schemas are stored as
    extended ODL text and operation logs in the modification language, so a
    repository is human-readable and round-trips through the parsers.

    Layout of a repository directory:
    {v
    <dir>/shrinkwrap.odl     the original shrink wrap schema
    <dir>/log.ops            operation journal:  @ww add_...(...);  @undo;
    <dir>/aliases.map        local names:  Canonical = local
    <dir>/custom.odl         the generated custom schema
    <dir>/manifest           format version, generation, ops watermark
    <dir>/reports/*.txt      generated deliverables
    v}

    Durability protocol: whole-file artifacts go through {!Io.atomic_write}
    (write-to-temp, fsync, rename), the journal is append-only with a
    per-record fsync, and the manifest is written last so it witnesses a
    completed save.  All syscalls go through the injectable {!Io.t} the
    store was opened with. *)

type t = { dir : string; io : Io.t }

let dir t = t.dir
let io t = t.io
let shrinkwrap_file t = Filename.concat t.dir "shrinkwrap.odl"
let aliases_file t = Filename.concat t.dir "aliases.map"
let log_file t = Filename.concat t.dir "log.ops"
let custom_file t = Filename.concat t.dir "custom.odl"
let manifest_file t = Filename.concat t.dir "manifest"
let reports_dir t = Filename.concat t.dir "reports"

(** Open (creating if needed) a repository rooted at [dir]. *)
let open_dir ?(io = Io.unix) dir =
  let t = { dir; io } in
  Io.mkdir_p io dir;
  Io.mkdir_p io (reports_dir t);
  t

let write_file t path contents = Io.atomic_write t.io path contents
let read_file t path = t.io.Io.read_file path

(* --- operation log format ---------------------------------------------- *)

exception Bad_log of string

(** Serialize a [(kind, op)] log, one newline-terminated record per step. *)
let log_to_string steps =
  Journal.to_string (List.map (fun (kind, op) -> Journal.Op (kind, op)) steps)

(** Parse a log produced by {!log_to_string} (or written by hand: a missing
    final newline is tolerated, damage is not).
    @raise Bad_log on malformed lines. *)
let log_of_string text =
  let text =
    if text = "" || text.[String.length text - 1] = '\n' then text
    else text ^ "\n"
  in
  let { Journal.entries; damage } = Journal.parse text in
  (match damage with
  | Some d -> raise (Bad_log (Journal.damage_to_string d))
  | None -> ());
  match Journal.resolve entries with
  | Ok steps -> steps
  | Error m -> raise (Bad_log m)

(* --- individual artifacts ----------------------------------------------- *)

let save_shrinkwrap t schema =
  write_file t (shrinkwrap_file t) (Odl.Printer.schema_to_string schema)

let load_shrinkwrap t =
  Odl.Parser.parse_schema (read_file t (shrinkwrap_file t))

let save_log t steps =
  Journal.rewrite t.io (log_file t)
    (List.map (fun (kind, op) -> Journal.Op (kind, op)) steps)

let load_log t =
  if t.io.Io.file_exists (log_file t) then
    let { Journal.entries; damage } = Journal.read t.io (log_file t) in
    (match damage with
    | Some (Journal.Corrupt _ as d) -> raise (Bad_log (Journal.damage_to_string d))
    | Some (Journal.Torn_tail _) | None -> ());
    match Journal.resolve entries with
    | Ok steps -> steps
    | Error m -> raise (Bad_log m)
  else []

let save_custom t schema =
  write_file t (custom_file t) (Odl.Printer.schema_to_string schema)

let load_custom t = Odl.Parser.parse_schema (read_file t (custom_file t))

let save_report t name contents =
  write_file t (Filename.concat (reports_dir t) (name ^ ".txt")) contents

let save_aliases t aliases =
  write_file t (aliases_file t) (Core.Aliases.to_string aliases)

let load_aliases t =
  if t.io.Io.file_exists (aliases_file t) then
    Core.Aliases.of_string (read_file t (aliases_file t))
  else Core.Aliases.empty

(* --- incremental persistence -------------------------------------------- *)

let append_step t (kind, op) =
  Journal.append t.io (log_file t) (Journal.Op (kind, op))

let append_undo t = Journal.append t.io (log_file t) Journal.Undo

(* --- manifest ------------------------------------------------------------ *)

type manifest = {
  m_generation : int;
  m_ops : int;
  m_era : int;
  m_lineage : (string * int) option;
}

let manifest_to_string m =
  (* [era] — and now the lineage pair — ride along the tolerant key-value
     format: manifests written before replication (or branching) existed
     simply lack the lines and parse as era 0 / no parent, and older
     readers ignore them. *)
  Printf.sprintf "format 1\ngeneration %d\nops %d\nera %d\n%s" m.m_generation
    m.m_ops m.m_era
    (match m.m_lineage with
    | None -> ""
    | Some (parent, fork) -> Printf.sprintf "parent %s\nfork %d\n" parent fork)

let manifest_of_string text =
  let kv line =
    match String.index_opt line ' ' with
    | None -> None
    | Some i ->
        Some
          ( String.sub line 0 i,
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          )
  in
  let fields =
    text |> String.split_on_char '\n' |> List.map String.trim
    |> List.filter (fun l -> l <> "")
    |> List.filter_map kv
  in
  let int_field k =
    match List.assoc_opt k fields with
    | Some v -> int_of_string_opt v
    | None -> None
  in
  let era = match int_field "era" with Some e -> e | None -> 0 in
  let lineage =
    match List.assoc_opt "parent" fields with
    | None -> None
    | Some parent ->
        (* a [parent] line without a [fork] stamp parses as fork 0: the
           child branched at the root of the parent's history *)
        Some (parent, match int_field "fork" with Some f -> f | None -> 0)
  in
  match (List.assoc_opt "format" fields, int_field "generation", int_field "ops") with
  | Some "1", Some g, Some o ->
      Some { m_generation = g; m_ops = o; m_era = era; m_lineage = lineage }
  | _ -> None

let load_manifest t =
  if t.io.Io.file_exists (manifest_file t) then
    match manifest_of_string (read_file t (manifest_file t)) with
    | m -> m
    | exception Sys_error _ -> None
  else None

let save_manifest t m = write_file t (manifest_file t) (manifest_to_string m)

(* --- generation fencing --------------------------------------------------- *)

(** The write era recorded in the manifest; 0 when there is no manifest or
    it predates replication. *)
let stored_era t =
  match load_manifest t with Some m -> m.m_era | None -> 0

(** Stamp [era] into the manifest (monotone: never lowers a higher stored
    era).  Promotion fences both the dead leader's store and the promoted
    replica's at the new era; a writer opening a variant whose stored era
    exceeds its own must refuse — a newer writer has taken over. *)
let fence t ~era =
  let m =
    match load_manifest t with
    | Some m -> { m with m_era = max era m.m_era }
    | None -> { m_generation = 0; m_ops = 0; m_era = era; m_lineage = None }
  in
  save_manifest t m

(* --- variant lineage ------------------------------------------------------ *)

(** The (parent variant, fork stamp) pair recorded when this store was
    branched; [None] for root variants. *)
let lineage t =
  match load_manifest t with Some m -> m.m_lineage | None -> None

(** Record that this store was branched off [parent] at version stamp
    [fork].  Preserves the rest of the manifest; like {!fence} it tolerates
    a missing manifest (the save that follows rewrites it anyway). *)
let set_lineage t ~parent ~fork =
  let m =
    match load_manifest t with
    | Some m -> { m with m_lineage = Some (parent, fork) }
    | None ->
        { m_generation = 0; m_ops = 0; m_era = 0; m_lineage = Some (parent, fork) }
  in
  save_manifest t m

(* --- whole sessions ------------------------------------------------------ *)

let session_steps session =
  List.map
    (fun (s : Core.Session.step) -> (s.st_kind, s.st_op))
    (Core.Session.log session)

(** Persist a whole session: shrink wrap schema, operation journal, local
    names, custom schema, the deliverable reports, and last the manifest —
    each atomically, so a crash anywhere leaves every artifact whole. *)
let save_session t session =
  let steps = session_steps session in
  let generation, era, lineage =
    match load_manifest t with
    | Some m -> (m.m_generation + 1, m.m_era, m.m_lineage)
    | None -> (1, 0, None)
  in
  save_shrinkwrap t (Core.Session.original session);
  save_log t steps;
  save_aliases t (Core.Session.aliases session);
  save_custom t (Core.Session.custom_schema session);
  save_report t "impact" (Core.Session.impact_report session);
  save_report t "consistency" (Core.Session.consistency_report_text session);
  save_report t "mapping" (Core.Session.mapping_report session);
  write_file t
    (Filename.concat (reports_dir t) "deliverables.html")
    (Html_report.render session);
  save_manifest t
    {
      m_generation = generation;
      m_ops = List.length steps;
      m_era = era;
      m_lineage = lineage;
    }

type load_error =
  | Damaged of { file : string; reason : string }
  | Replay of Core.Apply.error

let load_error_to_string = function
  | Damaged { file; reason } -> Printf.sprintf "%s is damaged: %s" file reason
  | Replay e ->
      "log.ops does not replay: " ^ Core.Apply.error_to_string e

let damaged file reason = Error (Damaged { file; reason })

(* Read and parse one ODL artifact, mapping every failure mode to
   [Damaged]. *)
let read_schema_artifact t file path =
  if not (t.io.Io.file_exists path) then damaged file "missing"
  else
    match Odl.Parser.parse_schema (read_file t path) with
    | schema -> Ok schema
    | exception Odl.Parser.Parse_error (m, line, _) ->
        damaged file (Printf.sprintf "line %d: %s" line m)
    | exception Odl.Lexer.Lex_error (m, line, _) ->
        damaged file (Printf.sprintf "line %d: %s" line m)
    | exception Sys_error m -> damaged file m

(** Rebuild a session by replaying the journal on the stored shrink wrap
    schema, then restoring its local names.  A torn journal tail — the
    crash artifact of an append that was never acknowledged — is truncated
    and forgotten; interior corruption is an error.  No exception escapes.

    [repair] (default [true]) rewrites a torn tail in place so the next
    append lands on a clean file.  Pass [~repair:false] when reading a
    store another process may be appending to right now — a branch being
    merged, a sibling shard's variant: the longest valid prefix is exactly
    the acknowledged history, and the reader must not truncate an append
    in flight. *)
let load_session ?(repair = true) t =
  let ( let* ) = Result.bind in
  try
    let* shrink_wrap =
      read_schema_artifact t "shrinkwrap.odl" (shrinkwrap_file t)
    in
    let { Journal.entries; damage } = Journal.read t.io (log_file t) in
    let* entries =
      match damage with
      | None -> Ok entries
      | Some (Journal.Torn_tail _) ->
          if repair then Journal.rewrite t.io (log_file t) entries;
          Ok entries
      | Some (Journal.Corrupt _ as d) ->
          damaged "log.ops" (Journal.damage_to_string d)
    in
    let* steps =
      match Journal.resolve entries with
      | Ok steps -> Ok steps
      | Error m -> damaged "log.ops" m
    in
    let* session =
      Result.map_error
        (fun e -> Replay e)
        (Core.Oplog.replay shrink_wrap steps)
    in
    let* aliases =
      if t.io.Io.file_exists (aliases_file t) then
        match Core.Aliases.of_string (read_file t (aliases_file t)) with
        | aliases -> Ok aliases
        | exception Core.Aliases.Bad_aliases m -> damaged "aliases.map" m
        | exception Sys_error m -> damaged "aliases.map" m
      else Ok Core.Aliases.empty
    in
    Ok (Core.Session.restore_aliases session aliases)
  with Sys_error m -> damaged "repository" m

(* --- integrity checking -------------------------------------------------- *)

type fsck_report = {
  fsck_issues : string list;
  fsck_session : Core.Session.t option;
}

(** Inspect every artifact of the repository, reporting damage; with
    [~salvage:true] rewrite it from the best recoverable session (longest
    replayable journal prefix) and sweep stale temporary files. *)
let fsck ?(salvage = false) t =
  let issues = ref [] in
  let issue fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  let tmp_files =
    let under d =
      if t.io.Io.is_directory d then
        t.io.Io.readdir d
        |> List.filter (fun f -> Filename.check_suffix f Io.tmp_suffix)
        |> List.map (Filename.concat d)
        |> List.sort compare
      else []
    in
    under t.dir @ under (reports_dir t)
  in
  List.iter
    (fun p -> issue "%s: stale temporary file from an interrupted write" p)
    tmp_files;
  let sweep_tmp () =
    List.iter
      (fun p -> try t.io.Io.remove p with Sys_error _ -> ())
      tmp_files
  in
  let finish session =
    if salvage then begin
      sweep_tmp ();
      match session with
      | Some s when !issues <> [] -> save_session t s
      | _ -> ()
    end;
    { fsck_issues = List.rev !issues; fsck_session = session }
  in
  match read_schema_artifact t "shrinkwrap.odl" (shrinkwrap_file t) with
  | Error (Damaged { reason; _ }) | (exception Sys_error reason) ->
      issue
        "shrinkwrap.odl: %s (unrecoverable: the base schema roots every \
         replay)"
        reason;
      finish None
  | Error (Replay _) -> assert false
  | Ok shrink_wrap -> (
      (* journal: longest valid, resolvable, replayable prefix *)
      let entries =
        match Journal.read t.io (log_file t) with
        | { Journal.entries; damage = None } -> entries
        | { entries; damage = Some (Journal.Torn_tail _ as d) } ->
            issue "log.ops: %s" (Journal.damage_to_string d);
            entries
        | { entries; damage = Some (Journal.Corrupt _ as d) } ->
            issue "log.ops: %s; kept the valid prefix (%d record(s))"
              (Journal.damage_to_string d) (List.length entries);
            entries
        | exception Sys_error m ->
            issue "log.ops: %s; treating the journal as empty" m;
            []
      in
      let steps =
        let rec go stack kept = function
          | [] -> List.rev stack
          | Journal.Op (kind, op) :: rest ->
              go ((kind, op) :: stack) (kept + 1) rest
          | Journal.Undo :: rest -> (
              match stack with
              | _ :: stack -> go stack (kept + 1) rest
              | [] ->
                  issue
                    "log.ops: record %d undoes nothing; dropped it and %d \
                     later record(s)"
                    (kept + 1) (List.length rest);
                  List.rev stack)
        in
        go [] 0 entries
      in
      match Core.Session.create shrink_wrap with
      | Error _ ->
          issue
            "shrinkwrap.odl: parses but is not a valid schema (unrecoverable)";
          finish None
      | Ok empty_session ->
          let session =
            let rec go s n = function
              | [] -> s
              | (kind, op) :: rest -> (
                  match Core.Session.apply s ~kind op with
                  | Ok (s, _) -> go s (n + 1) rest
                  | Error e ->
                      issue
                        "log.ops: operation %d rejected on replay (%s); \
                         dropped it and %d later operation(s)"
                        (n + 1)
                        (Core.Apply.error_to_string e)
                        (List.length rest);
                      s)
            in
            go empty_session 0 steps
          in
          let session =
            if t.io.Io.file_exists (aliases_file t) then
              match Core.Aliases.of_string (read_file t (aliases_file t)) with
              | aliases -> Core.Session.restore_aliases session aliases
              | exception Core.Aliases.Bad_aliases m ->
                  issue "aliases.map: %s; local names reset" m;
                  session
              | exception Sys_error m ->
                  issue "aliases.map: %s; local names reset" m;
                  session
            else session
          in
          (if not (t.io.Io.file_exists (custom_file t)) then
             issue "custom.odl: missing (derived; regenerated by salvage)"
           else
             match Odl.Parser.parse_schema (read_file t (custom_file t)) with
             | _ -> ()
             | exception Odl.Parser.Parse_error (m, line, _) ->
                 issue "custom.odl: line %d: %s (derived; regenerated by \
                        salvage)" line m
             | exception Odl.Lexer.Lex_error (m, line, _) ->
                 issue "custom.odl: line %d: %s (derived; regenerated by \
                        salvage)" line m
             | exception Sys_error m -> issue "custom.odl: %s" m);
          List.iter
            (fun r ->
              let p = Filename.concat (reports_dir t) r in
              if not (t.io.Io.file_exists p) then
                issue "reports/%s: missing (derived; regenerated by salvage)" r)
            [ "impact.txt"; "consistency.txt"; "mapping.txt";
              "deliverables.html" ];
          (match load_manifest t with
          | None ->
              if t.io.Io.file_exists (manifest_file t) then
                issue "manifest: unreadable (rewritten by salvage)"
              else issue "manifest: missing (rewritten by salvage)"
          | Some m ->
              let actual = Core.Session.step_count session in
              if actual < m.m_ops then
                issue
                  "manifest: records %d op(s) but only %d replay — a saved \
                   tail was lost"
                  m.m_ops actual;
              (* lineage sanity (branched variants): a damaged lineage line
                 is an issue, never a crash — the variant's own artifacts
                 are still whole and salvage keeps the record as parsed *)
              (match m.m_lineage with
              | None -> ()
              | Some (parent, fork) ->
                  if not (Odl.Names.is_valid parent) then
                    issue "manifest: parent %S is not a valid variant name"
                      parent;
                  if parent = Filename.basename t.dir then
                    issue "manifest: variant records itself as its own parent";
                  if fork < 0 then
                    issue "manifest: negative fork stamp %d" fork));
          finish (Some session))
