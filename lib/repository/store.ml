(** On-disk schema repository.

    Persistence reuses the system's own languages: schemas are stored as
    extended ODL text and operation logs in the modification language, so a
    repository is human-readable and round-trips through the parsers.

    Layout of a repository directory:
    {v
    <dir>/shrinkwrap.odl     the original shrink wrap schema
    <dir>/log.ops            applied operations, one per line:  @ww add_...();
    <dir>/custom.odl         the generated custom schema
    <dir>/reports/*.txt      generated deliverables
    v} *)

type t = { dir : string }

let shrinkwrap_file t = Filename.concat t.dir "shrinkwrap.odl"
let aliases_file t = Filename.concat t.dir "aliases.map"
let log_file t = Filename.concat t.dir "log.ops"
let custom_file t = Filename.concat t.dir "custom.odl"
let reports_dir t = Filename.concat t.dir "reports"

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

(** Open (creating if needed) a repository rooted at [dir]. *)
let open_dir dir =
  ensure_dir dir;
  ensure_dir (Filename.concat dir "reports");
  { dir }

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- operation log format ---------------------------------------------- *)

let kind_tag = function
  | Core.Concept.Wagon_wheel -> "@ww"
  | Core.Concept.Generalization -> "@gh"
  | Core.Concept.Aggregation -> "@ah"
  | Core.Concept.Instance_chain -> "@ih"

let kind_of_tag = function
  | "@ww" -> Some Core.Concept.Wagon_wheel
  | "@gh" -> Some Core.Concept.Generalization
  | "@ah" -> Some Core.Concept.Aggregation
  | "@ih" -> Some Core.Concept.Instance_chain
  | _ -> None

exception Bad_log of string

(** Serialize a [(kind, op)] log. *)
let log_to_string steps =
  steps
  |> List.map (fun (kind, op) ->
         Printf.sprintf "%s %s;" (kind_tag kind) (Core.Op_printer.to_string op))
  |> String.concat "\n"

(** Parse a log produced by {!log_to_string}.
    @raise Bad_log on malformed lines. *)
let log_of_string text =
  text |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || String.length line >= 2 && String.sub line 0 2 = "//"
         then None
         else
           match String.index_opt line ' ' with
           | None -> raise (Bad_log ("missing operation: " ^ line))
           | Some i -> (
               let tag = String.sub line 0 i in
               let rest = String.sub line (i + 1) (String.length line - i - 1) in
               match kind_of_tag tag with
               | None -> raise (Bad_log ("unknown concept tag: " ^ tag))
               | Some kind -> (
                   try Some (kind, Core.Op_parser.parse rest)
                   with Core.Op_parser.Parse_error (m, _, _) ->
                     raise (Bad_log (m ^ " in: " ^ rest)))))

(* --- repository operations ---------------------------------------------- *)

let save_shrinkwrap t schema =
  write_file (shrinkwrap_file t) (Odl.Printer.schema_to_string schema)

let load_shrinkwrap t = Odl.Parser.parse_schema (read_file (shrinkwrap_file t))

let save_log t steps = write_file (log_file t) (log_to_string steps)

let load_log t =
  if Sys.file_exists (log_file t) then log_of_string (read_file (log_file t))
  else []

let save_custom t schema =
  write_file (custom_file t) (Odl.Printer.schema_to_string schema)

let load_custom t = Odl.Parser.parse_schema (read_file (custom_file t))

let save_report t name contents =
  write_file (Filename.concat (reports_dir t) (name ^ ".txt")) contents

let save_aliases t aliases =
  write_file (aliases_file t) (Core.Aliases.to_string aliases)

let load_aliases t =
  if Sys.file_exists (aliases_file t) then
    Core.Aliases.of_string (read_file (aliases_file t))
  else Core.Aliases.empty

(** Persist a whole session: shrink wrap schema, operation log, local names,
    custom schema, and the deliverable reports. *)
let save_session t session =
  save_shrinkwrap t (Core.Session.original session);
  save_log t
    (List.map
       (fun (s : Core.Session.step) -> (s.st_kind, s.st_op))
       (Core.Session.log session));
  save_aliases t (Core.Session.aliases session);
  save_custom t (Core.Session.custom_schema session);
  save_report t "impact" (Core.Session.impact_report session);
  save_report t "consistency" (Core.Session.consistency_report_text session);
  save_report t "mapping" (Core.Session.mapping_report session);
  write_file
    (Filename.concat (reports_dir t) "deliverables.html")
    (Html_report.render session)

(** Rebuild a session from a repository by replaying its log on the stored
    shrink wrap schema, then restoring its local names. *)
let load_session t =
  let shrink_wrap = load_shrinkwrap t in
  Result.map
    (fun session -> Core.Session.restore_aliases session (load_aliases t))
    (Core.Session.replay shrink_wrap (load_log t))
