(** Append-only operation journal.  See journal.mli for the format. *)

type entry =
  | Op of Core.Concept.kind * Core.Modop.t
  | Undo

type damage =
  | Torn_tail of string
  | Corrupt of { line : int; reason : string }

let damage_to_string = function
  | Torn_tail frag ->
      Printf.sprintf "torn tail (%d bytes of unacknowledged record)"
        (String.length frag)
  | Corrupt { line; reason } -> Printf.sprintf "line %d: %s" line reason

type parsed = {
  entries : entry list;
  damage : damage option;
}

(* --- concept tags -------------------------------------------------------- *)

let kind_tag = function
  | Core.Concept.Wagon_wheel -> "@ww"
  | Core.Concept.Generalization -> "@gh"
  | Core.Concept.Aggregation -> "@ah"
  | Core.Concept.Instance_chain -> "@ih"

let kind_of_tag = function
  | "@ww" -> Some Core.Concept.Wagon_wheel
  | "@gh" -> Some Core.Concept.Generalization
  | "@ah" -> Some Core.Concept.Aggregation
  | "@ih" -> Some Core.Concept.Instance_chain
  | _ -> None

let undo_line = "@undo;"

(* --- serialization ------------------------------------------------------- *)

let entry_to_line = function
  | Op (kind, op) ->
      Printf.sprintf "%s %s;" (kind_tag kind) (Core.Op_printer.to_string op)
  | Undo -> undo_line

let to_string entries =
  entries |> List.map (fun e -> entry_to_line e ^ "\n") |> String.concat ""

(* --- parsing ------------------------------------------------------------- *)

(* [None] for lines to skip, [Ok entry] for records, [Error reason] for
   interior corruption. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || (String.length line >= 2 && String.sub line 0 2 = "//") then
    None
  else if line = undo_line then Some (Ok Undo)
  else
    match String.index_opt line ' ' with
    | None -> Some (Error ("missing operation: " ^ line))
    | Some i -> (
        let tag = String.sub line 0 i in
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        match kind_of_tag tag with
        | None -> Some (Error ("unknown concept tag: " ^ tag))
        | Some kind -> (
            try Some (Ok (Op (kind, Core.Op_parser.parse rest))) with
            | Core.Op_parser.Parse_error (m, _, _) ->
                Some (Error (m ^ " in: " ^ rest))
            | Odl.Lexer.Lex_error (m, _, _) ->
                Some (Error (m ^ " in: " ^ rest))))

let parse text =
  (* Records are newline-terminated; the segment after the final newline is
     an in-flight record from a crashed append (quoted identifiers guarantee
     no record contains a raw newline, so a torn append never fabricates a
     terminated line). *)
  let terminated, fragment =
    match String.rindex_opt text '\n' with
    | None -> ([], text)
    | Some i ->
        ( String.split_on_char '\n' (String.sub text 0 i),
          String.sub text (i + 1) (String.length text - i - 1) )
  in
  let rec go n acc = function
    | [] -> (List.rev acc, None, n)
    | line :: rest -> (
        match parse_line line with
        | None -> go (n + 1) acc rest
        | Some (Ok e) -> go (n + 1) (e :: acc) rest
        | Some (Error reason) ->
            (List.rev acc, Some (Corrupt { line = n; reason }), n))
  in
  let entries, corrupt, _ = go 1 [] terminated in
  match corrupt with
  | Some _ as damage -> { entries; damage }
  | None ->
      if String.trim fragment = "" then { entries; damage = None }
      else
        (* A fragment that parses lost only its newline; keep it.  Either
           way the file needs repair before the next append. *)
        let entries =
          match parse_line fragment with
          | Some (Ok e) -> entries @ [ e ]
          | _ -> entries
        in
        { entries; damage = Some (Torn_tail fragment) }

let resolve entries =
  let rec go stack = function
    | [] -> Ok (List.rev stack)
    | Op (kind, op) :: rest -> go ((kind, op) :: stack) rest
    | Undo :: rest -> (
        match stack with
        | _ :: stack -> go stack rest
        | [] -> Error "undo record with no operation to undo")
  in
  go [] entries

(* --- file operations ----------------------------------------------------- *)

(* One process-wide observer rather than a parameter on every call: the
   journal is written from deep inside the repository layer, and threading
   an observer through [Store]/[Session] signatures would couple those
   layers to observability for the sake of two timing points.  The server
   installs its hook at startup; [None] (the default) costs one load. *)
let observer : (op:string -> seconds:float -> unit) option ref = ref None
let set_observer f = observer := f

let timed op f =
  match !observer with
  | None -> f ()
  | Some record ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      record ~op ~seconds:(Unix.gettimeofday () -. t0);
      r

let encode entry = entry_to_line entry ^ "\n"

let append_raw (io : Io.t) path data =
  timed "append" (fun () ->
      io.append path data;
      io.fsync path)

let append io path entry = append_raw io path (encode entry)

let read (io : Io.t) path =
  if io.file_exists path then parse (io.read_file path)
  else { entries = []; damage = None }

let rewrite io path entries =
  timed "rewrite" (fun () -> Io.atomic_write io path (to_string entries))

(* --- replication stream framing ------------------------------------------ *)

module Frame = struct
  type t =
    | Hello of { era : int }
    | Root of { data : string }
    | File of { variant : string; name : string; data : string }
    | Start of { variant : string; stamp : int }
    | Records of { variant : string; stamp : int; data : string }
    | Reset of { variant : string }
    | Live
    | Ack of { variant : string; stamp : int }

  (* Header lines carry only integers and fixed tokens; every
     variable-length field (variant names may hold any quoted-identifier
     byte, record runs are raw journal bytes) rides in a length-prefixed
     payload after the newline.  Nothing in a frame is ever parsed by
     line discipline, so pathological names cannot break the stream. *)
  let to_string = function
    | Hello { era } -> Printf.sprintf "+hello %d\n" era
    | Root { data } -> Printf.sprintf "+root %d\n%s" (String.length data) data
    | File { variant; name; data } ->
        Printf.sprintf "+file %d %d %s\n%s%s" (String.length variant)
          (String.length data) name variant data
    | Start { variant; stamp } ->
        Printf.sprintf "+start %d %d\n%s" (String.length variant) stamp variant
    | Records { variant; stamp; data } ->
        Printf.sprintf "+rec %d %d %d\n%s%s" (String.length variant) stamp
          (String.length data) variant data
    | Reset { variant } ->
        Printf.sprintf "+reset %d\n%s" (String.length variant) variant
    | Live -> "+live\n"
    | Ack { variant; stamp } ->
        Printf.sprintf "+ack %d %d\n%s" (String.length variant) stamp variant

  let describe = function
    | Hello _ -> "+hello"
    | Root _ -> "+root"
    | File _ -> "+file"
    | Start _ -> "+start"
    | Records _ -> "+rec"
    | Reset _ -> "+reset"
    | Live -> "+live"
    | Ack _ -> "+ack"

  let read ~read_line ~read_exact =
    match read_line () with
    | None -> Ok None
    | Some line -> (
        let int s = int_of_string_opt s in
        let payload n k =
          match read_exact n with
          | Some s -> k s
          | None -> Error ("stream ended inside a " ^ line ^ " frame")
        in
        let nonneg = function Some n when n >= 0 -> Some n | _ -> None in
        match String.split_on_char ' ' (String.trim line) with
        | [ "+hello"; e ] -> (
            match int e with
            | Some era -> Ok (Some (Hello { era }))
            | None -> Error ("bad frame header: " ^ line))
        | [ "+root"; len ] -> (
            match nonneg (int len) with
            | Some n -> payload n (fun data -> Ok (Some (Root { data })))
            | None -> Error ("bad frame header: " ^ line))
        | [ "+file"; vlen; dlen; name ] -> (
            match (nonneg (int vlen), nonneg (int dlen)) with
            | Some vn, Some dn ->
                payload (vn + dn) (fun s ->
                    Ok
                      (Some
                         (File
                            {
                              variant = String.sub s 0 vn;
                              name;
                              data = String.sub s vn dn;
                            })))
            | _ -> Error ("bad frame header: " ^ line))
        | [ "+start"; vlen; stamp ] -> (
            match (nonneg (int vlen), int stamp) with
            | Some vn, Some stamp ->
                payload vn (fun variant -> Ok (Some (Start { variant; stamp })))
            | _ -> Error ("bad frame header: " ^ line))
        | [ "+rec"; vlen; stamp; dlen ] -> (
            match (nonneg (int vlen), int stamp, nonneg (int dlen)) with
            | Some vn, Some stamp, Some dn ->
                payload (vn + dn) (fun s ->
                    Ok
                      (Some
                         (Records
                            {
                              variant = String.sub s 0 vn;
                              stamp;
                              data = String.sub s vn dn;
                            })))
            | _ -> Error ("bad frame header: " ^ line))
        | [ "+reset"; vlen ] -> (
            match nonneg (int vlen) with
            | Some vn ->
                payload vn (fun variant -> Ok (Some (Reset { variant })))
            | None -> Error ("bad frame header: " ^ line))
        | [ "+live" ] -> Ok (Some Live)
        | [ "+ack"; vlen; stamp ] -> (
            match (nonneg (int vlen), int stamp) with
            | Some vn, Some stamp ->
                payload vn (fun variant -> Ok (Some (Ack { variant; stamp })))
            | _ -> Error ("bad frame header: " ^ line))
        | _ -> Error ("unknown frame: " ^ line))

  let of_string text =
    let pos = ref 0 in
    let read_line () =
      if !pos >= String.length text then None
      else
        match String.index_from_opt text !pos '\n' with
        | Some i ->
            let line = String.sub text !pos (i - !pos) in
            pos := i + 1;
            Some line
        | None ->
            let line = String.sub text !pos (String.length text - !pos) in
            pos := String.length text;
            Some line
    in
    let read_exact n =
      if !pos + n > String.length text then None
      else begin
        let s = String.sub text !pos n in
        pos := !pos + n;
        Some s
      end
    in
    read ~read_line ~read_exact
end
