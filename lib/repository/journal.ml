(** Append-only operation journal.  See journal.mli for the format. *)

type entry =
  | Op of Core.Concept.kind * Core.Modop.t
  | Undo

type damage =
  | Torn_tail of string
  | Corrupt of { line : int; reason : string }

let damage_to_string = function
  | Torn_tail frag ->
      Printf.sprintf "torn tail (%d bytes of unacknowledged record)"
        (String.length frag)
  | Corrupt { line; reason } -> Printf.sprintf "line %d: %s" line reason

type parsed = {
  entries : entry list;
  damage : damage option;
}

(* --- concept tags -------------------------------------------------------- *)

let kind_tag = function
  | Core.Concept.Wagon_wheel -> "@ww"
  | Core.Concept.Generalization -> "@gh"
  | Core.Concept.Aggregation -> "@ah"
  | Core.Concept.Instance_chain -> "@ih"

let kind_of_tag = function
  | "@ww" -> Some Core.Concept.Wagon_wheel
  | "@gh" -> Some Core.Concept.Generalization
  | "@ah" -> Some Core.Concept.Aggregation
  | "@ih" -> Some Core.Concept.Instance_chain
  | _ -> None

let undo_line = "@undo;"

(* --- serialization ------------------------------------------------------- *)

let entry_to_line = function
  | Op (kind, op) ->
      Printf.sprintf "%s %s;" (kind_tag kind) (Core.Op_printer.to_string op)
  | Undo -> undo_line

let to_string entries =
  entries |> List.map (fun e -> entry_to_line e ^ "\n") |> String.concat ""

(* --- parsing ------------------------------------------------------------- *)

(* [None] for lines to skip, [Ok entry] for records, [Error reason] for
   interior corruption. *)
let parse_line line =
  let line = String.trim line in
  if line = "" || (String.length line >= 2 && String.sub line 0 2 = "//") then
    None
  else if line = undo_line then Some (Ok Undo)
  else
    match String.index_opt line ' ' with
    | None -> Some (Error ("missing operation: " ^ line))
    | Some i -> (
        let tag = String.sub line 0 i in
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        match kind_of_tag tag with
        | None -> Some (Error ("unknown concept tag: " ^ tag))
        | Some kind -> (
            try Some (Ok (Op (kind, Core.Op_parser.parse rest))) with
            | Core.Op_parser.Parse_error (m, _, _) ->
                Some (Error (m ^ " in: " ^ rest))
            | Odl.Lexer.Lex_error (m, _, _) ->
                Some (Error (m ^ " in: " ^ rest))))

let parse text =
  (* Records are newline-terminated; the segment after the final newline is
     an in-flight record from a crashed append (quoted identifiers guarantee
     no record contains a raw newline, so a torn append never fabricates a
     terminated line). *)
  let terminated, fragment =
    match String.rindex_opt text '\n' with
    | None -> ([], text)
    | Some i ->
        ( String.split_on_char '\n' (String.sub text 0 i),
          String.sub text (i + 1) (String.length text - i - 1) )
  in
  let rec go n acc = function
    | [] -> (List.rev acc, None, n)
    | line :: rest -> (
        match parse_line line with
        | None -> go (n + 1) acc rest
        | Some (Ok e) -> go (n + 1) (e :: acc) rest
        | Some (Error reason) ->
            (List.rev acc, Some (Corrupt { line = n; reason }), n))
  in
  let entries, corrupt, _ = go 1 [] terminated in
  match corrupt with
  | Some _ as damage -> { entries; damage }
  | None ->
      if String.trim fragment = "" then { entries; damage = None }
      else
        (* A fragment that parses lost only its newline; keep it.  Either
           way the file needs repair before the next append. *)
        let entries =
          match parse_line fragment with
          | Some (Ok e) -> entries @ [ e ]
          | _ -> entries
        in
        { entries; damage = Some (Torn_tail fragment) }

let resolve entries =
  let rec go stack = function
    | [] -> Ok (List.rev stack)
    | Op (kind, op) :: rest -> go ((kind, op) :: stack) rest
    | Undo :: rest -> (
        match stack with
        | _ :: stack -> go stack rest
        | [] -> Error "undo record with no operation to undo")
  in
  go [] entries

(* --- file operations ----------------------------------------------------- *)

(* One process-wide observer rather than a parameter on every call: the
   journal is written from deep inside the repository layer, and threading
   an observer through [Store]/[Session] signatures would couple those
   layers to observability for the sake of two timing points.  The server
   installs its hook at startup; [None] (the default) costs one load. *)
let observer : (op:string -> seconds:float -> unit) option ref = ref None
let set_observer f = observer := f

let timed op f =
  match !observer with
  | None -> f ()
  | Some record ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      record ~op ~seconds:(Unix.gettimeofday () -. t0);
      r

let encode entry = entry_to_line entry ^ "\n"

let append_raw (io : Io.t) path data =
  timed "append" (fun () ->
      io.append path data;
      io.fsync path)

let append io path entry = append_raw io path (encode entry)

let read (io : Io.t) path =
  if io.file_exists path then parse (io.read_file path)
  else { entries = []; damage = None }

let rewrite io path entries =
  timed "rewrite" (fun () -> Io.atomic_write io path (to_string entries))
