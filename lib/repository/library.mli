(** A library of shrink wrap schemas on disk: a directory of [*.odl] files,
    browsable by structural descriptor and searchable by affinity to an
    application sketch. *)

type entry = {
  e_path : string;
  e_schema : Odl.Types.schema;
  e_descriptor : Core.Affinity.descriptor;
}

type t = { lib_dir : string; entries : entry list }

val load : string -> t * (string * string) list
(** Load every parsable [*.odl] file under the directory; unparsable files
    are returned as [(path, reason)] pairs. *)

val store : t -> Odl.Types.schema -> t
(** Write a schema into the library directory (file name derived from the
    schema name) and add it to the in-memory catalog. *)

val schemas : t -> Odl.Types.schema list

val search : t -> sketch:Odl.Types.schema -> (entry * float) list
(** Entries ranked by affinity to the sketch, best first. *)

val catalog : t -> string
(** One descriptor line per entry. *)
