(** Injectable IO for the repository layer.

    Every syscall the durable repository performs goes through a first-class
    record of operations, so tests can substitute an in-memory filesystem
    with write-back-cache semantics and a fault injector that crashes the
    writer at any syscall.  Production code uses {!unix}.

    Durability model: data written with {!field-write}/{!field-append} is
    volatile until {!field-fsync} succeeds on the file; {!field-rename} and
    the other metadata operations are treated as immediately durable (the
    metadata-journaling behaviour of common Linux filesystems).  A file's
    directory entry is considered durable once the file has been fsync'd. *)

exception Crash
(** Raised by a {!faulty} IO at its injected crash point. *)

type t = {
  read_file : string -> string;  (** whole contents; [Sys_error] if absent *)
  write : string -> string -> unit;  (** create/truncate; NOT durable *)
  append : string -> string -> unit;  (** append, creating; NOT durable *)
  fsync : string -> unit;  (** make the file's current contents durable *)
  rename : string -> string -> unit;  (** atomic replace *)
  remove : string -> unit;
  file_exists : string -> bool;
  is_directory : string -> bool;  (** [false] on dangling symlinks *)
  mkdir : string -> unit;  (** one level; succeeds if it already exists *)
  readdir : string -> string list;
}

(* --- the real filesystem ------------------------------------------------- *)

(** [retry_eintr f] runs [f ()] again whenever it is interrupted by a
    signal (EINTR).  Every syscall {!unix} performs goes through this one
    loop, so a SIGCHLD/SIGALRM landing mid-write in the threaded server
    never surfaces as a spurious IO failure. *)
let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

(* Map the remaining Unix errors to the [Sys_error] the rest of the
   repository layer expects (EINTR never reaches this point). *)
let sys_error path = function
  | Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  | e -> raise e

let with_fd path flags perm f =
  let fd = try retry_eintr (fun () -> Unix.openfile path flags perm)
           with e -> sys_error path e in
  Fun.protect
    ~finally:(fun () -> retry_eintr (fun () -> Unix.close fd))
    (fun () -> try f fd with e -> sys_error path e)

let read_all fd =
  let chunk = 65536 in
  let buf = Bytes.create chunk in
  let b = Buffer.create chunk in
  let rec go () =
    let n = retry_eintr (fun () -> Unix.read fd buf 0 chunk) in
    if n > 0 then begin
      Buffer.add_subbytes b buf 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents b

(* A short write (interrupted or against a full pipe of the fs cache) is
   resumed from where it stopped; EINTR before any byte is a plain retry. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = retry_eintr (fun () -> Unix.write fd b off (len - off)) in
      go (off + n)
  in
  go 0

let unix : t =
  {
    read_file =
      (fun path -> with_fd path [ Unix.O_RDONLY ] 0 read_all);
    write =
      (fun path contents ->
        with_fd path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
          (fun fd -> write_all fd contents));
    append =
      (fun path contents ->
        with_fd path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
          (fun fd -> write_all fd contents));
    fsync =
      (fun path ->
        with_fd path [ Unix.O_RDONLY ] 0 (fun fd ->
            retry_eintr (fun () -> Unix.fsync fd)));
    rename =
      (fun a b ->
        try retry_eintr (fun () -> Unix.rename a b) with e -> sys_error a e);
    remove =
      (fun p ->
        try retry_eintr (fun () -> Unix.unlink p) with e -> sys_error p e);
    file_exists = (fun p -> retry_eintr (fun () -> Sys.file_exists p));
    is_directory =
      (fun path ->
        try retry_eintr (fun () -> Sys.is_directory path)
        with Sys_error _ -> false);
    mkdir =
      (fun path ->
        try retry_eintr (fun () -> Unix.mkdir path 0o755) with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        | e -> sys_error path e);
    readdir =
      (* sorted, so every directory listing is deterministic across
         filesystems (readdir order is arbitrary on ext4/btrfs/tmpfs) *)
      (fun path ->
        retry_eintr (fun () -> Sys.readdir path)
        |> Array.to_list |> List.sort compare);
  }

(* --- derived operations -------------------------------------------------- *)

(** [mkdir_p io dir] creates [dir] and any missing parents; tolerant of the
    directory already existing (including concurrent creation: {!field-mkdir}
    treats EEXIST as success). *)
let rec mkdir_p io dir =
  if dir = "" || dir = "." || dir = "/" || io.is_directory dir then ()
  else begin
    mkdir_p io (Filename.dirname dir);
    io.mkdir dir
  end

let tmp_suffix = ".tmp"

(** Write-to-temp, fsync, atomically rename into place.  A crash at any
    point leaves either the old contents or the new, never a mixture, and
    the new contents are durable once [atomic_write] returns. *)
let atomic_write io path contents =
  let tmp = path ^ tmp_suffix in
  io.write tmp contents;
  io.fsync tmp;
  io.rename tmp path

(* --- in-memory filesystem with write-back-cache semantics ---------------- *)

type mem = {
  files : (string, string) Hashtbl.t;  (** current (volatile) view *)
  synced : (string, string) Hashtbl.t;  (** what survives a crash *)
  dirs : (string, unit) Hashtbl.t;
}

let mem_create () =
  { files = Hashtbl.create 16; synced = Hashtbl.create 16; dirs = Hashtbl.create 4 }

let mem_io (m : mem) : t =
  let get tbl p = Hashtbl.find_opt tbl p in
  {
    read_file =
      (fun p ->
        match get m.files p with
        | Some c -> c
        | None -> raise (Sys_error (p ^ ": No such file or directory")));
    write = (fun p c -> Hashtbl.replace m.files p c);
    append =
      (fun p c ->
        Hashtbl.replace m.files p (Option.value ~default:"" (get m.files p) ^ c));
    fsync =
      (fun p ->
        match get m.files p with
        | Some c -> Hashtbl.replace m.synced p c
        | None -> raise (Sys_error (p ^ ": No such file or directory")));
    rename =
      (fun a b ->
        if Hashtbl.mem m.dirs a then begin
          (* directory rename: on a real filesystem this is the same single
             metadata operation as a file rename — the entries keep their
             inodes — so here every key under the old prefix moves at once *)
          let prefix = a ^ "/" in
          let plen = String.length prefix in
          let rewrite p =
            if p = a then Some b
            else if String.length p > plen && String.sub p 0 plen = prefix then
              Some (b ^ "/" ^ String.sub p plen (String.length p - plen))
            else None
          in
          let move tbl =
            let moved =
              Hashtbl.fold
                (fun p c acc ->
                  match rewrite p with
                  | Some p' -> (p, p', c) :: acc
                  | None -> acc)
                tbl []
            in
            List.iter
              (fun (p, p', c) ->
                Hashtbl.remove tbl p;
                Hashtbl.replace tbl p' c)
              moved
          in
          move m.files;
          move m.synced;
          move m.dirs
        end
        else begin
        (match get m.files a with
        | Some c ->
            Hashtbl.replace m.files b c;
            Hashtbl.remove m.files a
        | None -> raise (Sys_error (a ^ ": No such file or directory")));
        (* the rename itself is durable metadata; the content of [b] after a
           crash is whatever of inode [a] had reached the disk *)
        (match get m.synced a with
        | Some c -> Hashtbl.replace m.synced b c
        | None -> Hashtbl.remove m.synced b);
        Hashtbl.remove m.synced a
        end);
    remove =
      (fun p ->
        Hashtbl.remove m.files p;
        Hashtbl.remove m.synced p);
    file_exists = (fun p -> Hashtbl.mem m.files p || Hashtbl.mem m.dirs p);
    is_directory = (fun p -> Hashtbl.mem m.dirs p);
    mkdir = (fun p -> Hashtbl.replace m.dirs p ());
    readdir =
      (fun d ->
        let under tbl =
          Hashtbl.fold
            (fun p _ acc ->
              if Filename.dirname p = d then Filename.basename p :: acc else acc)
            tbl []
        in
        List.sort_uniq compare (under m.files @ under m.dirs));
  }

(** Simulate power loss: un-fsync'd data partially reaches the disk.  For
    each dirty file a deterministic rule keyed on [flush] decides how much
    of the pending delta survives — nothing, a torn prefix, or all of it —
    then the volatile view is reset to the survivors. *)
let mem_crash ?(flush = 0) (m : mem) =
  let keep cur syn =
    match flush mod 3 with
    | 0 -> syn
    | 2 -> Some cur
    | _ ->
        (* a torn prefix: synced part plus half of the pending delta *)
        let s = Option.value ~default:"" syn in
        let sl = String.length s and cl = String.length cur in
        if cl > sl && String.length s <= cl && String.sub cur 0 sl = s then
          Some (String.sub cur 0 (sl + ((cl - sl) / 2)))
        else if cl = 0 then Some ""
        else Some (String.sub cur 0 (cl / 2))
  in
  let survivors =
    Hashtbl.fold
      (fun p cur acc ->
        let syn = Hashtbl.find_opt m.synced p in
        if syn = Some cur then (p, cur) :: acc
        else
          match keep cur syn with
          | Some c -> (p, c) :: acc
          | None -> acc)
      m.files []
  in
  Hashtbl.reset m.files;
  Hashtbl.reset m.synced;
  List.iter
    (fun (p, c) ->
      Hashtbl.replace m.files p c;
      Hashtbl.replace m.synced p c)
    survivors

(* --- concurrency wrappers ------------------------------------------------- *)

(** [locked io] serializes every operation of [io] through one mutex.  The
    in-memory filesystem is plain hashtables, so any concurrent use (the
    multi-session service, the chaos harness) must go through this. *)
let locked io =
  let m = Mutex.create () in
  let guard f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f
  in
  {
    read_file = (fun p -> guard (fun () -> io.read_file p));
    write = (fun p c -> guard (fun () -> io.write p c));
    append = (fun p c -> guard (fun () -> io.append p c));
    fsync = (fun p -> guard (fun () -> io.fsync p));
    rename = (fun a b -> guard (fun () -> io.rename a b));
    remove = (fun p -> guard (fun () -> io.remove p));
    file_exists = (fun p -> guard (fun () -> io.file_exists p));
    is_directory = (fun p -> guard (fun () -> io.is_directory p));
    mkdir = (fun p -> guard (fun () -> io.mkdir p));
    readdir = (fun p -> guard (fun () -> io.readdir p));
  }

(** [protected io] wraps every operation of [io] in {!retry_eintr} — the
    same loop {!unix} uses internally, exposed so tests can drive it
    against {!eintr_faulty}. *)
let protected io =
  {
    read_file = (fun p -> retry_eintr (fun () -> io.read_file p));
    write = (fun p c -> retry_eintr (fun () -> io.write p c));
    append = (fun p c -> retry_eintr (fun () -> io.append p c));
    fsync = (fun p -> retry_eintr (fun () -> io.fsync p));
    rename = (fun a b -> retry_eintr (fun () -> io.rename a b));
    remove = (fun p -> retry_eintr (fun () -> io.remove p));
    file_exists = (fun p -> retry_eintr (fun () -> io.file_exists p));
    is_directory = (fun p -> retry_eintr (fun () -> io.is_directory p));
    mkdir = (fun p -> retry_eintr (fun () -> io.mkdir p));
    readdir = (fun p -> retry_eintr (fun () -> io.readdir p));
  }

(** [observed ~now ~record io] times each write-path operation of [io] and
    reports it as [record op seconds] with [op] one of ["write"],
    ["append"], ["fsync"], ["rename"].  Reads and metadata queries are left
    untimed — the durability-critical syscalls are the ones whose latency
    distribution matters.  Nothing is recorded when the operation raises:
    a failed fsync's duration would pollute the latency histogram that
    feeds the p99 alerts. *)
let observed ~now ~record io =
  let timed op f =
    let t0 = now () in
    let r = f () in
    record op (now () -. t0);
    r
  in
  {
    io with
    write = (fun p c -> timed "write" (fun () -> io.write p c));
    append = (fun p c -> timed "append" (fun () -> io.append p c));
    fsync = (fun p -> timed "fsync" (fun () -> io.fsync p));
    rename = (fun a b -> timed "rename" (fun () -> io.rename a b));
  }

(* --- fault injection ----------------------------------------------------- *)

(** Count every effectful syscall (write, append, fsync, rename, remove,
    mkdir) going through the IO; the second component reads the count. *)
let counting io =
  let n = ref 0 in
  let tick () = incr n in
  ( {
      io with
      write = (fun p c -> tick (); io.write p c);
      append = (fun p c -> tick (); io.append p c);
      fsync = (fun p -> tick (); io.fsync p);
      rename = (fun a b -> tick (); io.rename a b);
      remove = (fun p -> tick (); io.remove p);
      mkdir = (fun p -> tick (); io.mkdir p);
    },
    fun () -> !n )

(** [eintr_faulty ~eintr_at io] raises [Unix_error (EINTR, ...)] in place
    of each effectful syscall whose (0-based) index is listed in
    [eintr_at]; the syscall has no effect at the injection point, like a
    signal landing before the kernel did any work.  Composed under
    {!protected} (or behind {!unix}'s own loops) the interrupted call is
    retried and must succeed; the second component reads how many
    interrupts were delivered. *)
let eintr_faulty ~eintr_at io =
  let n = ref 0 in
  let delivered = ref 0 in
  let gate f =
    let i = !n in
    incr n;
    if List.mem i eintr_at then begin
      incr delivered;
      raise (Unix.Unix_error (Unix.EINTR, "injected", ""))
    end
    else f ()
  in
  ( {
      io with
      write = (fun p c -> gate (fun () -> io.write p c));
      append = (fun p c -> gate (fun () -> io.append p c));
      fsync = (fun p -> gate (fun () -> io.fsync p));
      rename = (fun a b -> gate (fun () -> io.rename a b));
      remove = (fun p -> gate (fun () -> io.remove p));
      mkdir = (fun p -> gate (fun () -> io.mkdir p));
    },
    fun () -> !delivered )

(** [faulty ~crash_at io] raises {!Crash} in place of the [crash_at]-th
    (0-based) effectful syscall.  A crashing [write]/[append] first lands a
    torn prefix of its data (half), modelling a partial write; the other
    syscalls have no effect at the crash point. *)
let faulty ~crash_at io =
  let n = ref 0 in
  let gate partial f =
    if !n = crash_at then begin
      incr n;
      partial ();
      raise Crash
    end
    else begin
      incr n;
      f ()
    end
  in
  let nothing () = () in
  ( {
      io with
      write =
        (fun p c ->
          gate
            (fun () -> io.write p (String.sub c 0 (String.length c / 2)))
            (fun () -> io.write p c));
      append =
        (fun p c ->
          gate
            (fun () -> io.append p (String.sub c 0 (String.length c / 2)))
            (fun () -> io.append p c));
      fsync = (fun p -> gate nothing (fun () -> io.fsync p));
      rename = (fun a b -> gate nothing (fun () -> io.rename a b));
      remove = (fun p -> gate nothing (fun () -> io.remove p));
      mkdir = (fun p -> gate nothing (fun () -> io.mkdir p));
    },
    fun () -> !n )
