(** On-disk schema repository (crash-safe).

    Persistence reuses the system's own languages: schemas are stored as
    extended ODL text and operation logs in the modification language, so a
    repository is human-readable and round-trips through the parsers.

    Layout of a repository directory:
    {v
    <dir>/shrinkwrap.odl     the original shrink wrap schema
    <dir>/log.ops            operation journal:  @ww add_...(...);  @undo;
    <dir>/aliases.map        local names:  Canonical = local
    <dir>/custom.odl         the generated custom schema
    <dir>/manifest           format version, generation, ops watermark
    <dir>/reports/*.txt      generated deliverables
    v}

    Durability: every whole-file artifact is written via write-to-temp,
    fsync, atomic rename; the journal is append-only with a per-record
    fsync ({!Journal}); the manifest is written last so it witnesses a
    completed save.  All syscalls go through an injectable {!Io.t}. *)

type t

val open_dir : ?io:Io.t -> string -> t
(** Open (creating if needed) a repository rooted at the directory. *)

val dir : t -> string
val io : t -> Io.t
val shrinkwrap_file : t -> string
val log_file : t -> string
val aliases_file : t -> string
val custom_file : t -> string
val manifest_file : t -> string
val reports_dir : t -> string

(** {1 Operation log format} *)

exception Bad_log of string

val log_to_string : (Core.Concept.kind * Core.Modop.t) list -> string
(** One newline-terminated line per step: a [@ww]/[@gh]/[@ah]/[@ih] concept
    tag followed by the operation in the modification language. *)

val log_of_string : string -> (Core.Concept.kind * Core.Modop.t) list
(** Inverse of {!log_to_string}; blank lines and [// ...] comments are
    skipped and [@undo;] records are resolved.
    @raise Bad_log on malformed lines. *)

(** {1 Individual artifacts} *)

val save_shrinkwrap : t -> Odl.Types.schema -> unit
val load_shrinkwrap : t -> Odl.Types.schema
val save_log : t -> (Core.Concept.kind * Core.Modop.t) list -> unit
val load_log : t -> (Core.Concept.kind * Core.Modop.t) list
(** The empty list when no log has been saved yet.
    @raise Bad_log on damage. *)

val save_aliases : t -> Core.Aliases.t -> unit
val load_aliases : t -> Core.Aliases.t
val save_custom : t -> Odl.Types.schema -> unit
val load_custom : t -> Odl.Types.schema
val save_report : t -> string -> string -> unit

(** {1 Incremental persistence}

    The designer appends one durable journal record per accepted operation,
    so a crash loses at most the operation in flight (never acknowledged). *)

val append_step : t -> Core.Concept.kind * Core.Modop.t -> unit
(** Journal one accepted operation; durable on return. *)

val append_undo : t -> unit
(** Journal an undo of the most recent unresolved operation. *)

(** {1 Manifest} *)

type manifest = {
  m_generation : int;  (** bumped by every full {!save_session} *)
  m_ops : int;  (** resolved operation count at that save *)
  m_era : int;
      (** write era for replication fencing; 0 for manifests written
          before replication existed (the parser tolerates the missing
          line). Preserved by {!save_session}, raised by {!fence}. *)
  m_lineage : (string * int) option;
      (** [(parent variant, fork stamp)] recorded when this variant was
          branched; [None] for root variants and manifests written before
          branching existed.  Preserved by {!save_session} and {!fence}. *)
}

val load_manifest : t -> manifest option
(** [None] when absent or unreadable (older repository or interrupted
    save — the artifacts themselves are still authoritative). *)

(** {1 Variant lineage} *)

val lineage : t -> (string * int) option
(** The (parent variant, fork stamp) recorded at branch time; [None] for
    root variants. *)

val set_lineage : t -> parent:string -> fork:int -> unit
(** Record the branch point.  Preserves the rest of the manifest; {!fsck}
    validates the record (valid parent name, not self, non-negative
    stamp). *)

(** {1 Generation fencing} *)

val stored_era : t -> int
(** The write era recorded in the manifest; 0 when there is no manifest. *)

val fence : t -> era:int -> unit
(** Stamp [era] into the manifest (monotone — never lowers a higher
    stored era).  Promotion fences both the dead leader's store and the
    promoted replica's at the new era; a writer whose configured era is
    below a variant's stored era must refuse to open it for writing —
    a newer writer has taken over. *)

(** {1 Whole sessions} *)

val save_session : t -> Core.Session.t -> unit
(** Shrink wrap schema, operation journal, local names, custom schema, the
    deliverable reports, and last the manifest — each atomically. *)

type load_error =
  | Damaged of { file : string; reason : string }
      (** an artifact is missing, unreadable, or corrupt *)
  | Replay of Core.Apply.error
      (** the journal is well-formed but an operation is rejected when
          replayed on the stored shrink wrap schema *)

val load_error_to_string : load_error -> string

val load_session : ?repair:bool -> t -> (Core.Session.t, load_error) result
(** Rebuild by replaying the journal on the stored shrink wrap schema, then
    restoring local names.  A torn journal tail (crash artifact of an
    unacknowledged append) is silently truncated; interior corruption is
    {!Damaged}.  No exception escapes.  [~repair:false] (default [true])
    suppresses the in-place rewrite of a torn tail — required when reading
    a store another process may be appending to (merge reads the branch
    lock-free; the longest valid prefix is the acknowledged history). *)

(** {1 Integrity checking} *)

type fsck_report = {
  fsck_issues : string list;  (** one line each, naming the file *)
  fsck_session : Core.Session.t option;
      (** best recoverable session; [None] only when the base schema
          itself is lost *)
}

val fsck : ?salvage:bool -> t -> fsck_report
(** Inspect every artifact and report damage.  With [~salvage:true],
    rewrite the repository from the best recoverable session (longest
    replayable journal prefix), regenerating derived artifacts and
    removing stale temporary files. *)
