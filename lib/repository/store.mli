(** On-disk schema repository.

    Persistence reuses the system's own languages: schemas are stored as
    extended ODL text and operation logs in the modification language, so a
    repository is human-readable and round-trips through the parsers.

    Layout of a repository directory:
    {v
    <dir>/shrinkwrap.odl     the original shrink wrap schema
    <dir>/log.ops            applied operations:  @ww add_...(...);
    <dir>/aliases.map        local names:  Canonical = local
    <dir>/custom.odl         the generated custom schema
    <dir>/reports/*.txt      generated deliverables
    v} *)

type t

val open_dir : string -> t
(** Open (creating if needed) a repository rooted at the directory. *)

val shrinkwrap_file : t -> string
val log_file : t -> string
val aliases_file : t -> string
val custom_file : t -> string
val reports_dir : t -> string

(** {1 Operation log format} *)

exception Bad_log of string

val log_to_string : (Core.Concept.kind * Core.Modop.t) list -> string
(** One line per step: a [@ww]/[@gh]/[@ah]/[@ih] concept tag followed by the
    operation in the modification language. *)

val log_of_string : string -> (Core.Concept.kind * Core.Modop.t) list
(** Inverse of {!log_to_string}; blank lines and [// ...] comments are
    skipped.  @raise Bad_log on malformed lines. *)

(** {1 Individual artifacts} *)

val save_shrinkwrap : t -> Odl.Types.schema -> unit
val load_shrinkwrap : t -> Odl.Types.schema
val save_log : t -> (Core.Concept.kind * Core.Modop.t) list -> unit
val load_log : t -> (Core.Concept.kind * Core.Modop.t) list
(** The empty list when no log has been saved yet. *)

val save_aliases : t -> Core.Aliases.t -> unit
val load_aliases : t -> Core.Aliases.t
val save_custom : t -> Odl.Types.schema -> unit
val load_custom : t -> Odl.Types.schema
val save_report : t -> string -> string -> unit

(** {1 Whole sessions} *)

val save_session : t -> Core.Session.t -> unit
(** Shrink wrap schema, operation log, local names, custom schema, and the
    deliverable reports. *)

val load_session : t -> (Core.Session.t, Core.Apply.error) result
(** Rebuild by replaying the stored log on the stored shrink wrap schema,
    then restoring local names. *)
