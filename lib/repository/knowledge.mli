(** The knowledge component: cautionary statements for the designer.

    Beyond hard constraint enforcement and propagation, the paper's
    knowledge component issues advisory feedback — consequences the designer
    should be aware of even though the operation is legal. *)

val cautions : Odl.Types.schema -> Core.Modop.t -> string list
(** Cautionary statements for applying the operation to the schema,
    computed against the workspace {e before} application.  Empty when
    nothing is noteworthy. *)

val rule_summaries : (string * string) list
(** The rule base by group, for documentation and the designer's [rules]
    command. *)
