(** A library of shrink wrap schemas on disk.

    The repository side of the design-by-reuse story: a directory of
    [*.odl] files, each a shrink wrap schema, browsable by structural
    descriptor and searchable by affinity to an application sketch. *)

type entry = {
  e_path : string;
  e_schema : Odl.Types.schema;
  e_descriptor : Core.Affinity.descriptor;
}

type t = { lib_dir : string; entries : entry list }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load every parsable [*.odl] file under [dir]; unparsable files are
    returned separately so the caller can report them. *)
let load dir =
  let files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".odl")
      |> List.sort compare
    else []
  in
  let entries, failures =
    List.fold_left
      (fun (oks, bads) f ->
        let path = Filename.concat dir f in
        match Odl.Parser.parse_schema (read_file path) with
        | schema ->
            ( {
                e_path = path;
                e_schema = schema;
                e_descriptor = Core.Affinity.descriptor schema;
              }
              :: oks,
              bads )
        | exception Odl.Parser.Parse_error (m, line, _) ->
            (oks, (path, Printf.sprintf "line %d: %s" line m) :: bads)
        | exception Odl.Lexer.Lex_error (m, line, _) ->
            (oks, (path, Printf.sprintf "line %d: %s" line m) :: bads))
      ([], []) files
  in
  ({ lib_dir = dir; entries = List.rev entries }, List.rev failures)

(** Add a schema to the library directory (file name from the schema name). *)
let store t schema =
  let path =
    Filename.concat t.lib_dir
      (String.lowercase_ascii schema.Odl.Types.s_name ^ ".odl")
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Odl.Printer.schema_to_string schema));
  {
    t with
    entries =
      t.entries
      @ [
          {
            e_path = path;
            e_schema = schema;
            e_descriptor = Core.Affinity.descriptor schema;
          };
        ];
  }

let schemas t = List.map (fun e -> e.e_schema) t.entries

(** Rank library entries against an application sketch, best first. *)
let search t ~sketch =
  Core.Affinity.rank ~sketch (schemas t)
  |> List.map (fun (s, a) ->
         ( List.find
             (fun e -> String.equal e.e_schema.Odl.Types.s_name s.Odl.Types.s_name)
             t.entries,
           a ))

let catalog t =
  t.entries
  |> List.map (fun e -> Core.Affinity.descriptor_to_string e.e_descriptor)
  |> String.concat "\n"
