(** HTML deliverables: the designer feedback documents of a session rendered
    as one self-contained page — schema summaries, concept schema inventory,
    operation log with impacts, consistency report, mapping table, local
    names, and the custom schema.  Deterministic output, no external
    assets. *)

val escape : string -> string
(** HTML entity escaping. *)

val render : Core.Session.t -> string
(** The whole page. *)
