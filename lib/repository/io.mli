(** Injectable IO for the repository layer.

    Every syscall the durable repository performs goes through a first-class
    record of operations, so tests can substitute an in-memory filesystem
    with write-back-cache semantics and a fault injector that crashes the
    writer at any syscall.  Production code uses {!unix}.

    Durability model: data written with [write]/[append] is volatile until
    [fsync] succeeds on the file; [rename] and the other metadata operations
    are treated as immediately durable.  A file's directory entry is
    considered durable once the file has been fsync'd. *)

exception Crash
(** Raised by a {!faulty} IO at its injected crash point. *)

type t = {
  read_file : string -> string;  (** whole contents; [Sys_error] if absent *)
  write : string -> string -> unit;  (** create/truncate; NOT durable *)
  append : string -> string -> unit;  (** append, creating; NOT durable *)
  fsync : string -> unit;  (** make the file's current contents durable *)
  rename : string -> string -> unit;
      (** atomic replace; also moves a whole directory (one metadata
          operation — used to publish a staged variant branch) *)
  remove : string -> unit;
  file_exists : string -> bool;
  is_directory : string -> bool;  (** [false] on dangling symlinks *)
  mkdir : string -> unit;  (** one level; succeeds if it already exists *)
  readdir : string -> string list;
}

val unix : t
(** The real filesystem.  Every syscall is EINTR-safe ({!retry_eintr}) and
    short writes are resumed, so signals landing in a threaded server never
    surface as spurious IO failures; [readdir] is sorted so directory
    listings are deterministic across filesystems. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Re-run the thunk whenever it raises [Unix_error (EINTR, _, _)] — the
    shared retry loop behind every {!unix} syscall. *)

val mkdir_p : t -> string -> unit
(** Create a directory and any missing parents; tolerant of concurrent
    creation (EEXIST is success). *)

val tmp_suffix : string
(** Suffix of the temporary files {!atomic_write} renames into place;
    leftovers from a crash are harmless and swept by fsck. *)

val atomic_write : t -> string -> string -> unit
(** Write-to-temp, fsync, atomically rename into place.  A crash at any
    point leaves either the old contents or the new, never a mixture. *)

(** {1 In-memory filesystem (for fault-injection tests)} *)

type mem

val mem_create : unit -> mem
val mem_io : mem -> t

val mem_crash : ?flush:int -> mem -> unit
(** Simulate power loss: for each file with un-fsync'd data, a deterministic
    rule keyed on [flush] keeps nothing, a torn prefix, or all of the
    pending delta; the surviving state becomes the new contents. *)

(** {1 Concurrency wrappers} *)

val locked : t -> t
(** Serialize every operation through one mutex.  Required around {!mem_io}
    (plain hashtables) whenever several threads share the filesystem, e.g.
    under the multi-session service. *)

val protected : t -> t
(** Wrap every operation in {!retry_eintr}; {!unix} already retries
    internally, this exposes the same discipline for composed IOs (and for
    driving {!eintr_faulty} in tests). *)

val observed : now:(unit -> float) -> record:(string -> float -> unit) -> t -> t
(** Time each write-path operation and report it as [record op seconds]
    ([op] is ["write"], ["append"], ["fsync"], or ["rename"]); reads are
    untimed.  Failed operations are not recorded. *)

(** {1 Fault injection} *)

val eintr_faulty : eintr_at:int list -> t -> t * (unit -> int)
(** Raise [Unix_error (EINTR, _, _)] in place of each effectful syscall
    whose 0-based index is listed (no effect at the injection point; the
    retried call gets a fresh index).  The second component reads how many
    interrupts were delivered. *)

val counting : t -> t * (unit -> int)
(** Count every effectful syscall (write, append, fsync, rename, remove,
    mkdir); the second component reads the count. *)

val faulty : crash_at:int -> t -> t * (unit -> int)
(** Raise {!Crash} in place of the [crash_at]-th (0-based) effectful
    syscall.  A crashing write/append first lands a torn half-prefix of its
    data; other syscalls have no effect at the crash point. *)
