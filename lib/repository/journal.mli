(** Append-only operation journal.

    The journal is the durability backbone of a repository: one line per
    accepted operation, appended and fsync'd before the operation is
    acknowledged.  Undo is journalled as its own record rather than by
    rewriting history, so the file is strictly append-only between
    snapshots.

    Line format (the modification language, prefixed with a concept tag):
    {v
    @ww add_attribute(Route, distance: Float);
    @gh delete_object_type(Depot);
    @undo;
    v}
    Blank lines and [// ...] comment lines are tolerated, so the file stays
    hand-editable.  Quoted identifiers keep pathological names (embedded
    newlines, leading slashes) from breaking the line discipline. *)

type entry =
  | Op of Core.Concept.kind * Core.Modop.t  (** an accepted operation *)
  | Undo  (** pops the most recent unresolved operation *)

type damage =
  | Torn_tail of string
      (** unterminated final fragment left by a crash mid-append; the
          operation was never acknowledged, so dropping it is a valid
          recovery — but the file needs repair before further appends *)
  | Corrupt of { line : int; reason : string }
      (** a terminated line that does not parse: interior corruption, not a
          crash artifact *)

val damage_to_string : damage -> string

type parsed = {
  entries : entry list;  (** longest valid prefix *)
  damage : damage option;
}

val entry_to_line : entry -> string
(** One record, without the trailing newline. *)

val to_string : entry list -> string
(** All records, each newline-terminated. *)

val parse : string -> parsed
(** Longest-valid-prefix read.  A parseable unterminated final fragment is
    kept as an entry (only its newline was lost); an unparseable one is
    dropped — both are reported as {!Torn_tail} so the caller can repair
    the file before appending again. *)

val resolve : entry list -> ((Core.Concept.kind * Core.Modop.t) list, string) result
(** Replay undo records: [Op] pushes, [Undo] pops.  [Error] when an [Undo]
    has nothing to pop (the writer never journals one in that state, so it
    is corruption). *)

(** {1 File operations} *)

val set_observer : (op:string -> seconds:float -> unit) option -> unit
(** Install a process-wide hook timing whole journal writes: [op] is
    ["append"] (record + fsync, the commit-latency path) or ["rewrite"]
    (atomic snapshot/repair replace).  [None] (the default) disables it.
    The hook runs on the writer's thread and must be fast and non-raising. *)

val encode : entry -> string
(** One record, newline-terminated — the exact bytes {!append} writes. *)

val append : Io.t -> string -> entry -> unit
(** Append one record and fsync; the entry is durable on return. *)

val append_raw : Io.t -> string -> string -> unit
(** Append pre-encoded record bytes — a concatenation of {!encode}
    results, i.e. a group-commit batch — and fsync {e once}; every record
    in the batch is durable on return.  Timed as ["append"] by the
    {!set_observer} hook, like {!append}. *)

val read : Io.t -> string -> parsed
(** Read and {!parse} the journal; an absent file is an empty journal. *)

val rewrite : Io.t -> string -> entry list -> unit
(** Atomically replace the journal with exactly [entries] (snapshot or
    repair); crash-safe via {!Io.atomic_write}. *)

(** {1 Concept tags} *)

val kind_tag : Core.Concept.kind -> string
val kind_of_tag : string -> Core.Concept.kind option

(** {1 Replication stream framing}

    The journal doubles as a physical replication log: a leader ships
    acked record runs (and, for bootstrap/catch-up, whole artifact files)
    to followers as a stream of frames.  A frame is a space-delimited
    header line carrying only integers and fixed tokens, followed by a
    length-prefixed binary payload holding every variable-length field
    (variant names may contain any quoted-identifier byte, including
    spaces and newlines, so they never ride on the header line). *)

module Frame : sig
  type t =
    | Hello of { era : int }  (** stream start; the leader's write era *)
    | Root of { data : string }  (** repository-root [shrinkwrap.odl] *)
    | File of { variant : string; name : string; data : string }
        (** one variant artifact ([shrinkwrap.odl], [log.ops],
            [aliases.map]) shipped during bootstrap or catch-up *)
    | Start of { variant : string; stamp : int }
        (** the variant's snapshot is complete: load it through recovery
            and publish at [stamp] *)
    | Records of { variant : string; stamp : int; data : string }
        (** one durable delta: concatenated {!encode} bytes (possibly
            empty, for publishes with no journal delta), publish at
            [stamp] *)
    | Reset of { variant : string }
        (** the leader rewrote this variant's journal (snapshot, repair,
            or re-open); byte continuity is broken — ignore [Records]
            until the next [Start] *)
    | Live  (** bootstrap complete; the stream is now tailing *)
    | Ack of { variant : string; stamp : int }
        (** follower → leader: applied and durable through [stamp] *)

  val to_string : t -> string
  (** Exact wire bytes: header line + newline + payload. *)

  val describe : t -> string
  (** The frame's header tag, for logs and counters. *)

  val read :
    read_line:(unit -> string option) ->
    read_exact:(int -> string option) ->
    (t option, string) result
  (** Read one frame.  [Ok None] is clean end-of-stream at a frame
      boundary; [Error] is a malformed header or a stream truncated
      mid-payload.  The callbacks are the transport: [read_line] returns
      one line without its newline, [read_exact n] exactly [n] bytes. *)

  val of_string : string -> (t option, string) result
  (** {!read} from the front of a string, for tests. *)
end
