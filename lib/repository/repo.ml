(** A multi-variant design repository: one shrink wrap schema, many derived
    designs.

    This is the ACEDB situation as a subsystem: a well-crafted schema is
    published once, and each adopting project keeps its own customization —
    its variant — in the same repository.  Variants are full sessions
    (operation journal, local names, custom schema, reports), and the
    repository can compare variants pairwise: affinity and the
    interoperation report over their common objects.

    Layout:
    {v
    <dir>/shrinkwrap.odl
    <dir>/variants/<name>/     one Store repository per variant
    v} *)

type t = {
  dir : string;
  io : Io.t;
  shrink_wrap : Odl.Types.schema;
}

let variants_dir t = Filename.concat t.dir "variants"
let variant_dir t name = Filename.concat (variants_dir t) name
let variant_store t name = Store.open_dir ~io:t.io (variant_dir t name)
let io t = t.io
let dir t = t.dir

let valid_variant_name n = n <> "" && Odl.Names.is_valid n

(** Initialize a repository for [shrink_wrap] at [dir].  The shrink wrap
    schema must be valid. *)
let init ?(io = Io.unix) dir shrink_wrap =
  match Odl.Validate.errors shrink_wrap with
  | _ :: _ -> Error "the shrink wrap schema is not valid"
  | [] ->
      Io.mkdir_p io dir;
      Io.mkdir_p io (Filename.concat dir "variants");
      let t = { dir; io; shrink_wrap } in
      Io.atomic_write io
        (Filename.concat dir "shrinkwrap.odl")
        (Odl.Printer.schema_to_string shrink_wrap);
      Ok t

(** Open an existing repository; every failure mode is an [Error] naming
    the damaged file, never an exception. *)
let open_dir ?(io = Io.unix) dir =
  let path = Filename.concat dir "shrinkwrap.odl" in
  if not (io.Io.file_exists path) then
    Error (dir ^ " has no shrinkwrap.odl")
  else
    match Odl.Parser.parse_schema (io.Io.read_file path) with
    | shrink_wrap -> Ok { dir; io; shrink_wrap }
    | exception Odl.Parser.Parse_error (m, line, _) ->
        Error (Printf.sprintf "%s is damaged: line %d: %s" path line m)
    | exception Odl.Lexer.Lex_error (m, line, _) ->
        Error (Printf.sprintf "%s is damaged: line %d: %s" path line m)
    | exception Sys_error m -> Error (path ^ ": " ^ m)

let shrink_wrap t = t.shrink_wrap

let variant_names t =
  let d = variants_dir t in
  if t.io.Io.is_directory d then
    (match t.io.Io.readdir d with
    | names -> names
    | exception Sys_error _ -> [])
    (* is_directory is false on dangling symlinks, so they are skipped *)
    |> List.filter (fun n -> t.io.Io.is_directory (Filename.concat d n))
    |> List.sort compare
  else []

let mem_variant t name = List.mem name (variant_names t)

type open_error =
  | No_variant of string
  | Load of Store.load_error

let open_error_to_string = function
  | No_variant name -> Printf.sprintf "no variant named %s" name
  | Load e -> Store.load_error_to_string e

(** Start a fresh variant: a new design session over the repository's shrink
    wrap schema, persisted under the variant's name. *)
let create_variant t name =
  if not (valid_variant_name name) then
    Error (Printf.sprintf "%s is not a valid variant name" name)
  else if mem_variant t name then
    Error (Printf.sprintf "variant %s already exists" name)
  else
    match Core.Session.create t.shrink_wrap with
    | Error _ -> Error "the shrink wrap schema is not valid"
    | Ok session ->
        Store.save_session (variant_store t name) session;
        Ok session

(** Load a variant's session by replaying its journal. *)
let open_variant t name =
  if not (mem_variant t name) then Error (No_variant name)
  else
    Result.map_error
      (fun e -> Load e)
      (Store.load_session (variant_store t name))

(** Persist a session as (a new state of) the named variant. *)
let save_variant t name session =
  if not (valid_variant_name name) then
    Error (Printf.sprintf "%s is not a valid variant name" name)
  else begin
    Store.save_session (variant_store t name) session;
    Ok ()
  end

(** The custom schemas of all variants, with their names. *)
let variant_customs t =
  variant_names t
  |> List.filter_map (fun name ->
         match open_variant t name with
         | Ok session -> Some (name, Core.Session.custom_schema ~name session)
         | Error _ -> None)

(** Pairwise affinity matrix over the variants' custom schemas. *)
let affinity_matrix t =
  Core.Affinity.matrix (List.map snd (variant_customs t))

(** Interoperation analysis between two variants (paper section 5): the
    constructs both kept from the shrink wrap schema, and the interchange
    schema. *)
let interop t name_a name_b =
  match (open_variant t name_a, open_variant t name_b) with
  | Ok a, Ok b ->
      Ok
        (Core.Interop.analyse ~original:t.shrink_wrap
           ~custom_a:(Core.Session.custom_schema a)
           ~custom_b:(Core.Session.custom_schema b))
  | Error e, _ | _, Error e -> Error e

let interop_report t name_a name_b =
  Result.map
    (Core.Interop.report_text ~name_a ~name_b)
    (interop t name_a name_b)

(** One catalog line per variant: its mapping summary against the shrink
    wrap schema. *)
let catalog t =
  variant_names t
  |> List.map (fun name ->
         match open_variant t name with
         | Ok session ->
             let p, md, mv, d, a =
               Core.Mapping.summary (Core.Session.mapping session)
             in
             Printf.sprintf
               "%-16s %s; vs shrink wrap: %d preserved, %d modified, %d \
                moved, %d deleted, %d added"
               name
               (Core.Render.summary (Core.Session.custom_schema session))
               p md mv d a
         | Error e ->
             Printf.sprintf "%-16s (unreadable: %s)" name
               (open_error_to_string e))
  |> String.concat "\n"
