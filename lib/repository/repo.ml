(** A multi-variant design repository: one shrink wrap schema, many derived
    designs.

    This is the ACEDB situation as a subsystem: a well-crafted schema is
    published once, and each adopting project keeps its own customization —
    its variant — in the same repository.  Variants are full sessions
    (operation journal, local names, custom schema, reports), and the
    repository can compare variants pairwise: affinity and the
    interoperation report over their common objects.

    Layout:
    {v
    <dir>/shrinkwrap.odl
    <dir>/variants/<name>/     one Store repository per variant
    v} *)

type t = {
  dir : string;
  io : Io.t;
  shrink_wrap : Odl.Types.schema;
}

let variants_dir t = Filename.concat t.dir "variants"
let variant_dir t name = Filename.concat (variants_dir t) name
let variant_store t name = Store.open_dir ~io:t.io (variant_dir t name)
let io t = t.io
let dir t = t.dir

let valid_variant_name n = n <> "" && Odl.Names.is_valid n

(** Initialize a repository for [shrink_wrap] at [dir].  The shrink wrap
    schema must be valid. *)
let init ?(io = Io.unix) dir shrink_wrap =
  match Odl.Validate.errors shrink_wrap with
  | _ :: _ -> Error "the shrink wrap schema is not valid"
  | [] ->
      Io.mkdir_p io dir;
      Io.mkdir_p io (Filename.concat dir "variants");
      let t = { dir; io; shrink_wrap } in
      Io.atomic_write io
        (Filename.concat dir "shrinkwrap.odl")
        (Odl.Printer.schema_to_string shrink_wrap);
      Ok t

(** Open an existing repository; every failure mode is an [Error] naming
    the damaged file, never an exception. *)
let open_dir ?(io = Io.unix) dir =
  let path = Filename.concat dir "shrinkwrap.odl" in
  if not (io.Io.file_exists path) then
    Error (dir ^ " has no shrinkwrap.odl")
  else
    match Odl.Parser.parse_schema (io.Io.read_file path) with
    | shrink_wrap -> Ok { dir; io; shrink_wrap }
    | exception Odl.Parser.Parse_error (m, line, _) ->
        Error (Printf.sprintf "%s is damaged: line %d: %s" path line m)
    | exception Odl.Lexer.Lex_error (m, line, _) ->
        Error (Printf.sprintf "%s is damaged: line %d: %s" path line m)
    | exception Sys_error m -> Error (path ^ ": " ^ m)

let shrink_wrap t = t.shrink_wrap

let variant_names t =
  let d = variants_dir t in
  if t.io.Io.is_directory d then
    (match t.io.Io.readdir d with
    | names -> names
    | exception Sys_error _ -> [])
    (* is_directory is false on dangling symlinks, so they are skipped;
       dot-prefixed entries are hidden staging directories (an in-flight or
       crashed {!branch_variant}) and never count as variants *)
    |> List.filter (fun n -> n <> "" && n.[0] <> '.')
    |> List.filter (fun n -> t.io.Io.is_directory (Filename.concat d n))
    |> List.sort compare
  else []

let mem_variant t name = List.mem name (variant_names t)

type open_error =
  | No_variant of string
  | Load of Store.load_error

let open_error_to_string = function
  | No_variant name -> Printf.sprintf "no variant named %s" name
  | Load e -> Store.load_error_to_string e

(** Start a fresh variant: a new design session over the repository's shrink
    wrap schema, persisted under the variant's name. *)
let create_variant t name =
  if not (valid_variant_name name) then
    Error (Printf.sprintf "%s is not a valid variant name" name)
  else if mem_variant t name then
    Error (Printf.sprintf "variant %s already exists" name)
  else
    match Core.Session.create t.shrink_wrap with
    | Error _ -> Error "the shrink wrap schema is not valid"
    | Ok session ->
        Store.save_session (variant_store t name) session;
        Ok session

(** Branch [child] off [parent]: persist a copy of the parent's session
    under the child's name with a lineage record (parent, fork stamp) in
    its manifest.  The copy is assembled in a hidden staging directory
    ([variants/.tmp-<child>]) and renamed into place in one metadata
    operation, so a crash leaves either no child or a complete one — never
    a half-branch ({!variant_names} hides staging directories).

    [at] branches at a historical point instead of the tip: the child
    replays only the parent's first [at] committed operations, and [at]
    becomes the fork stamp.  By default the child gets the parent's whole
    log and the fork stamp is the parent's current version stamp. *)
let branch_variant t ~parent ~child ?at () =
  if not (valid_variant_name child) then
    Error (Printf.sprintf "%s is not a valid variant name" child)
  else if mem_variant t child then
    Error (Printf.sprintf "variant %s already exists" child)
  else if not (mem_variant t parent) then
    Error (Printf.sprintf "no variant named %s" parent)
  else
    (* read-only parent load: the parent may be live on another shard,
       so a torn tail is tolerated but never repaired in place *)
    match Store.load_session ~repair:false (variant_store t parent) with
    | Error e -> Error (Store.load_error_to_string e)
    | Ok session -> (
        let forked =
          match at with
          | None -> Ok (Core.Session.version session, session)
          | Some n when n < 0 -> Error "branch point must be non-negative"
          | Some n ->
              let prefix =
                Core.Oplog.pairs (Core.Oplog.of_session session)
                |> List.filteri (fun i _ -> i < n)
              in
              Result.fold
                ~ok:(fun s ->
                  (* local names ride along; stale ones prune on read *)
                  Ok (n, Core.Session.restore_aliases s
                           (Core.Session.aliases session)))
                ~error:(fun e ->
                  Error
                    ("parent log does not replay: "
                    ^ Core.Apply.error_to_string e))
                (Core.Oplog.replay t.shrink_wrap prefix)
        in
        match forked with
        | Error _ as e -> e
        | Ok (fork, child_session) ->
            let staging =
              Filename.concat (variants_dir t) (".tmp-" ^ child)
            in
            (* leftovers of a crashed earlier attempt are simply
               overwritten: save_session rewrites every artifact *)
            let st = Store.open_dir ~io:t.io staging in
            Store.save_session st child_session;
            Store.set_lineage st ~parent ~fork;
            t.io.Io.rename staging (variant_dir t child);
            Ok child_session)

(** The (parent, fork stamp) recorded when [name] was branched; [None] for
    root variants (or unknown names). *)
let variant_lineage t name = Store.lineage (variant_store t name)

(** One deterministic line per variant, sorted by name:
    ["<name> <parent>@<stamp> era <era>"], with ["root"] in place of the
    lineage pair for unbranched variants.  Derived entirely from the stores
    on disk, so every process sharing the repository renders identical
    bytes — the sharded router's merged listing stays byte-identical to a
    single server's. *)
let lineage_listing t =
  variant_names t
  |> List.map (fun name ->
         let st = variant_store t name in
         let lineage =
           match Store.lineage st with
           | Some (parent, fork) -> Printf.sprintf "%s@%d" parent fork
           | None -> "root"
         in
         Printf.sprintf "%s %s era %d" name lineage (Store.stored_era st))

(** Load a variant's session by replaying its journal. *)
let open_variant t name =
  if not (mem_variant t name) then Error (No_variant name)
  else
    Result.map_error
      (fun e -> Load e)
      (Store.load_session (variant_store t name))

(** Like {!open_variant}, but strictly read-only: a torn journal tail is
    tolerated (its longest valid prefix replays) and {e never} repaired in
    place.  This is the safe way to read a variant another process — or
    another thread holding only its own variant's lock — may be appending
    to: merge reads its source branch through here, lock-free. *)
let open_variant_ro t name =
  if not (mem_variant t name) then Error (No_variant name)
  else
    Result.map_error
      (fun e -> Load e)
      (Store.load_session ~repair:false (variant_store t name))

(** Persist a session as (a new state of) the named variant. *)
let save_variant t name session =
  if not (valid_variant_name name) then
    Error (Printf.sprintf "%s is not a valid variant name" name)
  else begin
    Store.save_session (variant_store t name) session;
    Ok ()
  end

(** The custom schemas of all variants, with their names. *)
let variant_customs t =
  variant_names t
  |> List.filter_map (fun name ->
         match open_variant t name with
         | Ok session -> Some (name, Core.Session.custom_schema ~name session)
         | Error _ -> None)

(** Pairwise affinity matrix over the variants' custom schemas. *)
let affinity_matrix t =
  Core.Affinity.matrix (List.map snd (variant_customs t))

(** Interoperation analysis between two variants (paper section 5): the
    constructs both kept from the shrink wrap schema, and the interchange
    schema. *)
let interop t name_a name_b =
  match (open_variant t name_a, open_variant t name_b) with
  | Ok a, Ok b ->
      Ok
        (Core.Interop.analyse ~original:t.shrink_wrap
           ~custom_a:(Core.Session.custom_schema a)
           ~custom_b:(Core.Session.custom_schema b))
  | Error e, _ | _, Error e -> Error e

let interop_report t name_a name_b =
  Result.map
    (Core.Interop.report_text ~name_a ~name_b)
    (interop t name_a name_b)

(** One catalog line per variant: its mapping summary against the shrink
    wrap schema. *)
let catalog t =
  variant_names t
  |> List.map (fun name ->
         match open_variant t name with
         | Ok session ->
             let p, md, mv, d, a =
               Core.Mapping.summary (Core.Session.mapping session)
             in
             Printf.sprintf
               "%-16s %s; vs shrink wrap: %d preserved, %d modified, %d \
                moved, %d deleted, %d added"
               name
               (Core.Render.summary (Core.Session.custom_schema session))
               p md mv d a
         | Error e ->
             Printf.sprintf "%-16s (unreadable: %s)" name
               (open_error_to_string e))
  |> String.concat "\n"
