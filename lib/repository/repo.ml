(** A multi-variant design repository: one shrink wrap schema, many derived
    designs.

    This is the ACEDB situation as a subsystem: a well-crafted schema is
    published once, and each adopting project keeps its own customization —
    its variant — in the same repository.  Variants are full sessions
    (operation log, local names, custom schema, reports), and the repository
    can compare variants pairwise: affinity and the interoperation report
    over their common objects.

    Layout:
    {v
    <dir>/shrinkwrap.odl
    <dir>/variants/<name>/     one Store repository per variant
    v} *)

type t = {
  dir : string;
  shrink_wrap : Odl.Types.schema;
}

let variants_dir t = Filename.concat t.dir "variants"
let variant_dir t name = Filename.concat (variants_dir t) name

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

exception Bad_repo of string

let valid_variant_name n =
  n <> "" && Odl.Names.is_valid n

(** Initialize a repository for [shrink_wrap] at [dir].  The shrink wrap
    schema must be valid. *)
let init dir shrink_wrap =
  match Odl.Validate.errors shrink_wrap with
  | _ :: _ -> Error "the shrink wrap schema is not valid"
  | [] ->
      ensure_dir dir;
      ensure_dir (Filename.concat dir "variants");
      let t = { dir; shrink_wrap } in
      let oc = open_out (Filename.concat dir "shrinkwrap.odl") in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Odl.Printer.schema_to_string shrink_wrap));
      Ok t

(** Open an existing repository. *)
let open_dir dir =
  let path = Filename.concat dir "shrinkwrap.odl" in
  if not (Sys.file_exists path) then
    raise (Bad_repo (dir ^ " has no shrinkwrap.odl"));
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  { dir; shrink_wrap = Odl.Parser.parse_schema text }

let shrink_wrap t = t.shrink_wrap

let variant_names t =
  let d = variants_dir t in
  if Sys.file_exists d && Sys.is_directory d then
    Sys.readdir d |> Array.to_list
    |> List.filter (fun n -> Sys.is_directory (Filename.concat d n))
    |> List.sort compare
  else []

let mem_variant t name = List.mem name (variant_names t)

(** Start a fresh variant: a new design session over the repository's shrink
    wrap schema, persisted under the variant's name. *)
let create_variant t name =
  if not (valid_variant_name name) then
    Error (Printf.sprintf "%s is not a valid variant name" name)
  else if mem_variant t name then
    Error (Printf.sprintf "variant %s already exists" name)
  else
    match Core.Session.create t.shrink_wrap with
    | Error _ -> Error "the shrink wrap schema is not valid"
    | Ok session ->
        let store = Store.open_dir (variant_dir t name) in
        Store.save_session store session;
        Ok session

(** Load a variant's session by replaying its log. *)
let open_variant t name =
  if not (mem_variant t name) then
    Error (Core.Apply.Unknown (Printf.sprintf "variant %s" name))
  else Store.load_session (Store.open_dir (variant_dir t name))

(** Persist a session as (a new state of) the named variant. *)
let save_variant t name session =
  if not (valid_variant_name name) then
    Error (Printf.sprintf "%s is not a valid variant name" name)
  else begin
    Store.save_session (Store.open_dir (variant_dir t name)) session;
    Ok ()
  end

(** The custom schemas of all variants, with their names. *)
let variant_customs t =
  variant_names t
  |> List.filter_map (fun name ->
         match open_variant t name with
         | Ok session ->
             Some (name, Core.Session.custom_schema ~name session)
         | Error _ -> None)

(** Pairwise affinity matrix over the variants' custom schemas. *)
let affinity_matrix t =
  Core.Affinity.matrix (List.map snd (variant_customs t))

(** Interoperation analysis between two variants (paper section 5): the
    constructs both kept from the shrink wrap schema, and the interchange
    schema. *)
let interop t name_a name_b =
  match (open_variant t name_a, open_variant t name_b) with
  | Ok a, Ok b ->
      Ok
        (Core.Interop.analyse ~original:t.shrink_wrap
           ~custom_a:(Core.Session.custom_schema a)
           ~custom_b:(Core.Session.custom_schema b))
  | Error e, _ | _, Error e -> Error e

let interop_report t name_a name_b =
  Result.map
    (Core.Interop.report_text ~name_a ~name_b)
    (interop t name_a name_b)

(** One catalog line per variant: its mapping summary against the shrink
    wrap schema. *)
let catalog t =
  variant_names t
  |> List.map (fun name ->
         match open_variant t name with
         | Ok session ->
             let p, md, mv, d, a =
               Core.Mapping.summary (Core.Session.mapping session)
             in
             Printf.sprintf
               "%-16s %s; vs shrink wrap: %d preserved, %d modified, %d \
                moved, %d deleted, %d added"
               name
               (Core.Render.summary (Core.Session.custom_schema session))
               p md mv d a
         | Error e ->
             Printf.sprintf "%-16s (unreadable: %s)" name
               (Core.Apply.error_to_string e))
  |> String.concat "\n"
