(** A multi-variant design repository: one shrink wrap schema, many derived
    designs (the ACEDB situation as a subsystem).  Each variant is a full
    persisted session; the repository compares variants pairwise by affinity
    and by interoperation over their common objects. *)

type t

exception Bad_repo of string

val init : string -> Odl.Types.schema -> (t, string) result
(** Initialize a repository at the directory for a (valid) shrink wrap
    schema. *)

val open_dir : string -> t
(** @raise Bad_repo when the directory holds no repository.
    @raise Odl.Parser.Parse_error when the stored schema is corrupt. *)

val shrink_wrap : t -> Odl.Types.schema
val variant_names : t -> string list
val mem_variant : t -> string -> bool

val create_variant : t -> string -> (Core.Session.t, string) result
(** Start (and persist) a fresh design session under the variant's name. *)

val open_variant : t -> string -> (Core.Session.t, Core.Apply.error) result
(** Load a variant's session by replaying its stored log. *)

val save_variant : t -> string -> Core.Session.t -> (unit, string) result

val variant_customs : t -> (string * Odl.Types.schema) list
val affinity_matrix : t -> string

val interop : t -> string -> string -> (Core.Interop.report, Core.Apply.error) result
val interop_report : t -> string -> string -> (string, Core.Apply.error) result

val catalog : t -> string
(** One line per variant: inventory and mapping summary against the shrink
    wrap schema. *)
