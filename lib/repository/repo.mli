(** A multi-variant design repository: one shrink wrap schema, many derived
    designs (the ACEDB situation as a subsystem).  Each variant is a full
    persisted session; the repository compares variants pairwise by affinity
    and by interoperation over their common objects. *)

type t

val init : ?io:Io.t -> string -> Odl.Types.schema -> (t, string) result
(** Initialize a repository at the directory for a (valid) shrink wrap
    schema. *)

val open_dir : ?io:Io.t -> string -> (t, string) result
(** Open an existing repository.  [Error] (never an exception) when the
    directory holds no repository or the stored schema is damaged; the
    message names the damaged file. *)

val shrink_wrap : t -> Odl.Types.schema

val variant_names : t -> string list
(** Subdirectories of [variants/], sorted (deterministic regardless of the
    filesystem's readdir order); dangling symlinks and unreadable entries
    are skipped. *)

val mem_variant : t -> string -> bool
val variant_store : t -> string -> Store.t

val variants_dir : t -> string
val variant_dir : t -> string -> string
(** Paths under the repository; the service keeps its advisory lock file
    ([.lock]) in a variant's directory. *)

val io : t -> Io.t
val dir : t -> string

(** Why a variant would not open. *)
type open_error =
  | No_variant of string  (** no variant of that name *)
  | Load of Store.load_error  (** its repository is damaged *)

val open_error_to_string : open_error -> string

val create_variant : t -> string -> (Core.Session.t, string) result
(** Start (and persist) a fresh design session under the variant's name. *)

val open_variant : t -> string -> (Core.Session.t, open_error) result
(** Load a variant's session by replaying its stored journal. *)

val open_variant_ro : t -> string -> (Core.Session.t, open_error) result
(** Read-only load: tolerates a torn journal tail (longest valid prefix
    replays) without repairing it in place — safe against a concurrent
    appender.  Merge reads its source branch through here, lock-free. *)

val branch_variant :
  t ->
  parent:string ->
  child:string ->
  ?at:int ->
  unit ->
  (Core.Session.t, string) result
(** Branch [child] off [parent]: a full copy of the parent's persisted
    session with a lineage record (parent, fork stamp) in its manifest,
    staged in a hidden directory and renamed into place atomically — a
    crash leaves either no child or a complete one.  [?at] branches after
    the parent's first [at] committed operations (the default is the whole
    log, stamped with the parent's current version). *)

val variant_lineage : t -> string -> (string * int) option
(** The (parent, fork stamp) recorded at branch time; [None] for root
    variants. *)

val lineage_listing : t -> string list
(** One deterministic sorted line per variant:
    ["<name> <parent>@<stamp> era <era>"] (or ["<name> root era <era>"]) —
    derived from the stores on disk, so shards render identical bytes. *)

val save_variant : t -> string -> Core.Session.t -> (unit, string) result

val variant_customs : t -> (string * Odl.Types.schema) list
val affinity_matrix : t -> string

val interop : t -> string -> string -> (Core.Interop.report, open_error) result
val interop_report : t -> string -> string -> (string, open_error) result

val catalog : t -> string
(** One line per variant: inventory and mapping summary against the shrink
    wrap schema; damaged variants are listed as unreadable. *)
