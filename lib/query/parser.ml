(** Parser for the query language, on the shared {!Odl.Token_stream}
    machinery (same lexer as ODL and the modification language, so quoting
    and escaping behave identically everywhere).

    {v
    query := ['all'] ['explain'] atom
    atom  := 'name' pat
           | 'attr' pat ['inherited']
           | 'isa' iname ['up' | 'down']
           | 'partof' iname ['up' | 'down']
           | 'wheel' iname
           | 'diff' INT [INT]
           | 'lineage'
           | 'branches' 'of' vname
    pat   := IDENT | QUOTED        (quoted may contain * and ? wildcards)
    iname := IDENT | QUOTED
    v}

    Keywords are contextual: an interface literally named [name] or [all]
    is written quoted. *)

module Ts = Odl.Token_stream
module Lx = Odl.Lexer

let pattern ts =
  match Ts.peek ts with
  | Lx.Ident s ->
      Ts.advance ts;
      Ast.Exact s
  | Lx.Quoted s ->
      Ts.advance ts;
      (* a quoted pattern without wildcards is a point lookup, and the
         planner should see it as one *)
      if Ast.has_wildcards s then Ast.Glob s else Ast.Exact s
  | _ -> Ts.error ts "expected a name or a quoted pattern"

let iface_name ts =
  match Ts.peek ts with
  | Lx.Ident s | Lx.Quoted s ->
      Ts.advance ts;
      s
  | _ -> Ts.error ts "expected an interface name"

let direction ts ~default =
  if Ts.eat_ident ts "up" then Ast.Up
  else if Ts.eat_ident ts "down" then Ast.Down
  else default

let atom ts =
  if Ts.eat_ident ts "name" then Ast.Name (pattern ts)
  else if Ts.eat_ident ts "attr" then
    let pat = pattern ts in
    let inherited = Ts.eat_ident ts "inherited" in
    Ast.Attr { pat; inherited }
  else if Ts.eat_ident ts "isa" then
    let name = iface_name ts in
    Ast.Isa { name; dir = direction ts ~default:Ast.Down }
  else if Ts.eat_ident ts "partof" then
    let name = iface_name ts in
    Ast.Part { name; dir = direction ts ~default:Ast.Down }
  else if Ts.eat_ident ts "wheel" then Ast.Wheel (iface_name ts)
  else if Ts.eat_ident ts "diff" then
    let since = Ts.int ts in
    let until =
      match Ts.peek ts with Lx.Int _ -> Some (Ts.int ts) | _ -> None
    in
    Ast.Diff { since; until }
  else if Ts.eat_ident ts "lineage" then Ast.Lineage
  else if Ts.eat_ident ts "branches" then begin
    if not (Ts.eat_ident ts "of") then
      Ts.error ts "expected: branches of <variant>";
    Ast.Branches (iface_name ts)
  end
  else
    Ts.error ts
      "expected a query form: name | attr | isa | partof | wheel | diff | \
       lineage | branches"

let parse text =
  match
    let ts = Ts.of_string text in
    let q_all = Ts.eat_ident ts "all" in
    let q_explain = Ts.eat_ident ts "explain" in
    let a = atom ts in
    Ts.expect ts Lx.Eof;
    { Ast.q_all; q_explain; q_atom = a }
  with
  | q -> Ok q
  | exception Ts.Parse_error (m, l, c) ->
      Error (Printf.sprintf "query parse error at line %d, col %d: %s" l c m)
  | exception Lx.Lex_error (m, l, c) ->
      Error (Printf.sprintf "query lex error at line %d, col %d: %s" l c m)
