(** The query evaluator: executes a {!Plan} against a materialized {!View}.

    Every answer is a list of lines.  All result forms except [diff] are
    sorted (and de-duplicated) lexicographically, so answers are canonical:
    shard-merged cross-variant output and a single process's output are
    byte-identical, and tests can pin digests.  [diff] is chronological —
    order is its meaning — but equally deterministic. *)

module SMap = View.SMap
module SSet = View.SSet

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let sorted lines = List.sort_uniq String.compare lines

(* interface.attribute lines for one matching attribute: its declarers,
   plus — under [inherited] — every descendant of a declarer that does not
   re-declare (shadow) the attribute itself *)
let attr_lines v ~inherited attr declarers acc =
  let declares i =
    match View.find_entry v i with
    | None -> false
    | Some e -> List.exists (String.equal attr) e.View.e_attrs
  in
  let acc =
    SSet.fold (fun i acc -> (i ^ "." ^ attr) :: acc) declarers acc
  in
  if not inherited then acc
  else
    SSet.fold
      (fun d acc ->
        match View.find_entry v d with
        | None -> acc
        | Some e ->
            SSet.fold
              (fun i acc ->
                if declares i then acc
                else (i ^ "." ^ attr ^ " (from " ^ d ^ ")") :: acc)
              e.View.e_desc acc)
      declarers acc

let closure_lines v name set =
  match View.find_entry v name with
  | None -> Error ("no interface " ^ name)
  | Some e -> Ok (sorted (SSet.elements (set e)))

let diff_lines v ~since ~until =
  let current = View.stamp v in
  let until = Option.value until ~default:current in
  if until > current then
    Error
      (Printf.sprintf "stamp %d is ahead of this variant (current %d)" until
         current)
  else if since > until then
    Error (Printf.sprintf "empty stamp range (%d, %d]" since until)
  else
    let ops =
      View.history v
      |> List.filter (fun (s, _) -> s > since && s <= until)
      |> List.rev_map (fun (s, text) -> Printf.sprintf "%d %s" s text)
    in
    let floor = View.floor_stamp v in
    if since < floor then
      Ok (Printf.sprintf "# history truncated below stamp %d" floor :: ops)
    else Ok ops

let run_plan v plan =
  match plan with
  | Plan.Name_point n ->
      Ok (if SMap.mem n (View.entries v) then [ n ] else [])
  | Plan.Name_prefix { prefix; pat } ->
      let rec scan acc seq =
        match seq () with
        | Seq.Nil -> acc
        | Seq.Cons ((name, _), rest) ->
            if not (starts_with ~prefix name) then acc
            else scan (if Ast.matches pat name then name :: acc else acc) rest
      in
      Ok (sorted (scan [] (SMap.to_seq_from prefix (View.entries v))))
  | Plan.Name_scan pat ->
      Ok
        (sorted
           (SMap.fold
              (fun name _ acc ->
                if Ast.matches pat name then name :: acc else acc)
              (View.entries v) []))
  | Plan.Attr_point { attr; inherited } -> (
      match SMap.find_opt attr (View.attr_index v) with
      | None -> Ok []
      | Some declarers ->
          Ok (sorted (attr_lines v ~inherited attr declarers [])))
  | Plan.Attr_scan { pat; inherited } ->
      Ok
        (sorted
           (SMap.fold
              (fun attr declarers acc ->
                if Ast.matches pat attr then
                  attr_lines v ~inherited attr declarers acc
                else acc)
              (View.attr_index v) []))
  | Plan.Isa_closure { name; dir } ->
      closure_lines v name (fun e ->
          match dir with Ast.Down -> e.View.e_desc | Ast.Up -> e.View.e_anc)
  | Plan.Part_closure { name; dir } ->
      closure_lines v name (fun e ->
          match dir with
          | Ast.Down -> e.View.e_parts
          | Ast.Up -> e.View.e_wholes)
  | Plan.Wheel name -> (
      match View.find_entry v name with
      | None -> Error ("no interface " ^ name)
      | Some e -> Ok (sorted e.View.e_wheel.Core.Concept.c_members))
  | Plan.Hist_slice { since; until } -> diff_lines v ~since ~until
  | Plan.Lineage_read -> (
      match View.lineage v with
      | Some (parent, fork) ->
          (* the fork stamp doubles as the [diff] anchor: everything this
             variant did since it was cut is [diff <fork>] *)
          Ok
            [
              Printf.sprintf "parent %s@%d" parent fork;
              Printf.sprintf "diff since fork: @query diff %d" fork;
            ]
      | None -> Ok [ "root" ])
  | Plan.Branch_scan _ ->
      (* repository-scoped: the server answers it from the stores on disk
         (every shard identically); a bare view cannot *)
      Error "branches is repository-scoped; ask the server"

let run v atom = run_plan v (Plan.of_atom atom)

let explain atom = [ Plan.describe (Plan.of_atom atom) ]

(** The naive baseline: rebuild the whole view from scratch for this one
    request, then evaluate — what every query would cost without
    incremental maintenance (bench P17 measures the gap). *)
let run_fresh ~stamp session atom = run (View.build ~stamp session) atom
