(** Materialized, incrementally maintained query views over one variant.

    A view is an immutable value carrying everything the evaluator reads:

    - per-interface entries — declared attribute names, transitive ISA
      ancestor/descendant sets, transitive part-of whole/part sets, and the
      materialized {!Core.Decompose} wagon wheel;
    - an attribute-name → declaring-interfaces index;
    - a bounded, newest-first history of (publication stamp, rendered op)
      pairs feeding [diff] queries.

    Views are published epoch-stamped alongside the snapshot (see
    {!Service_query} in the server): the writer {!refresh}es after each
    committed operation, so a query never recomputes closures or wheels per
    request.  {!refresh} is incremental in the size of the change, not the
    schema: the dirty seed is {!Core.Schema_index.changed_names} (pointer
    diff of the persistent index, O(changed entries)), widened to every
    interface whose materialized row can react — the seed's old and new
    closure neighbourhoods — and only those rows are recomputed.  The
    equivalence [refresh* ≡ build] is the subsystem's correctness
    foundation, differentially tested by property (500+ generated op
    sequences) exactly like the PR 1 index-vs-naive checker. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)
module Si = Core.Schema_index
module D = Core.Decompose.Indexed
open Odl.Types

type entry = {
  e_attrs : string list;  (** declared attribute names, declaration order *)
  e_anc : SSet.t;  (** transitive ISA ancestors *)
  e_desc : SSet.t;  (** transitive ISA descendants *)
  e_wholes : SSet.t;  (** transitive part-of wholes this type belongs to *)
  e_parts : SSet.t;  (** transitive parts under this type *)
  e_wheel : Core.Concept.t;  (** materialized wagon wheel *)
}

type t = {
  v_stamp : int;  (** publication stamp this view reflects *)
  v_index : Si.t;  (** the index version the entries were computed from *)
  v_steps : Core.Session.step list;  (** captured [steps_rev] spine *)
  v_nsteps : int;
  v_entries : entry SMap.t;
  v_attrs : SSet.t SMap.t;  (** attribute name → declaring interfaces *)
  v_history : (int * string) list;  (** newest first; feeds [diff] *)
  v_floor : int;  (** stamps ≤ this have no retained history *)
  v_refreshes : int;  (** incremental refreshes since [build] *)
  v_lineage : (string * int) option;
      (** the variant's (parent, fork stamp) manifest record, cached at
          build time; feeds the [lineage] atom *)
}

let max_history = 512

let stamp v = v.v_stamp
let floor_stamp v = v.v_floor
let lineage v = v.v_lineage
let refresh_count v = v.v_refreshes
let interface_count v = SMap.cardinal v.v_entries
let find_entry v name = SMap.find_opt name v.v_entries
let entries v = v.v_entries
let attr_index v = v.v_attrs

(* --- part-of adjacency ----------------------------------------------------

   A part-of edge is declared on either end ({!Odl.Types.role_of_relationship}):
   the whole holds a collection of parts ([Whole_end], target = part) or the
   part points at its whole ([Part_end], target = whole).  Both directions
   are walked through the index — forward via the owner's own rels, backward
   via [relationships_targeting] — so the closure is complete whichever end
   declared the edge.  Dangling targets are excluded, cycles are cut by the
   visited set. *)

let direct_parts idx name =
  let fwd =
    match Si.find_interface idx name with
    | None -> []
    | Some i ->
        List.filter_map
          (fun r ->
            match role_of_relationship r with
            | Whole_end when Si.mem_interface idx r.rel_target ->
                Some r.rel_target
            | _ -> None)
          i.i_rels
  in
  let bwd =
    Si.relationships_targeting idx name
    |> List.filter_map (fun (owner, r) ->
           match role_of_relationship r with
           | Part_end -> Some owner.i_name
           | _ -> None)
  in
  fwd @ bwd

let direct_wholes idx name =
  let fwd =
    match Si.find_interface idx name with
    | None -> []
    | Some i ->
        List.filter_map
          (fun r ->
            match role_of_relationship r with
            | Part_end when Si.mem_interface idx r.rel_target ->
                Some r.rel_target
            | _ -> None)
          i.i_rels
  in
  let bwd =
    Si.relationships_targeting idx name
    |> List.filter_map (fun (owner, r) ->
           match role_of_relationship r with
           | Whole_end -> Some owner.i_name
           | _ -> None)
  in
  fwd @ bwd

let closure_set step start =
  let rec go visited = function
    | [] -> visited
    | n :: rest ->
        if SSet.mem n visited then go visited rest
        else go (SSet.add n visited) (step n @ rest)
  in
  go SSet.empty (step start)

(* --- entry computation ---------------------------------------------------- *)

let compute_entry idx name =
  let i = Si.get_interface idx name in
  {
    e_attrs = List.map (fun a -> a.attr_name) i.i_attrs;
    e_anc = SSet.of_list (Si.ancestors idx name);
    e_desc = SSet.of_list (Si.descendants idx name);
    e_wholes = closure_set (direct_wholes idx) name;
    e_parts = closure_set (direct_parts idx) name;
    e_wheel = D.wagon_wheel idx name;
  }

(* Every name an entry's materialized row mentions: the set of rows that can
   react when this interface changes. *)
let entry_neighbourhood e =
  SSet.union e.e_anc e.e_desc
  |> SSet.union e.e_wholes |> SSet.union e.e_parts
  |> SSet.union (SSet.of_list e.e_wheel.Core.Concept.c_members)

let multi_add key v m =
  SMap.update key
    (function None -> Some (SSet.singleton v) | Some s -> Some (SSet.add v s))
    m

let multi_remove key v m =
  SMap.update key
    (function
      | None -> None
      | Some s ->
          let s = SSet.remove v s in
          if SSet.is_empty s then None else Some s)
    m

let deindex_attrs name e attrs =
  List.fold_left (fun m a -> multi_remove a name m) attrs e.e_attrs

let index_attrs name e attrs =
  List.fold_left (fun m a -> multi_add a name m) attrs e.e_attrs

(* --- history -------------------------------------------------------------- *)

let render_step (s : Core.Session.step) =
  "@"
  ^ Core.Concept.id_prefix s.Core.Session.st_kind
  ^ " "
  ^ Core.Op_printer.to_string s.Core.Session.st_op

(* The steps turning the captured spine into the session's: undos for the
   popped tail, then the fresh steps — the same pointer-equality walk as the
   service's journal delta (see Service_types.journal_delta), O(changed
   steps) because both spines share structure below the divergence point.
   Both results are oldest first; structurally equal pairs (undone then
   reapplied unchanged) are trimmed as noise. *)
let spine_delta ~old_steps ~old_n ~new_steps ~new_n =
  let rec chop n popped l =
    if n = 0 then (popped, l)
    else
      match l with
      | s :: rest -> chop (n - 1) (s :: popped) rest
      | [] -> (popped, [])
  in
  let popped, o = chop (max 0 (old_n - new_n)) [] old_steps in
  let added, a = chop (max 0 (new_n - old_n)) [] new_steps in
  let rec sync popped added o a =
    if o == a then (popped, added)
    else
      match (o, a) with
      | so :: o', sa :: a' -> sync (so :: popped) (sa :: added) o' a'
      | _ -> (popped, added)
  in
  let popped, added = sync popped added o a in
  let step_eq (s1 : Core.Session.step) (s2 : Core.Session.step) =
    s1.Core.Session.st_kind = s2.Core.Session.st_kind
    && Core.Modop.equal s1.st_op s2.st_op
  in
  let rec trim = function
    | pb :: p', aa :: a' when step_eq pb aa -> trim (p', a')
    | rest -> rest
  in
  trim (popped, added)

let bound_history v hist =
  let rec take n acc = function
    | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let kept, dropped = take max_history [] hist in
  match dropped with
  | [] -> (kept, v)
  | (s, _) :: _ -> (kept, max v s)

(* --- build and refresh ---------------------------------------------------- *)

let build ?lineage ~stamp (session : Core.Session.t) =
  let idx = Core.Session.index session in
  let entries =
    List.fold_left
      (fun m name -> SMap.add name (compute_entry idx name) m)
      SMap.empty
      (Si.interface_names idx)
  in
  let attrs =
    SMap.fold (fun name e m -> index_attrs name e m) entries SMap.empty
  in
  {
    v_stamp = stamp;
    v_index = idx;
    v_steps = Core.Session.steps_rev session;
    v_nsteps = Core.Session.step_count session;
    v_entries = entries;
    v_attrs = attrs;
    v_history = [];
    v_floor = stamp;
    v_refreshes = 0;
    v_lineage = lineage;
  }

let refresh v ~stamp (session : Core.Session.t) =
  let idx = Core.Session.index session in
  let new_steps = Core.Session.steps_rev session in
  let new_n = Core.Session.step_count session in
  let seeds = Si.changed_names v.v_index idx in
  (* widen each seed to every row its change can reach: the row itself,
     everything its *old* materialized row mentioned, and everything its
     *new* neighbourhood mentions (closures and wheel recomputed fresh on
     the new index) — then rebuild exactly those rows *)
  let recompute =
    List.fold_left
      (fun acc name ->
        let acc = SSet.add name acc in
        let acc =
          match SMap.find_opt name v.v_entries with
          | None -> acc
          | Some e -> SSet.union (entry_neighbourhood e) acc
        in
        if Si.mem_interface idx name then
          SSet.union (entry_neighbourhood (compute_entry idx name)) acc
        else acc)
      SSet.empty seeds
  in
  let entries, attrs =
    SSet.fold
      (fun name (entries, attrs) ->
        let attrs =
          match SMap.find_opt name v.v_entries with
          | None -> attrs
          | Some old -> deindex_attrs name old attrs
        in
        if Si.mem_interface idx name then
          let e = compute_entry idx name in
          (SMap.add name e entries, index_attrs name e attrs)
        else (SMap.remove name entries, attrs))
      recompute (v.v_entries, v.v_attrs)
  in
  let popped, added =
    spine_delta ~old_steps:v.v_steps ~old_n:v.v_nsteps ~new_steps ~new_n
  in
  (* chronological event order: undos newest-popped first, then the fresh
     steps oldest first; history is kept newest first *)
  let events =
    List.rev_map (fun s -> "undo " ^ render_step s) popped
    @ List.map render_step added
  in
  let history =
    List.rev_append (List.map (fun e -> (stamp, e)) events) v.v_history
  in
  let history, floor = bound_history v.v_floor history in
  {
    v_stamp = stamp;
    v_index = idx;
    v_steps = new_steps;
    v_nsteps = new_n;
    v_entries = entries;
    v_attrs = attrs;
    v_history = history;
    v_floor = floor;
    v_refreshes = v.v_refreshes + 1;
    v_lineage = v.v_lineage;
  }

(** Bring a (possibly absent) view to [stamp]: build from scratch when there
    is none, keep it when it is already at or past [stamp] (a racing writer
    advanced it first), refresh otherwise. *)
let update ?prev ?lineage ~stamp session =
  match prev with
  | None -> build ?lineage ~stamp session
  | Some v when v.v_stamp >= stamp -> v
  | Some v -> refresh v ~stamp session

(* --- equivalence (differential testing) ----------------------------------- *)

let entry_equal a b =
  a.e_attrs = b.e_attrs
  && SSet.equal a.e_anc b.e_anc
  && SSet.equal a.e_desc b.e_desc
  && SSet.equal a.e_wholes b.e_wholes
  && SSet.equal a.e_parts b.e_parts
  && Core.Concept.equal a.e_wheel b.e_wheel

(** Logical equality: same materialized rows and attribute index.  Stamp,
    history and refresh bookkeeping are excluded — a from-scratch [build]
    has no history, and the property incremental ≡ from-scratch compares
    exactly the derived data. *)
let equal_logical a b =
  SMap.equal entry_equal a.v_entries b.v_entries
  && SMap.equal SSet.equal a.v_attrs b.v_attrs

let history v = v.v_history
