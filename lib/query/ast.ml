(** Abstract syntax for the read-side query language (the [@query] verb).

    A query is a scope ([all] = every variant in the repository, otherwise
    the connection's open variant), an optional [explain] prefix that asks
    for the plan instead of the answer, and one atom.  Patterns come in two
    shapes, mirroring the two identifier tokens of {!Odl.Lexer}: a plain
    identifier matches exactly; a double-quoted string may carry [*] (any
    run) and [?] (any character) wildcards. *)

type dir = Up | Down

type pattern =
  | Exact of string
  | Glob of string  (** [*] = any run of characters, [?] = any one *)

type atom =
  | Name of pattern  (** interfaces whose name matches *)
  | Attr of { pat : pattern; inherited : bool }
      (** interface.attribute pairs whose attribute name matches; with
          [inherited], attributes visible through the ISA hierarchy too *)
  | Isa of { name : string; dir : dir }
      (** transitive subtypes ([Down], default) or supertypes ([Up]) *)
  | Part of { name : string; dir : dir }
      (** transitive parts ([Down], default) or wholes ([Up]) *)
  | Wheel of string  (** members of the materialized wagon wheel *)
  | Diff of { since : int; until : int option }
      (** operations between two publication stamps, [(since, until]];
          [until] defaults to the variant's current stamp *)
  | Lineage
      (** the variant's branch lineage: its parent and fork stamp (the
          stamp to [diff] from to see everything since the fork), or
          [root] for an unbranched variant *)
  | Branches of string
      (** the variants branched off the named variant, with their fork
          stamps — repository-scoped (answered from the stores on disk,
          identically by every shard) *)

type t = { q_all : bool; q_explain : bool; q_atom : atom }

let dir_name = function Up -> "up" | Down -> "down"

let has_wildcards s = String.exists (fun c -> c = '*' || c = '?') s

(** The literal chars before the first wildcard — the planner's prefix for
    a bounded index scan ([""] when the pattern starts with a wildcard). *)
let literal_prefix g =
  match String.index_opt g '*', String.index_opt g '?' with
  | None, None -> g
  | i, j ->
      let cut =
        match (i, j) with
        | Some i, Some j -> min i j
        | Some i, None -> i
        | None, Some j -> j
        | None, None -> assert false
      in
      String.sub g 0 cut

(* Classic backtracking glob matcher; runs of [*] collapse, so worst-case
   backtracking is bounded by the number of [*] groups (patterns are
   operator-typed and short). *)
let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec stars p = if p < np && pat.[p] = '*' then stars (p + 1) else p in
  let rec go p i =
    if p = np then i = ns
    else
      match pat.[p] with
      | '*' ->
          let p = stars p in
          if p = np then true
          else
            let rec try_from i = go p i || (i < ns && try_from (i + 1)) in
            try_from i
      | '?' -> i < ns && go (p + 1) (i + 1)
      | c -> i < ns && Char.equal s.[i] c && go (p + 1) (i + 1)
  in
  go 0 0

let matches p s =
  match p with Exact e -> String.equal e s | Glob g -> glob_match g s

let pattern_text = function
  | Exact s -> s
  | Glob g -> "\"" ^ g ^ "\""
