(** The query planner: picks, per atom, which materialized structure of the
    {!View} answers it and how.  Trivial by design — every access path is a
    point lookup, a bounded scan or a closure read on data the view already
    holds — but making the choice explicit keeps the evaluator honest (it
    executes the plan, nothing else) and gives [explain] something true to
    print. *)

type t =
  | Name_point of string  (** point lookup in the name index *)
  | Name_prefix of { prefix : string; pat : Ast.pattern }
      (** bounded scan of the name index from the pattern's literal prefix *)
  | Name_scan of Ast.pattern  (** full scan of the name index *)
  | Attr_point of { attr : string; inherited : bool }
      (** probe of the attribute index *)
  | Attr_scan of { pat : Ast.pattern; inherited : bool }
  | Isa_closure of { name : string; dir : Ast.dir }
  | Part_closure of { name : string; dir : Ast.dir }
  | Wheel of string
  | Hist_slice of { since : int; until : int option }
  | Lineage_read  (** read of the view's cached manifest lineage record *)
  | Branch_scan of string
      (** scan of the repository's manifest lineage records (served at the
          repository layer — identical from every shard, like [@list]) *)

let of_atom = function
  | Ast.Name (Ast.Exact n) -> Name_point n
  | Ast.Name (Ast.Glob g as p) ->
      let prefix = Ast.literal_prefix g in
      if String.length prefix = 0 then Name_scan p
      else Name_prefix { prefix; pat = p }
  | Ast.Attr { pat = Ast.Exact a; inherited } -> Attr_point { attr = a; inherited }
  | Ast.Attr { pat; inherited } -> Attr_scan { pat; inherited }
  | Ast.Isa { name; dir } -> Isa_closure { name; dir }
  | Ast.Part { name; dir } -> Part_closure { name; dir }
  | Ast.Wheel n -> Wheel n
  | Ast.Diff { since; until } -> Hist_slice { since; until }
  | Ast.Lineage -> Lineage_read
  | Ast.Branches n -> Branch_scan n

let widen inherited = if inherited then " + descendant-closure widening" else ""

let describe = function
  | Name_point n -> "plan: point lookup of " ^ n ^ " in the name index"
  | Name_prefix { prefix; pat } ->
      Printf.sprintf "plan: bounded name-index scan from prefix %S, glob %s"
        prefix (Ast.pattern_text pat)
  | Name_scan p -> "plan: full name-index scan, glob " ^ Ast.pattern_text p
  | Attr_point { attr; inherited } ->
      "plan: attribute-index probe at " ^ attr ^ widen inherited
  | Attr_scan { pat; inherited } ->
      "plan: attribute-index scan, glob " ^ Ast.pattern_text pat
      ^ widen inherited
  | Isa_closure { name; dir } ->
      Printf.sprintf "plan: materialized ISA closure (%s) of %s"
        (Ast.dir_name dir) name
  | Part_closure { name; dir } ->
      Printf.sprintf "plan: materialized part-of closure (%s) of %s"
        (Ast.dir_name dir) name
  | Wheel n -> "plan: materialized wagon wheel of " ^ n
  | Hist_slice { since; until } ->
      Printf.sprintf "plan: history slice (%d, %s]" since
        (match until with Some u -> string_of_int u | None -> "current")
  | Lineage_read -> "plan: read of the view's cached lineage record"
  | Branch_scan n ->
      "plan: repository-wide scan of manifest lineage records for children \
       of " ^ n
