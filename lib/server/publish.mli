(** Lock-free snapshot publication with epoch counters.

    One {!t} maps each variant to an atomically published immutable
    snapshot (the service publishes {!Designer.Engine.state} values, but
    the table is generic).  Readers {!read} the current snapshot and run on
    it with no lock at all; the single writer (holding the variant's writer
    lock) {!publish}es each committed state, and eviction {!retract}s the
    cell, bumping the variant's epoch.

    Three counters ride on every entry, all monotone for the lifetime of
    the service (entries are never removed from the table, so they survive
    session eviction):

    - {b seq} — the publication stamp: bumped by every {!publish} and
      stored {e with} the value, so a reader always sees a (value, stamp)
      pair that belongs together.  This is the [#version] surfaced in
      responses: per variant it never goes backwards, even across
      evict/reload cycles.
    - {b epoch} — bumped by every {!retract}: a cheap "the session you
      were reading was evicted" signal.  Stale readers finish on their
      snapshot (it is immutable), then reattach.
    - {b readers} — how many threads are inside {!with_snapshot} right
      now: the idle reaper treats a variant with live snapshot holders as
      busy.

    Thread-safe without locks: the variant map is copy-on-write behind an
    [Atomic], the per-variant cell is a single atomic load/store. *)

type 'a t

val create : unit -> 'a t

val read : 'a t -> string -> ('a * int) option
(** The variant's current snapshot and its publication stamp; [None] when
    nothing is published (never opened, or retracted by eviction). *)

val with_snapshot : 'a t -> string -> ('a * int -> 'b) -> 'b option
(** Like {!read}, but holds the variant's live-reader count across [f] so
    the reaper will not free the session mid-read.  [None] when nothing is
    published ([f] is not called). *)

val publish : 'a t -> string -> 'a -> int
(** Publish a new snapshot and return its stamp.  Single writer per
    variant (the caller holds the writer lock); concurrent readers observe
    either the old pair or the new, never a mixture. *)

val publish_at : 'a t -> string -> 'a -> int -> unit
(** Publish a snapshot under a caller-supplied stamp instead of minting
    one — the replication follower pins its published stamps to the
    leader's, so a follower's [#version] can never exceed the stamp the
    leader issued.  [seq] ratchets to [max seq stamp]; single applier per
    variant. *)

val retract : 'a t -> string -> unit
(** Eviction: clear the published cell and bump the epoch.  The stamp
    counter is retained, so a later re-publish continues the sequence. *)

val seq : 'a t -> string -> int
(** Last issued publication stamp (0 before the first publish). *)

val epoch : 'a t -> string -> int
(** How many times the variant was retracted. *)

val readers : 'a t -> string -> int
(** Live snapshot holders currently inside {!with_snapshot}. *)

val touch : 'a t -> string -> now:float -> unit
(** Record read-path activity for the idle reaper (lock-free reads never
    touch the session record, so writer-side [last_used] alone would let
    the reaper free a read-hot variant). *)

val last_touched : 'a t -> string -> float
(** Latest {!touch} time; [0.] when never touched. *)
