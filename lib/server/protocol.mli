(** The design service's line protocol: one-line requests ([@open v],
    [@open v readonly], [@close], [@list], [@quit], or a designer command),
    responses of [". "]-prefixed body lines, an optional [#version <n>]
    meta line (the variant's publication stamp), terminated by exactly one
    status — [!ok], [!err msg], [!readonly msg], or [!busy reason] +
    [!retry-after ms]. *)

type address = Unix_path of string | Tcp of string * int
(** Where a server listens (or a client connects): a Unix-domain socket
    path, or a TCP host:port. *)

val parse_address : string -> (address, string) result
(** Strings containing ['/'] are always [Unix_path]; otherwise a
    [host:port] suffix with a numeric port parses as [Tcp], and anything
    else falls back to [Unix_path].  Write [./name.sock] to force a
    relative path that looks like host:port. *)

val address_to_string : address -> string

type request =
  | List
  | Open of { variant : string; readonly : bool }
      (** [@open v] / [@open v readonly]; a readonly attach refuses
          mutating commands with [!readonly] *)
  | New of string
  | Close
  | Ping
  | Stats of [ `Text | `Json ]  (** [@stats] / [@stats json]: obs snapshot *)
  | Query of string
      (** [@query <expr>]: a read-side query, text kept verbatim; scope
          ([all]) and form are parsed by {!Query.Parser}, so the router
          and the service agree on one grammar *)
  | Branch of { parent : string; child : string; at : int option }
      (** [@branch V W [@at STAMP]]: fork variant [W] off [V] with a
          lineage record; [at] forks after V's first [at] operations
          (default: the whole log at V's current stamp) *)
  | Merge of { source : string; dest : string; dry_run : bool }
      (** [@merge W into V [--dry-run]]: rebase W's ops past the fork
          point onto V, reporting each as clean / auto-merged / conflict;
          [--dry-run] produces the report without writing *)
  | Quit
  | Command of string  (** a designer command line, verbatim *)

type status =
  | Ok
  | Err of string
  | Readonly of string  (** refused: the connection attached readonly *)
  | Busy of { reason : string; retry_after_ms : int }

type response = { body : string list; status : status; version : int option }
(** [version] is the variant's publication stamp at the time the request
    was served: monotone per variant, bumped by every published write,
    surviving eviction.  [None] for requests with no variant context. *)

val ok : ?version:int -> string list -> response
val err : ?body:string list -> ?version:int -> string -> response
val readonly : string -> response
val busy : ?body:string list -> retry_after_ms:int -> string -> response

val parse_request : string -> (request, string) result

val body_prefix : string
val to_lines : response -> string list
val to_string : response -> string
(** Newline-terminated wire form. *)

val is_terminator : string -> bool
(** Does this line end a response ([!ok] / [!err ...] / [!readonly ...] /
    [!retry-after ...])? *)
