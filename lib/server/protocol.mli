(** The design service's line protocol: one-line requests ([@open v],
    [@close], [@list], [@quit], or a designer command), responses of
    [". "]-prefixed body lines terminated by exactly one status —
    [!ok], [!err msg], or [!busy reason] + [!retry-after ms]. *)

type request =
  | List
  | Open of string
  | New of string
  | Close
  | Ping
  | Stats of [ `Text | `Json ]  (** [@stats] / [@stats json]: obs snapshot *)
  | Quit
  | Command of string  (** a designer command line, verbatim *)

type status =
  | Ok
  | Err of string
  | Busy of { reason : string; retry_after_ms : int }

type response = { body : string list; status : status }

val ok : string list -> response
val err : ?body:string list -> string -> response
val busy : ?body:string list -> retry_after_ms:int -> string -> response

val parse_request : string -> (request, string) result

val body_prefix : string
val to_lines : response -> string list
val to_string : response -> string
(** Newline-terminated wire form. *)

val is_terminator : string -> bool
(** Does this line end a response ([!ok] / [!err ...] / [!retry-after ...])? *)
