(** Branch and merge: optimistic concurrent design on one shared schema.

    [@branch V W] forks variant [W] off [V] — a crash-safe copy with a
    lineage record (parent, fork stamp) in its manifest
    ({!Repository.Repo.branch_variant}).  The parent is read through the
    read-only loader, so branching never takes the parent's writer lock:
    designers keep working on [V] while [W] is cut.  Only the {e child}
    is locked, and only to publish it (so lock-free readers, followers,
    and the other shards' [@list] see the new variant immediately).

    [@merge W into V] rebases the ops [W] made since its fork onto [V]'s
    current state ({!Core.Oplog.rebase}): each branch op replays through
    the permission matrix and the incremental consistency checker against
    the moved-ahead base, classified clean / auto-merged / conflict.
    Conflicted ops are {e reported} (the impact report is the response
    body), never silently applied.  The merge runs through the generic
    single-writer pipeline ({!Service_write.execute}) on the destination
    — writer lock on [V] only, journal delta, group commit, publish,
    durable-before-ack — while the source branch is read lock-free.
    [--dry-run] classifies and reports without mutating anything. *)

open Service_types

let do_branch t ~parent ~child ~at ~line =
  if t.config.follower then
    Protocol.err "this server is a follower; branch variants on the leader"
  else
    with_writer t child (fun () ->
        (match t.config.chaos_hook with
        | Some hook -> hook ~variant:child ~line
        | None -> ());
        match Repo.branch_variant t.repo ~parent ~child ?at () with
        | Error m -> Protocol.err m
        | exception e ->
            Protocol.err ("branch failed: " ^ Printexc.to_string e)
        | Ok _ -> (
            (* publish the child like [@open] would, so readers on every
               shard (and followers) can see it without a designer
               attaching first; the load replays the fresh journal *)
            (match t.commit with
            | Some gc -> Group_commit.drain_all gc
            | None -> ());
            match Service_admin.load_session t child with
            | Error m ->
                (* the branch itself is complete and durable on disk *)
                Protocol.ok
                  [
                    Printf.sprintf "branched %s from %s" child parent;
                    "caution: branched but not loaded: " ^ m;
                  ]
            | Ok s ->
                (match t.commit with
                | Some gc -> Group_commit.reset gc ~path:(log_path s)
                | None -> ());
                let fork =
                  match Repo.variant_lineage t.repo child with
                  | Some (_, f) -> f
                  | None -> 0
                in
                Protocol.ok
                  ~version:(Publish.seq t.pub child)
                  [ Printf.sprintf "branched %s from %s@%d" child parent fork ]))

let do_merge t (conn : conn) ~source ~dest ~dry_run ~line =
  if t.config.follower then
    Protocol.err "this server is a follower; merge variants on the leader"
  else if source = dest then
    Protocol.err "cannot merge a variant into itself"
  else
    Service_write.execute ~load_if_absent:true t conn dest
      ~mutating:(not dry_run)
      ~exec:(fun before ->
        (* the source branch is read lock-free: another shard may own it
           and even be appending — the read-only loader replays the
           longest valid (= acknowledged) journal prefix *)
        match Repo.open_variant_ro t.repo source with
        | Error e ->
            (before, [ Designer.Feedback.error (Repo.open_error_to_string e) ])
        | exception e ->
            ( before,
              [
                Designer.Feedback.error
                  ("could not read branch: " ^ Printexc.to_string e);
              ] )
        | Ok branch ->
            let base = before.Engine.session in
            let branch_ops = Core.Oplog.branch_entries ~base ~branch in
            let t0 = t.config.now () in
            let report = Core.Oplog.rebase ~base ~branch_ops in
            let rebase_seconds = t.config.now () -. t0 in
            Obs.Trace.add_phase_current t.i.tracer "rebase" rebase_seconds;
            Obs.Metrics.add t.i.c_merge_clean report.Core.Oplog.r_clean;
            Obs.Metrics.add t.i.c_merge_auto report.Core.Oplog.r_auto;
            Obs.Metrics.add t.i.c_merge_conflict report.Core.Oplog.r_conflict;
            let label =
              Printf.sprintf "%s into %s%s" source dest
                (if dry_run then " (dry run)" else "")
            in
            let feedback =
              [ Designer.Feedback.output (Core.Oplog.render_report label report) ]
            in
            if dry_run then (before, feedback)
            else ({ before with Engine.session = report.Core.Oplog.r_session },
                  feedback))
      ~line
