(** The multi-session design service (transport-agnostic core).

    One {!t} serves a multi-variant repository ({!Repository.Repo}) to many
    concurrent connections.  Each open variant is a shared session: an
    in-memory {!Designer.Engine} state plus the variant's durable store.
    The socket layer ({!Server}) is a thin thread-per-connection loop
    around {!request}; the chaos harness drives {!request} directly from
    test threads.

    Since the snapshot-concurrency refactor the implementation is split by
    path — this module is the assembler and request dispatcher:

    - {!Service_types} — config, instruments, the session/service records,
      and the helpers every path shares (writer lock, eviction, journal
      delta persistence);
    - {!Service_read} — command classification and the {e lock-free} read
      path: read-class commands run on the variant's published immutable
      snapshot with no variant lock at all ({!Publish});
    - {!Service_write} — the single-writer pipeline:
      lock → apply → check → journal → publish → ack;
    - {!Service_admin} — session lifecycle, [@stats], the idle reaper
      (defined against live snapshot holders), and shutdown.

    Robustness discipline, in order of application to a request:

    - {b Admission}: a stopping service refuses new work; each request gets
      an absolute deadline ([request_deadline] from arrival).
    - {b Backpressure}: mutating requests serialize per variant through
      {!Locks}; when [max_waiters] requests are already queued on the
      variant the new one is shed immediately with [!busy]/[!retry-after],
      and a queued request that cannot start by its deadline is shed the
      same way — the accept loop never blocks behind a convoy.  Read-class
      requests bypass the queue entirely (they take no lock) and so are
      never shed.
    - {b Durability}: the engine runs with no repository attached; the
      service itself journals the delta of every accepted command (undo
      records, then fresh steps) through {!Retry.with_retries}, and only
      then acknowledges with [!ok].  On any persistence failure the
      in-memory state is discarded and the session is evicted, so a live
      session provably equals the replay of its journal; the next [@open]
      reloads from disk, whose recovery repairs any torn tail.
    - {b Degradation}: journal failures feed the variant's {!Breaker};
      a tripped breaker leaves the variant readable but refuses mutations
      until a cooled-down probe succeeds — the server never crashes over a
      failing disk.
    - {b Reaping}: sessions idle past [idle_timeout] — on the writer side
      {e and} the read side, with no live snapshot holder — are
      snapshotted and freed; their connections are told to [@open] again.
    - {b Shutdown}: {!shutdown} drains in-flight requests, snapshots every
      dirty session through the existing {!Repository.Store} path, and
      releases all locks. *)

module Repo = Repository.Repo
module Io = Repository.Io

type config = Service_types.config = {
  request_deadline : float;
  max_waiters : int;
  idle_timeout : float;
  drain_timeout : float;
  retry : Retry.policy;
  breaker_threshold : int;
  breaker_cooldown : float;
  use_file_locks : bool;
  retry_after_ms : int;
  lockfree_reads : bool;
  group_commit : bool;
  flush_max_batch : int;
  flush_linger : float;
  flush_on_idle : bool;
  follower : bool;
  era : int;
  now : unit -> float;
  sleep : float -> unit;
  chaos_hook : (variant:string -> line:string -> unit) option;
  instance_notes : (string * string) list;
  shard_span : (int * int) option;
}

let default_config = Service_types.default_config

type t = Service_types.t
type conn = Service_types.conn

open Service_types

(* The session/journal observation hooks are process-wide globals (see
   their doc comments for why); install them only for an enabled registry,
   so opening an [Obs.noop] service for a quick test does not silence a
   live one's hooks. *)
let install_hooks (i : instruments) ~now =
  Core.Session.set_hooks
    (Some
       {
         Core.Session.h_now = now;
         h_op_applied =
           (fun ~kind:_ ~dirty ->
             Obs.Metrics.incr i.c_ops;
             Obs.Histo.observe i.h_dirty (float_of_int dirty));
         h_check =
           (fun ~seconds ~findings:_ ->
             Obs.Trace.add_phase_current i.tracer "check" seconds;
             Obs.Histo.observe i.h_check seconds);
       });
  Repository.Journal.set_observer
    (Some
       (fun ~op ~seconds ->
         Obs.Trace.add_phase_current i.tracer "journal" seconds;
         Obs.Histo.observe
           (if op = "append" then i.h_journal_append else i.h_journal_rewrite)
           seconds))

let open_service ?(config = default_config) ?io ?(obs = Obs.create ()) dir =
  let i = make_instruments obs in
  let io = match io with Some io -> io | None -> Io.unix in
  let io =
    if not (Obs.enabled obs) then io
    else
      Io.observed ~now:config.now
        ~record:(fun op seconds ->
          Obs.Histo.observe
            (match op with
            | "fsync" -> i.h_io_fsync
            | "append" -> i.h_io_append
            | "write" -> i.h_io_write
            | _ -> i.h_io_rename)
            seconds)
        io
  in
  if Obs.enabled obs then install_hooks i ~now:config.now;
  (* The group-commit coordinator's flush runs on the flusher thread: it
     gets its own jitter stream (the service's [rand] is only touched
     under variant locks) and a deadline so a failing disk cannot pin the
     whole batch in backoff longer than one request is allowed to wait. *)
  let make_commit () =
    if not config.group_commit then None
    else
      let crand = Random.State.make [| 0x0ddba11 |] in
      Some
        (Group_commit.create
           ~policy:
             {
               Group_commit.max_batch = config.flush_max_batch;
               max_linger = config.flush_linger;
               flush_on_idle = config.flush_on_idle;
             }
           ~now:config.now ~sleep:config.sleep
           ~flush:(fun ~path ~data ->
             match
               Retry.with_retries ~rand:crand ~sleep:config.sleep
                 ~now:config.now
                 ~deadline:(config.now () +. config.request_deadline)
                 ~on_retry:(fun ~attempt:_ ~delay:_ ->
                   Obs.Metrics.incr i.c_retries)
                 config.retry
                 (fun () -> Repository.Journal.append_raw io path data)
             with
             | Ok () -> ()
             | Error e -> raise e)
           ~on_flush:(fun ~path:_ ~batch ~seconds ->
             Obs.Histo.observe i.h_commit_batch (float_of_int batch);
             Obs.Histo.observe i.h_commit_flush seconds)
           ())
  in
  Result.map
    (fun repo ->
      {
        (* created only once the repository opened, so a failed open never
           leaks a flusher thread *)
        commit = make_commit ();
        repo;
        config;
        locks = Locks.create ();
        pub = Publish.create ();
        sessions = Hashtbl.create 8;
        breakers = Hashtbl.create 8;
        views = Hashtbl.create 8;
        mu = Mutex.create ();
        inflight = Atomic.make 0;
        conn_ids = Atomic.make 0;
        stopping = false;
        rand = Random.State.make [| 0x5ca1ab1e |];
        commit_waiting = Atomic.make 0;
        repl = None;
        i;
      })
    (Repo.open_dir ~io dir)

let obs (t : t) = t.i.obs

(* The global hooks are last-writer-wins, so in a multi-service process
   (tests, the overhead benchmark) the most recently opened enabled service
   owns them.  These let such a process hand them around explicitly. *)
let rearm_hooks (t : t) =
  if Obs.enabled t.i.obs then install_hooks t.i ~now:t.config.now

let disarm_hooks () =
  Core.Session.set_hooks None;
  Repository.Journal.set_observer None

let connect (t : t) =
  { id = Atomic.fetch_and_add t.conn_ids 1; variant = None; readonly = false }

let session_count (t : t) =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.mu;
  n

let disconnect = Service_admin.disconnect
let reap_idle = Service_admin.reap_idle
let shutdown = Service_admin.shutdown

let request (t : t) (conn : conn) line =
  if t.stopping then Protocol.err "server is shutting down"
  else begin
    Atomic.incr t.inflight;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        let i = t.i in
        Obs.Metrics.incr i.c_requests;
        let arrived = t.config.now () in
        let label =
          let line = String.trim line in
          if String.length line > 0 && line.[0] = '@' then
            match String.index_opt line ' ' with
            | None -> line
            | Some j -> String.sub line 0 j
          else "command"
        in
        let sp = Obs.Trace.start i.tracer ~label ~detail:(String.trim line) () in
        let response =
          match
            match
              Obs.Trace.phase i.tracer sp "parse" (fun () ->
                  Protocol.parse_request line)
            with
            | Error m -> Protocol.err m
            | Ok List -> Protocol.ok (Repo.lineage_listing t.repo)
            | Ok Ping -> Protocol.ok [ "pong" ]
            | Ok (Stats fmt) -> Service_admin.do_stats t fmt
            | Ok (Open { variant; readonly }) ->
                Service_admin.do_open t conn variant ~create:false ~readonly
            | Ok (New v) ->
                Service_admin.do_open t conn v ~create:true ~readonly:false
            | Ok Close -> Service_admin.do_close t conn
            | Ok Quit ->
                Service_admin.disconnect t conn;
                Protocol.ok [ "bye" ]
            | Ok (Query q) -> Service_query.do_query t conn q
            | Ok (Branch { parent; child; at }) ->
                Service_branch.do_branch t ~parent ~child ~at ~line
            | Ok (Merge { source; dest; dry_run }) ->
                Service_branch.do_merge t conn ~source ~dest ~dry_run ~line
            | Ok (Command c) -> Service_read.do_command t conn c
          with
          | response -> response
          (* no request may kill its worker thread: locks were released on
             the way out (Fun.protect), the session was evicted if its disk
             state became unknown — surface the rest as an error response *)
          | exception e -> Protocol.err ("internal: " ^ Printexc.to_string e)
        in
        (match response.Protocol.status with
        | Protocol.Ok -> Obs.Metrics.incr i.c_ok
        | Protocol.Err _ -> Obs.Metrics.incr i.c_err
        | Protocol.Readonly _ -> () (* counted at the rejection site *)
        | Protocol.Busy _ -> () (* already counted at the shed site *));
        Obs.Trace.finish i.tracer sp
          ~status:
            (match response.Protocol.status with
            | Protocol.Ok -> "ok"
            | Protocol.Err _ -> "err"
            | Protocol.Readonly _ -> "readonly"
            | Protocol.Busy _ -> "busy");
        Obs.Histo.observe i.h_request (t.config.now () -. arrived);
        response)
  end
