(** The multi-session design service (transport-agnostic core).

    One {!t} serves a multi-variant repository ({!Repository.Repo}) to many
    concurrent connections.  Each open variant is a shared session: an
    in-memory {!Designer.Engine} state plus the variant's durable store.
    The socket layer ({!Server}) is a thin thread-per-connection loop
    around {!request}; the chaos harness drives {!request} directly from
    test threads.

    Robustness discipline, in order of application to a request:

    - {b Admission}: a stopping service refuses new work; each request gets
      an absolute deadline ([request_deadline] from arrival).
    - {b Backpressure}: requests serialize per variant through {!Locks};
      when [max_waiters] requests are already queued on the variant the new
      one is shed immediately with [!busy]/[!retry-after], and a queued
      request that cannot start by its deadline is shed the same way — the
      accept loop never blocks behind a convoy.
    - {b Durability}: the engine runs with no repository attached; the
      service itself journals the delta of every accepted command (undo
      records, then fresh steps) through {!Retry.with_retries}, and only
      then acknowledges with [!ok].  On any persistence failure the
      in-memory state is discarded and the session is evicted, so a live
      session provably equals the replay of its journal; the next [@open]
      reloads from disk, whose recovery repairs any torn tail.
    - {b Degradation}: journal failures feed the variant's {!Breaker};
      a tripped breaker leaves the variant readable but refuses mutations
      until a cooled-down probe succeeds — the server never crashes over a
      failing disk.
    - {b Reaping}: sessions idle past [idle_timeout] are snapshotted and
      freed; their connections are told to [@open] again.
    - {b Shutdown}: {!shutdown} drains in-flight requests, snapshots every
      dirty session through the existing {!Repository.Store} path, and
      releases all locks. *)

module Engine = Designer.Engine
module Store = Repository.Store
module Repo = Repository.Repo
module Io = Repository.Io

type config = {
  request_deadline : float;  (** seconds from arrival to shed *)
  max_waiters : int;  (** per-variant queue bound *)
  idle_timeout : float;  (** reaper frees sessions idle this long *)
  drain_timeout : float;  (** max wait for in-flight work at shutdown *)
  retry : Retry.policy;  (** around journal appends and snapshots *)
  breaker_threshold : int;
  breaker_cooldown : float;
  use_file_locks : bool;  (** advisory [.lock] per variant (real fs only) *)
  retry_after_ms : int;  (** hint sent with [!busy] *)
  now : unit -> float;
  sleep : float -> unit;
  chaos_hook : (variant:string -> line:string -> unit) option;
      (** test-only: runs inside the variant lock before execution; an
          exception here models a worker thread killed mid-request *)
}

let default_config =
  {
    request_deadline = 5.0;
    max_waiters = 8;
    idle_timeout = 300.0;
    drain_timeout = 5.0;
    retry = Retry.default;
    breaker_threshold = 3;
    breaker_cooldown = 30.0;
    use_file_locks = true;
    retry_after_ms = 100;
    now = Unix.gettimeofday;
    sleep = Thread.delay;
    chaos_hook = None;
  }

(* --- instruments ----------------------------------------------------------

   Every counter/histogram the service records into, resolved once at
   [open_service] so the hot path never looks instruments up by name.  With
   a disabled registry ([Obs.noop], the [--no-obs] configuration) each of
   these is a no-op object and every record call is a load and a branch.

   Naming scheme: [swsd.<area>.<name>], [_total] for counters, [_seconds]
   for latency histograms (exported in ms by the text renderer); dimension-
   less histograms (queue depth, dirty-set size) carry no suffix. *)

type instruments = {
  obs : Obs.t;
  tracer : Obs.Trace.t;
  c_requests : Obs.Metrics.counter;
  c_ok : Obs.Metrics.counter;
  c_err : Obs.Metrics.counter;
  c_shed_queue : Obs.Metrics.counter;  (** [!busy]: variant queue full *)
  c_shed_deadline : Obs.Metrics.counter;  (** [!busy]: deadline while queued *)
  c_breaker_rejected : Obs.Metrics.counter;  (** mutations refused read-only *)
  c_breaker_trips : Obs.Metrics.counter;  (** closed/half-open → open edges *)
  c_ops : Obs.Metrics.counter;  (** committed engine operations *)
  c_opened : Obs.Metrics.counter;  (** sessions loaded from disk *)
  c_evicted : Obs.Metrics.counter;  (** sessions dropped on failure *)
  c_reaped : Obs.Metrics.counter;  (** sessions freed by the idle reaper *)
  c_retries : Obs.Metrics.counter;  (** backoff sleeps inside {!Retry} *)
  g_sessions : Obs.Metrics.gauge;
  g_inflight : Obs.Metrics.gauge;
  h_request : Obs.Histo.t;  (** whole request, arrival to response *)
  h_lock_wait : Obs.Histo.t;
  h_lock_hold : Obs.Histo.t;
  h_queue_depth : Obs.Histo.t;  (** waiters seen at admission *)
  h_apply : Obs.Histo.t;  (** engine execution of a command line *)
  h_check : Obs.Histo.t;  (** incremental consistency report *)
  h_dirty : Obs.Histo.t;  (** dirty-set size per committed op *)
  h_respond : Obs.Histo.t;  (** feedback rendering *)
  h_journal_append : Obs.Histo.t;  (** record + fsync, the commit path *)
  h_journal_rewrite : Obs.Histo.t;  (** snapshot / repair replace *)
  h_io_write : Obs.Histo.t;
  h_io_append : Obs.Histo.t;
  h_io_fsync : Obs.Histo.t;
  h_io_rename : Obs.Histo.t;
}

let make_instruments obs =
  let c = Obs.counter obs and g = Obs.gauge obs in
  let h ?lo ?hi name = Obs.histo ?lo ?hi obs name in
  {
    obs;
    tracer = Obs.tracer obs;
    c_requests = c "swsd.requests_total";
    c_ok = c "swsd.responses.ok_total";
    c_err = c "swsd.responses.err_total";
    c_shed_queue = c "swsd.shed.queue_full_total";
    c_shed_deadline = c "swsd.shed.deadline_total";
    c_breaker_rejected = c "swsd.breaker.rejected_total";
    c_breaker_trips = c "swsd.breaker.trips_total";
    c_ops = c "swsd.engine.ops_total";
    c_opened = c "swsd.sessions.opened_total";
    c_evicted = c "swsd.sessions.evicted_total";
    c_reaped = c "swsd.sessions.reaped_total";
    c_retries = c "swsd.retry.attempts_total";
    g_sessions = g "swsd.sessions.open";
    g_inflight = g "swsd.requests.inflight";
    h_request = h "swsd.request_seconds";
    h_lock_wait = h "swsd.lock.wait_seconds";
    h_lock_hold = h "swsd.lock.hold_seconds";
    h_queue_depth = h ~lo:1.0 ~hi:1e4 "swsd.lock.queue_depth";
    h_apply = h "swsd.engine.apply_seconds";
    h_check = h "swsd.engine.check_seconds";
    h_dirty = h ~lo:1.0 ~hi:1e4 "swsd.engine.dirty_set";
    h_respond = h "swsd.respond_seconds";
    h_journal_append = h "swsd.journal.append_seconds";
    h_journal_rewrite = h "swsd.journal.rewrite_seconds";
    h_io_write = h "swsd.io.write_seconds";
    h_io_append = h "swsd.io.append_seconds";
    h_io_fsync = h "swsd.io.fsync_seconds";
    h_io_rename = h "swsd.io.rename_seconds";
  }

type session = {
  variant : string;
  store : Store.t;
  conns : (int, unit) Hashtbl.t;  (** attached connection ids *)
  mutable state : Engine.state;
  mutable dirty : bool;  (** changes not yet snapshotted *)
  mutable last_used : float;
  mutable flock : Locks.file_lock option;
}

type t = {
  repo : Repo.t;
  config : config;
  locks : Locks.t;
  sessions : (string, session) Hashtbl.t;
  breakers : (string, Breaker.t) Hashtbl.t;
      (** per variant, surviving session eviction *)
  mu : Mutex.t;  (** guards [sessions], [breakers], and session bookkeeping *)
  inflight : int Atomic.t;
  conn_ids : int Atomic.t;
  mutable stopping : bool;
  rand : Random.State.t;
  i : instruments;
}

type conn = { id : int; mutable variant : string option }

(* The session/journal observation hooks are process-wide globals (see
   their doc comments for why); install them only for an enabled registry,
   so opening an [Obs.noop] service for a quick test does not silence a
   live one's hooks. *)
let install_hooks i ~now =
  Core.Session.set_hooks
    (Some
       {
         Core.Session.h_now = now;
         h_op_applied =
           (fun ~kind:_ ~dirty ->
             Obs.Metrics.incr i.c_ops;
             Obs.Histo.observe i.h_dirty (float_of_int dirty));
         h_check =
           (fun ~seconds ~findings:_ ->
             Obs.Trace.add_phase_current i.tracer "check" seconds;
             Obs.Histo.observe i.h_check seconds);
       });
  Repository.Journal.set_observer
    (Some
       (fun ~op ~seconds ->
         Obs.Trace.add_phase_current i.tracer "journal" seconds;
         Obs.Histo.observe
           (if op = "append" then i.h_journal_append else i.h_journal_rewrite)
           seconds))

let open_service ?(config = default_config) ?io ?(obs = Obs.create ()) dir =
  let i = make_instruments obs in
  let io = match io with Some io -> io | None -> Io.unix in
  let io =
    if not (Obs.enabled obs) then io
    else
      Io.observed ~now:config.now
        ~record:(fun op seconds ->
          Obs.Histo.observe
            (match op with
            | "fsync" -> i.h_io_fsync
            | "append" -> i.h_io_append
            | "write" -> i.h_io_write
            | _ -> i.h_io_rename)
            seconds)
        io
  in
  if Obs.enabled obs then install_hooks i ~now:config.now;
  Result.map
    (fun repo ->
      {
        repo;
        config;
        locks = Locks.create ();
        sessions = Hashtbl.create 8;
        breakers = Hashtbl.create 8;
        mu = Mutex.create ();
        inflight = Atomic.make 0;
        conn_ids = Atomic.make 0;
        stopping = false;
        rand = Random.State.make [| 0x5ca1ab1e |];
        i;
      })
    (Repo.open_dir ~io dir)

let obs t = t.i.obs

(* The global hooks are last-writer-wins, so in a multi-service process
   (tests, the overhead benchmark) the most recently opened enabled service
   owns them.  These let such a process hand them around explicitly. *)
let rearm_hooks t =
  if Obs.enabled t.i.obs then install_hooks t.i ~now:t.config.now

let disarm_hooks () =
  Core.Session.set_hooks None;
  Repository.Journal.set_observer None

let connect t = { id = Atomic.fetch_and_add t.conn_ids 1; variant = None }

let session_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.mu;
  n

(* --- small helpers -------------------------------------------------------- *)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let breaker_of t variant =
  locked t (fun () ->
      match Hashtbl.find_opt t.breakers variant with
      | Some b -> b
      | None ->
          let b =
            Breaker.create ~threshold:t.config.breaker_threshold
              ~cooldown:t.config.breaker_cooldown ()
          in
          Hashtbl.add t.breakers variant b;
          b)

let shed t (failure : Locks.failure) =
  match failure with
  | Locks.Busy n ->
      Protocol.busy ~retry_after_ms:t.config.retry_after_ms
        (Printf.sprintf "%d request(s) queued on this variant" n)
  | Locks.Timed_out ->
      Protocol.busy ~retry_after_ms:t.config.retry_after_ms
        "deadline exceeded waiting for the variant"

let with_variant t variant f =
  let i = t.i in
  let deadline = t.config.now () +. t.config.request_deadline in
  let arrived = t.config.now () in
  let observe =
    if not (Obs.enabled i.obs) then None
    else
      Some
        (fun ~waited ~held ~depth ->
          Obs.Histo.observe i.h_lock_wait waited;
          Obs.Histo.observe i.h_lock_hold held;
          Obs.Histo.observe i.h_queue_depth (float_of_int depth))
  in
  (* the wait phase is stamped on entry (not from [observe], which fires
     after release) so trace phases read in execution order *)
  let g () =
    if Obs.enabled i.obs then
      Obs.Trace.add_phase_current i.tracer "wait" (t.config.now () -. arrived);
    f ()
  in
  match
    Locks.with_key ~max_waiters:t.config.max_waiters ~sleep:t.config.sleep
      ~now:t.config.now ?observe t.locks variant ~deadline g
  with
  | Ok r -> r
  | Error failure ->
      (match failure with
      | Locks.Busy _ -> Obs.Metrics.incr i.c_shed_queue
      | Locks.Timed_out -> Obs.Metrics.incr i.c_shed_deadline);
      shed t failure

(* Free a session's cross-process lock and drop it from the table.  Caller
   holds the variant lock; never snapshots. *)
let evict t (s : session) =
  locked t (fun () -> Hashtbl.remove t.sessions s.variant);
  Option.iter Locks.unlock_file s.flock;
  s.flock <- None

(* Snapshot a dirty session through the regular Store path. *)
let snapshot t (s : session) =
  if not s.dirty then Ok ()
  else
    match
      Retry.with_retries ~rand:t.rand ~sleep:t.config.sleep
        ~on_retry:(fun ~attempt:_ ~delay:_ -> Obs.Metrics.incr t.i.c_retries)
        t.config.retry
        (fun () -> Store.save_session s.store s.state.Engine.session)
    with
    | Ok () ->
        s.dirty <- false;
        Ok ()
    | Error e -> Error (Printexc.to_string e)
    | exception e ->
        (* e.g. an injected crash: atomic whole-file writes keep every
           artifact whole, and the journal remains authoritative *)
        Error (Printexc.to_string e)

(* --- journal persistence -------------------------------------------------- *)

let step_ops session =
  List.map
    (fun (st : Core.Session.step) -> (st.Core.Session.st_kind, st.st_op))
    (Core.Session.log session)

let step_eq (k1, o1) (k2, o2) = k1 = k2 && Core.Modop.equal o1 o2

let rec common_prefix n a b =
  match (a, b) with
  | x :: a', y :: b' when step_eq x y -> common_prefix (n + 1) a' b'
  | _ -> n

let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r

(** The journal records turning [before]'s log into [after]'s: undos for
    the popped tail, then the fresh steps.  Ops only push/pop at the tail,
    so the common prefix characterizes the delta exactly. *)
let journal_delta ~before ~after =
  let b = step_ops before and a = step_ops after in
  let p = common_prefix 0 b a in
  let undos = List.length b - p in
  (undos, drop p a)

(* Append the delta, each record through the retry policy; durable (fsync'd
   per record) on [Ok].  Any failure leaves the on-disk journal in an
   unknown (possibly torn) state: the caller must evict the session so the
   next open reloads through recovery. *)
let persist_delta t s ~before ~after =
  let undos, adds = journal_delta ~before ~after in
  let append thunk =
    match
      Retry.with_retries ~rand:t.rand ~sleep:t.config.sleep
        ~on_retry:(fun ~attempt:_ ~delay:_ -> Obs.Metrics.incr t.i.c_retries)
        t.config.retry thunk
    with
    | Ok () -> Ok ()
    | Error e -> Error e
  in
  let rec undo_loop n =
    if n = 0 then Ok ()
    else
      match append (fun () -> Store.append_undo s.store) with
      | Ok () -> undo_loop (n - 1)
      | Error _ as e -> e
  in
  let rec add_loop = function
    | [] -> Ok ()
    | step :: rest -> (
        match append (fun () -> Store.append_step s.store step) with
        | Ok () -> add_loop rest
        | Error _ as e -> e)
  in
  if undos = 0 && adds = [] then Ok 0
  else
    match undo_loop undos with
    | Error e -> Error e
    | Ok () -> (
        match add_loop adds with
        | Error e -> Error e
        | Ok () -> Ok (undos + List.length adds))

(* --- command classification ----------------------------------------------- *)

type class_ = Read_only | Mutating | Refused of string

let classify line =
  match Designer.Command.parse line with
  | exception Designer.Command.Bad_command _ ->
      (* the engine will produce the error feedback *)
      Read_only
  | Apply _ | Undo | Redo | Alias _ | Unalias _ -> Mutating
  | Source _ -> Refused "source is not available in server sessions"
  | Save _ -> Refused "save is not available in server sessions; @close snapshots"
  | Quit -> Refused "quit is not available in server sessions; use @close or @quit"
  | Concepts | Focus _ | Show _ | Odl _ | Print_schema | Summary | Preview _
  | Plan _ | Check | Quality | Todo | Load_data _ | Migrate_data | Query _
  | Mapping | Impact | Custom _ | Explain _ | List_aliases | Log | Rules
  | Help ->
      Read_only

(* --- session lifecycle ---------------------------------------------------- *)

let find_session t variant =
  locked t (fun () -> Hashtbl.find_opt t.sessions variant)

let attach t (s : session) (conn : conn) =
  locked t (fun () -> Hashtbl.replace s.conns conn.id ());
  conn.variant <- Some s.variant;
  s.last_used <- t.config.now ()

(* Load a variant from disk into a fresh shared session.  Caller holds the
   variant lock. *)
let load_session t variant =
  let flock =
    if t.config.use_file_locks then
      let path =
        Filename.concat (Repo.variant_dir t.repo variant) Locks.lock_file_name
      in
      match Locks.lock_file path with
      | Ok l -> Ok (Some l)
      | Error m -> Error ("variant is locked by another process: " ^ m)
    else Ok None
  in
  match flock with
  | Error _ as e -> e
  | Ok flock -> (
      match Repo.open_variant t.repo variant with
      | Error e ->
          Option.iter Locks.unlock_file flock;
          Error (Repo.open_error_to_string e)
      | exception e ->
          (* an injected crash while reading/repairing; nothing attached *)
          Option.iter Locks.unlock_file flock;
          Error ("could not load variant: " ^ Printexc.to_string e)
      | Ok session -> (
          match Repo.variant_store t.repo variant with
          | store ->
              let s =
                {
                  variant;
                  store;
                  conns = Hashtbl.create 4;
                  state = Engine.start session;
                  dirty = false;
                  last_used = t.config.now ();
                  flock;
                }
              in
              locked t (fun () -> Hashtbl.replace t.sessions variant s);
              Obs.Metrics.incr t.i.c_opened;
              Ok s
          | exception e ->
              Option.iter Locks.unlock_file flock;
              Error ("could not open variant store: " ^ Printexc.to_string e)))

let do_open t conn variant ~create =
  match conn.variant with
  | Some v when v = variant -> Protocol.ok [ "already attached to " ^ variant ]
  | Some v -> Protocol.err ("already attached to " ^ v ^ "; @close first")
  | None ->
      with_variant t variant (fun () ->
          let created =
            if not create then Ok false
            else
              match Repo.create_variant t.repo variant with
              | Ok _ -> Ok true
              | Error m -> Error m
              | exception e ->
                  Error ("could not create variant: " ^ Printexc.to_string e)
          in
          match created with
          | Error m -> Protocol.err m
          | Ok created -> (
              match find_session t variant with
              | Some s ->
                  attach t s conn;
                  Protocol.ok
                    [
                      Printf.sprintf "attached to %s (%d client(s))" variant
                        (Hashtbl.length s.conns);
                    ]
              | None -> (
                  if not (Repo.mem_variant t.repo variant) then
                    Protocol.err ("no variant named " ^ variant)
                  else
                    match load_session t variant with
                    | Error m -> Protocol.err m
                    | Ok s ->
                        attach t s conn;
                        Protocol.ok
                          [
                            (if created then "created and attached to " ^ variant
                             else "attached to " ^ variant);
                          ])))

(* Detach [conn]; the last detach snapshots and frees the session.  Caller
   holds the variant lock. *)
let release t (s : session) (conn : conn) ~snapshot_on_free =
  locked t (fun () -> Hashtbl.remove s.conns conn.id);
  conn.variant <- None;
  if locked t (fun () -> Hashtbl.length s.conns) = 0 then begin
    let warn =
      if snapshot_on_free then
        match snapshot t s with
        | Ok () -> []
        | Error m -> [ "snapshot failed (journal remains authoritative): " ^ m ]
      else []
    in
    evict t s;
    warn
  end
  else []

let do_close t conn =
  match conn.variant with
  | None -> Protocol.err "no open session"
  | Some variant ->
      with_variant t variant (fun () ->
          match find_session t variant with
          | None ->
              (* reaped underneath us; nothing left to release *)
              conn.variant <- None;
              Protocol.ok [ "session was already closed (idle)" ]
          | Some s ->
              let warn = release t s conn ~snapshot_on_free:true in
              Protocol.ok (warn @ [ "closed" ]))

(* --- request execution ---------------------------------------------------- *)

let feedback_body feedback = List.map Designer.Feedback.to_string feedback

let do_command t conn line =
  match conn.variant with
  | None -> Protocol.err "no open session; use: @open <variant>"
  | Some variant -> (
      match classify line with
      | Refused m -> Protocol.err m
      | class_ ->
          with_variant t variant (fun () ->
              match find_session t variant with
              | None ->
                  conn.variant <- None;
                  Protocol.err "session expired (idle); use @open to resume"
              | Some s ->
                  let i = t.i in
                  let now = t.config.now () in
                  let breaker = breaker_of t variant in
                  if class_ = Mutating && not (Breaker.allows breaker ~now)
                  then begin
                    Obs.Metrics.incr i.c_breaker_rejected;
                    Protocol.err
                      ("variant is read-only: circuit " ^ Breaker.describe breaker)
                  end
                  else
                    (* the on-disk journal state is unknown after a killed
                       worker (chaos hook) or a crash mid-append: degrade
                       the variant and evict the session, so the next @open
                       reloads through recovery *)
                    let degrade_and_evict why =
                      let was_open = Breaker.is_open breaker in
                      Breaker.record_failure breaker ~now:(t.config.now ());
                      if Breaker.is_open breaker && not was_open then
                        Obs.Metrics.incr i.c_breaker_trips;
                      Obs.Metrics.incr i.c_evicted;
                      Hashtbl.reset s.conns;
                      evict t s;
                      conn.variant <- None;
                      Protocol.err why
                    in
                    let run () =
                      (match t.config.chaos_hook with
                      | Some hook -> hook ~variant ~line
                      | None -> ());
                      let before = s.state in
                      let t_apply = t.config.now () in
                      let after, feedback = Engine.exec_line before line in
                      let apply_seconds = t.config.now () -. t_apply in
                      Obs.Histo.observe i.h_apply apply_seconds;
                      Obs.Trace.add_phase_current i.tracer "apply" apply_seconds;
                      let persisted =
                        persist_delta t s ~before:before.Engine.session
                          ~after:after.Engine.session
                      in
                      s.last_used <- t.config.now ();
                      match persisted with
                      | Ok n ->
                          if n > 0 then
                            Breaker.record_success breaker
                              ~now:(t.config.now ());
                          s.state <- after;
                          if class_ = Mutating || n > 0 then s.dirty <- true;
                          let t_respond = t.config.now () in
                          let body = feedback_body feedback in
                          let respond_seconds = t.config.now () -. t_respond in
                          Obs.Histo.observe i.h_respond respond_seconds;
                          Obs.Trace.add_phase_current i.tracer "respond"
                            respond_seconds;
                          if List.exists Designer.Feedback.is_error feedback
                          then Protocol.err ~body "command rejected"
                          else Protocol.ok body
                      | Error e ->
                          degrade_and_evict
                            ("persistence failed; operation not accepted; \
                              session evicted (reopen with @open): "
                            ^ Printexc.to_string e)
                    in
                    (match run () with
                    | response -> response
                    | exception e ->
                        degrade_and_evict
                          ("request died mid-flight; session evicted: "
                          ^ Printexc.to_string e))))

let disconnect t conn =
  match conn.variant with
  | None -> ()
  | Some variant ->
      with_variant t variant (fun () ->
          (match find_session t variant with
          | None -> conn.variant <- None
          | Some s -> ignore (release t s conn ~snapshot_on_free:true));
          Protocol.ok [])
      |> ignore

(* --- the @stats snapshot --------------------------------------------------- *)

(** Render the observability snapshot.  Dynamic state that has no standing
    instrument — per-variant breaker history, attached sessions — rides
    along as notes; the sessions/inflight gauges are refreshed here, at
    read time, rather than maintained on every transition. *)
let do_stats t fmt =
  let i = t.i in
  if not (Obs.enabled i.obs) then
    Protocol.err "observability is disabled (server started with --no-obs)"
  else begin
    Obs.Metrics.set i.g_inflight (Atomic.get t.inflight);
    let now = t.config.now () in
    let notes =
      locked t (fun () ->
          Obs.Metrics.set i.g_sessions (Hashtbl.length t.sessions);
          let sessions =
            Hashtbl.fold
              (fun v s acc ->
                ( "session." ^ v,
                  Printf.sprintf "%d client(s)%s" (Hashtbl.length s.conns)
                    (if s.dirty then ", dirty" else "") )
                :: acc)
              t.sessions []
          in
          let breakers =
            Hashtbl.fold
              (fun v b acc ->
                let in_state =
                  match Breaker.time_in_state b ~now with
                  | Some s -> Printf.sprintf " (%.1fs in state)" s
                  | None -> ""
                in
                ("breaker." ^ v, Breaker.describe b ^ in_state) :: acc)
              t.breakers []
          in
          List.sort compare (sessions @ breakers))
    in
    let sn = Obs.snapshot ~notes i.obs in
    let text =
      match fmt with
      | `Text -> Obs.Export.to_text sn
      | `Json -> Obs.Export.to_json sn
    in
    Protocol.ok [ String.trim text ]
  end

let request t conn line =
  if t.stopping then Protocol.err "server is shutting down"
  else begin
    Atomic.incr t.inflight;
    Fun.protect
      ~finally:(fun () -> Atomic.decr t.inflight)
      (fun () ->
        let i = t.i in
        Obs.Metrics.incr i.c_requests;
        let arrived = t.config.now () in
        let label =
          let line = String.trim line in
          if String.length line > 0 && line.[0] = '@' then
            match String.index_opt line ' ' with
            | None -> line
            | Some j -> String.sub line 0 j
          else "command"
        in
        let sp = Obs.Trace.start i.tracer ~label ~detail:(String.trim line) () in
        let response =
          match
            match
              Obs.Trace.phase i.tracer sp "parse" (fun () ->
                  Protocol.parse_request line)
            with
            | Error m -> Protocol.err m
            | Ok List -> Protocol.ok (Repo.variant_names t.repo)
            | Ok Ping -> Protocol.ok [ "pong" ]
            | Ok (Stats fmt) -> do_stats t fmt
            | Ok (Open v) -> do_open t conn v ~create:false
            | Ok (New v) -> do_open t conn v ~create:true
            | Ok Close -> do_close t conn
            | Ok Quit ->
                disconnect t conn;
                Protocol.ok [ "bye" ]
            | Ok (Command c) -> do_command t conn c
          with
          | response -> response
          (* no request may kill its worker thread: locks were released on
             the way out (Fun.protect), the session was evicted if its disk
             state became unknown — surface the rest as an error response *)
          | exception e -> Protocol.err ("internal: " ^ Printexc.to_string e)
        in
        (match response.Protocol.status with
        | Protocol.Ok -> Obs.Metrics.incr i.c_ok
        | Protocol.Err _ -> Obs.Metrics.incr i.c_err
        | Protocol.Busy _ -> () (* already counted at the shed site *));
        Obs.Trace.finish i.tracer sp
          ~status:
            (match response.Protocol.status with
            | Protocol.Ok -> "ok"
            | Protocol.Err _ -> "err"
            | Protocol.Busy _ -> "busy");
        Obs.Histo.observe i.h_request (t.config.now () -. arrived);
        response)
  end

(* --- reaper and shutdown -------------------------------------------------- *)

(** Snapshot and free sessions idle longer than [idle_timeout]; attached
    connections learn on their next request.  Returns how many were
    reaped.  Runs opportunistically: a variant busy right now is skipped
    (it is not idle). *)
let reap_idle t =
  let now = t.config.now () in
  let candidates =
    locked t (fun () ->
        Hashtbl.fold
          (fun v s acc ->
            if now -. s.last_used > t.config.idle_timeout then (v, s) :: acc
            else acc)
          t.sessions [])
  in
  List.fold_left
    (fun reaped (variant, _) ->
      let deadline = t.config.now () +. 0.05 in
      match
        Locks.with_key ~max_waiters:1 ~sleep:t.config.sleep ~now:t.config.now
          t.locks variant ~deadline (fun () ->
            match find_session t variant with
            | Some s when t.config.now () -. s.last_used > t.config.idle_timeout
              ->
                (match snapshot t s with Ok () | Error _ -> ());
                Hashtbl.reset s.conns;
                evict t s;
                Obs.Metrics.incr t.i.c_reaped;
                true
            | _ -> false)
      with
      | Ok true -> reaped + 1
      | Ok false | Error _ -> reaped)
    0 candidates

(** Drain in-flight requests (bounded by [drain_timeout]), snapshot every
    dirty session, release all locks.  Further requests get [!err].
    Returns the sessions that failed to snapshot (their journals remain
    authoritative). *)
let shutdown t =
  t.stopping <- true;
  let give_up = t.config.now () +. t.config.drain_timeout in
  while Atomic.get t.inflight > 0 && t.config.now () < give_up do
    t.config.sleep 0.002
  done;
  let all =
    locked t (fun () -> Hashtbl.fold (fun v s acc -> (v, s) :: acc) t.sessions [])
  in
  List.filter_map
    (fun (variant, s) ->
      let deadline = t.config.now () +. 1.0 in
      let res =
        Locks.with_key ~max_waiters:1 ~sleep:t.config.sleep ~now:t.config.now
          t.locks variant ~deadline (fun () ->
            let r = snapshot t s in
            Hashtbl.reset s.conns;
            evict t s;
            r)
      in
      match res with
      | Ok (Ok ()) -> None
      | Ok (Error m) -> Some (variant, m)
      | Error _ ->
          (* still busy past the drain budget: free without snapshot; the
             journal holds every acknowledged op *)
          (match find_session t variant with Some s -> evict t s | None -> ());
          Some (variant, "busy at shutdown; journal remains authoritative"))
    all
