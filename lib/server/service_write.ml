(** The write path: lock → apply → check → enqueue → (await fsync) →
    publish → ack, one writer per variant.

    Every command that may change state runs here, as does a read-class
    command falling back from the lock-free path (nothing published, or
    [lockfree_reads = false]).  Since group commit the pipeline has two
    phases:

    {b Phase 1 — under the variant's writer lock} ({!Service_types.try_writer}):
    refuse mutations while the variant's breaker is open, execute on the
    engine, encode the journal delta (undo records, then fresh steps), and
    {!Group_commit.submit} the bytes to the journal's lane, capturing the
    new engine state in the ticket's [on_durable] hook.  The session
    commits to the new state {e before the lock is released} — per-variant
    engine order, journal order, and publish order are all the submission
    order.

    {b Phase 2 — off the lock}: block on the ticket.  The flusher thread
    batches the lane, pays {e one} fsync for the whole batch, then runs
    each record's [on_durable] in order — which is where the new state is
    published for lock-free readers — and settles the tickets.  Only then
    is the command acknowledged, with the publication stamp as [#version]:
    ack still implies durability {e and} publish-before-ack still gives a
    connection read-your-writes, exactly as in the per-record-fsync path
    (kept verbatim for [group_commit = false]).

    A flush failure fails the whole batch: every waiter reacquires the
    writer lock to degrade the variant's breaker and evict the session —
    which also {e retracts} the published snapshot — and the lane stays
    poisoned until the next [@open] reloads the journal through recovery.
    A mid-flight death in phase 1 (chaos hook, crash during encode)
    degrades and evicts under the lock it already holds, as before. *)

open Service_types

(** A command whose records were enqueued in phase 1; phase 2 owns it. *)
type staged = {
  st_session : session;
  st_variant : string;
  st_conn : conn;
  st_ticket : Group_commit.ticket;
  st_version : int ref;  (** written by [on_durable] on the flusher *)
  st_after : Engine.state;  (** the state the flusher will publish *)
  st_feedback : Designer.Feedback.t list;
  st_records : int;  (** journal records in the delta *)
}

let persistence_failed e =
  "persistence failed; operation not accepted; session evicted (reopen \
   with @open): " ^ Printexc.to_string e

(* Degrade the breaker (already thread-safe) and evict the session if it
   is still the one we staged against.  Runs under the variant writer
   lock when [locked] is true; phase 2 reacquires the lock around it. *)
let degrade t (st : staged) =
  let i = t.i in
  let breaker = breaker_of t st.st_variant in
  let was_open = Breaker.is_open breaker in
  Breaker.record_failure breaker ~now:(t.config.now ());
  if Breaker.is_open breaker && not was_open then
    Obs.Metrics.incr i.c_breaker_trips

let evict_staged t (st : staged) =
  match find_session t st.st_variant with
  | Some s when s == st.st_session ->
      Obs.Metrics.incr t.i.c_evicted;
      Hashtbl.reset s.conns;
      evict t s
  | Some _ | None -> () (* another waiter of the failed batch got here first *)

(* Phase-2 failure: the batch fsync failed (or the flusher refused the
   record).  Reacquire the writer lock to evict — phase 1 released it —
   then answer [!err].  If the variant is so contended the lock cannot be
   had by the deadline, evict anyway: serving a session whose disk state
   is unknown is strictly worse than the benign race (a writer admitted
   meanwhile fails its own enqueue on the poisoned lane and lands here
   too). *)
let fail_staged t (st : staged) e =
  degrade t st;
  let deadline = t.config.now () +. t.config.request_deadline in
  (match
     Locks.with_key ~max_waiters:max_int ~sleep:t.config.sleep
       ~now:t.config.now t.locks st.st_variant ~deadline (fun () ->
         evict_staged t st)
   with
  | Ok () -> ()
  | Error _ -> evict_staged t st);
  st.st_conn.variant <- None;
  Protocol.err (persistence_failed e)

(* Phase 2: wait out the batch fsync.  The stall gauge tracks how many
   writers are parked on tickets right now (set from a shared atomic, so
   concurrent updates may briefly show a stale count — it is a gauge, not
   an invariant). *)
let complete t (st : staged) =
  let i = t.i in
  Obs.Metrics.set i.g_commit_stalled
    (Atomic.fetch_and_add t.commit_waiting 1 + 1);
  let settled = Group_commit.await st.st_ticket in
  Obs.Metrics.set i.g_commit_stalled
    (Atomic.fetch_and_add t.commit_waiting (-1) - 1);
  match settled with
  | Error e -> fail_staged t st e
  | Ok () ->
      if st.st_records > 0 then
        Breaker.record_success
          (breaker_of t st.st_variant)
          ~now:(t.config.now ());
      (* refresh the materialized query view on the writer's own thread —
         off the variant lock (phase 1 released it) and off the flusher
         (whose batches must not wait on view maintenance) *)
      advance_view t st.st_variant st.st_after !(st.st_version);
      let t_respond = t.config.now () in
      let body = feedback_body st.st_feedback in
      let respond_seconds = t.config.now () -. t_respond in
      Obs.Histo.observe i.h_respond respond_seconds;
      Obs.Trace.add_phase_current i.tracer "respond" respond_seconds;
      let version = !(st.st_version) in
      if List.exists Designer.Feedback.is_error st.st_feedback then
        Protocol.err ~body ~version "command rejected"
      else Protocol.ok ~version body

(** The generic single-writer pipeline: run [exec] on the variant's engine
    state under its writer lock, journal the session delta, publish, and
    acknowledge only once durable.  [exec] is the only moving part —
    {!do_command} passes {!Engine.exec} on a designer command, and the
    merge path ({!Service_branch}) passes the op-log rebase; everything
    else (breaker, chaos hook, group commit vs per-command fsync, publish
    order, eviction on failure) is this one pipeline.

    [load_if_absent] loads the session from disk first when nothing is live
    (merge targets a variant no connection has open); the default answers
    "session expired" like a designer command does. *)
let execute ?(load_if_absent = false) t (conn : conn) variant ~mutating ~exec
    ~line =
  let phase1 =
    try_writer t variant (fun () ->
        let found =
          match find_session t variant with
          | Some s -> Ok s
          | None when load_if_absent -> (
              (* mirror the [@open] load: drain every lane before the
                 journal replay may rewrite a torn tail, reset after *)
              (match t.commit with
              | Some gc -> Group_commit.drain_all gc
              | None -> ());
              match Service_admin.load_session t variant with
              | Error m -> Error (Protocol.err m)
              | Ok s ->
                  (match t.commit with
                  | Some gc -> Group_commit.reset gc ~path:(log_path s)
                  | None -> ());
                  Ok s)
          | None ->
              conn.variant <- None;
              Error
                (Protocol.err "session expired (idle); use @open to resume")
        in
        match found with
        | Error response -> `Respond response
        | Ok s ->
            let i = t.i in
            let now = t.config.now () in
            let breaker = breaker_of t variant in
            if mutating && not (Breaker.allows breaker ~now) then begin
              Obs.Metrics.incr i.c_breaker_rejected;
              `Respond
                (Protocol.err
                   ("variant is read-only: circuit " ^ Breaker.describe breaker))
            end
            else
              (* the on-disk journal state is unknown after a killed worker
                 (chaos hook) or a crash mid-append: degrade the variant and
                 evict the session, so the next @open reloads through
                 recovery *)
              let degrade_and_evict why =
                let was_open = Breaker.is_open breaker in
                Breaker.record_failure breaker ~now:(t.config.now ());
                if Breaker.is_open breaker && not was_open then
                  Obs.Metrics.incr i.c_breaker_trips;
                Obs.Metrics.incr i.c_evicted;
                Hashtbl.reset s.conns;
                evict t s;
                conn.variant <- None;
                Protocol.err why
              in
              let respond_now ~version feedback =
                let t_respond = t.config.now () in
                let body = feedback_body feedback in
                let respond_seconds = t.config.now () -. t_respond in
                Obs.Histo.observe i.h_respond respond_seconds;
                Obs.Trace.add_phase_current i.tracer "respond" respond_seconds;
                if List.exists Designer.Feedback.is_error feedback then
                  Protocol.err ~body ~version "command rejected"
                else Protocol.ok ~version body
              in
              let run () =
                (match t.config.chaos_hook with
                | Some hook -> hook ~variant ~line
                | None -> ());
                let before = s.state in
                let t_apply = t.config.now () in
                let after, feedback = exec before in
                let apply_seconds = t.config.now () -. t_apply in
                Obs.Histo.observe i.h_apply apply_seconds;
                Obs.Trace.add_phase_current i.tracer "apply" apply_seconds;
                let n, data =
                  encoded_delta ~before:before.Engine.session
                    ~after:after.Engine.session
                in
                s.last_used <- t.config.now ();
                match t.commit with
                | Some gc
                  when n > 0
                       || after != before
                          && not (Group_commit.quiescent gc ~path:(log_path s))
                  ->
                    (* Group-commit path.  A changed state with an empty
                       delta (e.g. [focus]) still submits — an empty record
                       — when the lane is busy, so its publish is ordered
                       behind the pending records' publishes. *)
                    let version = ref (Publish.seq t.pub variant) in
                    let ticket =
                      Group_commit.submit gc ~path:(log_path s)
                        ~on_durable:(fun () ->
                          (* runs on the flusher in submission order, so
                             the hub receives records in stamp order *)
                          let stamp = Publish.publish t.pub variant after in
                          version := stamp;
                          ship t ~variant ~stamp ~data)
                        data
                    in
                    s.state <- after;
                    if mutating || n > 0 then s.dirty <- true;
                    `Staged
                      {
                        st_session = s;
                        st_variant = variant;
                        st_conn = conn;
                        st_ticket = ticket;
                        st_version = version;
                        st_after = after;
                        st_feedback = feedback;
                        st_records = n;
                      }
                | _ -> (
                    (* per-command-fsync baseline ([group_commit = false]),
                       and the no-delta fast path on a quiescent lane: the
                       same pre-encoded bytes the group-commit path
                       submits, appended and fsync'd here and now *)
                    let persisted =
                      if n = 0 then Ok ()
                      else append_data t s ~data
                    in
                    match persisted with
                    | Ok () ->
                        if n > 0 then
                          Breaker.record_success breaker ~now:(t.config.now ());
                        s.state <- after;
                        if mutating || n > 0 then s.dirty <- true;
                        (* publish-before-ack; an unchanged state (read-class
                           fallback, rejected op) keeps the current stamp *)
                        let version =
                          if after != before then begin
                            let stamp = publish t s in
                            (* the records are durable (fsync'd above);
                               [data] may be empty for a state-only change
                               ([focus]) — shipped anyway so follower
                               stamps track the leader's *)
                            ship t ~variant ~stamp ~data;
                            advance_view t variant after stamp;
                            stamp
                          end
                          else Publish.seq t.pub variant
                        in
                        `Respond (respond_now ~version feedback)
                    | Error e ->
                        `Respond (degrade_and_evict (persistence_failed e)))
              in
              (match run () with
              | r -> r
              | exception e ->
                  `Respond
                    (degrade_and_evict
                       ("request died mid-flight; session evicted: "
                       ^ Printexc.to_string e))))
  in
  match phase1 with
  | Error failure -> shed t failure
  | Ok (`Respond response) -> response
  | Ok (`Staged st) -> complete t st

let do_command t (conn : conn) variant (cmd : Designer.Command.t) ~line =
  execute t conn variant ~mutating:(Designer.Command.mutates cmd)
    ~exec:(fun before -> Engine.exec before cmd)
    ~line
