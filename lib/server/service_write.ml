(** The write path: lock → apply → check → journal → publish, one writer
    per variant.

    Every command that may change state runs here, as does a read-class
    command falling back from the lock-free path (nothing published, or
    [lockfree_reads = false]).  The pipeline for an accepted command:

    + acquire the variant's writer lock ({!Service_types.with_writer});
    + refuse mutations while the variant's breaker is open;
    + execute on the engine;
    + journal the delta (undo records, then fresh steps), each record
      fsync'd through the retry policy — only a durable delta is
      acknowledged;
    + commit the new state to the session {e and publish it} for lock-free
      readers (publish-before-ack is what gives a connection
      read-your-writes: by the time it sees [!ok] the snapshot readers
      serve is at least as new as its write);
    + answer with the publication stamp as [#version].

    Any persistence failure or mid-flight death degrades the variant's
    breaker and evicts the session — which also {e retracts} the published
    snapshot and flips the epoch, so readers fall back and reattach — and
    the next [@open] reloads from the journal through recovery. *)

open Service_types

let do_command t (conn : conn) variant (cmd : Designer.Command.t) ~line =
  with_writer t variant (fun () ->
      match find_session t variant with
      | None ->
          conn.variant <- None;
          Protocol.err "session expired (idle); use @open to resume"
      | Some s ->
          let i = t.i in
          let now = t.config.now () in
          let breaker = breaker_of t variant in
          let mutating = Designer.Command.mutates cmd in
          if mutating && not (Breaker.allows breaker ~now) then begin
            Obs.Metrics.incr i.c_breaker_rejected;
            Protocol.err
              ("variant is read-only: circuit " ^ Breaker.describe breaker)
          end
          else
            (* the on-disk journal state is unknown after a killed worker
               (chaos hook) or a crash mid-append: degrade the variant and
               evict the session, so the next @open reloads through
               recovery *)
            let degrade_and_evict why =
              let was_open = Breaker.is_open breaker in
              Breaker.record_failure breaker ~now:(t.config.now ());
              if Breaker.is_open breaker && not was_open then
                Obs.Metrics.incr i.c_breaker_trips;
              Obs.Metrics.incr i.c_evicted;
              Hashtbl.reset s.conns;
              evict t s;
              conn.variant <- None;
              Protocol.err why
            in
            let run () =
              (match t.config.chaos_hook with
              | Some hook -> hook ~variant ~line
              | None -> ());
              let before = s.state in
              let t_apply = t.config.now () in
              let after, feedback = Engine.exec before cmd in
              let apply_seconds = t.config.now () -. t_apply in
              Obs.Histo.observe i.h_apply apply_seconds;
              Obs.Trace.add_phase_current i.tracer "apply" apply_seconds;
              let persisted =
                persist_delta t s ~before:before.Engine.session
                  ~after:after.Engine.session
              in
              s.last_used <- t.config.now ();
              match persisted with
              | Ok n ->
                  if n > 0 then
                    Breaker.record_success breaker ~now:(t.config.now ());
                  s.state <- after;
                  if mutating || n > 0 then s.dirty <- true;
                  (* publish-before-ack; an unchanged state (read-class
                     fallback, rejected op) keeps the current stamp *)
                  let version =
                    if after != before then publish t s
                    else Publish.seq t.pub variant
                  in
                  let t_respond = t.config.now () in
                  let body = feedback_body feedback in
                  let respond_seconds = t.config.now () -. t_respond in
                  Obs.Histo.observe i.h_respond respond_seconds;
                  Obs.Trace.add_phase_current i.tracer "respond" respond_seconds;
                  if List.exists Designer.Feedback.is_error feedback then
                    Protocol.err ~body ~version "command rejected"
                  else Protocol.ok ~version body
              | Error e ->
                  degrade_and_evict
                    ("persistence failed; operation not accepted; session \
                      evicted (reopen with @open): " ^ Printexc.to_string e)
            in
            (match run () with
            | response -> response
            | exception e ->
                degrade_and_evict
                  ("request died mid-flight; session evicted: "
                  ^ Printexc.to_string e)))
