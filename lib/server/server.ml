(** Socket front end for {!Service} — Unix-domain or TCP
    ({!Protocol.address}).

    Thread-per-connection over a listening socket: the accept loop never
    does repository work (admission, shedding, and serialization live in
    {!Service}), so a slow or hung client can never stall accepts.  A
    background reaper frees idle sessions.  SIGTERM/SIGINT request a
    graceful stop: the listener closes, in-flight requests drain, every
    dirty session is snapshotted, locks are released. *)

(* [server.ml] shares the library's name, so it is the library interface:
   re-export the inner modules for external users (bin, tests, bench). *)
module Retry = Retry
module Breaker = Breaker
module Locks = Locks
module Group_commit = Group_commit
module Protocol = Protocol
module Publish = Publish
module Service = Service
module Transport = Transport
module Router = Router
module Shard_pool = Shard_pool
module Replication = Replication
module Io = Repository.Io

type t = {
  service : Service.t;
  listen : Protocol.address;
  listen_fd : Unix.file_descr;
  stop_requested : bool Atomic.t;
  accepting : bool Atomic.t;
  hub : Replication.hub option;
      (** present when this server replicates; [@follow] connections are
          handed to it instead of the request loop *)
}

(** Put an already open service on a socket — the follower path, where
    {!Replication.Follower.create} must open the service itself (it
    bootstraps the repository before the directory is servable). *)
let of_service ?(backlog = 64) ?hub ~listen service =
  (* [Transport.bind] probes a Unix path first: a stale socket file
     from a kill -9'd server is reclaimed, a live listener (or a
     non-socket file) is refused instead of silently stolen. *)
  match Transport.bind ~backlog listen with
  | Error m -> Error m
  | Ok fd ->
      Ok
        {
          service;
          listen = Transport.bound_address fd listen;
          listen_fd = fd;
          stop_requested = Atomic.make false;
          accepting = Atomic.make false;
          hub;
        }

let create ?(config = Service.default_config) ?(backlog = 64) ?obs ?io
    ?(replicate = false) ?repl_ring ~listen dir =
  match Service.open_service ~config ?io ?obs dir with
  | Error m -> Error m
  | Ok service ->
      let hub =
        if replicate then Some (Replication.hub ?ring:repl_ring service)
        else None
      in
      of_service ~backlog ?hub ~listen service

let service t = t.service

let listen_address t = t.listen

(** Ask the accept loop to wind down; safe from a signal handler or any
    thread.  Closing the listener unblocks a pending [accept]. *)
let stop t =
  if not (Atomic.exchange t.stop_requested true) then
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let install_signal_handlers t =
  let handle _ = stop t in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle handle)
   with Invalid_argument _ | Sys_error _ -> ());
  (* a client vanishing mid-write must be an EPIPE error, not death *)
  Transport.ignore_sigpipe ()

(* --- per-connection worker ------------------------------------------------ *)

let handle_client t fd =
  let conn = Service.connect t.service in
  let finish () =
    Service.disconnect t.service conn;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (try
     let reader = Transport.reader fd in
     Transport.write_all fd
       (Protocol.to_string (Protocol.ok [ "swsd design service" ]));
     let rec loop () =
       match Transport.read_line reader with
       | None -> ()  (* client went away; disconnect snapshots for it *)
       | Some line when String.trim line = "@follow" -> (
           (* the connection stops speaking the line protocol and becomes
              a replication stream; it never returns to this loop *)
           match t.hub with
           | Some hub -> Replication.serve_follower hub fd reader
           | None ->
               Transport.write_all fd
                 (Protocol.to_string
                    (Protocol.err
                       "replication is not enabled on this server \
                        (start it with --replicate)"));
               loop ())
       | Some line ->
           let stop_after = String.trim line = "@quit" in
           let response = Service.request t.service conn line in
           Transport.write_all fd (Protocol.to_string response);
           if not stop_after then loop ()
     in
     loop ()
   with
  (* EPIPE here is the normal fate of a worker whose client hung up
     mid-response: tear the connection down cleanly, keep the process *)
  | Unix.Unix_error _ | Sys_error _ -> ()
  | Io.Crash -> ());
  finish ()

(* --- main loop ------------------------------------------------------------ *)

(** Accept connections until {!stop} (or SIGTERM via
    {!install_signal_handlers}), then drain and snapshot through
    {!Service.shutdown}.  Blocks the calling thread; spawns one thread per
    connection plus the idle reaper. *)
let run ?(reap_every = 1.0) t =
  (* embedded servers (tests, benches) never call
     [install_signal_handlers]; they still must survive client hangups *)
  Transport.ignore_sigpipe ();
  let reaper =
    Thread.create
      (fun () ->
        while not (Atomic.get t.stop_requested) do
          Thread.delay reap_every;
          if not (Atomic.get t.stop_requested) then
            ignore (Service.reap_idle t.service)
        done)
      ()
  in
  (* A blocked [accept] is not reliably woken by a concurrent [close], so
     the loop polls readiness with a short select instead: [stop] lands
     within one timeout, and a closed listener surfaces as EBADF here. *)
  (try Unix.set_nonblock t.listen_fd with Unix.Unix_error _ -> ());
  let rec accept_loop () =
    if not (Atomic.get t.stop_requested) then begin
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | client_fd, _ ->
              Unix.clear_nonblock client_fd;
              ignore (Thread.create (fun () -> handle_client t client_fd) ());
              accept_loop ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
              accept_loop ()
          | exception Unix.Unix_error _ -> Atomic.set t.stop_requested true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ ->
          (* the listener was closed (stop/SIGTERM) or is unusable *)
          Atomic.set t.stop_requested true
    end
  in
  Atomic.set t.accepting true;
  accept_loop ();
  Thread.join reaper;
  (* wake follower streams before the drain so their worker threads wind
     down instead of waiting on the hub's condition forever *)
  (match t.hub with Some hub -> Replication.stop_hub hub | None -> ());
  let failures = Service.shutdown t.service in
  (match t.listen with
  | Protocol.Unix_path p -> (
      try Unix.unlink p with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ());
  failures

(* --- a minimal client (tests, bench, scripting) --------------------------- *)

module Client = Transport.Client
