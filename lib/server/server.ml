(** Unix-domain-socket front end for {!Service}.

    Thread-per-connection over a listening socket: the accept loop never
    does repository work (admission, shedding, and serialization live in
    {!Service}), so a slow or hung client can never stall accepts.  A
    background reaper frees idle sessions.  SIGTERM/SIGINT request a
    graceful stop: the listener closes, in-flight requests drain, every
    dirty session is snapshotted, locks are released. *)

(* [server.ml] shares the library's name, so it is the library interface:
   re-export the inner modules for external users (bin, tests, bench). *)
module Retry = Retry
module Breaker = Breaker
module Locks = Locks
module Group_commit = Group_commit
module Protocol = Protocol
module Publish = Publish
module Service = Service
module Io = Repository.Io

type t = {
  service : Service.t;
  socket_path : string;
  listen_fd : Unix.file_descr;
  stop_requested : bool Atomic.t;
  accepting : bool Atomic.t;
}

let create ?(config = Service.default_config) ?(backlog = 64) ?obs ~socket_path
    dir =
  match Service.open_service ~config ?obs dir with
  | Error m -> Error m
  | Ok service -> (
      (* a leftover socket file from a dead server would fail the bind *)
      (if Sys.file_exists socket_path then
         try Unix.unlink socket_path with Unix.Unix_error _ -> ());
      match
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX socket_path);
        Unix.listen fd backlog;
        fd
      with
      | fd ->
          Ok
            {
              service;
              socket_path;
              listen_fd = fd;
              stop_requested = Atomic.make false;
              accepting = Atomic.make false;
            }
      | exception Unix.Unix_error (e, _, _) ->
          Error (socket_path ^ ": " ^ Unix.error_message e))

let service t = t.service

(** Ask the accept loop to wind down; safe from a signal handler or any
    thread.  Closing the listener unblocks a pending [accept]. *)
let stop t =
  if not (Atomic.exchange t.stop_requested true) then
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let install_signal_handlers t =
  let handle _ = stop t in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle handle)
   with Invalid_argument _ | Sys_error _ -> ());
  (* a client vanishing mid-write must be an EPIPE error, not death *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* --- per-connection worker ------------------------------------------------ *)

let send fd text =
  let b = Bytes.of_string text in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      let n = Io.retry_eintr (fun () -> Unix.write fd b off (len - off)) in
      go (off + n)
  in
  go 0

(* Read one newline-terminated line; [None] at EOF.  Byte-at-a-time reads
   are fine at this protocol's scale and keep the loop interruptible. *)
let read_line fd =
  let b = Buffer.create 64 in
  let one = Bytes.create 1 in
  let rec go () =
    match Io.retry_eintr (fun () -> Unix.read fd one 0 1) with
    | 0 -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | _ ->
        if Bytes.get one 0 = '\n' then Some (Buffer.contents b)
        else begin
          Buffer.add_char b (Bytes.get one 0);
          go ()
        end
  in
  go ()

let handle_client t fd =
  let conn = Service.connect t.service in
  let finish () =
    Service.disconnect t.service conn;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (try
     send fd (Protocol.to_string (Protocol.ok [ "swsd design service" ]));
     let rec loop () =
       match read_line fd with
       | None -> ()  (* client went away; disconnect snapshots for it *)
       | Some line ->
           let stop_after = String.trim line = "@quit" in
           let response = Service.request t.service conn line in
           send fd (Protocol.to_string response);
           if not stop_after then loop ()
     in
     loop ()
   with
  | Unix.Unix_error _ | Sys_error _ -> ()
  | Io.Crash -> ());
  finish ()

(* --- main loop ------------------------------------------------------------ *)

(** Accept connections until {!stop} (or SIGTERM via
    {!install_signal_handlers}), then drain and snapshot through
    {!Service.shutdown}.  Blocks the calling thread; spawns one thread per
    connection plus the idle reaper. *)
let run ?(reap_every = 1.0) t =
  let reaper =
    Thread.create
      (fun () ->
        while not (Atomic.get t.stop_requested) do
          Thread.delay reap_every;
          if not (Atomic.get t.stop_requested) then
            ignore (Service.reap_idle t.service)
        done)
      ()
  in
  (* A blocked [accept] is not reliably woken by a concurrent [close], so
     the loop polls readiness with a short select instead: [stop] lands
     within one timeout, and a closed listener surfaces as EBADF here. *)
  (try Unix.set_nonblock t.listen_fd with Unix.Unix_error _ -> ());
  let rec accept_loop () =
    if not (Atomic.get t.stop_requested) then begin
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | client_fd, _ ->
              Unix.clear_nonblock client_fd;
              ignore (Thread.create (fun () -> handle_client t client_fd) ());
              accept_loop ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
              accept_loop ()
          | exception Unix.Unix_error _ -> Atomic.set t.stop_requested true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ ->
          (* the listener was closed (stop/SIGTERM) or is unusable *)
          Atomic.set t.stop_requested true
    end
  in
  Atomic.set t.accepting true;
  accept_loop ();
  Thread.join reaper;
  let failures = Service.shutdown t.service in
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  failures

(* --- a minimal client (tests, bench, scripting) --------------------------- *)

module Client = struct
  type c = { fd : Unix.file_descr; mutable buf : string }

  let connect path =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Io.retry_eintr (fun () -> Unix.connect fd (Unix.ADDR_UNIX path));
      fd
    with
    | fd -> Ok { fd; buf = "" }
    | exception Unix.Unix_error (e, _, _) ->
        Error (path ^ ": " ^ Unix.error_message e)

  let read_line c =
    let rec go () =
      match String.index_opt c.buf '\n' with
      | Some i ->
          let line = String.sub c.buf 0 i in
          c.buf <- String.sub c.buf (i + 1) (String.length c.buf - i - 1);
          Some line
      | None -> (
          let chunk = Bytes.create 4096 in
          match Io.retry_eintr (fun () -> Unix.read c.fd chunk 0 4096) with
          | 0 -> None
          | n ->
              c.buf <- c.buf ^ Bytes.sub_string chunk 0 n;
              go ())
    in
    go ()

  (** Read body lines up to and including the status; [None] on EOF. *)
  let read_response c =
    let rec go acc =
      match read_line c with
      | None -> None
      | Some line ->
          if Protocol.is_terminator line then Some (List.rev (line :: acc))
          else go (line :: acc)
    in
    go []

  let request c line =
    send c.fd (line ^ "\n");
    read_response c

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end
