(** Unix-domain-socket front end for {!Service}: one thread per
    connection, a periodic idle-session reaper, and graceful drain on
    SIGTERM/SIGINT. *)

module Retry = Retry
module Breaker = Breaker
module Locks = Locks
module Group_commit = Group_commit
module Protocol = Protocol
module Publish = Publish
module Service = Service

type t

val create :
  ?config:Service.config ->
  ?backlog:int ->
  ?obs:Obs.t ->
  socket_path:string ->
  string ->
  (t, string) result
(** [create ~socket_path dir] opens the repository at [dir] and binds a
    listening socket at [socket_path] (unlinking a stale socket file).
    [obs] is passed to {!Service.open_service}; [Obs.noop] disables
    observability ([--no-obs]). *)

val service : t -> Service.t

val run : ?reap_every:float -> t -> (string * string) list
(** Accept and serve until {!stop}; then drain, snapshot, and release
    locks via {!Service.shutdown}, returning its failures.  Blocks. *)

val stop : t -> unit
(** Request shutdown; safe from a signal handler or another thread. *)

val install_signal_handlers : t -> unit
(** SIGTERM/SIGINT → {!stop} (graceful drain); SIGPIPE ignored. *)

(** Blocking line-protocol client used by the CLI, tests, and bench. *)
module Client : sig
  type c

  val connect : string -> (c, string) result

  val request : c -> string -> string list option
  (** Send one request line; returns the response lines (body then
      status, terminator included), or [None] if the server hung up. *)

  val read_response : c -> string list option
  (** Read one response without sending (e.g. the greeting). *)

  val close : c -> unit
end
