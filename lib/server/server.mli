(** Socket front end for {!Service} — Unix-domain or TCP
    ({!Protocol.address}): one thread per connection, a periodic
    idle-session reaper, and graceful drain on SIGTERM/SIGINT.  The
    sharding pieces live alongside: {!Transport} (bind/connect/IO),
    {!Shard_pool} (supervised worker processes), {!Router} (the
    variant-hashing front end). *)

module Retry = Retry
module Breaker = Breaker
module Locks = Locks
module Group_commit = Group_commit
module Protocol = Protocol
module Publish = Publish
module Service = Service
module Transport = Transport
module Router = Router
module Shard_pool = Shard_pool
module Replication = Replication

type t

val create :
  ?config:Service.config ->
  ?backlog:int ->
  ?obs:Obs.t ->
  ?io:Repository.Io.t ->
  ?replicate:bool ->
  ?repl_ring:int ->
  listen:Protocol.address ->
  string ->
  (t, string) result
(** [create ~listen dir] opens the repository at [dir] and binds a
    listener at [listen].  A stale Unix socket file left by a crashed
    server is probed and reclaimed; a path with a live listener (or a
    non-socket file) is an error — never silently stolen.  [obs] is
    passed to {!Service.open_service}; [Obs.noop] disables observability
    ([--no-obs]).  [io] overrides the repository IO (benchmarks inject
    fsync latency through it).  [replicate] (default [false]) installs a
    {!Replication.hub}: connections that send [@follow] become follower
    streams instead of protocol clients.  [repl_ring] sizes the hub's
    event ring ([--repl-ring], default 1024). *)

val of_service :
  ?backlog:int ->
  ?hub:Replication.hub ->
  listen:Protocol.address ->
  Service.t ->
  (t, string) result
(** Put an already open service on a listener — the replication-follower
    path, where {!Replication.Follower.create} opens the service itself
    (bootstrapping the repository first). *)

val service : t -> Service.t

val listen_address : t -> Protocol.address
(** Effective listen address (TCP port 0 resolved to the bound port). *)

val run : ?reap_every:float -> t -> (string * string) list
(** Accept and serve until {!stop}; then drain, snapshot, and release
    locks via {!Service.shutdown}, returning its failures.  Blocks.
    Ignores SIGPIPE process-wide: a client hanging up mid-response is a
    clean per-connection teardown, never process death. *)

val stop : t -> unit
(** Request shutdown; safe from a signal handler or another thread. *)

val install_signal_handlers : t -> unit
(** SIGTERM/SIGINT → {!stop} (graceful drain); SIGPIPE ignored. *)

(** Blocking line-protocol client used by the CLI, tests, and bench; see
    {!Transport.Client}.  [connect ?retry_for path] accepts a socket path
    or [host:port] and can retry transient startup races (ECONNREFUSED /
    ENOENT) until a deadline. *)
module Client = Transport.Client
