(** Circuit breaker: the degradation ladder's last rung before crashing.

    Each variant session carries one breaker around its journal appends.
    Repeated append failures (after {!Retry} has absorbed transient bursts)
    trip the breaker and the variant degrades to read-only — browsing,
    checking, and reports keep working, mutations are refused — instead of
    the server dying or silently dropping acknowledged work.  After a
    cooldown the breaker goes half-open: one mutation is allowed through as
    a probe, and its outcome closes or re-trips the circuit.

    Every state transition (closed → open → half-open → ...) is recorded
    with its timestamp in a bounded log, so [@stats] can report the breaker
    history and the time spent in the current state. *)

type phase = Closed | Opened | Half_open

let phase_name = function
  | Closed -> "closed"
  | Opened -> "open"
  | Half_open -> "half-open"

type state =
  | St_closed
  | St_open of float  (** tripped at [t]; read-only *)
  | St_half_open of float  (** probe admitted at [t] *)

let max_log = 16

type t = {
  threshold : int;  (** consecutive failures that trip the breaker *)
  cooldown : float;  (** seconds before a half-open probe is allowed *)
  mutable failures : int;  (** consecutive failures while closed *)
  mutable state : state;
  mutable log : (float * phase) list;  (** transitions, newest first, capped *)
  mu : Mutex.t;
      (** Since group commit, outcomes are recorded from the batch
          waiters' threads {e outside} the variant writer lock, so the
          breaker synchronizes itself; uncontended in the common case. *)
}

let create ?(threshold = 3) ?(cooldown = 30.0) () =
  {
    threshold;
    cooldown;
    failures = 0;
    state = St_closed;
    log = [];
    mu = Mutex.create ();
  }

let sync t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let record t ~now phase =
  t.log <-
    (now, phase)
    :: (if List.length t.log >= max_log then
          List.filteri (fun i _ -> i < max_log - 1) t.log
        else t.log)

let is_open t =
  sync t (fun () -> match t.state with St_open _ -> true | _ -> false)

let phase t =
  sync t @@ fun () ->
  match t.state with
  | St_closed -> Closed
  | St_open _ -> Opened
  | St_half_open _ -> Half_open

(** Would a mutation be admitted now?  [true] while closed; once [cooldown]
    has elapsed since the trip the breaker transitions to half-open (the
    transition is recorded here, on the admitting read) and probes are
    admitted until an outcome closes or re-trips it. *)
let allows t ~now =
  sync t @@ fun () ->
  match t.state with
  | St_closed -> true
  | St_half_open _ -> true
  | St_open tripped_at ->
      if now -. tripped_at >= t.cooldown then begin
        t.state <- St_half_open now;
        record t ~now Half_open;
        true
      end
      else false

let record_success t ~now =
  sync t @@ fun () ->
  (match t.state with
  | St_closed -> ()
  | St_open _ | St_half_open _ -> record t ~now Closed);
  t.failures <- 0;
  t.state <- St_closed

(** One journal-append failure (post-retry).  Trips the breaker at
    [threshold] consecutive failures; a failed half-open probe (or any
    failure while open) re-trips it immediately, restarting the cooldown. *)
let record_failure t ~now =
  sync t @@ fun () ->
  match t.state with
  | St_open _ | St_half_open _ ->
      t.state <- St_open now;
      record t ~now Opened
  | St_closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.threshold then begin
        t.state <- St_open now;
        record t ~now Opened
      end

(** The transition history, newest first: [(timestamp, phase entered)].
    Capped at a small fixed length. *)
let transitions t =
  sync t (fun () -> List.map (fun (at, p) -> (at, phase_name p)) t.log)

(** When the current state was entered; [None] while closed with no
    recorded transitions (a breaker that never tripped). *)
let since t =
  sync t @@ fun () ->
  match t.state with
  | St_open at | St_half_open at -> Some at
  | St_closed -> (
      match t.log with (at, Closed) :: _ -> Some at | _ -> None)

(** Seconds spent in the current state as of [now]; [None] for a breaker
    that never left its initial closed state. *)
let time_in_state t ~now = Option.map (fun at -> now -. at) (since t)

let describe t =
  sync t @@ fun () ->
  let history =
    match t.log with
    | [] -> ""
    | log ->
        "; transitions: "
        ^ String.concat ", "
            (List.rev_map
               (fun (at, p) -> Printf.sprintf "%s@%.3f" (phase_name p) at)
               log)
  in
  match t.state with
  | St_closed -> "closed" ^ history
  | St_half_open _ -> "half-open (probing)" ^ history
  | St_open _ ->
      Printf.sprintf "open (read-only after %d journal failure(s))%s"
        (max t.failures t.threshold)
        history
