(** Circuit breaker: the degradation ladder's last rung before crashing.

    Each variant session carries one breaker around its journal appends.
    Repeated append failures (after {!Retry} has absorbed transient bursts)
    trip the breaker and the variant degrades to read-only — browsing,
    checking, and reports keep working, mutations are refused — instead of
    the server dying or silently dropping acknowledged work.  After a
    cooldown the breaker goes half-open: one mutation is allowed through as
    a probe, and its outcome closes or re-trips the circuit. *)

type state = Closed | Open of float  (** tripped at [t]; read-only *)

type t = {
  threshold : int;  (** consecutive failures that trip the breaker *)
  cooldown : float;  (** seconds before a half-open probe is allowed *)
  mutable failures : int;  (** consecutive failures while closed *)
  mutable state : state;
}

let create ?(threshold = 3) ?(cooldown = 30.0) () =
  { threshold; cooldown; failures = 0; state = Closed }

let is_open t = match t.state with Open _ -> true | Closed -> false

(** Would a mutation be admitted now?  [true] while closed, and for the
    half-open probe once [cooldown] has elapsed since the trip. *)
let allows t ~now =
  match t.state with
  | Closed -> true
  | Open tripped_at -> now -. tripped_at >= t.cooldown

let record_success t =
  t.failures <- 0;
  t.state <- Closed

(** One journal-append failure (post-retry).  Trips the breaker at
    [threshold] consecutive failures; a failed half-open probe re-trips it
    immediately, restarting the cooldown. *)
let record_failure t ~now =
  match t.state with
  | Open _ -> t.state <- Open now
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.threshold then t.state <- Open now

let describe t =
  match t.state with
  | Closed -> "closed"
  | Open _ ->
      Printf.sprintf "open (read-only after %d journal failure(s))"
        (max t.failures t.threshold)
