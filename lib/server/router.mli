(** The sharding front end: accepts client connections (Unix socket or
    TCP), consistent-hashes variant names onto a {!Shard_pool} of worker
    processes, forwards the line protocol verbatim, and merges [@stats]
    across shards.  Mutating designer commands are never silently resent
    after a backend failure — a lost ack must not become a double apply. *)

val shard_of : shards:int -> string -> int
(** Rendezvous (highest-random-weight) hashing over FNV-1a 64-bit
    digests: deterministic across restarts, total (every name maps to
    exactly one shard in [0, shards)), and minimally disruptive (growing
    [shards] by one only moves names onto the new shard). *)

type t

val create :
  ?backlog:int ->
  ?obs:Obs.t ->
  ?connect_retry:float ->
  ?retry_after_ms:int ->
  listen:Protocol.address ->
  Shard_pool.t ->
  (t, string) result
(** Bind the front-end listener.  [connect_retry] (default 5 s) bounds
    how long a request waits for a backend worker to accept — long
    enough to ride out a supervisor respawn.  [obs] feeds the router's
    own counters ([swsd.router.*]); pass [Obs.noop] for [--no-obs]. *)

val listen_address : t -> Protocol.address
(** Effective listen address (TCP port 0 resolved to the bound port). *)

val pool : t -> Shard_pool.t

val run : t -> unit
(** Accept and route until {!stop}; blocks.  The caller starts/stops the
    {!Shard_pool} around this. *)

val stop : t -> unit
(** Safe from a signal handler; also closes live client connections. *)

val install_signal_handlers : t -> unit
(** SIGTERM/SIGINT → {!stop}; SIGPIPE ignored. *)
