(** Retry with jittered exponential backoff around transient IO failures.

    The repository layer surfaces every IO failure as [Sys_error] (after
    {!Repository.Io.unix} has already absorbed EINTR at the syscall level).
    A busy filesystem can still fail an append transiently — EAGAIN, a
    momentary ENOSPC, an NFS hiccup — and the service should absorb a short
    burst of those rather than degrade a variant.  Deterministic tests
    inject the sleep and the jitter source. *)

type policy = {
  max_attempts : int;  (** total tries, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** backoff ceiling *)
  jitter : float;  (** fraction of the delay randomized away, [0..1] *)
}

let default =
  { max_attempts = 3; base_delay = 0.01; max_delay = 0.5; jitter = 0.5 }

(** No sleeping, no second chances — for tests that want the first failure
    to surface. *)
let no_retries = { default with max_attempts = 1 }

(** Failures worth retrying: the repository's [Sys_error] wrapping of a
    syscall failure.  {!Repository.Io.Crash} (the injected power-loss
    point) and everything else is terminal. *)
let is_transient = function Sys_error _ -> true | _ -> false

let delay_for ~policy ~rand attempt =
  let exp = policy.base_delay *. (2.0 ** float_of_int attempt) in
  let capped = Float.min exp policy.max_delay in
  (* full jitter over the configured fraction: d * (1 - j + j*u) *)
  let u = Random.State.float rand 1.0 in
  capped *. (1.0 -. policy.jitter +. (policy.jitter *. u))

(** Run [f]; on a transient failure sleep a jittered backoff and try again,
    up to [policy.max_attempts] tries.  Returns the last failure when the
    budget is exhausted; non-transient exceptions fly through.

    Callers that retry concurrently should share one explicit [rand] (the
    service passes its per-service state): the jitter streams then
    interleave and the backoffs decorrelate.  When [rand] is omitted a
    fresh {e self-seeded} state is made on first use — never a fixed seed,
    which would hand every concurrent retry the identical jitter sequence
    and synchronize the backoffs into a thundering herd.  Tests that need
    reproducible delays pass an explicit seeded [rand].

    [on_retry] (if given) observes each backoff before the sleep — the
    observability layer counts retries and their delays with it.

    [deadline] (absolute, per [now]) bounds the whole retry budget: each
    backoff is clamped to the time remaining, and once none remains the
    last failure surfaces instead of sleeping.  Without the clamp a
    deadline shorter than the minimum backoff would leave the caller
    spinning through zero-length (or negative) sleeps — the sleep never
    advances the clock, the deadline check never fires inside [sleep],
    and the retries degenerate into a busy loop against a failing
    syscall. *)
let with_retries ?rand ?(sleep = Thread.delay) ?(now = Unix.gettimeofday)
    ?deadline ?on_retry policy f =
  let rand =
    lazy
      (match rand with
      | Some r -> r
      | None -> Random.State.make_self_init ())
  in
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception e when is_transient e ->
        if attempt + 1 >= policy.max_attempts then Error e
        else begin
          let delay = delay_for ~policy ~rand:(Lazy.force rand) attempt in
          let delay =
            match deadline with
            | None -> delay
            | Some d -> Float.min delay (d -. now ())
          in
          if delay <= 0.0 then Error e
          else begin
            (match on_retry with
            | Some g -> g ~attempt ~delay
            | None -> ());
            sleep delay;
            go (attempt + 1)
          end
        end
  in
  go 0
