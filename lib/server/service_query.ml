(** The query path: serve [@query] from the variant's materialized
    {!Query.View}, lock-free.

    The flow for a query line:

    + parse once ({!Query.Parser.parse}); a malformed query is answered
      with a structured [!err] — no session state is involved, nothing can
      hang or disconnect;
    + [explain] queries print the plan and stop — no variant needed;
    + variant-scoped queries read the published (state, stamp) pair and
      the view cell: when the cell is already at the publication stamp
      (the common case — the writer refreshes it after every committed
      op) the evaluator runs straight on it; when it lags (a follower
      racing its applier, [lockfree_reads = false] baselines, cold start)
      the reader advances it itself via the same CAS loop the writer uses
      ({!Service_types.advance_view}) — still {e no variant writer lock};
    + only a variant with {e nothing published at all} falls back through
      the writer path once, to load the session from disk (counted by
      [swsd.query.fallback_total]; the retry then serves lock-free);
    + [all]-scoped queries walk every variant of the repository (sorted,
      restricted to this shard's span under [--shard-total]) and emit one
      block per variant: a [= variant] header, then the answer lines
      indented two spaces.  Blocks are self-delimiting — body lines never
      start with [= ] — so the router can merge blocks from many shards
      and re-sort by header into the exact bytes one process would emit.

    The answer's [#version] is the view's stamp: on a follower that is the
    leader-issued stamp the applier pinned ({!Publish.publish_at}), so a
    follower's query answer never claims a version the leader has not
    acknowledged — the bounded-staleness contract queries inherit from
    the read path. *)

open Service_types

let usage =
  "usage: @query [all] [explain] \
   <name|attr|isa|partof|wheel|diff|lineage|branches> ..."

(* [branches of V]: the repository's manifest lineage records, read from
   the shared stores on disk — every shard (and a single process) renders
   the same sorted lines, like [@list]. *)
let do_branches t name =
  if not (Repo.mem_variant t.repo name) then
    Protocol.err ("no variant named " ^ name)
  else
    Repo.variant_names t.repo
    |> List.filter_map (fun v ->
           match Repo.variant_lineage t.repo v with
           | Some (p, f) when String.equal p name ->
               Some (Printf.sprintf "%s fork %d" v f)
           | Some _ | None -> None)
    |> Protocol.ok

(* Load a variant through the writer path so something is published; the
   caller retries its lock-free read afterwards.  Mirrors the [@open] load
   (drain lanes before the journal replay may rewrite a torn tail, reset
   the lane after), but attaches no connection. *)
let ensure_loaded t variant =
  match
    try_writer t variant (fun () ->
        match find_session t variant with
        | Some s ->
            (* a session is always published while it lives; re-publish to
               close the benign race with a concurrent evict *)
            ignore (publish t s : int);
            Ok ()
        | None -> (
            (match t.commit with
            | Some gc -> Group_commit.drain_all gc
            | None -> ());
            match Service_admin.load_session t variant with
            | Error m -> Error m
            | Ok s ->
                (match t.commit with
                | Some gc -> Group_commit.reset gc ~path:(log_path s)
                | None -> ());
                Ok ()))
  with
  | Ok r -> r
  | Error (Locks.Busy n) ->
      Error (Printf.sprintf "variant is busy (%d request(s) queued)" n)
  | Error Locks.Timed_out -> Error "variant is busy (deadline exceeded)"

(* The variant's view at (at least) its current publication stamp;
   [Error] carries a user-facing reason. *)
let rec query_view ?(retried = false) t variant =
  match Publish.read t.pub variant with
  | Some (state, stamp) -> (
      Obs.Metrics.incr t.i.c_query_lockfree;
      Publish.touch t.pub variant ~now:(t.config.now ());
      let cell = view_cell t variant in
      match Atomic.get cell with
      | Some v when Query.View.stamp v >= stamp -> Ok v
      | _ -> (
          advance_view t variant state stamp;
          match Atomic.get cell with
          | Some v -> Ok v
          | None -> Error ("variant " ^ variant ^ " is unavailable; retry")))
  | None ->
      if retried then Error ("variant " ^ variant ^ " is unavailable")
      else if t.config.follower then
        if Repo.mem_variant t.repo variant then
          Error ("variant " ^ variant ^ " is not yet replicated; retry shortly")
        else Error ("no variant named " ^ variant)
      else if not (Repo.mem_variant t.repo variant) then
        Error ("no variant named " ^ variant)
      else begin
        Obs.Metrics.incr t.i.c_query_fallback;
        match ensure_loaded t variant with
        | Ok () -> query_view ~retried:true t variant
        | Error m -> Error m
      end

let single t variant (q : Query.Ast.t) =
  match query_view t variant with
  | Error m -> Protocol.err m
  | Ok view -> (
      let version = Query.View.stamp view in
      match Query.Eval.run view q.q_atom with
      | Ok lines -> Protocol.ok ~version lines
      | Error m -> Protocol.err ~version m)

(* Does this worker own the variant?  Outside a sharded deployment, always;
   inside one, exactly when rendezvous hashing routes it here — the same
   function the router steers by, so fan-out blocks partition cleanly. *)
let owned t variant =
  match t.config.shard_span with
  | None -> true
  | Some (shard, shards) -> Router.shard_of ~shards variant = shard

let all_scope t (q : Query.Ast.t) =
  let variants =
    Repo.variant_names t.repo |> List.filter (owned t)
    |> List.sort String.compare
  in
  let block variant =
    let lines =
      match query_view t variant with
      | Error m -> [ "# " ^ m ]
      | Ok view -> (
          match Query.Eval.run view q.q_atom with
          | Ok lines -> lines
          | Error m -> [ "# " ^ m ])
    in
    ("= " ^ variant) :: List.map (fun l -> "  " ^ l) lines
  in
  Protocol.ok (List.concat_map block variants)

let do_query t (conn : conn) text =
  let i = t.i in
  Obs.Metrics.incr i.c_query;
  let t0 = t.config.now () in
  let finish response =
    Obs.Histo.observe i.h_query (t.config.now () -. t0);
    response
  in
  finish
    (match Query.Parser.parse text with
    | Error m -> Protocol.err ~body:[ usage ] m
    | Ok q when q.Query.Ast.q_explain -> Protocol.ok (Query.Eval.explain q.q_atom)
    | Ok { Query.Ast.q_atom = Query.Ast.Branches name; _ } -> do_branches t name
    | Ok q when q.q_all -> all_scope t q
    | Ok q -> (
        match conn.variant with
        | None ->
            Protocol.err
              "no open session; use: @open <variant> (or: @query all ...)"
        | Some variant -> single t variant q))
