(** Retry with jittered exponential backoff around transient IO failures
    ([Sys_error]); everything else — including the fault injector's
    {!Repository.Io.Crash} — flies through untouched. *)

type policy = {
  max_attempts : int;  (** total tries, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** backoff ceiling *)
  jitter : float;  (** fraction of the delay randomized away, [0..1] *)
}

val default : policy
val no_retries : policy

val is_transient : exn -> bool

val delay_for : policy:policy -> rand:Random.State.t -> int -> float
(** The jittered backoff before retry number [attempt] (0-based). *)

val with_retries :
  ?rand:Random.State.t ->
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  ?deadline:float ->
  ?on_retry:(attempt:int -> delay:float -> unit) ->
  policy ->
  (unit -> 'a) ->
  ('a, exn) result
(** Run the thunk, sleeping {!delay_for} between transient failures, up to
    [max_attempts] tries; [Error] carries the last failure.  Concurrent
    callers should share one explicit [rand] so their jitter decorrelates;
    the default is a fresh self-seeded state per call (never a fixed seed —
    that would synchronize concurrent backoffs into a thundering herd).
    Pass a seeded [rand] for reproducible delays in tests.  [on_retry]
    observes each backoff (0-based attempt, chosen delay) before the
    sleep.

    [deadline] (absolute, measured by [now]) caps the retry budget: each
    backoff sleep is clamped to the remaining time, and when none remains
    the last failure is returned immediately — never a zero-length sleep
    loop.  Total time slept on behalf of one call is at most
    [deadline - now()] at entry. *)
