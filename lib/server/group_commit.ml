(** Group commit coordinator.  See group_commit.mli for the contract. *)

type policy = {
  max_batch : int;
  max_linger : float;
  flush_on_idle : bool;
}

let default_policy = { max_batch = 64; max_linger = 0.002; flush_on_idle = true }

type status = Pending | Done | Failed of exn

type ticket = {
  tk_mu : Mutex.t;
  tk_cond : Condition.t;
  mutable status : status;
}

type entry = {
  data : string;
  on_durable : (unit -> unit) option;
  ticket : ticket;
}

type lane = {
  mutable pending : entry list;  (** newest first *)
  mutable npending : int;
  mutable oldest : float;  (** submit time of the oldest pending entry *)
  mutable rested : float;  (** when the lane's last flush completed *)
  mutable expected : int;
      (** self-calibrating idle-departure threshold: the size the next
          batch should reach at saturation — what was already pending when
          the last flush completed plus that flush's waiters, all of whom
          will resubmit if they are still writing *)
  mutable flushing : bool;  (** a batch from this lane is being written *)
  mutable poisoned : exn option;  (** tail state unknown after a failed flush *)
  mutable force : bool;  (** a drain wants this lane out now *)
}

type t = {
  mu : Mutex.t;
  wake : Condition.t;  (** work arrived / drain / stop — wakes the flusher *)
  settled : Condition.t;  (** a lane finished a flush — wakes drainers *)
  lanes : (string, lane) Hashtbl.t;
  policy : policy;
  now : unit -> float;
  sleep : float -> unit;
  flush : path:string -> data:string -> unit;
  on_flush : (path:string -> batch:int -> seconds:float -> unit) option;
  mutable submitted : int;  (** total submits ever; the idle detector *)
  mutable stopping : bool;
  mutable flusher : Thread.t option;
}

exception Stopped

let () =
  Printexc.register_printer (function
    | Stopped -> Some "group commit stopped (server shutting down)"
    | _ -> None)

(* --- tickets --------------------------------------------------------------- *)

let fresh_ticket status =
  { tk_mu = Mutex.create (); tk_cond = Condition.create (); status }

let settle tk status =
  Mutex.lock tk.tk_mu;
  tk.status <- status;
  Condition.broadcast tk.tk_cond;
  Mutex.unlock tk.tk_mu

let await tk =
  Mutex.lock tk.tk_mu;
  while match tk.status with Pending -> true | _ -> false do
    Condition.wait tk.tk_cond tk.tk_mu
  done;
  let r = match tk.status with
    | Done -> Ok ()
    | Failed e -> Error e
    | Pending -> assert false
  in
  Mutex.unlock tk.tk_mu;
  r

(* --- lanes ----------------------------------------------------------------- *)

let lane_of t path =
  match Hashtbl.find_opt t.lanes path with
  | Some l -> l
  | None ->
      let l =
        {
          pending = [];
          npending = 0;
          oldest = 0.0;
          rested = 0.0;
          expected = 0;
          flushing = false;
          poisoned = None;
          force = false;
        }
      in
      Hashtbl.add t.lanes path l;
      l

(* The flusher's poll cadence while a lane lingers: a fraction of the
   linger, floored so a tiny linger does not spin and capped so a huge
   linger (deterministic tests) still notices idleness and drains fast. *)
let tick t =
  Float.max 5e-5 (Float.min (t.policy.max_linger /. 4.0) 2e-3)

(* Ripe lanes, sorted by path for deterministic flush order.  [idle_mark]
   (the [submitted] count one tick ago) makes pausing submission streams
   ripen short batches when the policy allows it.  Called with [t.mu]
   held. *)
let collect t ~idle_mark =
  let now = t.now () in
  let idle =
    match idle_mark with
    | Some m -> t.policy.flush_on_idle && t.submitted = m
    | None -> false
  in
  Hashtbl.fold
    (fun path l acc ->
      if l.npending = 0 then begin
        l.force <- false;
        acc
      end
      else if
        l.npending >= t.policy.max_batch
        (* the linger clock starts at the later of the oldest record and
           the last flush's completion: records that queued {e during} a
           flush have already waited it out, but departing the instant it
           completes would strand the flushed batch's returning writers on
           the next bus — the linger is exactly the regroup window that
           keeps steady-state batches full (and throughput ~W per fsync)
           instead of splitting the writers into two half-full cohorts *)
        || now -. Float.max l.oldest l.rested >= t.policy.max_linger
        || l.force || t.stopping
        (* a fully regrouped bus leaves at once: when every waiter from
           the last flush is back aboard ([expected], which the next flush
           recalibrates), there is nobody left to linger for, and waiting
           a tick to "notice" that only adds dead time to every cycle.
           Bootstrap ([expected] still 0) falls through to the idle rule
           below.  Both are heuristics about a regrouping cohort, so both
           are gated on [flush_on_idle]: with it off, only max_batch,
           linger and drain ripen a lane — the deterministic contract. *)
        || (t.policy.flush_on_idle && l.expected > 0
            && l.npending >= l.expected)
        (* idle departure is gated on a full regroup: a pause in
           submissions only means "nobody else is coming" once the last
           batch's returning writers are back aboard — otherwise a
           scheduling hiccup while they wake would split a steady writer
           pool into two half-full cohorts for good.  A genuinely shrunken
           pool never refills [expected]; the linger bound above departs
           the bus anyway and the next flush recalibrates it. *)
        || (idle && l.npending >= l.expected)
      then (path, l) :: acc
      else acc)
    t.lanes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let has_pending t =
  Hashtbl.fold (fun _ l b -> b || l.npending > 0) t.lanes false

(* Write one lane's batch.  Runs with [t.mu] released; re-locks only to
   poison the lane on failure.  On success the [on_durable] callbacks run
   in submission order before any ticket settles, so a waiter observing
   [Ok] knows every earlier record in its batch is durable {e and}
   published. *)
let write_batch t path lane batch =
  let data = String.concat "" (List.map (fun e -> e.data) batch) in
  let t0 = t.now () in
  match if data = "" then () else t.flush ~path ~data with
  | () ->
      (match t.on_flush with
      | Some f -> f ~path ~batch:(List.length batch) ~seconds:(t.now () -. t0)
      | None -> ());
      List.iter
        (fun e ->
          match (match e.on_durable with Some f -> f () | None -> ()) with
          | () -> settle e.ticket Done
          | exception ex ->
              (* the record is durable but its publish hook died; the
                 waiter must not ack what it cannot prove was published *)
              settle e.ticket (Failed ex))
        batch
  | exception e ->
      (* The journal tail is now unknown (possibly torn): poison the lane
         so no later record can fuse with the torn fragment, and fail the
         whole batch plus anything that queued behind it meanwhile. *)
      Mutex.lock t.mu;
      lane.poisoned <- Some e;
      let stragglers = List.rev lane.pending in
      lane.pending <- [];
      lane.npending <- 0;
      Mutex.unlock t.mu;
      List.iter (fun e' -> settle e'.ticket (Failed e)) (batch @ stragglers)

(* Flush the given lanes one at a time.  Called and returns with [t.mu]
   held. *)
let flush_lanes t ready =
  List.iter
    (fun (path, lane) ->
      let batch = List.rev lane.pending in
      lane.pending <- [];
      lane.npending <- 0;
      lane.force <- false;
      lane.flushing <- true;
      Mutex.unlock t.mu;
      write_batch t path lane batch;
      Mutex.lock t.mu;
      lane.flushing <- false;
      lane.rested <- t.now ();
      lane.expected <- lane.npending + List.length batch;
      Condition.broadcast t.settled)
    ready

let flusher_loop t =
  Mutex.lock t.mu;
  let running = ref true in
  while !running do
    while (not t.stopping) && not (has_pending t) do
      Condition.wait t.wake t.mu
    done;
    if t.stopping && not (has_pending t) then running := false
    else begin
      let ready = collect t ~idle_mark:None in
      let ready =
        if ready <> [] then ready
        else begin
          (* nothing ripe yet: linger one tick, then reconsider — a pause
             in submissions counts as ripeness when the policy says so *)
          let mark = t.submitted in
          Mutex.unlock t.mu;
          t.sleep (tick t);
          Mutex.lock t.mu;
          collect t ~idle_mark:(Some mark)
        end
      in
      flush_lanes t ready
    end
  done;
  Mutex.unlock t.mu

(* --- public API ------------------------------------------------------------ *)

let create ?(policy = default_policy) ?(now = Unix.gettimeofday)
    ?(sleep = Thread.delay) ~flush ?on_flush () =
  let t =
    {
      mu = Mutex.create ();
      wake = Condition.create ();
      settled = Condition.create ();
      lanes = Hashtbl.create 8;
      policy =
        { policy with max_batch = max 1 policy.max_batch;
          max_linger = Float.max 0.0 policy.max_linger };
      now;
      sleep;
      flush;
      on_flush;
      submitted = 0;
      stopping = false;
      flusher = None;
    }
  in
  t.flusher <- Some (Thread.create flusher_loop t);
  t

let submit t ~path ?on_durable data =
  Mutex.lock t.mu;
  let lane = lane_of t path in
  let tk =
    match lane.poisoned with
    | Some e -> fresh_ticket (Failed e)
    | None when t.stopping -> fresh_ticket (Failed Stopped)
    | None ->
        let tk = fresh_ticket Pending in
        lane.pending <- { data; on_durable; ticket = tk } :: lane.pending;
        if lane.npending = 0 then lane.oldest <- t.now ();
        lane.npending <- lane.npending + 1;
        t.submitted <- t.submitted + 1;
        Condition.signal t.wake;
        tk
  in
  Mutex.unlock t.mu;
  tk

let quiescent t ~path =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.lanes path with
    | None -> true
    | Some l ->
        l.npending = 0 && (not l.flushing)
        && match l.poisoned with None -> true | Some _ -> false
  in
  Mutex.unlock t.mu;
  r

let drain t ~path =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.lanes path with
  | None -> ()
  | Some l ->
      l.force <- true;
      Condition.signal t.wake;
      while l.npending > 0 || l.flushing do
        Condition.wait t.settled t.mu
      done);
  Mutex.unlock t.mu

let drain_all t =
  Mutex.lock t.mu;
  Hashtbl.iter (fun _ l -> l.force <- true) t.lanes;
  Condition.signal t.wake;
  let busy () =
    Hashtbl.fold (fun _ l b -> b || l.npending > 0 || l.flushing) t.lanes false
  in
  while busy () do
    Condition.wait t.settled t.mu
  done;
  Mutex.unlock t.mu

let reset t ~path =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.lanes path with
  | None -> ()
  | Some l -> l.poisoned <- None);
  Mutex.unlock t.mu

let stop t =
  Mutex.lock t.mu;
  if t.stopping then Mutex.unlock t.mu
  else begin
    t.stopping <- true;
    Condition.signal t.wake;
    let th = t.flusher in
    t.flusher <- None;
    Mutex.unlock t.mu;
    Option.iter Thread.join th
  end
